
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_proto_basic.cpp" "tests/CMakeFiles/test_proto_basic.dir/test_proto_basic.cpp.o" "gcc" "tests/CMakeFiles/test_proto_basic.dir/test_proto_basic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/wan_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wan_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/wan_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/wan_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/wan_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/acl/CMakeFiles/wan_acl.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/wan_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/nameservice/CMakeFiles/wan_nameservice.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/wan_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/wan_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
