# Empty compiler generated dependencies file for wan_clock.
# This may be replaced when dependencies are built.
