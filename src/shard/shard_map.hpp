// ShardMap: a versioned partition of the (app, user) key space across
// manager GROUPS.
//
// The paper's protocol runs every quorum — check quorum C, update quorum
// M-C+1, recovery sync from C peers — over "the" manager set of an
// application. That set is the scale ceiling: every manager holds the full
// ACL and every revocation fans out from all of them. Sharding keeps the
// protocol untouched and shrinks its world instead: managers are partitioned
// into disjoint groups, the key space is split into a fixed number of
// logical shards, and each shard is owned by exactly one group. Within a
// group the original protocol runs verbatim (a sharded manager's
// Managers(A) is simply its own group), so every quorum-intersection
// argument — including the Te revocation bound — holds per shard.
//
// Two placement functions compose (the kumofs HashSpace idiom):
//
//   key -> shard    stable_hash64(ring_seed, app, user) % shard_count.
//                   shard_count is fixed for the lifetime of a deployment,
//                   so this mapping never moves; only ownership does.
//   shard -> group  a consistent-hash ring: each group projects kVnodes
//                   virtual points onto the u64 ring (hashed from the
//                   group's label — its smallest member id, which is stable
//                   under membership of OTHER groups), and a shard lands on
//                   the first group point at or clockwise after the shard's
//                   own ring point. Adding a group therefore only MOVES
//                   shards onto the new group, and removing one only moves
//                   that group's shards elsewhere — the monotonicity the
//                   property tests pin, and the reason a rebalance hands off
//                   O(moved shards) state instead of reshuffling everything.
//
// Maps are versioned by `epoch`. During a rebalance two epochs coexist:
// reads AND writes stay routed by the old epoch until the handoff commits
// (catch-up-then-flip — the kumofs read/write-space discipline collapsed to
// its safe end state), so no key ever has two active owners. Distribution
// and state transfer travel as frozen wire messages (ShardMapAnnounce,
// ShardHandoffBegin/Chunk/Done — docs/WIRE_FORMAT.md).
//
// This library depends only on util/ — proto/, runtime/, and the tools all
// layer on top of it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/ids.hpp"

namespace wan::shard {

/// Seed of the default placement ring. Pinned: persisted placements and wire
/// frames derive from it (see stable_hash64 in util/hash.hpp).
inline constexpr std::uint64_t kDefaultRingSeed = 0x5741'4e53'4841'5244ULL;

/// Virtual points each group projects onto the ring. More vnodes = smoother
/// shard balance between groups; 64 keeps the max/min shard-count ratio
/// under ~1.3 for the group counts this system runs (the balance test pins
/// the same bound for the key->shard hash itself).
inline constexpr std::uint32_t kVnodesPerGroup = 64;

class ShardMap {
 public:
  /// An empty (epoch-0) map: no groups, trivially unsharded.
  ShardMap() = default;

  /// The whole key space owned by one group — the unsharded deployments
  /// every pre-shard test runs, expressed in the sharded vocabulary.
  static ShardMap single_group(std::vector<HostId> managers,
                               std::uint64_t epoch = 1);

  /// Consistent-hash placement: `shard_count` logical shards distributed
  /// over `groups` by the ring. Groups must be disjoint and non-empty.
  static ShardMap ring(std::vector<std::vector<HostId>> groups,
                       std::uint32_t shard_count, std::uint64_t epoch,
                       std::uint64_t ring_seed = kDefaultRingSeed);

  /// Explicit placement: `owner[s]` names the owning group of shard s.
  /// Deterministic deployments (wan_node's multi-process script) use this so
  /// scripted duties don't depend on hash values.
  static ShardMap assigned(std::vector<std::vector<HostId>> groups,
                           std::vector<std::uint32_t> owner,
                           std::uint64_t epoch,
                           std::uint64_t ring_seed = kDefaultRingSeed);

  /// Non-aborting assigned(): nullopt instead of WAN_REQUIRE on structural
  /// invalidity. The wire decoder builds maps from untrusted bytes through
  /// this — a hostile ShardMapAnnounce must surface as a malformed-frame
  /// drop, never a process abort.
  static std::optional<ShardMap> checked(
      std::vector<std::vector<HostId>> groups, std::vector<std::uint32_t> owner,
      std::uint64_t epoch, std::uint64_t ring_seed = kDefaultRingSeed);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return shard_count_;
  }
  [[nodiscard]] std::uint64_t ring_seed() const noexcept { return ring_seed_; }
  [[nodiscard]] const std::vector<std::vector<HostId>>& groups()
      const noexcept {
    return groups_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& owners() const noexcept {
    return owner_;
  }

  /// Empty or single-group: shard routing degenerates to the flat protocol.
  [[nodiscard]] bool trivial() const noexcept { return groups_.size() <= 1; }
  [[nodiscard]] bool empty() const noexcept { return groups_.empty(); }

  [[nodiscard]] std::uint32_t shard_of(AppId app, UserId user) const;
  [[nodiscard]] std::uint32_t group_of_shard(std::uint32_t shard) const;
  [[nodiscard]] const std::vector<HostId>& group(std::uint32_t g) const;
  /// The manager group that owns (app, user) — where a host sends its
  /// queries and an admin routes updates.
  [[nodiscard]] const std::vector<HostId>& group_for(AppId app,
                                                    UserId user) const;

  /// The group a manager belongs to, or nullopt for a non-member.
  [[nodiscard]] std::optional<std::uint32_t> group_index_of(
      HostId manager) const;
  /// Does `manager`'s group own the shard / the key?
  [[nodiscard]] bool owns_shard(HostId manager, std::uint32_t shard) const;
  [[nodiscard]] bool owns(HostId manager, AppId app, UserId user) const;

  [[nodiscard]] std::vector<std::uint32_t> shards_of_group(
      std::uint32_t g) const;
  /// Flat union of every group — the legacy Managers(A) view (revocation
  /// sender validation, name-service compatibility).
  [[nodiscard]] std::vector<HostId> all_managers() const;

  /// Structural sanity: non-empty disjoint groups, one owner per shard, all
  /// owner indices in range. An empty map is valid.
  [[nodiscard]] bool valid() const;

  friend bool operator==(const ShardMap&, const ShardMap&) = default;

 private:
  std::uint64_t epoch_ = 0;
  std::uint32_t shard_count_ = 0;
  std::uint64_t ring_seed_ = kDefaultRingSeed;
  std::vector<std::vector<HostId>> groups_;
  std::vector<std::uint32_t> owner_;  ///< shard index -> group index
};

}  // namespace wan::shard
