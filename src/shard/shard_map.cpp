#include "shard/shard_map.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace wan::shard {

namespace {

/// Domain separators keep the three hash uses (group vnodes, shard ring
/// points, key->shard) from ever colliding by construction.
constexpr std::uint64_t kGroupDomain = 0x67;  // 'g'
constexpr std::uint64_t kShardDomain = 0x73;  // 's'
constexpr std::uint64_t kKeyDomain = 0x6b;    // 'k'

/// A group's ring label: its smallest member id. Stable under changes to
/// OTHER groups — the property monotonicity rests on.
std::uint64_t group_label(const std::vector<HostId>& group) {
  WAN_REQUIRE(!group.empty());
  std::uint64_t label = group.front().value();
  for (const HostId m : group) {
    label = std::min<std::uint64_t>(label, m.value());
  }
  return label;
}

}  // namespace

ShardMap ShardMap::single_group(std::vector<HostId> managers,
                                std::uint64_t epoch) {
  WAN_REQUIRE(!managers.empty());
  ShardMap map;
  map.epoch_ = epoch;
  map.shard_count_ = 1;
  map.groups_.push_back(std::move(managers));
  map.owner_.assign(1, 0);
  return map;
}

ShardMap ShardMap::ring(std::vector<std::vector<HostId>> groups,
                        std::uint32_t shard_count, std::uint64_t epoch,
                        std::uint64_t ring_seed) {
  WAN_REQUIRE(!groups.empty());
  WAN_REQUIRE(shard_count >= 1);
  ShardMap map;
  map.epoch_ = epoch;
  map.shard_count_ = shard_count;
  map.ring_seed_ = ring_seed;
  map.groups_ = std::move(groups);

  // Project every group's vnodes onto the ring. Ties (astronomically rare)
  // break toward the smaller label so placement is total-order deterministic.
  struct Point {
    std::uint64_t at;
    std::uint64_t label;
    std::uint32_t group;
  };
  std::vector<Point> points;
  points.reserve(map.groups_.size() * kVnodesPerGroup);
  for (std::uint32_t g = 0; g < map.groups_.size(); ++g) {
    const std::uint64_t label = group_label(map.groups_[g]);
    for (std::uint32_t v = 0; v < kVnodesPerGroup; ++v) {
      points.push_back(
          {stable_hash64(ring_seed ^ kGroupDomain, label, v), label, g});
    }
  }
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.at != b.at ? a.at < b.at : a.label < b.label;
  });

  map.owner_.resize(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    const std::uint64_t at = stable_hash64(ring_seed ^ kShardDomain, s);
    // First point at or clockwise after the shard's position; wrap to the
    // ring's first point past the top.
    auto it = std::lower_bound(
        points.begin(), points.end(), at,
        [](const Point& p, std::uint64_t key) { return p.at < key; });
    if (it == points.end()) it = points.begin();
    map.owner_[s] = it->group;
  }
  return map;
}

ShardMap ShardMap::assigned(std::vector<std::vector<HostId>> groups,
                            std::vector<std::uint32_t> owner,
                            std::uint64_t epoch, std::uint64_t ring_seed) {
  WAN_REQUIRE(!groups.empty());
  WAN_REQUIRE(!owner.empty());
  ShardMap map;
  map.epoch_ = epoch;
  map.shard_count_ = static_cast<std::uint32_t>(owner.size());
  map.ring_seed_ = ring_seed;
  map.groups_ = std::move(groups);
  map.owner_ = std::move(owner);
  WAN_REQUIRE(map.valid());
  return map;
}

std::optional<ShardMap> ShardMap::checked(
    std::vector<std::vector<HostId>> groups, std::vector<std::uint32_t> owner,
    std::uint64_t epoch, std::uint64_t ring_seed) {
  ShardMap map;
  map.epoch_ = epoch;
  map.shard_count_ = static_cast<std::uint32_t>(owner.size());
  map.ring_seed_ = ring_seed;
  map.groups_ = std::move(groups);
  map.owner_ = std::move(owner);
  if (!map.valid() || map.empty()) return std::nullopt;
  return map;
}

std::uint32_t ShardMap::shard_of(AppId app, UserId user) const {
  WAN_REQUIRE(shard_count_ >= 1);
  return static_cast<std::uint32_t>(
      stable_hash64(ring_seed_ ^ kKeyDomain, app.value(), user.value()) %
      shard_count_);
}

std::uint32_t ShardMap::group_of_shard(std::uint32_t shard) const {
  WAN_REQUIRE(shard < owner_.size());
  return owner_[shard];
}

const std::vector<HostId>& ShardMap::group(std::uint32_t g) const {
  WAN_REQUIRE(g < groups_.size());
  return groups_[g];
}

const std::vector<HostId>& ShardMap::group_for(AppId app, UserId user) const {
  return group(group_of_shard(shard_of(app, user)));
}

std::optional<std::uint32_t> ShardMap::group_index_of(HostId manager) const {
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    for (const HostId m : groups_[g]) {
      if (m == manager) return g;
    }
  }
  return std::nullopt;
}

bool ShardMap::owns_shard(HostId manager, std::uint32_t shard) const {
  const auto g = group_index_of(manager);
  return g.has_value() && *g == group_of_shard(shard);
}

bool ShardMap::owns(HostId manager, AppId app, UserId user) const {
  return owns_shard(manager, shard_of(app, user));
}

std::vector<std::uint32_t> ShardMap::shards_of_group(std::uint32_t g) const {
  std::vector<std::uint32_t> shards;
  for (std::uint32_t s = 0; s < owner_.size(); ++s) {
    if (owner_[s] == g) shards.push_back(s);
  }
  return shards;
}

std::vector<HostId> ShardMap::all_managers() const {
  std::vector<HostId> all;
  for (const auto& g : groups_) all.insert(all.end(), g.begin(), g.end());
  return all;
}

bool ShardMap::valid() const {
  if (groups_.empty()) return owner_.empty() && shard_count_ == 0;
  if (owner_.size() != shard_count_ || shard_count_ == 0) return false;
  std::set<std::uint64_t> seen;
  for (const auto& g : groups_) {
    if (g.empty()) return false;
    for (const HostId m : g) {
      if (!m.valid() || !seen.insert(m.value()).second) return false;
    }
  }
  for (const std::uint32_t g : owner_) {
    if (g >= groups_.size()) return false;
  }
  return true;
}

}  // namespace wan::shard
