#include "acl/cache.hpp"

#include <algorithm>

namespace wan::acl {

std::optional<CacheEntry> AclCache::lookup(UserId user, clk::LocalTime now) {
  const auto it = entries_.find(user);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (now >= it->second.limit) {
    ++stats_.expired;
    entries_.erase(it);
    return std::nullopt;
  }
  ++stats_.hits;
  it->second.last_access = now;
  return it->second;
}

std::optional<CacheEntry> AclCache::peek(UserId user) const {
  const auto it = entries_.find(user);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void AclCache::insert(UserId user, RightSet rights, clk::LocalTime limit,
                      Version version, clk::LocalTime now) {
  ++stats_.inserts;
  entries_[user] = CacheEntry{rights, limit, version, now};
}

void AclCache::remove_on_revoke(UserId user) {
  if (entries_.erase(user) > 0) ++stats_.revoke_flushes;
}

std::size_t AclCache::sweep(clk::LocalTime now, sim::Duration idle_limit) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const CacheEntry& e = it->second;
    if (now >= e.limit) {
      ++stats_.expired;
      it = entries_.erase(it);
      ++removed;
    } else if (now - e.last_access >= idle_limit) {
      ++stats_.idle_evictions;
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<UserId> AclCache::cached_users() const {
  std::vector<UserId> out;
  out.reserve(entries_.size());
  for (const auto& [user, _] : entries_) out.push_back(user);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wan::acl
