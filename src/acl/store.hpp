// Authoritative access-control list, as held by managers.
//
// One AclStore per (manager, application). State is a last-writer-wins
// register per (user, right): {granted?, version}. The register formulation
// is what makes every replication path in the system convergent — applying
// the same set of updates in any order yields the same store, which the
// property tests assert.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "acl/rights.hpp"
#include "acl/version.hpp"
#include "util/ids.hpp"

namespace wan::acl {

/// The two manager operations from §2.3.
enum class Op : std::uint8_t { kAdd, kRevoke };

[[nodiscard]] constexpr const char* to_cstring(Op op) noexcept {
  return op == Op::kAdd ? "Add" : "Revoke";
}

/// One versioned update to a single (user, right) register. This is both the
/// wire format of manager dissemination and the unit of anti-entropy sync.
struct AclUpdate {
  UserId user{};
  Right right = Right::kUse;
  Op op = Op::kAdd;
  Version version{};

  bool operator==(const AclUpdate&) const = default;
};

/// State of one (user, right) register.
struct RegisterState {
  bool granted = false;
  Version version{};
};

class AclStore {
 public:
  /// Applies an update; returns true if it changed the register (i.e. its
  /// version was strictly newer than the stored one). Stale updates are
  /// ignored — idempotent, commutative, associative.
  bool apply(const AclUpdate& update);

  /// Does `user` currently hold `right`?
  [[nodiscard]] bool check(UserId user, Right right) const;

  /// All rights currently granted to `user`.
  [[nodiscard]] RightSet rights_of(UserId user) const;

  /// Register state, if the (user,right) register was ever written.
  [[nodiscard]] std::optional<RegisterState> state(UserId user, Right right) const;

  /// The freshest version across the whole store — used by managers to pick
  /// counters for new updates that dominate everything they have seen.
  [[nodiscard]] Version max_version() const noexcept { return max_version_; }

  /// Serializes every written register as an update (for recovery sync and
  /// anti-entropy). Deterministic order (by user id, then right).
  [[nodiscard]] std::vector<AclUpdate> snapshot() const;

  /// Merges a snapshot; returns the number of registers that changed.
  std::size_t merge(const std::vector<AclUpdate>& updates);

  /// snapshot() restricted to users for which `keep` returns true — the
  /// shard-slice extraction used by scoped recovery sync and ownership
  /// handoff. Same deterministic order as snapshot().
  [[nodiscard]] std::vector<AclUpdate> snapshot_if(
      const std::function<bool(UserId)>& keep) const;

  /// Drops every register of users for which `drop` returns true (an old
  /// owner shedding a moved shard slice). Returns users erased. max_version()
  /// is deliberately left standing: version counters only ever need to
  /// dominate what this store has seen, and forgetting the floor could let a
  /// later local issue mint a version that loses to a transferred one.
  std::size_t erase_users_if(const std::function<bool(UserId)>& drop);

  /// Users with at least one granted right.
  [[nodiscard]] std::vector<UserId> granted_users() const;

  [[nodiscard]] std::size_t register_count() const noexcept;

 private:
  struct UserRegisters {
    RegisterState use;
    RegisterState manage;
  };
  static const RegisterState& reg_of(const UserRegisters& u, Right r) noexcept {
    return r == Right::kUse ? u.use : u.manage;
  }
  static RegisterState& reg_of(UserRegisters& u, Right r) noexcept {
    return r == Right::kUse ? u.use : u.manage;
  }

  std::unordered_map<UserId, UserRegisters> users_;
  Version max_version_{};
};

}  // namespace wan::acl
