// Access rights.
//
// The paper restricts itself to two rights: "use" (may invoke the
// application) and "manage" (may change the application's access rights).
// RightSet is a small bitmask so an ACL entry can carry both.
#pragma once

#include <cstdint>
#include <string>

namespace wan::acl {

enum class Right : std::uint8_t {
  kUse = 1u << 0,
  kManage = 1u << 1,
};

[[nodiscard]] constexpr const char* to_cstring(Right r) noexcept {
  return r == Right::kUse ? "use" : "manage";
}

/// A set of rights; value-semantic bitmask.
class RightSet {
 public:
  constexpr RightSet() noexcept = default;
  constexpr explicit RightSet(Right r) noexcept : bits_(static_cast<std::uint8_t>(r)) {}

  [[nodiscard]] constexpr bool has(Right r) const noexcept {
    return (bits_ & static_cast<std::uint8_t>(r)) != 0;
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return bits_ == 0; }

  constexpr RightSet& add(Right r) noexcept {
    bits_ |= static_cast<std::uint8_t>(r);
    return *this;
  }
  constexpr RightSet& remove(Right r) noexcept {
    bits_ &= static_cast<std::uint8_t>(~static_cast<std::uint8_t>(r));
    return *this;
  }

  [[nodiscard]] static constexpr RightSet both() noexcept {
    RightSet s;
    s.add(Right::kUse).add(Right::kManage);
    return s;
  }

  constexpr bool operator==(const RightSet&) const noexcept = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::uint8_t bits_ = 0;
};

}  // namespace wan::acl
