#include "acl/rights.hpp"

namespace wan::acl {

std::string RightSet::to_string() const {
  if (empty()) return "{}";
  std::string out = "{";
  if (has(Right::kUse)) out += "use";
  if (has(Right::kManage)) {
    if (out.size() > 1) out += ",";
    out += "manage";
  }
  out += "}";
  return out;
}

}  // namespace wan::acl
