#include "acl/store.hpp"

#include <algorithm>

namespace wan::acl {

bool AclStore::apply(const AclUpdate& update) {
  if (update.version > max_version_) max_version_ = update.version;
  RegisterState& reg = reg_of(users_[update.user], update.right);
  if (!(update.version > reg.version)) return false;
  reg.version = update.version;
  reg.granted = update.op == Op::kAdd;
  return true;
}

bool AclStore::check(UserId user, Right right) const {
  const auto it = users_.find(user);
  if (it == users_.end()) return false;
  return reg_of(it->second, right).granted;
}

RightSet AclStore::rights_of(UserId user) const {
  RightSet set;
  const auto it = users_.find(user);
  if (it == users_.end()) return set;
  if (it->second.use.granted) set.add(Right::kUse);
  if (it->second.manage.granted) set.add(Right::kManage);
  return set;
}

std::optional<RegisterState> AclStore::state(UserId user, Right right) const {
  const auto it = users_.find(user);
  if (it == users_.end()) return std::nullopt;
  const RegisterState& reg = reg_of(it->second, right);
  if (reg.version.initial()) return std::nullopt;
  return reg;
}

std::vector<AclUpdate> AclStore::snapshot() const {
  std::vector<AclUpdate> out;
  out.reserve(users_.size() * 2);
  for (const auto& [user, regs] : users_) {
    for (const Right r : {Right::kUse, Right::kManage}) {
      const RegisterState& reg = reg_of(regs, r);
      if (reg.version.initial()) continue;
      out.push_back(AclUpdate{user, r, reg.granted ? Op::kAdd : Op::kRevoke,
                              reg.version});
    }
  }
  std::sort(out.begin(), out.end(), [](const AclUpdate& a, const AclUpdate& b) {
    if (a.user != b.user) return a.user < b.user;
    return static_cast<int>(a.right) < static_cast<int>(b.right);
  });
  return out;
}

std::vector<AclUpdate> AclStore::snapshot_if(
    const std::function<bool(UserId)>& keep) const {
  std::vector<AclUpdate> out;
  for (const auto& [user, regs] : users_) {
    if (!keep(user)) continue;
    for (const Right r : {Right::kUse, Right::kManage}) {
      const RegisterState& reg = reg_of(regs, r);
      if (reg.version.initial()) continue;
      out.push_back(AclUpdate{user, r, reg.granted ? Op::kAdd : Op::kRevoke,
                              reg.version});
    }
  }
  std::sort(out.begin(), out.end(), [](const AclUpdate& a, const AclUpdate& b) {
    if (a.user != b.user) return a.user < b.user;
    return static_cast<int>(a.right) < static_cast<int>(b.right);
  });
  return out;
}

std::size_t AclStore::erase_users_if(const std::function<bool(UserId)>& drop) {
  std::size_t erased = 0;
  for (auto it = users_.begin(); it != users_.end();) {
    if (drop(it->first)) {
      it = users_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

std::size_t AclStore::merge(const std::vector<AclUpdate>& updates) {
  std::size_t changed = 0;
  for (const AclUpdate& u : updates) {
    if (apply(u)) ++changed;
  }
  return changed;
}

std::vector<UserId> AclStore::granted_users() const {
  std::vector<UserId> out;
  for (const auto& [user, regs] : users_) {
    if (regs.use.granted || regs.manage.granted) out.push_back(user);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t AclStore::register_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [user, regs] : users_) {
    if (!regs.use.version.initial()) ++n;
    if (!regs.manage.version.initial()) ++n;
  }
  return n;
}

}  // namespace wan::acl
