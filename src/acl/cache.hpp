// Host-side ACL cache — the paper's ACL_cache(A).
//
// Holds positively-granted rights for a subset of users, each entry stamped
// with an expiration instant on the *local* clock (extended protocol, Fig. 3).
// Entries vanish three ways, matching the paper:
//   1. explicit flush when a Revoke arrives from a manager (Fig. 2),
//   2. lazy expiry when looked up past their timestamp,
//   3. a periodic sweep that also evicts entries idle longer than a
//      configurable limit ("eliminate entries of users who have not accessed
//      the application recently, which can save memory", §3.2).
//
// Only grants are cached. Denials are never cached: a cached denial could
// outlive a subsequent Add and has no expiry story in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "acl/rights.hpp"
#include "acl/version.hpp"
#include "clock/local_clock.hpp"
#include "util/ids.hpp"

namespace wan::acl {

/// One cached grant: the paper's tuple (U, limit) plus the rights granted,
/// the update version it was derived from, and bookkeeping for idle eviction.
struct CacheEntry {
  RightSet rights;
  clk::LocalTime limit{};      ///< expiration timestamp, local clock
  Version version{};           ///< freshest manager version backing the entry
  clk::LocalTime last_access{};
};

/// Counters exported to the metrics layer.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;         ///< user absent
  std::uint64_t expired = 0;        ///< present but past limit at lookup
  std::uint64_t revoke_flushes = 0; ///< removed by Revoke message
  std::uint64_t idle_evictions = 0; ///< removed by the periodic sweep
  std::uint64_t inserts = 0;
};

class AclCache {
 public:
  /// lookup(ACL_cache(A), U) with the Fig. 3 expiry check folded in: returns
  /// the live entry, or nullopt after erasing an expired/absent one.
  std::optional<CacheEntry> lookup(UserId user, clk::LocalTime now);

  /// Peeks without expiry processing or stats (tests, diagnostics).
  [[nodiscard]] std::optional<CacheEntry> peek(UserId user) const;

  /// ACL_cache(A) += (U, rights, now + te - delta). Overwrites any existing
  /// entry for the user — the new response is fresher by construction.
  void insert(UserId user, RightSet rights, clk::LocalTime limit, Version version,
              clk::LocalTime now);

  /// ACL_cache(A) -= U (a no-op if absent, as the paper specifies).
  void remove_on_revoke(UserId user);

  /// Periodic sweep: drops expired entries and entries idle >= idle_limit.
  /// Returns the number of entries removed.
  std::size_t sweep(clk::LocalTime now, sim::Duration idle_limit);

  /// Drops everything (host recovery re-initializes the cache, §3.4).
  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Users currently cached (deterministic order; for tests).
  [[nodiscard]] std::vector<UserId> cached_users() const;

 private:
  std::unordered_map<UserId, CacheEntry> entries_;
  CacheStats stats_;
};

}  // namespace wan::acl
