// Versioning of access-control updates.
//
// The paper assumes manager updates can be ordered ("the initiating manager
// transmits a message to all other managers", later merged after recovery).
// We make the ordering concrete: every update carries a Lamport-style version
// (counter, issuing-manager id). Counters grow monotonically per (user,right)
// register; ties — impossible between updates to the same register issued by
// the same manager — break on manager id, giving a total order and therefore
// convergent last-writer-wins merges everywhere (quorum reads pick the
// freshest response, recovering managers sync by merge, and the eventual-
// consistency baseline's anti-entropy uses the same merge).
#pragma once

#include <compare>
#include <cstdint>

#include "util/ids.hpp"

namespace wan::acl {

struct Version {
  std::uint64_t counter = 0;  ///< 0 == "never written"
  HostId origin{};            ///< manager that issued the update

  friend constexpr auto operator<=>(const Version& a, const Version& b) noexcept {
    if (auto c = a.counter <=> b.counter; c != 0) return c;
    return a.origin.value() <=> b.origin.value();
  }
  friend constexpr bool operator==(const Version&, const Version&) noexcept = default;

  [[nodiscard]] constexpr bool initial() const noexcept { return counter == 0; }

  /// The successor version issued by `self`, given the freshest version seen.
  [[nodiscard]] constexpr Version next(HostId self) const noexcept {
    return Version{counter + 1, self};
  }
};

}  // namespace wan::acl
