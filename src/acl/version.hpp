// Versioning of access-control updates.
//
// The paper assumes manager updates can be ordered ("the initiating manager
// transmits a message to all other managers", later merged after recovery).
// We make the ordering concrete: every update carries a Lamport-style version
// (counter, issuing-manager id, issue stamp). Counters grow monotonically per
// (user,right) register; counter ties break on manager id and then on the
// issue stamp, giving a total order and therefore convergent last-writer-wins
// merges everywhere (quorum reads pick the freshest response, recovering
// managers sync by merge, and the eventual-consistency baseline's
// anti-entropy uses the same merge).
//
// The issue stamp exists because (counter, origin) alone is NOT unique across
// crashes: a manager whose update was only partially disseminated can crash,
// re-sync from a check quorum that never saw that update, and then mint the
// same counter again for a *different* operation — two distinct updates with
// equal versions, which LWW can never reconcile (found by the chaos harness;
// see tests/test_proto_recovery.cpp VersionReissueAfterCrashConverges). The
// stamp is taken from the issuer's local clock (monotone across crashes, by
// the paper's own clock-rate bound), so the reissue compares strictly newer
// and the merge converges on it.
#pragma once

#include <compare>
#include <cstdint>

#include "util/ids.hpp"

namespace wan::acl {

struct Version {
  std::uint64_t counter = 0;  ///< 0 == "never written"
  HostId origin{};            ///< manager that issued the update
  std::int64_t stamp = 0;     ///< issuer-local issue instant (crash uniqueness)

  friend constexpr auto operator<=>(const Version& a, const Version& b) noexcept {
    if (auto c = a.counter <=> b.counter; c != 0) return c;
    if (auto c = a.origin.value() <=> b.origin.value(); c != 0) return c;
    return a.stamp <=> b.stamp;
  }
  friend constexpr bool operator==(const Version&, const Version&) noexcept = default;

  [[nodiscard]] constexpr bool initial() const noexcept { return counter == 0; }

  /// The successor version issued by `self`, given the freshest version seen.
  [[nodiscard]] constexpr Version next(HostId self,
                                       std::int64_t issue_stamp = 0) const noexcept {
    return Version{counter + 1, self, issue_stamp};
  }
};

}  // namespace wan::acl
