// Scenario: a fully wired simulated deployment.
//
// Builds the Figure 1 world — M manager hosts, H application hosts, U users,
// one application, a network with the chosen partition model, drifting
// clocks, the trusted name service and key registry — and wires every
// access decision into a metrics Collector backed by a GroundTruth timeline.
// Tests, benches, and examples all start from one of these.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "auth/credentials.hpp"
#include "metrics/collector.hpp"
#include "metrics/ground_truth.hpp"
#include "nameservice/name_service.hpp"
#include "net/network.hpp"
#include "proto/host.hpp"
#include "proto/user_agent.hpp"
#include "runtime/sim_env.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace wan::workload {

struct ScenarioConfig {
  int managers = 3;
  int app_hosts = 5;
  int users = 20;
  proto::ProtocolConfig protocol;

  /// Sharded deployment: managers split into this many equal disjoint groups
  /// (managers % shard_groups == 0), the key space into shard_count logical
  /// shards placed by the consistent-hash ring. 1 = the flat paper protocol.
  /// check_quorum then applies WITHIN each group, so it must not exceed the
  /// group size.
  int shard_groups = 1;
  /// 0 = one shard per group.
  std::uint32_t shard_count = 0;

  enum class Partitions { kNone, kPairwise, kStorms, kScripted };
  Partitions partitions = Partitions::kNone;
  double pi = 0.1;                                     ///< kPairwise
  sim::Duration mean_down = sim::Duration::seconds(30);///< kPairwise
  net::ComponentStormPartitions::Config storm;         ///< kStorms

  /// Latency: constant (deterministic tests) or base+exponential tail (WAN).
  bool constant_latency = false;
  sim::Duration const_latency = sim::Duration::millis(50);
  sim::Duration latency_base = sim::Duration::millis(40);
  sim::Duration latency_tail = sim::Duration::millis(20);
  double loss = 0.0;
  double duplicate = 0.0;  ///< P(datagram delivered twice); chaos harness knob

  /// Sample per-host clocks within the protocol's bound b (perfect clocks
  /// when false — deterministic tests).
  bool drifting_clocks = false;

  std::uint64_t seed = 1;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// The single application under test.
  [[nodiscard]] AppId app() const noexcept { return app_; }

  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] net::Network& network() noexcept { return *net_; }
  /// The runtime seam every protocol module in this scenario runs on.
  [[nodiscard]] runtime::Env& env() noexcept { return *env_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  [[nodiscard]] int manager_count() const noexcept;
  [[nodiscard]] int host_count() const noexcept;
  [[nodiscard]] int user_count() const noexcept;

  [[nodiscard]] proto::ManagerHost& manager(int i);
  [[nodiscard]] proto::AppHost& host(int i);
  [[nodiscard]] UserId user(int i) const;
  [[nodiscard]] proto::UserAgent& agent(int i);
  /// The user's key pair (tests craft raw signed messages with it).
  [[nodiscard]] const auth::KeyPair& user_keys(int i) const;
  [[nodiscard]] const std::vector<HostId>& manager_ids() const noexcept {
    return manager_ids_;
  }
  [[nodiscard]] const std::vector<HostId>& host_ids() const noexcept {
    return host_ids_;
  }

  /// Issues Add(app, user, use) from manager `mgr` (-1 = round-robin over UP
  /// managers); the ground truth records grants at issue and revokes at their
  /// quorum instant. Returns false (and records nothing) if the chosen — or,
  /// for round-robin, every — manager is crashed.
  bool grant(UserId user, int mgr = -1, std::function<void()> on_quorum = nullptr);
  /// Issues Revoke(app, user, use), same conventions.
  bool revoke(UserId user, int mgr = -1, std::function<void()> on_quorum = nullptr);

  /// An access check at host `host_idx`; decisions flow into the collector.
  void check(int host_idx, UserId user, proto::CheckCallback done = nullptr);

  [[nodiscard]] metrics::GroundTruth& truth() noexcept { return truth_; }
  [[nodiscard]] metrics::Collector& collector() noexcept { return *collector_; }

  /// The effective configuration (after validation).
  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }

  /// The trusted name service (manager-set reconfiguration goes through it).
  [[nodiscard]] ns::NameService& names() noexcept { return names_; }

  /// The scenario's current routing map: empty when flat, otherwise the map
  /// grant/revoke routing and the name service publish. Rebalance drivers
  /// read groups and ownership from here.
  [[nodiscard]] const shard::ShardMap& shard_map() const noexcept {
    return shard_map_;
  }

  /// Publishes a committed map to the routing layers this scenario owns: the
  /// name service, every app host's controller override, and grant/revoke
  /// routing. Managers are NOT touched — the rebalance driver walks them
  /// through begin_shard_handoff / commit_shard_map itself.
  void publish_shard_map(shard::ShardMap map);

  /// Restricts which managers the round-robin grant/revoke path may target —
  /// the workload's view of the current Managers(app) membership. Indices are
  /// into manager(i); the set must be non-empty. Explicit-manager grant() /
  /// revoke() calls are unaffected (tests address non-members deliberately).
  void set_active_managers(const std::vector<int>& indices);

  /// The scripted partition model (only with Partitions::kScripted).
  [[nodiscard]] net::ScriptedPartitions& scripted();

  /// The same model, as its full directional interface (one-way cuts).
  [[nodiscard]] net::DirectionalPartitions& directional();

  /// Runs the simulation forward.
  void run_for(sim::Duration d) { sched_.run_for(d); }

  /// All host ids (managers + app hosts), for partition-model construction
  /// and probes.
  [[nodiscard]] std::vector<HostId> all_site_ids() const;

 private:
  bool submit(acl::Op op, UserId user, int mgr, std::function<void()> on_quorum);
  /// Whether manager(i) may accept a submit for `user` under ITS current map
  /// (each manager's own view is authoritative while a rebalance is in
  /// flight — old owners keep accepting until they commit).
  [[nodiscard]] bool manager_owns(int i, UserId user) const;

  ScenarioConfig config_;
  Rng rng_;
  sim::Scheduler sched_;
  AppId app_{1};
  ns::NameService names_;
  auth::KeyRegistry keys_;
  std::shared_ptr<net::PartitionModel> partitions_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<runtime::SimEnv> env_;
  std::vector<HostId> manager_ids_;
  std::vector<HostId> host_ids_;
  std::vector<std::unique_ptr<proto::ManagerHost>> managers_;
  std::vector<std::unique_ptr<proto::AppHost>> hosts_;
  std::vector<std::unique_ptr<proto::UserAgent>> agents_;
  std::vector<auth::KeyPair> user_keys_;
  metrics::GroundTruth truth_;
  std::unique_ptr<metrics::Collector> collector_;
  std::vector<bool> manager_active_;
  int next_mgr_ = 0;
  shard::ShardMap shard_map_;  ///< empty when flat
};

}  // namespace wan::workload
