#include "workload/driver.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace wan::workload {

Driver::Driver(Scenario& scenario, DriverConfig config, std::uint64_t seed)
    : scenario_(scenario),
      config_(config),
      rng_(seed),
      manager_timer_(scenario.env().make_timer()) {
  WAN_REQUIRE(config_.access_rate_per_host > 0.0);
  WAN_REQUIRE(config_.revoke_fraction >= 0.0 && config_.revoke_fraction <= 1.0);
  WAN_REQUIRE(config_.initially_granted >= 0.0 && config_.initially_granted <= 1.0);

  const int users = scenario_.user_count();
  user_weights_.resize(static_cast<std::size_t>(users));
  for (int i = 0; i < users; ++i) {
    user_weights_[static_cast<std::size_t>(i)] =
        config_.zipf_s <= 0.0 ? 1.0 : 1.0 / std::pow(i + 1, config_.zipf_s);
  }
  intended_granted_.assign(static_cast<std::size_t>(users), false);
  access_timers_.reserve(static_cast<std::size_t>(scenario_.host_count()));
  for (int h = 0; h < scenario_.host_count(); ++h) {
    access_timers_.emplace_back(scenario_.env().make_timer());
  }
}

bool Driver::intended_granted(int user_idx) const {
  return intended_granted_[static_cast<std::size_t>(user_idx)];
}

void Driver::start() {
  WAN_REQUIRE(!running_);
  running_ = true;

  // Initial population: grant a deterministic prefix-free random subset.
  // Each seeding grant occupies the user's in-flight slot until its quorum:
  // a later op racing a still-disseminating grant would be resolved by
  // version tie-breaks in the stores but by wall-clock order in the ground
  // truth, and the two can disagree (the grant can out-version a revoke
  // issued mid-flight). Serializing per user keeps the truth linearizable.
  const sim::TimePoint now = scenario_.env().now();
  for (int i = 0; i < scenario_.user_count(); ++i) {
    if (rng_.next_bool(config_.initially_granted)) {
      auto done = [this, i] { op_in_flight_.erase(i); };
      // Slot in before submitting: with M == 1 the quorum callback fires
      // synchronously inside grant() and must find the slot to erase.
      op_in_flight_.emplace(i, now);
      if (scenario_.grant(scenario_.user(i), -1, done)) {
        intended_granted_[static_cast<std::size_t>(i)] = true;
        ++grants_;
      } else {
        op_in_flight_.erase(i);
      }
    }
  }

  for (int h = 0; h < scenario_.host_count(); ++h) schedule_access(h);
  if (config_.manager_ops_per_second > 0.0) schedule_manager_op();
}

void Driver::stop() { running_ = false; }

int Driver::pick_user() {
  return static_cast<int>(
      weighted_pick(rng_, user_weights_.data(), user_weights_.size()));
}

void Driver::schedule_access(int host_idx) {
  const auto wait = sim::Duration::from_seconds(
      rng_.next_exponential(1.0 / config_.access_rate_per_host));
  access_timers_[static_cast<std::size_t>(host_idx)].arm(wait, [this, host_idx] {
    if (!running_) return;
    ++accesses_;
    scenario_.check(host_idx, scenario_.user(pick_user()));
    schedule_access(host_idx);
  });
}

void Driver::schedule_manager_op() {
  const auto wait = sim::Duration::from_seconds(
      rng_.next_exponential(1.0 / config_.manager_ops_per_second));
  manager_timer_.arm(wait, [this] {
    if (!running_) return;
    // One manager op per user at a time keeps the ground truth unambiguous
    // (concurrent updates to one register would make "authorized" depend on
    // version tie-breaks rather than quorum instants). Ops stranded by a
    // crashed issuer are reaped after a grace period.
    const sim::TimePoint now = scenario_.env().now();
    for (auto it = op_in_flight_.begin(); it != op_in_flight_.end();) {
      it = now - it->second >= kStuckOpLimit ? op_in_flight_.erase(it)
                                             : std::next(it);
    }
    const int user_idx = pick_user();
    if (!op_in_flight_.contains(user_idx)) {
      op_in_flight_.emplace(user_idx, now);
      const bool currently = intended_granted_[static_cast<std::size_t>(user_idx)];
      const bool do_revoke = currently && rng_.next_bool(config_.revoke_fraction);
      const bool target = currently ? !do_revoke : true;
      const UserId uid = scenario_.user(user_idx);
      auto done = [this, user_idx] { op_in_flight_.erase(user_idx); };
      if (currently && do_revoke) {
        if (scenario_.revoke(uid, -1, done)) {
          intended_granted_[static_cast<std::size_t>(user_idx)] = false;
          ++revokes_;
        } else {
          op_in_flight_.erase(user_idx);  // all managers down: op abandoned
        }
      } else if (!currently) {
        if (scenario_.grant(uid, -1, done)) {
          intended_granted_[static_cast<std::size_t>(user_idx)] = true;
          ++grants_;
        } else {
          op_in_flight_.erase(user_idx);
        }
      } else {
        (void)target;  // already granted and not revoking: no-op this tick
        op_in_flight_.erase(user_idx);
      }
    }
    schedule_manager_op();
  });
}

}  // namespace wan::workload
