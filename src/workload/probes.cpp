#include "workload/probes.hpp"

#include "util/assert.hpp"

namespace wan::workload {

QuorumProbe::QuorumProbe(Scenario& scenario, int check_quorum,
                         sim::Duration interval)
    : scenario_(scenario),
      check_quorum_(check_quorum),
      interval_(interval),
      timer_(scenario.env().make_timer()) {
  WAN_REQUIRE(check_quorum >= 1 && check_quorum <= scenario.manager_count());
  WAN_REQUIRE(interval > sim::Duration{});
}

void QuorumProbe::start() {
  timer_.arm(interval_, [this] {
    sample();
    start();
  });
}

void QuorumProbe::sample() {
  ++result_.samples;
  const auto& managers = scenario_.manager_ids();
  const int m = static_cast<int>(managers.size());
  const HostId probe_host = scenario_.host_ids().front();

  int reachable_from_host = 0;
  for (const HostId mgr : managers) {
    if (scenario_.network().reachable(probe_host, mgr)) ++reachable_from_host;
  }
  if (reachable_from_host >= check_quorum_) ++result_.check_quorum_ok;

  const HostId issuer = managers[static_cast<std::size_t>(issuer_rotate_)];
  issuer_rotate_ = (issuer_rotate_ + 1) % m;
  int reachable_peers = 0;
  for (const HostId peer : managers) {
    if (peer != issuer && scenario_.network().reachable(issuer, peer))
      ++reachable_peers;
  }
  if (reachable_peers >= m - check_quorum_) ++result_.update_quorum_ok;
}

}  // namespace wan::workload
