// Connectivity probes: the direct empirical counterpart of §4.1's PA/PS.
//
// The analytic model asks two instantaneous questions — "can this host reach
// at least C of the M managers?" and "can this manager reach at least M-C of
// its M-1 peers?" — under stationary pairwise inaccessibility Pi. The probe
// samples exactly those predicates from the live partition model at Poisson
// instants, yielding measured PA/PS columns to print beside the closed-form
// ones in Tables 1-2 and Figure 5.
//
// (The full protocol adds timeouts, retries and caching on top; benches that
// measure protocol-level availability use the Driver + Collector instead.)
#pragma once

#include <cstdint>

#include "runtime/env.hpp"
#include "workload/scenario.hpp"

namespace wan::workload {

class QuorumProbe {
 public:
  struct Result {
    std::uint64_t samples = 0;
    std::uint64_t check_quorum_ok = 0;   ///< host saw >= C managers
    std::uint64_t update_quorum_ok = 0;  ///< manager saw >= M-C peers

    [[nodiscard]] double pa() const noexcept {
      return samples == 0 ? 0.0
                          : static_cast<double>(check_quorum_ok) /
                                static_cast<double>(samples);
    }
    [[nodiscard]] double ps() const noexcept {
      return samples == 0 ? 0.0
                          : static_cast<double>(update_quorum_ok) /
                                static_cast<double>(samples);
    }
  };

  /// Probes from app host 0 (PA) and from a rotating issuing manager (PS),
  /// every `interval` of simulated time.
  QuorumProbe(Scenario& scenario, int check_quorum, sim::Duration interval);

  void start();
  void stop() { timer_.cancel(); }

  [[nodiscard]] const Result& result() const noexcept { return result_; }

 private:
  void sample();

  Scenario& scenario_;
  int check_quorum_;
  sim::Duration interval_;
  runtime::Timer timer_;
  Result result_;
  int issuer_rotate_ = 0;
};

}  // namespace wan::workload
