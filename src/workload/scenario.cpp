#include "workload/scenario.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace wan::workload {

namespace {
constexpr std::uint32_t kManagerIdBase = 0;
constexpr std::uint32_t kHostIdBase = 1000;
constexpr std::uint32_t kAgentIdBase = 100000;
}  // namespace

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  WAN_REQUIRE(config_.managers >= 1);
  WAN_REQUIRE(config_.app_hosts >= 1);
  WAN_REQUIRE(config_.users >= 1);
  config_.protocol.validate();
  WAN_REQUIRE(config_.protocol.check_quorum <= config_.managers);
  WAN_REQUIRE(config_.shard_groups >= 1);
  WAN_REQUIRE(config_.managers % config_.shard_groups == 0);
  if (config_.shard_groups > 1) {
    // Quorums run within a group under sharding.
    WAN_REQUIRE(config_.protocol.check_quorum <=
                config_.managers / config_.shard_groups);
  }

  collector_ =
      std::make_unique<metrics::Collector>(truth_, config_.protocol.Te);

  for (int i = 0; i < config_.managers; ++i)
    manager_ids_.push_back(HostId(kManagerIdBase + static_cast<std::uint32_t>(i)));
  for (int i = 0; i < config_.app_hosts; ++i)
    host_ids_.push_back(HostId(kHostIdBase + static_cast<std::uint32_t>(i)));

  // Partition models cover every site, including user-agent endpoints only
  // for the pairwise model's host list if needed; agents talk to app hosts
  // over the same fabric but the paper's analysis concerns host<->manager
  // links, so agents are left fully connected except under storms.
  std::vector<HostId> sites = all_site_ids();
  switch (config_.partitions) {
    case ScenarioConfig::Partitions::kNone:
      partitions_ = std::make_shared<net::FullConnectivity>();
      break;
    case ScenarioConfig::Partitions::kPairwise:
      partitions_ = std::make_shared<net::PairwiseMarkovPartitions>(
          sites, net::PairwiseMarkovPartitions::Config{config_.pi,
                                                       config_.mean_down});
      break;
    case ScenarioConfig::Partitions::kStorms:
      partitions_ =
          std::make_shared<net::ComponentStormPartitions>(sites, config_.storm);
      break;
    case ScenarioConfig::Partitions::kScripted:
      // The directional model is a strict superset of ScriptedPartitions, so
      // handing it out for every scripted scenario costs nothing and lets
      // tests and the chaos engine mix symmetric and one-way cuts freely.
      partitions_ = std::make_shared<net::DirectionalPartitions>();
      break;
  }

  net::Network::Config net_config;
  if (config_.constant_latency) {
    net_config.latency =
        std::make_unique<net::ConstantLatency>(config_.const_latency);
  } else {
    net_config.latency = std::make_unique<net::ExponentialTailLatency>(
        config_.latency_base, config_.latency_tail);
  }
  if (config_.loss > 0.0) {
    net_config.loss = std::make_unique<net::BernoulliLoss>(config_.loss);
  }
  net_config.duplicate = config_.duplicate;
  net_config.partitions = partitions_;
  net_ = std::make_unique<net::Network>(sched_, rng_.split(), std::move(net_config));
  env_ = std::make_unique<runtime::SimEnv>(*net_);

  names_.set_managers(app_, manager_ids_);
  if (config_.shard_groups > 1) {
    const std::size_t per = static_cast<std::size_t>(config_.managers) /
                            static_cast<std::size_t>(config_.shard_groups);
    std::vector<std::vector<HostId>> groups(
        static_cast<std::size_t>(config_.shard_groups));
    for (std::size_t i = 0; i < manager_ids_.size(); ++i) {
      groups[i / per].push_back(manager_ids_[i]);
    }
    const std::uint32_t shards =
        config_.shard_count != 0
            ? config_.shard_count
            : static_cast<std::uint32_t>(config_.shard_groups);
    shard_map_ = shard::ShardMap::ring(std::move(groups), shards, /*epoch=*/1);
    names_.set_shard_map(app_, shard_map_);
  }

  auto make_clock = [&]() {
    if (!config_.drifting_clocks) return clk::LocalClock::perfect();
    return clk::LocalClock::sample(rng_, config_.protocol.clock_bound_b);
  };

  for (const HostId id : manager_ids_) {
    managers_.push_back(std::make_unique<proto::ManagerHost>(
        id, *env_, make_clock(), config_.protocol));
    if (shard_map_.empty()) {
      managers_.back()->manager().manage_app(app_, manager_ids_);
    } else {
      // A sharded manager's Managers(A) is its own group: every quorum, sync,
      // and freeze computation runs unmodified inside it.
      const auto g = shard_map_.group_index_of(id);
      WAN_ASSERT(g.has_value());
      managers_.back()->manager().manage_app(app_, shard_map_.group(*g));
      managers_.back()->manager().set_shard_map(app_, shard_map_);
    }
  }

  for (const HostId id : host_ids_) {
    hosts_.push_back(std::make_unique<proto::AppHost>(
        id, *env_, make_clock(), names_, keys_, config_.protocol));
    auto& controller = hosts_.back()->controller();
    controller.register_app(app_, [](UserId, const std::string& payload) {
      return "ok:" + payload;  // echo application
    });
    controller.set_decision_observer(
        [this](const proto::AccessDecision& d) { collector_->observe(d); });
  }

  for (int i = 0; i < config_.users; ++i) {
    const UserId uid(static_cast<std::uint32_t>(i));
    const auth::KeyPair kp = auth::generate_keypair(rng_);
    keys_.register_user(uid, kp.public_key);
    user_keys_.push_back(kp);
    const HostId endpoint(kAgentIdBase + static_cast<std::uint32_t>(i));
    agents_.push_back(std::make_unique<proto::UserAgent>(
        endpoint, uid, kp, *env_, proto::UserAgent::Config{}));
    auto* agent = agents_.back().get();
    env_->transport().register_endpoint(
        endpoint, [agent](HostId from, const net::MessagePtr& msg) {
          agent->on_message(from, msg);
        });
  }

  net_->start();
}

Scenario::~Scenario() = default;

int Scenario::manager_count() const noexcept { return config_.managers; }
int Scenario::host_count() const noexcept { return config_.app_hosts; }
int Scenario::user_count() const noexcept { return config_.users; }

proto::ManagerHost& Scenario::manager(int i) {
  WAN_REQUIRE(i >= 0 && i < config_.managers);
  return *managers_[static_cast<std::size_t>(i)];
}

proto::AppHost& Scenario::host(int i) {
  WAN_REQUIRE(i >= 0 && i < config_.app_hosts);
  return *hosts_[static_cast<std::size_t>(i)];
}

UserId Scenario::user(int i) const {
  WAN_REQUIRE(i >= 0 && i < config_.users);
  return UserId(static_cast<std::uint32_t>(i));
}

proto::UserAgent& Scenario::agent(int i) {
  WAN_REQUIRE(i >= 0 && i < config_.users);
  return *agents_[static_cast<std::size_t>(i)];
}

const auth::KeyPair& Scenario::user_keys(int i) const {
  WAN_REQUIRE(i >= 0 && i < config_.users);
  return user_keys_[static_cast<std::size_t>(i)];
}

void Scenario::set_active_managers(const std::vector<int>& indices) {
  WAN_REQUIRE(!indices.empty());
  manager_active_.assign(static_cast<std::size_t>(config_.managers), false);
  for (const int i : indices) {
    WAN_REQUIRE(i >= 0 && i < config_.managers);
    manager_active_[static_cast<std::size_t>(i)] = true;
  }
}

bool Scenario::manager_owns(int i, UserId user) const {
  const HostId id = manager_ids_[static_cast<std::size_t>(i)];
  // The workload routes like an operator: the published map (name service)
  // must agree the manager's group owns the key. This is what keeps a
  // manager that slept through a rebalance commit — crashed at the flip,
  // recovered with the old epoch — from accepting updates its shard's real
  // owner group would never see.
  if (!shard_map_.empty() && !shard_map_.owns(id, app_, user)) return false;
  const auto* map = managers_[static_cast<std::size_t>(i)]->manager().shard_map(app_);
  return map == nullptr || map->trivial() || map->owns(id, app_, user);
}

bool Scenario::submit(acl::Op op, UserId user, int mgr,
                      std::function<void()> on_quorum) {
  if (mgr < 0) {
    // Round-robin over managers that are currently up, in the active
    // membership, and — under a shard map — in the key's owner group (a
    // crashed, departed, or non-owning site cannot accept the operation; the
    // workload moves on, like a human operator would).
    const auto active = [this](int i) {
      return manager_active_.empty() ||
             manager_active_[static_cast<std::size_t>(i)];
    };
    for (int tried = 0; tried < config_.managers; ++tried) {
      const int candidate = (next_mgr_ + tried) % config_.managers;
      if (active(candidate) &&
          managers_[static_cast<std::size_t>(candidate)]->up() &&
          manager_owns(candidate, user)) {
        mgr = candidate;
        next_mgr_ = (candidate + 1) % config_.managers;
        break;
      }
    }
    if (mgr < 0) return false;  // every eligible manager is down
  }
  WAN_REQUIRE(mgr < config_.managers);
  if (!managers_[static_cast<std::size_t>(mgr)]->up()) return false;
  // An explicitly-addressed manager that does not own the key would refuse
  // the submit; report failure instead of recording a grant that never runs.
  if (!manager_owns(mgr, user)) return false;
  auto& module = managers_[static_cast<std::size_t>(mgr)]->manager();
  const bool granted = op == acl::Op::kAdd;
  // Ground-truth timing is asymmetric on purpose: a grant makes the user
  // legitimate the moment any manager accepts it (checks may see it before
  // the update quorum completes, and allowing then is not a violation of
  // anything), while a revoke only *guarantees* exclusion from its quorum
  // instant — that is the paper's Te reference point.
  if (granted) {
    WAN_DEBUG << "truth: grant " << to_string(user) << " @submit";
    truth_.record(app_, user, acl::Right::kUse, true, sched_.now());
  }
  module.submit_update(
      app_, op, user, acl::Right::kUse,
      [this, granted, cb = std::move(on_quorum)](const proto::UpdateOutcome& o) {
        if (!granted) {
          WAN_DEBUG << "truth: revoke " << to_string(o.update.user) << " @quorum="
                    << o.quorum_at.to_seconds();
          truth_.record(o.app, o.update.user, o.update.right, false, o.quorum_at);
        }
        if (cb) cb();
      });
  return true;
}

bool Scenario::grant(UserId user, int mgr, std::function<void()> on_quorum) {
  return submit(acl::Op::kAdd, user, mgr, std::move(on_quorum));
}

bool Scenario::revoke(UserId user, int mgr, std::function<void()> on_quorum) {
  return submit(acl::Op::kRevoke, user, mgr, std::move(on_quorum));
}

void Scenario::check(int host_idx, UserId user, proto::CheckCallback done) {
  WAN_REQUIRE(host_idx >= 0 && host_idx < config_.app_hosts);
  auto& controller = hosts_[static_cast<std::size_t>(host_idx)]->controller();
  if (!controller.up()) return;  // crashed host: the check simply never runs
  controller.check_access(app_, user,
                          done ? std::move(done)
                               : [](const proto::AccessDecision&) {});
}

void Scenario::publish_shard_map(shard::ShardMap map) {
  WAN_REQUIRE(map.valid() && !map.empty());
  names_.set_shard_map(app_, map);
  for (auto& h : hosts_) h->controller().install_shard_map(app_, map);
  shard_map_ = std::move(map);
}

net::ScriptedPartitions& Scenario::scripted() {
  auto* p = dynamic_cast<net::ScriptedPartitions*>(partitions_.get());
  WAN_REQUIRE(p != nullptr);
  return *p;
}

net::DirectionalPartitions& Scenario::directional() {
  auto* p = dynamic_cast<net::DirectionalPartitions*>(partitions_.get());
  WAN_REQUIRE(p != nullptr);
  return *p;
}

std::vector<HostId> Scenario::all_site_ids() const {
  std::vector<HostId> out = manager_ids_;
  out.insert(out.end(), host_ids_.begin(), host_ids_.end());
  return out;
}

}  // namespace wan::workload
