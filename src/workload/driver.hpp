// Poisson workload driver.
//
// Generates the paper's assumed load shape: access checks arrive at each
// application host as a Poisson process (frequency "much higher" than manager
// operations), users are picked uniformly or Zipf-skewed, and a background
// manager-operation process grants/revokes users at a low rate. Every
// operation is serialized per user (at most one in-flight grant/revoke per
// user) so the ground-truth timeline is unambiguous.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "runtime/env.hpp"
#include "workload/scenario.hpp"

namespace wan::workload {

struct DriverConfig {
  double access_rate_per_host = 2.0;  ///< Poisson, checks/second/host
  double zipf_s = 0.0;                ///< 0 = uniform user popularity
  double manager_ops_per_second = 0.05;  ///< grants+revokes, whole system
  double revoke_fraction = 0.5;       ///< manager op mix
  double initially_granted = 0.5;     ///< fraction of users granted up front
};

class Driver {
 public:
  Driver(Scenario& scenario, DriverConfig config, std::uint64_t seed);

  /// Issues the initial grants and starts the arrival processes. Call once,
  /// then Scenario::run_for().
  void start();

  /// Stops generating new events (in-flight ones complete).
  void stop();

  [[nodiscard]] std::uint64_t accesses_issued() const noexcept { return accesses_; }
  [[nodiscard]] std::uint64_t grants_issued() const noexcept { return grants_; }
  [[nodiscard]] std::uint64_t revokes_issued() const noexcept { return revokes_; }

  /// Current intended authorization (what the last completed/issued op wants)
  /// — drives the grant/revoke alternation.
  [[nodiscard]] bool intended_granted(int user_idx) const;

 private:
  void schedule_access(int host_idx);
  void schedule_manager_op();
  [[nodiscard]] int pick_user();

  Scenario& scenario_;
  DriverConfig config_;
  Rng rng_;
  std::vector<double> user_weights_;
  std::vector<bool> intended_granted_;
  /// Users with a pending manager op, by issue time. An op whose issuing
  /// manager crashed mid-flight never completes; entries older than
  /// kStuckOpLimit are reaped so the user can receive operations again.
  std::unordered_map<int, sim::TimePoint> op_in_flight_;
  static constexpr sim::Duration kStuckOpLimit = sim::Duration::minutes(5);
  std::vector<runtime::Timer> access_timers_;
  runtime::Timer manager_timer_;
  bool running_ = false;
  std::uint64_t accesses_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t revokes_ = 0;
};

}  // namespace wan::workload
