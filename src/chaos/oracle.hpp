// Invariant oracles for chaos runs.
//
// The paper makes exactly one hard security promise: after a revoke obtains
// its update quorum, no access is granted anywhere later than Te. Everything
// else in the design exists to make that bound hold under partitions, crashes,
// drifting clocks, and message mangling. The oracle audits that promise — and
// the mechanisms that imply it — after EVERY executed simulator event, not
// just at run end, so a transiently-bad state is caught at the instant it
// exists:
//
//   * decision oracle     — an allow classified as a security violation by
//                           ground truth (unauthorized for a full trailing Te
//                           window) fails the run, unless it travelled the
//                           default-allow path in a run configured for the
//                           availability-first exhausted policy (Fig. 4), in
//                           which case the leak is the documented trade-off;
//   * cache TTL oracle    — no live cache entry's expiry limit may sit more
//                           than te = Te/b - delta ahead of the host's local
//                           clock (Fig. 3's insertion rule bounds it by
//                           construction; a violation means corruption);
//   * latent-entry oracle — no cache entry may still be live more than Te
//                           real time past the revoke quorum instant that
//                           made its user unauthorized (the flush + expiry
//                           machinery must have killed it by then);
//   * version oracle      — quorum intersection (C + (M-C+1) > M) means two
//                           decisions based on the same update version must
//                           agree on allow/deny; versions a Byzantine manager
//                           has answered with are exempt (the intersection
//                           argument binds no honest responder for an update
//                           still short of its quorum, and a liar may flip
//                           such a version's bit);
//   * convergence oracle  — at quiescence (run end, all faults healed, drain
//                           elapsed), member manager stores must be identical
//                           and must agree with the ground-truth timeline;
//   * freeze oracle       — in §3.3 freeze runs: a manager whose honest
//                           silence computation says "frozen" must not answer
//                           check queries; a manager may only report unfrozen
//                           while every current peer has been heard within
//                           Ti/b; and no allow may land later than the freeze
//                           strategy's tightened bound min(Te, Ti + te*b)
//                           after a revoke quorum;
//   * one-way link oracle — a message must never be delivered across a link
//                           direction the schedule has cut (audits the
//                           DirectionalPartitions plumbing end to end).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "proto/decision.hpp"
#include "proto/manager.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"
#include "workload/scenario.hpp"

namespace wan::chaos {

enum class ViolationKind : std::uint8_t {
  kSecurityDecision,    ///< allow beyond the Te bound (ground-truth class)
  kCacheTtlBound,       ///< cache entry expiry further than te ahead
  kLatentRevokedEntry,  ///< live cache entry > Te past its revoke quorum
  kQuorumConflict,      ///< same update version decided both allow and deny
  kStoreDivergence,     ///< member stores differ at quiescence
  kGroundTruthMismatch, ///< store grants a user ground truth says is revoked
  kFrozenManagerAnswered, ///< §3.3: answered a check while frozen by silence
  kFreezeBoundExceeded,   ///< allow past min(Te, Ti + te*b) in a freeze run
  kPrematureUnfreeze,     ///< reports unfrozen with a peer silent past Ti/b
  kOneWayDeliveryLeak,    ///< message delivered across a cut link direction
};

[[nodiscard]] const char* to_cstring(ViolationKind k) noexcept;

struct Violation {
  ViolationKind kind{};
  sim::TimePoint at{};          ///< simulated real time of detection
  std::uint64_t event_index = 0; ///< scheduler events executed at detection
  std::string detail;
};

/// FNV-1a 64 over the run's observable trace. Replays of the same seed must
/// produce bit-identical hashes; the runner checks exactly that.
class TraceHasher {
 public:
  void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

class InvariantOracle {
 public:
  struct Config {
    /// Run uses ExhaustedPolicy::kAllow: default-allow leaks are the paper's
    /// documented availability trade-off, not violations. Counted separately.
    bool default_allow_expected = false;
    /// Recording cap; violations past it are counted but not stored.
    std::size_t max_violations = 64;
    /// Slack for boundary comparisons (timer firing order at the instant a
    /// bound is exactly met).
    sim::Duration tolerance = sim::Duration::millis(1);
  };

  /// The oracle wires itself into `scenario` on install(); the scenario must
  /// outlive it. `hasher` (optional) receives every decision in execution
  /// order, for replay verification.
  InvariantOracle(workload::Scenario& scenario, Config config,
                  TraceHasher* hasher = nullptr);
  ~InvariantOracle();
  InvariantOracle(const InvariantOracle&) = delete;
  InvariantOracle& operator=(const InvariantOracle&) = delete;

  /// Takes over every host's decision observer (still forwarding decisions to
  /// the scenario's collector) and the scheduler's event observer.
  void install();

  /// End-of-run checks; call at quiescence. `members` are the manager indices
  /// currently in Managers(app) (store convergence only binds members).
  void final_checks(const std::vector<int>& members);

  /// One audit pass over all live caches; runs automatically after every
  /// scheduler event once installed. Public so tests can invoke it directly.
  void checkpoint();

  /// Decision entry point — the installed host observers feed this; public
  /// so oracle self-tests can present crafted decisions directly.
  void ingest(const proto::AccessDecision& d);

  /// Query-answer entry point — the installed manager response observers
  /// feed this; public so freeze-oracle self-tests can present crafted
  /// answer events directly.
  void ingest_response(int manager_idx,
                       const proto::ManagerModule::QueryAnswerEvent& ev);

  /// The engine declares which link directions the schedule has cut; any
  /// message the network then delivers from -> to is a model leak.
  void note_one_way_cut(HostId from, HostId to);
  void note_one_way_heal(HostId from, HostId to);
  void note_all_one_way_healed();

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t violation_count() const noexcept {
    return violation_count_;
  }
  [[nodiscard]] std::uint64_t decisions() const noexcept { return decisions_; }
  [[nodiscard]] std::uint64_t checkpoints() const noexcept { return checkpoints_; }
  [[nodiscard]] std::uint64_t entries_audited() const noexcept {
    return entries_audited_;
  }
  /// Default-allow leaks in a kAllow-policy run (expected, not violations).
  [[nodiscard]] std::uint64_t expected_leaks() const noexcept {
    return expected_leaks_;
  }

 private:
  void record(ViolationKind kind, std::string detail);

  workload::Scenario* scenario_;
  Config config_;
  TraceHasher* hasher_;
  bool installed_ = false;

  std::vector<Violation> violations_;
  std::uint64_t violation_count_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t entries_audited_ = 0;
  std::uint64_t expected_leaks_ = 0;

  /// (user, version counter, origin, stamp) -> allowed, for the version
  /// oracle. Initial versions (counter 0) carry no update identity; skipped.
  std::map<std::tuple<std::uint32_t, std::uint64_t, std::uint32_t,
                      std::int64_t>,
           bool>
      version_decisions_;
  /// Versions a Byzantine manager answered with (same key shape). A liar
  /// holds these versions legitimately but may flip their bit, and for an
  /// update still short of its quorum the intersection argument binds no
  /// honest responder — so equal-version agreement is only promised for
  /// versions the adversary never touched. Taint is permanent for the run.
  std::set<std::tuple<std::uint32_t, std::uint64_t, std::uint32_t,
                      std::int64_t>>
      byzantine_versions_;
  /// Dedup: a bad cache entry stays bad across many checkpoints; report once.
  std::set<std::tuple<int, std::uint32_t, std::int64_t>> reported_ttl_;
  std::set<std::tuple<int, std::uint32_t, std::int64_t>> reported_latent_;
  /// Dedup: an unfreeze contradiction persists across checkpoints until the
  /// silent peer is heard again; one report per manager per run suffices.
  std::set<int> reported_unfreeze_;
  /// Currently-cut link directions (from, to) as raw HostId values.
  std::set<std::pair<std::uint32_t, std::uint32_t>> one_way_cuts_;
};

}  // namespace wan::chaos
