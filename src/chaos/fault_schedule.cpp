#include "chaos/fault_schedule.hpp"

#include <algorithm>
#include <cstddef>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace wan::chaos {

namespace {

/// Clamp an exponential draw into [lo, hi] seconds and return it as a
/// Duration. Faults must stay well under the workload driver's 5-minute
/// stuck-op reaping limit, hence the hi caps at 120 s everywhere below.
sim::Duration exp_duration(Rng& rng, double mean_s, double lo_s, double hi_s) {
  const double s = std::clamp(rng.next_exponential(mean_s), lo_s, hi_s);
  return sim::Duration::millis(static_cast<std::int64_t>(s * 1000.0));
}

sim::Duration uniform_offset(Rng& rng, sim::Duration window) {
  const std::int64_t window_ms =
      std::max<std::int64_t>(1, window.count_nanos() / 1'000'000);
  return sim::Duration::millis(static_cast<std::int64_t>(
      rng.next_below(static_cast<std::uint64_t>(window_ms))));
}

}  // namespace

const char* to_cstring(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kSplit: return "split";
    case FaultKind::kHealSplit: return "heal-split";
    case FaultKind::kCutLink: return "cut-link";
    case FaultKind::kHealLink: return "heal-link";
    case FaultKind::kCrashManager: return "crash-manager";
    case FaultKind::kRecoverManager: return "recover-manager";
    case FaultKind::kCrashHost: return "crash-host";
    case FaultKind::kRecoverHost: return "recover-host";
    case FaultKind::kReconfigure: return "reconfigure";
    case FaultKind::kCutLinkOneWay: return "cut-link-oneway";
    case FaultKind::kHealLinkOneWay: return "heal-link-oneway";
    case FaultKind::kByzantineManager: return "byzantine-manager";
    case FaultKind::kRestoreManager: return "restore-manager";
    case FaultKind::kShardRebalance: return "shard-rebalance";
    case FaultKind::kByzantineRelay: return "byzantine-relay";
    case FaultKind::kRestoreRelay: return "restore-relay";
  }
  return "?";
}

ChaosPlan make_plan(std::uint64_t seed, sim::Duration horizon,
                    PlanOptions opts) {
  WAN_REQUIRE(horizon > sim::Duration{});
  // Stream discipline: one master RNG, forked per concern, so extending one
  // drawing site later never silently re-shapes the others for old seeds.
  Rng master(seed ^ 0x9e3779b97f4a7c15ULL);
  Rng shape = master.split();
  Rng knobs = master.split();
  Rng faults = master.split();
  Rng load = master.split();

  ChaosPlan plan;
  plan.horizon = horizon;

  // --- deployment shape ----------------------------------------------------
  const int M = static_cast<int>(shape.next_in_range(3, 5));
  const int H = static_cast<int>(shape.next_in_range(2, 4));
  const int U = static_cast<int>(shape.next_in_range(4, 8));
  plan.scenario.managers = M;
  plan.scenario.app_hosts = H;
  plan.scenario.users = U;
  plan.scenario.partitions = workload::ScenarioConfig::Partitions::kScripted;
  plan.scenario.seed = SplitMix64(seed).next();

  // --- protocol knobs ------------------------------------------------------
  auto& p = plan.scenario.protocol;
  static constexpr std::int64_t kTeChoices[] = {45, 60, 90};
  p.Te = sim::Duration::seconds(kTeChoices[knobs.next_below(3)]);
  static constexpr double kBChoices[] = {1.0, 1.02, 1.05, 1.1};
  p.clock_bound_b = kBChoices[knobs.next_below(4)];
  plan.scenario.drifting_clocks = p.clock_bound_b > 1.0;
  p.check_quorum = static_cast<int>(knobs.next_in_range(1, M));
  p.max_attempts = static_cast<int>(knobs.next_in_range(2, 3));
  p.exhausted_policy = knobs.next_bool(0.2) ? proto::ExhaustedPolicy::kAllow
                                            : proto::ExhaustedPolicy::kDeny;
  p.fanout = knobs.next_bool(0.2) ? proto::QueryFanout::kExactQuorum
                                  : proto::QueryFanout::kAll;
  if (knobs.next_bool(0.15)) {
    // Freeze strategy (§3.3): C is pinned to 1 — the whole point of the
    // heartbeat is that any single manager's answer is safe to cache.
    p.freeze_enabled = true;
    p.check_quorum = 1;
    p.Ti = p.Te / 3;
    p.heartbeat_period = sim::Duration::seconds(5);
  }
  // Short engineering timeouts: chaos runs simulate minutes, not hours.
  p.query_timeout = sim::Duration::seconds(1);
  p.name_service_ttl = sim::Duration::seconds(30);
  p.cache_sweep_period = sim::Duration::seconds(30);

  // --- ambient network adversity -------------------------------------------
  plan.scenario.loss = knobs.next_uniform(0.0, 0.05);
  plan.scenario.duplicate = knobs.next_uniform(0.0, 0.05);
  plan.scenario.latency_base =
      sim::Duration::millis(knobs.next_in_range(30, 60));
  plan.scenario.latency_tail =
      sim::Duration::millis(knobs.next_in_range(10, 30));

  // --- workload ------------------------------------------------------------
  plan.driver.access_rate_per_host = load.next_uniform(1.0, 4.0);
  plan.driver.zipf_s = load.next_bool(0.5) ? load.next_uniform(0.5, 1.2) : 0.0;
  plan.driver.manager_ops_per_second = load.next_uniform(0.05, 0.25);
  plan.driver.revoke_fraction = load.next_uniform(0.4, 0.6);
  plan.driver.initially_granted = load.next_uniform(0.3, 0.7);
  plan.driver_seed = load.next_u64();

  // --- fault schedule ------------------------------------------------------
  // Faults are injected inside the first 70% of the horizon; the tail is the
  // drain window during which every fault has healed and caches quiesce.
  const sim::Duration window = sim::Duration::nanos(
      horizon.count_nanos() / 10 * 7);
  const int sites = M + H;
  auto& ev = plan.schedule.events;

  const auto add = [&ev](sim::Duration at, FaultKind kind, int a = -1,
                         int b = -1) -> FaultEvent& {
    FaultEvent e;
    e.at = at;
    e.kind = kind;
    e.a = a;
    e.b = b;
    ev.push_back(std::move(e));
    return ev.back();
  };

  // Partition storms: split all sites into 2–3 components, heal later.
  const int storms = 1 + static_cast<int>(faults.next_below(4));
  for (int i = 0; i < storms; ++i) {
    const sim::Duration at = uniform_offset(faults, window);
    const sim::Duration dur = exp_duration(faults, 45.0, 10.0, 120.0);
    const int components = static_cast<int>(faults.next_in_range(2, 3));
    FaultEvent& split = add(at, FaultKind::kSplit);
    split.groups.assign(static_cast<std::size_t>(components), {});
    for (int s = 0; s < sites; ++s) {
      const auto g = faults.next_below(static_cast<std::uint64_t>(components));
      split.groups[static_cast<std::size_t>(g)].push_back(s);
    }
    // A component that came out empty is fine — ScriptedPartitions ignores
    // empty groups; what matters is which sites ended up co-resident.
    add(at + dur, FaultKind::kHealSplit);
  }

  // Individual link cuts between random site pairs.
  const int cuts = static_cast<int>(faults.next_below(4));
  for (int i = 0; i < cuts; ++i) {
    const sim::Duration at = uniform_offset(faults, window);
    const sim::Duration dur = exp_duration(faults, 30.0, 5.0, 90.0);
    const int a = static_cast<int>(faults.next_below(
        static_cast<std::uint64_t>(sites)));
    int b = static_cast<int>(faults.next_below(
        static_cast<std::uint64_t>(sites - 1)));
    if (b >= a) ++b;
    add(at, FaultKind::kCutLink, a, b);
    add(at + dur, FaultKind::kHealLink, a, b);
  }

  // Manager crash/recovery. At most one manager down per crash event keeps
  // the update quorum M-C+1 plausibly reachable most of the time; overlap
  // between crashes can still take two down at once, which is the point.
  const int mgr_crashes = static_cast<int>(faults.next_below(3));
  for (int i = 0; i < mgr_crashes; ++i) {
    const sim::Duration at = uniform_offset(faults, window);
    const sim::Duration dur = exp_duration(faults, 40.0, 5.0, 120.0);
    const int m = static_cast<int>(faults.next_below(
        static_cast<std::uint64_t>(M)));
    add(at, FaultKind::kCrashManager, m);
    add(at + dur, FaultKind::kRecoverManager, m);
  }

  // Application host crash/recovery (cache loss, §3.4 recovery rule).
  const int host_crashes = static_cast<int>(faults.next_below(3));
  for (int i = 0; i < host_crashes; ++i) {
    const sim::Duration at = uniform_offset(faults, window);
    const sim::Duration dur = exp_duration(faults, 40.0, 5.0, 120.0);
    const int h = static_cast<int>(faults.next_below(
        static_cast<std::uint64_t>(H)));
    add(at, FaultKind::kCrashHost, h);
    add(at + dur, FaultKind::kRecoverHost, h);
  }

  // Manager-set reconfiguration: Managers(app) becomes a random subset of
  // size in [C, M] (never below the check quorum — a smaller set would make
  // the protocol's own C > |Managers| precondition unsatisfiable).
  const int reconfigs = static_cast<int>(faults.next_below(3));
  for (int i = 0; i < reconfigs; ++i) {
    const sim::Duration at = uniform_offset(faults, window);
    const int size = static_cast<int>(
        faults.next_in_range(p.check_quorum, M));
    std::vector<int> pool;
    for (int m = 0; m < M; ++m) pool.push_back(m);
    std::vector<int> members;
    for (int k = 0; k < size; ++k) {
      const auto j = faults.next_below(pool.size());
      members.push_back(pool[j]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(j));
    }
    std::sort(members.begin(), members.end());
    FaultEvent& e = add(at, FaultKind::kReconfigure);
    e.members = std::move(members);
  }

  // --- opt-in adversities ---------------------------------------------------
  // These drawing sites come strictly AFTER every base site on the `faults`
  // stream, and are skipped entirely when the option is off, so plans for
  // historical seeds are bit-identical to what they were before the options
  // existed.

  // One-way link cuts: the a -> b direction drops while b -> a delivers.
  if (opts.asymmetric) {
    const int oneway = 1 + static_cast<int>(faults.next_below(3));
    for (int i = 0; i < oneway; ++i) {
      const sim::Duration at = uniform_offset(faults, window);
      const sim::Duration dur = exp_duration(faults, 30.0, 5.0, 90.0);
      const int a = static_cast<int>(faults.next_below(
          static_cast<std::uint64_t>(sites)));
      int b = static_cast<int>(faults.next_below(
          static_cast<std::uint64_t>(sites - 1)));
      if (b >= a) ++b;
      add(at, FaultKind::kCutLinkOneWay, a, b);
      add(at + dur, FaultKind::kHealLinkOneWay, a, b);
    }
  }

  // Byzantine managers. Freeze runs are excluded: §3.3 pins C=1, and a check
  // quorum of one cannot out-vote even a single liar — the adversary there is
  // the freeze oracle's problem, not the quorum's. For quorum runs we impose
  // the intersection precondition ourselves: with C <= M-f check responders
  // required plus f slack, any C+f responders overlap every completed update
  // quorum of M-C+1 in at least f+1 managers, so at least one honest reply
  // carries the freshest version past up to f liars.
  if (opts.byzantine && !p.freeze_enabled) {
    const int f = std::max(1, std::min(opts.byzantine_max, M - 1));
    p.check_quorum = std::max(1, std::min(p.check_quorum, M - f));
    p.byzantine_slack = f;
    std::vector<int> pool;
    for (int m = 0; m < M; ++m) pool.push_back(m);
    for (int i = 0; i < f; ++i) {
      const auto j = faults.next_below(pool.size());
      const int m = pool[j];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(j));
      const sim::Duration at = uniform_offset(faults, window);
      const sim::Duration dur = exp_duration(faults, 60.0, 10.0, 120.0);
      FaultEvent& flip = add(at, FaultKind::kByzantineManager, m);
      flip.aux = faults.next_u64();
      add(at + dur, FaultKind::kRestoreManager, m);
    }
  }

  // Sharded topology: singleton manager groups (G = M, so every shape the
  // seed can draw divides evenly; the quorum machinery inside larger groups
  // is exercised by the integration and conformance suites). C is clamped to
  // the group size and freeze stays off — §3.3's silence computation is
  // defined over group peers, and a singleton group has none. One mid-run
  // rebalance removes a random group from the map; ring monotonicity means
  // only that group's shards move, streamed live while the schedule's
  // partitions, crashes, and ambient loss do their worst.
  if (opts.sharded) {
    WAN_REQUIRE(!opts.byzantine);
    plan.scenario.shard_groups = M;
    plan.scenario.shard_count = static_cast<std::uint32_t>(4 * M);
    p.freeze_enabled = false;
    p.check_quorum = 1;
    const int leave =
        static_cast<int>(faults.next_below(static_cast<std::uint64_t>(M)));
    add(uniform_offset(faults, window), FaultKind::kShardRebalance, leave);
  }

  // Collective dissemination. Assigning the kind draws nothing; only tree
  // plans (which cannot predate this site) take extra draws, so unicast and
  // coalesced sweeps of historical seeds replay bit-identically.
  p.dissemination.kind = opts.dissemination;
  if (opts.dissemination == runtime::DisseminationKind::kTree) {
    p.dissemination.relay_width =
        static_cast<std::size_t>(faults.next_in_range(2, 4));
    const int relay =
        static_cast<int>(faults.next_below(static_cast<std::uint64_t>(H)));
    const sim::Duration at = uniform_offset(faults, window);
    const sim::Duration dur = exp_duration(faults, 60.0, 10.0, 120.0);
    add(at, FaultKind::kByzantineRelay, relay);
    add(at + dur, FaultKind::kRestoreRelay, relay);
  }

  std::stable_sort(ev.begin(), ev.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  return plan;
}

}  // namespace wan::chaos
