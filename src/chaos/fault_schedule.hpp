// Seeded fault-injection schedules.
//
// A chaos run is a deterministic function of one 64-bit seed: the seed picks
// the deployment shape (M, H, U, C), the protocol knobs (Te, b, R, policy,
// freeze), the ambient network adversity (loss, duplication, latency), the
// workload rates, and an explicit *schedule* of injected fault events —
// partition storms, link cuts, host/manager crash-recovery, and manager-set
// reconfigurations. The schedule is materialized up front as a plain vector
// so a failing run can be shrunk by re-running with subsets of the events
// (delta debugging): skipping an event never perturbs the RNG streams of the
// surviving ones, which keeps every subset run bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/env_options.hpp"
#include "sim/time.hpp"
#include "workload/driver.hpp"
#include "workload/scenario.hpp"

namespace wan::chaos {

/// One injected adversity. Site indices cover managers first (0..M-1) then
/// application hosts (M..M+H-1); the engine maps them to HostIds.
enum class FaultKind : std::uint8_t {
  kSplit,           ///< partition all sites into `groups` components
  kHealSplit,       ///< remove the component split (link cuts persist)
  kCutLink,         ///< cut the (a, b) site link
  kHealLink,        ///< heal the (a, b) site link
  kCrashManager,    ///< crash manager index a (volatile state lost)
  kRecoverManager,  ///< recover manager index a (triggers §3.4 re-sync)
  kCrashHost,       ///< crash app host index a (cache lost)
  kRecoverHost,     ///< recover app host index a
  kReconfigure,     ///< change Managers(app) to `members` (manager indices)
  kCutLinkOneWay,   ///< drop messages a -> b only (b -> a still delivers)
  kHealLinkOneWay,  ///< restore the a -> b direction
  kByzantineManager,  ///< manager index a starts lying (aux seeds its lies)
  kRestoreManager,    ///< manager index a is remediated back to honesty
  kShardRebalance,    ///< sharded runs: group index a leaves the shard map
  kByzantineRelay,    ///< tree runs: app host index a starts lying as a relay
  kRestoreRelay,      ///< app host index a is remediated back to honesty
};

[[nodiscard]] const char* to_cstring(FaultKind k) noexcept;

struct FaultEvent {
  sim::Duration at{};  ///< offset from run start
  FaultKind kind{};
  int a = -1;  ///< target site / manager / host index (kind-dependent)
  int b = -1;  ///< second link endpoint (kCutLink / kHealLink / one-way)
  std::uint64_t aux = 0;  ///< kByzantineManager: seed for the lie stream
  std::vector<std::vector<int>> groups;  ///< kSplit components (site indices)
  std::vector<int> members;              ///< kReconfigure membership
};

struct FaultSchedule {
  std::vector<FaultEvent> events;  ///< sorted by `at`, ties in program order
};

/// Everything a chaos run needs, derived deterministically from the seed.
struct ChaosPlan {
  workload::ScenarioConfig scenario;  ///< partitions == kScripted
  workload::DriverConfig driver;
  std::uint64_t driver_seed = 0;
  sim::Duration horizon{};
  FaultSchedule schedule;
};

/// Opt-in adversities layered on top of the base plan. Both default OFF so
/// historical seeds (regression corpus, CHAOS.md repro lines) keep producing
/// bit-identical plans; the extra RNG draws happen strictly AFTER every base
/// drawing site on the `faults` stream.
struct PlanOptions {
  bool byzantine = false;   ///< inject lying managers (kByzantineManager)
  int byzantine_max = 1;    ///< at most this many concurrent liars (f)
  bool asymmetric = false;  ///< inject one-way link cuts
  /// Shard the deployment into singleton manager groups (G = M, so every
  /// shape the seed draws divides evenly) and inject one mid-run
  /// kShardRebalance in which a random group leaves the map and hands its
  /// shards off live. Incompatible with `byzantine` (the liar model predates
  /// group-scoped quorums; the runner rejects the combination). Manager-set
  /// reconfiguration events become no-ops — under sharding, membership moves
  /// by groups entering/leaving the map, never by editing Managers(app).
  bool sharded = false;
  /// Revocation-dissemination strategy for the deployment (the fanout path
  /// the schedule stresses). A pure knob: selecting unicast (the default)
  /// draws nothing, so historical plans stay bit-identical. Tree plans draw
  /// extra sites — a randomized relay width plus one Byzantine-relay window
  /// (the strategy's own adversary: a relay that acks its whole group and
  /// delivers nothing, which the Te bound must absorb).
  runtime::DisseminationKind dissemination =
      runtime::DisseminationKind::kUnicast;
};

/// Builds the plan for `seed`. Fault durations are capped well under the
/// workload driver's 5-minute stuck-operation reaping limit so grant/revoke
/// operations stay serialized per user and the ground-truth timeline stays
/// unambiguous (see workload/driver.hpp).
///
/// When `opts.byzantine` is set and the seed did not pick the freeze strategy
/// (freeze pins C=1, which no slack can make lie-tolerant), the plan also
/// clamps check_quorum to at most M-f and sets byzantine_slack = f so the
/// quorum intersection argument holds; see proto/config.hpp.
[[nodiscard]] ChaosPlan make_plan(std::uint64_t seed, sim::Duration horizon,
                                  PlanOptions opts = {});

}  // namespace wan::chaos
