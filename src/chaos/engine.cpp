#include "chaos/engine.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <unordered_set>
#include <utility>

#include "proto/host.hpp"
#include "proto/manager.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "workload/driver.hpp"

namespace wan::chaos {

namespace {

/// Time to let the healed system quiesce before convergence checks: every
/// cache entry inserted during the run is dead within Te of insertion, and
/// retransmitting updates/syncs need a little headroom past that.
sim::Duration drain_window(const proto::ProtocolConfig& p) {
  return p.Te + sim::Duration::minutes(2);
}

}  // namespace

ChaosResult run_chaos(const ChaosOptions& opts) {
  ChaosPlan plan = make_plan(opts.seed, opts.horizon, opts.plan);
  const int M = plan.scenario.managers;
  const int H = plan.scenario.app_hosts;

  std::unordered_set<int> enabled;
  if (opts.restrict_events) {
    enabled.insert(opts.only_events.begin(), opts.only_events.end());
  }
  const auto event_enabled = [&](int i) {
    return !opts.restrict_events || enabled.count(i) != 0;
  };

  workload::Scenario scenario(plan.scenario);
  net::DirectionalPartitions& parts = scenario.directional();

  // Stamp protocol log lines (when a caller turned logging on) with this
  // run's simulated clock; discarded-before-format keeps the off path free.
  log::set_time_source(
      [&scenario] { return scenario.scheduler().now().to_seconds(); });
  struct TimeSourceGuard {
    ~TimeSourceGuard() { log::clear_time_source(); }
  } time_source_guard;

  // Span tracing is opt-in per run; installation is process-global, so the
  // caller guarantees no concurrent run shares it (see ChaosOptions::tracer).
  struct TracerGuard {
    explicit TracerGuard(obs::Tracer* t) : installed(t != nullptr) {
      if (installed) obs::install_tracer(t);
    }
    ~TracerGuard() {
      if (installed) obs::install_tracer(nullptr);
    }
    const bool installed;
  } tracer_guard(opts.tracer);

  TraceHasher hasher;
  hasher.mix(opts.seed);
  hasher.mix(static_cast<std::uint64_t>(M));
  hasher.mix(static_cast<std::uint64_t>(H));
  hasher.mix(static_cast<std::uint64_t>(plan.scenario.users));
  hasher.mix(static_cast<std::uint64_t>(plan.scenario.protocol.check_quorum));
  hasher.mix(static_cast<std::uint64_t>(
      plan.scenario.protocol.Te.count_nanos()));
  hasher.mix(plan.schedule.events.size());

  InvariantOracle::Config oracle_config;
  oracle_config.default_allow_expected =
      plan.scenario.protocol.exhausted_policy == proto::ExhaustedPolicy::kAllow;
  InvariantOracle oracle(scenario, oracle_config, &hasher);
  oracle.install();

  ChaosResult result;
  result.seed = opts.seed;
  result.schedule_size = plan.schedule.events.size();

  // Current Managers(app) membership, by manager index; reconfiguration
  // events rewrite it.
  std::vector<int> members;
  for (int m = 0; m < M; ++m) members.push_back(m);

  const bool sharded = plan.scenario.shard_groups > 1;

  const auto site_id = [&](int s) -> HostId {
    WAN_REQUIRE(s >= 0 && s < M + H);
    return s < M ? scenario.manager_ids()[static_cast<std::size_t>(s)]
                 : scenario.host_ids()[static_cast<std::size_t>(s - M)];
  };

  const auto trace = [&](std::string line) {
    if (opts.trace) result.trace_lines.push_back(std::move(line));
  };

  // Applies one fault NOW; returns whether it had any effect (a crash of an
  // already-down site, or a reconfiguration naming a down manager, is a
  // recorded no-op — the hash covers the applied flag so replays agree).
  const auto apply_fault = [&](const FaultEvent& e) -> bool {
    switch (e.kind) {
      case FaultKind::kSplit: {
        std::vector<std::vector<HostId>> groups;
        for (const auto& g : e.groups) {
          if (g.empty()) continue;
          std::vector<HostId> ids;
          for (const int s : g) ids.push_back(site_id(s));
          groups.push_back(std::move(ids));
        }
        parts.split(groups);
        return true;
      }
      case FaultKind::kHealSplit:
        parts.split({});  // clears the component split; link cuts persist
        return true;
      case FaultKind::kCutLink:
        parts.cut_link(site_id(e.a), site_id(e.b));
        return true;
      case FaultKind::kHealLink:
        parts.heal_link(site_id(e.a), site_id(e.b));
        return true;
      case FaultKind::kCrashManager: {
        auto& mgr = scenario.manager(e.a);
        if (!mgr.up()) return false;
        mgr.crash();
        return true;
      }
      case FaultKind::kRecoverManager: {
        auto& mgr = scenario.manager(e.a);
        if (mgr.up()) return false;
        mgr.recover();
        return true;
      }
      case FaultKind::kCrashHost: {
        auto& host = scenario.host(e.a);
        if (!host.up()) return false;
        host.crash();
        return true;
      }
      case FaultKind::kRecoverHost: {
        auto& host = scenario.host(e.a);
        if (host.up()) return false;
        host.recover();
        return true;
      }
      case FaultKind::kReconfigure: {
        // Under sharding, membership moves by groups entering or leaving the
        // shard map (kShardRebalance), never by editing Managers(app): each
        // manager's quorum set IS its group, and rewriting it here would
        // cross-wire groups mid-handoff.
        if (sharded) return false;
        // §3.2: the set changes through the trusted name service. The
        // operator moving Managers(app) would not pick a dead newcomer, so a
        // reconfiguration naming a down manager is skipped, not forced.
        for (const int m : e.members) {
          if (!scenario.manager(m).up()) return false;
        }
        if (e.members == members) return false;
        std::vector<HostId> ids;
        for (const int m : e.members) {
          ids.push_back(scenario.manager_ids()[static_cast<std::size_t>(m)]);
        }
        scenario.names().set_managers(scenario.app(), ids);
        const std::set<int> next(e.members.begin(), e.members.end());
        for (const int m : e.members) {
          scenario.manager(m).manager().reconfigure_app(scenario.app(), ids);
        }
        for (const int m : members) {
          if (next.count(m) == 0) {
            scenario.manager(m).manager().forget_app(scenario.app());
          }
        }
        members = e.members;
        scenario.set_active_managers(members);
        return true;
      }
      case FaultKind::kCutLinkOneWay: {
        const HostId from = site_id(e.a);
        const HostId to = site_id(e.b);
        parts.cut_one_way(from, to);
        oracle.note_one_way_cut(from, to);
        return true;
      }
      case FaultKind::kHealLinkOneWay: {
        const HostId from = site_id(e.a);
        const HostId to = site_id(e.b);
        // Heal the oracle's view FIRST: the model change is what we audit,
        // and a heal delivered between the two calls must not count as a leak.
        oracle.note_one_way_heal(from, to);
        parts.heal_one_way(from, to);
        return true;
      }
      case FaultKind::kByzantineManager: {
        auto& mgr = scenario.manager(e.a);
        if (!mgr.up() || mgr.manager().byzantine()) return false;
        mgr.manager().set_byzantine(e.aux);
        return true;
      }
      case FaultKind::kRestoreManager: {
        auto& mgr = scenario.manager(e.a);
        if (!mgr.up() || !mgr.manager().byzantine()) return false;
        mgr.manager().restore_honest();
        // Remediation keeps the stale store; anti-entropy brings the manager
        // back to the current update set (and completes its parked submits).
        mgr.manager().resync(scenario.app());
        return true;
      }
      case FaultKind::kShardRebalance: {
        // Group e.a leaves the shard map: catch-up-then-flip (ARCHITECTURE
        // sharding section) runs live under whatever partitions, crashes, and
        // ambient loss the rest of the schedule has in flight. The map must
        // keep >= 2 groups afterwards — a trivial (single-group) map turns
        // off ownership gating, and the departed members still hold
        // group-scoped membership, so they would answer from stale slices.
        const shard::ShardMap cur = scenario.shard_map();
        const auto gi = static_cast<std::uint32_t>(e.a);
        if (cur.empty() || cur.groups().size() <= 2 ||
            gi >= cur.groups().size()) {
          return false;
        }
        const auto index_of = [&](HostId id) -> int {
          const auto& ids = scenario.manager_ids();
          for (std::size_t m = 0; m < ids.size(); ++m) {
            if (ids[m] == id) return static_cast<int>(m);
          }
          return -1;
        };
        // The operator draining a group would not pick one that is down; a
        // crashed leaving member also could not stream its slices out.
        std::vector<int> leaving;
        for (const HostId id : cur.group(gi)) {
          const int m = index_of(id);
          if (m < 0 || !scenario.manager(m).up()) return false;
          leaving.push_back(m);
        }
        std::vector<std::vector<HostId>> remaining;
        for (std::uint32_t g = 0;
             g < static_cast<std::uint32_t>(cur.groups().size()); ++g) {
          if (g != gi) remaining.push_back(cur.group(g));
        }
        const shard::ShardMap next = shard::ShardMap::ring(
            std::move(remaining), cur.shard_count(), cur.epoch() + 1,
            cur.ring_seed());
        for (int m = 0; m < M; ++m) {
          if (scenario.manager(m).up()) {
            scenario.manager(m).manager().begin_shard_handoff(scenario.app(),
                                                              next);
          }
        }
        // Poll until every leaving member has drained its outbound slices
        // (volatile handoff state makes a crashed sender trivially drained),
        // then commit the flip on ALL managers — up or down — in that same
        // event. The map survives crashes; a down gainer stays pending until
        // the frozen handoff retransmits reach it after recovery.
        auto poll = std::make_shared<std::function<void()>>();
        *poll = [&, poll, leaving, next] {
          if (scenario.shard_map().epoch() >= next.epoch()) return;
          bool drained = true;
          for (const int m : leaving) {
            if (!scenario.manager(m).manager().handoff_drained(
                    scenario.app())) {
              drained = false;
              break;
            }
          }
          if (!drained) {
            scenario.scheduler().schedule_at(
                scenario.scheduler().now() + sim::Duration::millis(250),
                [poll] { (*poll)(); });
            return;
          }
          for (int m = 0; m < M; ++m) {
            scenario.manager(m).manager().commit_shard_map(scenario.app(),
                                                           next);
          }
          scenario.publish_shard_map(next);
          hasher.mix(0xFA02u);
          hasher.mix(next.epoch());
          trace("t=" + sim::to_string(scenario.scheduler().now()) +
                "  shard map flipped to epoch " +
                std::to_string(next.epoch()));
        };
        scenario.scheduler().schedule_at(
            scenario.scheduler().now() + sim::Duration::millis(250),
            [poll] { (*poll)(); });
        return true;
      }
      case FaultKind::kByzantineRelay: {
        // Tree-dissemination adversary: the host acks every RelayForward as
        // fully delivered and delivers nothing. A crashed host cannot lie.
        auto& host = scenario.host(e.a);
        if (!host.up()) return false;
        host.controller().debug_set_lying_relay(true);
        return true;
      }
      case FaultKind::kRestoreRelay: {
        auto& host = scenario.host(e.a);
        // A crash between the flip and this event already reset the flag
        // (a reimaged host comes back honest); count the remediation anyway
        // when the host is up, clearing is idempotent.
        if (!host.up()) return false;
        host.controller().debug_set_lying_relay(false);
        return true;
      }
    }
    return false;
  };

  const sim::TimePoint start = scenario.scheduler().now();
  for (std::size_t i = 0; i < plan.schedule.events.size(); ++i) {
    if (!event_enabled(static_cast<int>(i))) continue;
    const FaultEvent& e = plan.schedule.events[i];
    scenario.scheduler().schedule_at(start + e.at, [&, i, &e = e] {
      const bool applied = apply_fault(e);
      if (applied) ++result.faults_applied;
      hasher.mix(0xFA01u);
      hasher.mix(i);
      hasher.mix(static_cast<std::uint64_t>(e.kind));
      hasher.mix(applied ? 1 : 0);
      trace("t=" + sim::to_string(scenario.scheduler().now()) + "  fault #" +
            std::to_string(i) + " " + to_cstring(e.kind) +
            (applied ? "" : " (no-op)"));
    });
  }

  workload::Driver driver(scenario, plan.driver, plan.driver_seed);
  driver.start();
  scenario.run_for(opts.horizon);
  driver.stop();

  // Epilogue: heal the world, bring every site back, remediate any manager
  // still lying, and drain until all cached state and in-flight protocol
  // activity must have settled.
  parts.heal_all();
  oracle.note_all_one_way_healed();
  for (int m = 0; m < M; ++m) {
    if (!scenario.manager(m).up()) scenario.manager(m).recover();
  }
  for (int m = 0; m < M; ++m) {
    if (scenario.manager(m).up() && scenario.manager(m).manager().byzantine()) {
      scenario.manager(m).manager().restore_honest();
    }
  }
  for (int h = 0; h < H; ++h) {
    if (!scenario.host(h).up()) scenario.host(h).recover();
    // Remediate any relay still lying, like the Byzantine managers above.
    scenario.host(h).controller().debug_set_lying_relay(false);
  }
  scenario.run_for(sim::Duration::seconds(10));
  // Post-incident administrative anti-entropy: every member pulls, merges,
  // and pushes back. After this, convergence failure at final_checks means a
  // merge-impossibility bug (e.g. two distinct updates sharing a version),
  // never mere gossip lag for an update stranded by an issuer crash.
  for (const int m : members) scenario.manager(m).manager().resync(scenario.app());
  scenario.run_for(drain_window(plan.scenario.protocol));

  oracle.final_checks(members);

  hasher.mix(0xF1A1u);
  hasher.mix(oracle.decisions());
  hasher.mix(scenario.collector().report().total);

  result.trace_hash = hasher.value();
  result.violations = oracle.violations();
  result.violation_count = oracle.violation_count();
  result.decisions = oracle.decisions();
  result.checkpoints = oracle.checkpoints();
  result.entries_audited = oracle.entries_audited();
  result.expected_leaks = oracle.expected_leaks();
  result.events_executed = scenario.scheduler().executed_events();
  result.report = scenario.collector().report();
  for (const Violation& v : result.violations) {
    trace("t=" + sim::to_string(v.at) + "  VIOLATION " +
          std::string(to_cstring(v.kind)) + ": " + v.detail);
  }
  if (opts.tracer != nullptr) {
    result.te =
        obs::TeProbe::analyze(opts.tracer->events(), plan.scenario.protocol.Te);
    result.te_checked = true;
  }
  return result;
}

std::vector<int> shrink_schedule(
    int n, const std::function<bool(const std::vector<int>&)>& fails,
    int max_runs) {
  WAN_REQUIRE(n >= 0);
  std::vector<int> current;
  for (int i = 0; i < n; ++i) current.push_back(i);
  int runs = 0;
  const auto try_fails = [&](const std::vector<int>& subset) {
    ++runs;
    return fails(subset);
  };

  // The failure may not need any injected fault at all (ambient loss or
  // clock skew alone); that is the smallest possible answer.
  if (n == 0 || try_fails({})) return {};

  // Classic ddmin: try dropping ever-finer complements.
  std::size_t granularity = 2;
  while (current.size() >= 2 && runs < max_runs) {
    const std::size_t chunk =
        (current.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t begin = 0; begin < current.size() && runs < max_runs;
         begin += chunk) {
      const std::size_t end = std::min(begin + chunk, current.size());
      std::vector<int> complement;
      complement.reserve(current.size() - (end - begin));
      complement.insert(complement.end(), current.begin(),
                        current.begin() + static_cast<std::ptrdiff_t>(begin));
      complement.insert(complement.end(),
                        current.begin() + static_cast<std::ptrdiff_t>(end),
                        current.end());
      if (try_fails(complement)) {
        current = std::move(complement);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= current.size()) break;
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  return current;
}

ShrinkOutcome shrink_failing_run(const ChaosOptions& opts) {
  const ChaosPlan plan = make_plan(opts.seed, opts.horizon, opts.plan);
  const auto fails = [&](const std::vector<int>& subset) {
    ChaosOptions sub = opts;
    sub.trace = false;
    sub.restrict_events = true;
    sub.only_events = subset;
    return !run_chaos(sub).ok();
  };
  ShrinkOutcome out;
  out.events = shrink_schedule(
      static_cast<int>(plan.schedule.events.size()), fails);
  ChaosOptions final_opts = opts;
  final_opts.restrict_events = true;
  final_opts.only_events = out.events;
  out.result = run_chaos(final_opts);
  return out;
}

}  // namespace wan::chaos
