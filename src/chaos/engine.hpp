// Chaos run engine: executes one seeded plan under the invariant oracle and
// shrinks failing runs to a minimal fault subset.
//
// A run is: build the plan from the seed, wire a Scenario with scripted
// partitions, install the oracle, schedule every fault event, drive the
// Poisson workload for the horizon, then heal everything, drain for Te plus
// slack so caches and in-flight updates quiesce, and run the end-of-run
// convergence checks. The whole thing is a pure function of (seed, horizon,
// enabled-event subset): replaying the same inputs reproduces the same event
// trace bit-for-bit, which the trace hash certifies.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/fault_schedule.hpp"
#include "chaos/oracle.hpp"
#include "metrics/collector.hpp"
#include "obs/te_probe.hpp"
#include "obs/trace.hpp"

namespace wan::chaos {

struct ChaosOptions {
  std::uint64_t seed = 1;
  sim::Duration horizon = sim::Duration::minutes(8);
  /// Opt-in adversities (Byzantine managers, one-way cuts); forwarded to
  /// make_plan. Defaults keep historical seeds bit-identical.
  PlanOptions plan;
  /// When restrict_events is set, only the schedule events whose indices
  /// appear in only_events are injected (possibly none). The shrinker re-runs
  /// with subsets; indices refer to the full generated schedule.
  bool restrict_events = false;
  std::vector<int> only_events;
  /// Collect a human-readable line per injected fault and per violation.
  bool trace = false;
  /// When set, installed as the process-global span tracer for the run and
  /// analyzed for the empirical-Te report. The caller owns it. Because the
  /// installation is process-global, never set this on runs that execute
  /// concurrently (the parallel sweep leaves it null; only single-seed
  /// replay uses it). Span events are NOT mixed into the trace hash, so a
  /// traced and an untraced run of the same seed hash identically.
  obs::Tracer* tracer = nullptr;
};

struct ChaosResult {
  std::uint64_t seed = 0;
  std::uint64_t trace_hash = 0;
  std::vector<Violation> violations;
  std::uint64_t violation_count = 0;
  std::uint64_t decisions = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t entries_audited = 0;
  std::uint64_t expected_leaks = 0;
  std::uint64_t events_executed = 0;
  std::size_t schedule_size = 0;
  std::size_t faults_applied = 0;
  metrics::CollectorReport report;
  std::vector<std::string> trace_lines;  ///< only with ChaosOptions::trace
  /// Empirical revocation latency vs the configured Te bound, measured from
  /// the span stream. Only populated (te_checked) when a tracer was set.
  bool te_checked = false;
  obs::TeReport te;

  [[nodiscard]] bool ok() const noexcept { return violation_count == 0; }
};

/// Executes one chaos run to completion. Deterministic in `opts`.
[[nodiscard]] ChaosResult run_chaos(const ChaosOptions& opts);

/// Delta-debugging (ddmin) minimization: finds a small subset of [0, n) on
/// which `fails` still returns true, assuming `fails` on the full set. Runs
/// at most `max_runs` predicate evaluations; returns the best subset found.
[[nodiscard]] std::vector<int> shrink_schedule(
    int n, const std::function<bool(const std::vector<int>&)>& fails,
    int max_runs = 64);

/// Shrinks a failing seed's fault schedule to a minimal violating subset and
/// returns the final (shrunk) run result plus the surviving event indices.
struct ShrinkOutcome {
  std::vector<int> events;  ///< minimal violating subset of schedule indices
  ChaosResult result;       ///< the run on exactly that subset
};
[[nodiscard]] ShrinkOutcome shrink_failing_run(const ChaosOptions& opts);

}  // namespace wan::chaos
