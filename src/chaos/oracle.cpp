#include "chaos/oracle.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "acl/cache.hpp"
#include "metrics/collector.hpp"
#include "proto/access_controller.hpp"
#include "proto/host.hpp"
#include "proto/manager.hpp"
#include "util/assert.hpp"

namespace wan::chaos {

const char* to_cstring(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kSecurityDecision: return "security-decision";
    case ViolationKind::kCacheTtlBound: return "cache-ttl-bound";
    case ViolationKind::kLatentRevokedEntry: return "latent-revoked-entry";
    case ViolationKind::kQuorumConflict: return "quorum-conflict";
    case ViolationKind::kStoreDivergence: return "store-divergence";
    case ViolationKind::kGroundTruthMismatch: return "ground-truth-mismatch";
    case ViolationKind::kFrozenManagerAnswered: return "frozen-manager-answered";
    case ViolationKind::kFreezeBoundExceeded: return "freeze-bound-exceeded";
    case ViolationKind::kPrematureUnfreeze: return "premature-unfreeze";
    case ViolationKind::kOneWayDeliveryLeak: return "one-way-delivery-leak";
  }
  return "?";
}

InvariantOracle::InvariantOracle(workload::Scenario& scenario, Config config,
                                 TraceHasher* hasher)
    : scenario_(&scenario), config_(config), hasher_(hasher) {}

InvariantOracle::~InvariantOracle() {
  if (!installed_) return;
  scenario_->scheduler().set_event_observer(nullptr);
  scenario_->network().set_send_observer(nullptr);
  auto* collector = &scenario_->collector();
  for (int i = 0; i < scenario_->host_count(); ++i) {
    scenario_->host(i).controller().set_decision_observer(
        [collector](const proto::AccessDecision& d) { collector->observe(d); });
  }
  for (int m = 0; m < scenario_->manager_count(); ++m) {
    scenario_->manager(m).manager().set_response_observer(nullptr);
  }
}

void InvariantOracle::install() {
  WAN_REQUIRE(!installed_);
  installed_ = true;
  for (int i = 0; i < scenario_->host_count(); ++i) {
    scenario_->host(i).controller().set_decision_observer(
        [this](const proto::AccessDecision& d) { ingest(d); });
  }
  for (int m = 0; m < scenario_->manager_count(); ++m) {
    scenario_->manager(m).manager().set_response_observer(
        [this, m](const proto::ManagerModule::QueryAnswerEvent& ev) {
          ingest_response(m, ev);
        });
  }
  scenario_->network().set_send_observer([this](HostId from, HostId to) {
    if (one_way_cuts_.count({from.value(), to.value()}) != 0) {
      record(ViolationKind::kOneWayDeliveryLeak,
             "message delivered " + std::to_string(from.value()) + " -> " +
                 std::to_string(to.value()) +
                 " across a link direction the schedule cut");
    }
  });
  scenario_->scheduler().set_event_observer([this] { checkpoint(); });
}

void InvariantOracle::note_one_way_cut(HostId from, HostId to) {
  one_way_cuts_.emplace(from.value(), to.value());
}

void InvariantOracle::note_one_way_heal(HostId from, HostId to) {
  one_way_cuts_.erase({from.value(), to.value()});
}

void InvariantOracle::note_all_one_way_healed() { one_way_cuts_.clear(); }

void InvariantOracle::record(ViolationKind kind, std::string detail) {
  ++violation_count_;
  if (violations_.size() >= config_.max_violations) return;
  Violation v;
  v.kind = kind;
  v.at = scenario_->scheduler().now();
  v.event_index = scenario_->scheduler().executed_events();
  v.detail = std::move(detail);
  violations_.push_back(std::move(v));
}

void InvariantOracle::ingest(const proto::AccessDecision& d) {
  ++decisions_;
  if (hasher_ != nullptr) {
    hasher_->mix(d.user.value());
    hasher_->mix(d.host.value());
    hasher_->mix(d.allowed ? 1 : 0);
    hasher_->mix(static_cast<std::uint64_t>(d.path));
    hasher_->mix(static_cast<std::uint64_t>(d.decided.nanos_since_origin()));
  }

  // Keep the run's metrics flowing; the classification doubles as the
  // decision oracle's verdict.
  const metrics::DecisionClass cls = scenario_->collector().observe(d);
  if (cls == metrics::DecisionClass::kSecurityViolation) {
    if (config_.default_allow_expected &&
        d.path == proto::DecisionPath::kDefaultAllow) {
      ++expected_leaks_;  // Fig. 4 availability-first policy, working as sold
    } else {
      record(ViolationKind::kSecurityDecision,
             "user " + std::to_string(d.user.value()) + " allowed at host " +
                 std::to_string(d.host.value()) + " via " +
                 proto::to_cstring(d.path) + " (basis version " +
                 std::to_string(d.basis_version.counter) + "," +
                 std::to_string(d.basis_version.origin.value()) + "," +
                 std::to_string(d.basis_version.stamp) +
                 ") beyond Te past its revoke quorum");
    }
  }

  // Freeze oracle, bound arm: in a §3.3 run the mechanism arithmetic itself
  // promises an allow can trail a revoke quorum by at most Ti (silence until
  // the stale manager freezes) plus te*b (worst-case real lifetime of the
  // last entry it handed out), and never more than Te. Recomputing the bound
  // from the configured Ti / te / b — instead of trusting the headline Te —
  // catches a mis-derived expiry period even when it still sneaks under Te.
  const auto& protocol = scenario_->config().protocol;
  if (protocol.freeze_enabled && d.allowed &&
      !(config_.default_allow_expected &&
        d.path == proto::DecisionPath::kDefaultAllow)) {
    const auto since = scenario_->truth().unauthorized_since(
        scenario_->app(), d.user, acl::Right::kUse, d.decided);
    if (since) {
      const sim::Duration te_real = sim::Duration::nanos(
          static_cast<std::int64_t>(
              static_cast<double>(protocol.expiry_period().count_nanos()) *
              protocol.clock_bound_b));
      const sim::Duration bound = std::min(protocol.Te, protocol.Ti + te_real);
      if (d.decided - *since > bound + config_.tolerance) {
        record(ViolationKind::kFreezeBoundExceeded,
               "user " + std::to_string(d.user.value()) + " allowed at host " +
                   std::to_string(d.host.value()) + " " +
                   std::to_string((d.decided - *since).to_seconds()) +
                   "s after revoke quorum; freeze bound min(Te, Ti + te*b) = " +
                   std::to_string(bound.to_seconds()) + "s");
      }
    }
  }

  // Version oracle: the check quorum C intersects every update quorum
  // M-C+1, so two decisions whose freshest basis is the SAME update version
  // must agree — one update is one op, it cannot read as both grant and
  // revoke. Counter-0 versions carry no update identity (never-written
  // register) and are skipped. A decision flagged conflicting_replies
  // resolved an equal-version contradiction deny-wins; its basis version is
  // tainted by a liar and is not that version's authoritative reading.
  if (d.conflicting_replies) return;
  switch (d.path) {
    case proto::DecisionPath::kCacheHit:
    case proto::DecisionPath::kQuorumGranted:
    case proto::DecisionPath::kQuorumDenied: {
      if (d.basis_version.initial()) break;
      const auto key = std::make_tuple(d.user.value(),
                                       d.basis_version.counter,
                                       d.basis_version.origin.value(),
                                       d.basis_version.stamp);
      // A version some liar has answered with is exempt: the liar can show
      // an incomplete update's version with a flipped bit to hosts whose
      // honest responders are still behind it, and no intersection argument
      // contradicts that (the update never completed, so no Te clock runs).
      if (byzantine_versions_.count(key) != 0) break;
      const auto [it, inserted] = version_decisions_.emplace(key, d.allowed);
      if (!inserted && it->second != d.allowed) {
        record(ViolationKind::kQuorumConflict,
               "user " + std::to_string(d.user.value()) + " version (" +
                   std::to_string(d.basis_version.counter) + "," +
                   std::to_string(d.basis_version.origin.value()) +
                   ") decided both allow and deny");
      }
      break;
    }
    default:
      break;
  }
}

void InvariantOracle::ingest_response(
    int manager_idx, const proto::ManagerModule::QueryAnswerEvent& ev) {
  // The response observer fires at SEND time, before any host can decide on
  // this answer, so tainting here always lands before the version oracle
  // sees a decision built from it.
  if (ev.byzantine && !ev.version.initial()) {
    byzantine_versions_.emplace(ev.user.value(), ev.version.counter,
                                ev.version.origin.value(), ev.version.stamp);
  }
  // Freeze oracle, silence arm: §3.3's whole safety argument is that a
  // manager which has not heard every peer within its local Ti/b threshold
  // SHUTS UP — its store may have missed a revoke, so any answer it gives
  // (honest-stale or lying) can seed an unbounded-stale cache entry. The
  // event carries the honest silence computation at send time; an answer
  // sent while it said "frozen" is a protocol bug (or a planted compromise).
  if (!scenario_->config().protocol.freeze_enabled) return;
  if (ev.frozen_by_silence) {
    record(ViolationKind::kFrozenManagerAnswered,
           "manager " + std::to_string(manager_idx) + " answered host " +
               std::to_string(ev.host.value()) + " for user " +
               std::to_string(ev.user.value()) +
               " while frozen by peer silence" +
               (ev.byzantine ? " (byzantine)" : ""));
  }
}

void InvariantOracle::checkpoint() {
  ++checkpoints_;
  const AppId app = scenario_->app();
  const auto& protocol = scenario_->config().protocol;
  const sim::Duration te = protocol.expiry_period();
  const sim::TimePoint now = scenario_->scheduler().now();

  // Freeze oracle, unfreeze arm: a manager may report unfrozen only while
  // every current peer is tracked and was heard within Ti/b on its clock.
  // frozen() and peer_silences() read the same bookkeeping through different
  // code paths, so a disagreement means the silence computation rotted (or a
  // test override planted exactly that, to prove this check works).
  if (protocol.freeze_enabled) {
    for (int m = 0; m < scenario_->manager_count(); ++m) {
      if (reported_unfreeze_.count(m) != 0) continue;
      auto& mgr = scenario_->manager(m).manager();
      if (!mgr.up() || !mgr.synced(app) || mgr.frozen(app)) continue;
      for (const auto& ps : mgr.peer_silences(app)) {
        if (!ps.tracked ||
            ps.silence > mgr.freeze_threshold() + config_.tolerance) {
          reported_unfreeze_.insert(m);
          record(ViolationKind::kPrematureUnfreeze,
                 "manager " + std::to_string(m) +
                     " reports unfrozen while peer " +
                     std::to_string(ps.peer.value()) +
                     (ps.tracked
                          ? " has been silent " +
                                std::to_string(ps.silence.to_seconds()) +
                                "s (threshold " +
                                std::to_string(
                                    mgr.freeze_threshold().to_seconds()) +
                                "s)"
                          : " is not tracked by the silence bookkeeping"));
          break;
        }
      }
    }
  }

  for (int i = 0; i < scenario_->host_count(); ++i) {
    auto& host = scenario_->host(i);
    if (!host.up()) continue;
    const acl::AclCache* cache = host.controller().cache(app);
    if (cache == nullptr || cache->size() == 0) continue;
    const clk::LocalTime local_now = host.controller().local_now();

    for (const UserId user : cache->cached_users()) {
      const auto entry = cache->peek(user);
      if (!entry) continue;
      ++entries_audited_;

      // Fig. 3 inserts entries with limit = now + (te - delta), delta >= 0,
      // and the local clock only moves forward: the limit can never sit more
      // than te ahead. Anything further is a corrupted/planted entry.
      if (entry->limit - local_now > te + config_.tolerance) {
        if (reported_ttl_
                .emplace(i, user.value(), entry->limit.nanos())
                .second) {
          record(ViolationKind::kCacheTtlBound,
                 "host " + std::to_string(i) + " user " +
                     std::to_string(user.value()) + " cache limit " +
                     std::to_string((entry->limit - local_now).to_seconds()) +
                     "s ahead of local clock; te = " +
                     std::to_string(te.to_seconds()) + "s");
        }
        continue;
      }

      // A live entry whose user went unauthorized more than Te ago would let
      // the next lookup allow an access past the paper's bound. Entries
      // cached BEFORE the revoke expire within Te of insertion (< revoke +
      // Te), so a live one this late implies a post-revoke insertion — a
      // quorum-intersection or flush failure.
      if (entry->limit > local_now) {
        const auto since = scenario_->truth().unauthorized_since(
            app, user, acl::Right::kUse, now);
        if (since && now - *since > protocol.Te + config_.tolerance) {
          if (reported_latent_
                  .emplace(i, user.value(), since->nanos_since_origin())
                  .second) {
            record(ViolationKind::kLatentRevokedEntry,
                   "host " + std::to_string(i) + " user " +
                       std::to_string(user.value()) +
                       " still cached live " +
                       std::to_string((now - *since).to_seconds()) +
                       "s after revoke quorum (Te = " +
                       std::to_string(protocol.Te.to_seconds()) + "s)");
          }
        }
      }
    }
  }
}

void InvariantOracle::final_checks(const std::vector<int>& members) {
  const AppId app = scenario_->app();
  const auto& protocol = scenario_->config().protocol;
  const sim::TimePoint now = scenario_->scheduler().now();

  // Sharded runs converge per owner group of the *published* map: a manager
  // whose group left the map has (correctly) dropped its slices, and two
  // managers in different groups hold disjoint key ranges by design. Flat
  // runs degenerate to one logical group covering every member.
  const shard::ShardMap& map = scenario_->shard_map();
  const bool sharded = !map.empty() && !map.trivial();
  const auto group_of = [&](int m) -> std::optional<std::uint32_t> {
    if (!sharded) return 0;
    return map.group_index_of(
        scenario_->manager_ids()[static_cast<std::size_t>(m)]);
  };

  // Store convergence: at quiescence every up, synced member of a group
  // holds the same register state (LWW merge over a common update set is
  // order-free), and under sharding holds ONLY keys its group owns — a
  // leaked entry means a commit failed to drop a lost slice.
  std::map<std::uint32_t, std::pair<const acl::AclStore*, int>> references;
  for (const int m : members) {
    auto& mgr = scenario_->manager(m).manager();
    if (!mgr.up() || !mgr.synced(app)) continue;
    const auto g = group_of(m);
    if (!g) continue;  // departed the map; its store was dropped on purpose
    const acl::AclStore* store = mgr.store(app);
    if (store == nullptr) continue;
    if (sharded) {
      const HostId id = scenario_->manager_ids()[static_cast<std::size_t>(m)];
      for (const acl::AclUpdate& u : store->snapshot()) {
        if (!map.owns(id, app, u.user)) {
          record(ViolationKind::kStoreDivergence,
                 "manager " + std::to_string(m) + " holds user " +
                     std::to_string(u.user.value()) +
                     " outside its owned shards at quiescence");
        }
      }
    }
    const auto [it, inserted] = references.try_emplace(*g, store, m);
    if (inserted) continue;
    if (store->snapshot() != it->second.first->snapshot()) {
      record(ViolationKind::kStoreDivergence,
             "manager " + std::to_string(m) + " store differs from manager " +
                 std::to_string(it->second.second) + " at quiescence");
    }
  }

  // Ground-truth agreement, revoke direction only: a user unauthorized for
  // more than Te must not be granted in any member store. (The grant
  // direction is deliberately not checked: ground truth records grants at
  // issue time, and a grant whose issuing manager crashed pre-dissemination
  // is legitimately absent everywhere.) Under sharding only the owner group
  // is audited — non-owners holding the key at all is flagged above.
  for (int u = 0; u < scenario_->user_count(); ++u) {
    const UserId uid = scenario_->user(u);
    const auto since =
        scenario_->truth().unauthorized_since(app, uid, acl::Right::kUse, now);
    if (!since || now - *since <= protocol.Te + config_.tolerance) continue;
    for (const int m : members) {
      auto& mgr = scenario_->manager(m).manager();
      if (!mgr.up() || !mgr.synced(app)) continue;
      if (sharded &&
          !map.owns(scenario_->manager_ids()[static_cast<std::size_t>(m)], app,
                    uid)) {
        continue;
      }
      const acl::AclStore* store = mgr.store(app);
      if (store != nullptr && store->check(uid, acl::Right::kUse)) {
        record(ViolationKind::kGroundTruthMismatch,
               "manager " + std::to_string(m) + " still grants user " +
                   std::to_string(uid.value()) + " " +
                   std::to_string((now - *since).to_seconds()) +
                   "s after its revoke quorum");
      }
    }
  }
}

}  // namespace wan::chaos
