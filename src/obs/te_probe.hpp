// Empirical-Te probe.
//
// The paper's Te bound promises: once a revocation reaches its update
// quorum, no host allows the revoked right for longer than Te (the cached
// grant must expire within te = Te/b at each host, and every host saw the
// grant at most Te - te ago). This probe measures that promise empirically:
// for each revocation it tracks update-quorum-reached -> the last moment any
// host still allowed the stale right, and compares against the configured
// bound.
//
// Two front ends over the same report:
//  - the online API (on_revoke_quorum / on_allowed / ...), fed by observers
//    in benches and the chaos engine;
//  - analyze(), which replays a recorded span stream ("update.quorum",
//    "revoke.flush", "check.decide" events) so a dumped trace file can be
//    audited after the fact.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace wan::obs {

struct TeReport {
  std::uint64_t revocations = 0;  ///< revocations whose quorum we saw
  std::uint64_t measured = 0;     ///< of those, had a post-quorum stale allow
  std::uint64_t violations = 0;   ///< stale-allow lateness exceeded the bound
  double max_seconds = 0.0;       ///< worst stale-allow lateness observed
  double mean_seconds = 0.0;      ///< mean over `measured`
  double bound_seconds = 0.0;     ///< configured Te

  [[nodiscard]] bool ok() const noexcept { return violations == 0; }
};

/// Online accumulator. Single-threaded by design: feed it from one observer
/// (sim callbacks or a post-run replay), not from concurrent node threads.
class TeProbe {
 public:
  explicit TeProbe(sim::Duration bound) : bound_(bound) {}

  /// A revocation for `user` reached its update quorum at `at`.
  void on_revoke_quorum(UserId user, sim::TimePoint at);
  /// A later grant for `user` reached quorum: stop attributing allows to the
  /// open revocation (the right is legitimately back).
  void on_grant_quorum(UserId user, sim::TimePoint at);
  /// A host allowed `user` based on prior state (cache hit / granted path).
  /// Default-allow decisions are the availability trade-off, not a stale
  /// grant, and must not be fed here.
  void on_allowed(UserId user, sim::TimePoint at);

  [[nodiscard]] TeReport report() const;

  /// Replays a recorded span stream. Uses "update.quorum" events
  /// (a0 = user, a1 = op: 1 for revoke, 0 for grant) and "check.decide"
  /// events (a0 = user, a1 = (allowed << 8) | path with path 0 = cache hit,
  /// 1 = quorum granted).
  [[nodiscard]] static TeReport analyze(const std::vector<TraceEvent>& events,
                                        sim::Duration bound);

 private:
  struct Open {
    UserId user;
    sim::TimePoint quorum_at;
    sim::TimePoint last_allow;
    bool any_allow = false;
  };

  void close(Open& rec);

  sim::Duration bound_;
  std::vector<Open> open_;
  std::uint64_t revocations_ = 0;
  std::uint64_t measured_ = 0;
  std::uint64_t violations_ = 0;
  double max_seconds_ = 0.0;
  double sum_seconds_ = 0.0;
};

}  // namespace wan::obs
