// Per-process trace export and cross-process merge.
//
// TraceEvent timestamps are runtime-clock nanos — steady_clock since the
// process's Fabric epoch (runtime/fabric.hpp), which is process-local: two
// wan_node roles forked milliseconds apart disagree on what "t=0" means. A
// ProcessTrace therefore carries a wall-clock anchor: one instant sampled on
// both clocks (runtime nanos, system_clock micros). With the anchor, any
// event maps onto the machine-shared system_clock timeline:
//
//   wall_us(e) = anchor_wall_us + (e.at_nanos - anchor_runtime_ns) / 1000
//
// which is what lets trace_merge interleave nine processes' spans into one
// causally ordered stream, draw TraceId flow arrows across process tracks,
// and run TeProbe::analyze over revocations whose quorum and stale allows
// happened in different OS processes. Anchor error is the skew between the
// two clock samples (sub-microsecond, same machine) — far below the
// network latencies the merged ordering reflects.
//
// The on-disk form is a versioned line-oriented text file ("WANTRACE 1"),
// one event per line, names last so they parse without quoting. Flight
// recorder rings (obs/flight_recorder.hpp) harvest into the same struct, so
// a SIGKILLed process's final events merge exactly like a clean export.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace wan::obs {

/// One process's exported span stream plus its wall-clock anchor.
struct ProcessTrace {
  std::string label;
  std::uint32_t node = 0;
  std::int64_t anchor_runtime_ns = 0;  ///< runtime clock at the anchor instant
  std::int64_t anchor_wall_us = 0;     ///< system_clock micros, same instant
  bool from_flight_recorder = false;
  std::uint64_t dropped = 0;  ///< tracer drops (capacity) or lapped ring slots

  /// Same shape as TraceEvent but with an owned name: these events cross
  /// process and file boundaries where a string-literal pointer is void.
  struct Event {
    TraceId trace = 0;
    std::int64_t at_nanos = 0;
    std::string name;
    std::uint32_t node = 0;
    SpanKind kind = SpanKind::kInstant;
    std::int64_t a0 = 0;
    std::int64_t a1 = 0;
  };
  std::vector<Event> events;

  /// System-clock micros of a runtime-clock timestamp, via the anchor.
  [[nodiscard]] double wall_us_of(std::int64_t at_nanos) const {
    return static_cast<double>(anchor_wall_us) +
           static_cast<double>(at_nanos - anchor_runtime_ns) / 1000.0;
  }
};

/// Snapshot of an in-process Tracer, ready for write_process_trace.
[[nodiscard]] ProcessTrace snapshot_process_trace(const Tracer& tracer,
                                                  std::string label,
                                                  std::uint32_t node,
                                                  std::int64_t anchor_runtime_ns,
                                                  std::int64_t anchor_wall_us);

/// A harvested flight-recorder ring as a ProcessTrace (from_flight_recorder
/// set; dropped = events lost to ring wrap or torn slots).
[[nodiscard]] ProcessTrace from_harvest(const FlightRecorder::Harvested& h,
                                        std::string label);

/// Writes `pt` as a WANTRACE v1 file (tmp + atomic rename).
bool write_process_trace(const std::string& path, const ProcessTrace& pt,
                         std::string* error);

/// Parses a WANTRACE v1 file. nullopt with `*error` set on malformed input.
[[nodiscard]] std::optional<ProcessTrace> load_process_trace(
    const std::string& path, std::string* error);

/// Every process's events interleaved on the anchored wall clock.
struct MergedTrace {
  struct Event {
    std::size_t proc = 0;  ///< index into procs
    std::size_t idx = 0;   ///< index into procs[proc].events
    double wall_us = 0;    ///< absolute system_clock micros
  };
  std::vector<ProcessTrace> procs;
  std::vector<Event> events;  ///< sorted by wall_us (ties: proc, idx)
  double base_wall_us = 0;    ///< earliest event (0 when empty)

  [[nodiscard]] const ProcessTrace::Event& at(const Event& e) const {
    return procs[e.proc].events[e.idx];
  }
};

[[nodiscard]] MergedTrace merge_traces(std::vector<ProcessTrace> procs);

/// The merged stream as TraceEvents on one timeline (nanos since
/// base_wall_us) for TeProbe::analyze and Tracer-style tooling. Name
/// pointers alias strings owned by `m` — keep it alive while using them.
[[nodiscard]] std::vector<TraceEvent> analysis_events(const MergedTrace& m);

/// Cross-process reach of one causal chain.
struct ChainStats {
  TraceId trace = 0;
  TraceKind kind = TraceKind::kCheck;
  std::uint32_t mint_node = 0;  ///< node encoded in the TraceId (bits 61..32)
  std::size_t proc_count = 0;   ///< distinct processes the chain touched
  std::size_t event_count = 0;
  /// Anchored-clock causality check: the chain's earliest merged event was
  /// recorded by the node that minted the id. False means either a protocol
  /// bug or anchor skew larger than a cross-process hop.
  bool root_first = true;
};

/// Stats per non-zero TraceId, ordered by first appearance.
[[nodiscard]] std::vector<ChainStats> chain_stats(const MergedTrace& m);

/// Chrome trace_event JSON over the merged stream: one pid (track group) per
/// process with its label as process_name, every span event as a thin 'X'
/// slice, and s/t/f flow arrows threading each cross-process TraceId through
/// the processes it touched. Open in chrome://tracing or ui.perfetto.dev.
[[nodiscard]] std::string merged_chrome_json(const MergedTrace& m);
bool write_merged_chrome_json(const std::string& path, const MergedTrace& m,
                              std::string* error);

/// Deterministic text dump of the merged stream (one event per line,
/// timestamps relative to base_wall_us).
[[nodiscard]] std::string merged_text(const MergedTrace& m);

}  // namespace wan::obs
