#include "obs/te_probe.hpp"

#include <cstring>

namespace wan::obs {

void TeProbe::on_revoke_quorum(UserId user, sim::TimePoint at) {
  // A newer revocation for the same user supersedes the open one: close the
  // old record first so its lateness is measured against its own quorum.
  on_grant_quorum(user, at);
  Open rec;
  rec.user = user;
  rec.quorum_at = at;
  rec.last_allow = at;
  open_.push_back(rec);
  ++revocations_;
}

void TeProbe::on_grant_quorum(UserId user, sim::TimePoint at) {
  (void)at;
  for (std::size_t i = 0; i < open_.size();) {
    if (open_[i].user == user) {
      close(open_[i]);
      open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void TeProbe::on_allowed(UserId user, sim::TimePoint at) {
  for (Open& rec : open_) {
    if (rec.user == user && at >= rec.quorum_at) {
      rec.any_allow = true;
      if (at > rec.last_allow) rec.last_allow = at;
    }
  }
}

void TeProbe::close(Open& rec) {
  if (!rec.any_allow) return;
  double lateness = (rec.last_allow - rec.quorum_at).to_seconds();
  ++measured_;
  sum_seconds_ += lateness;
  if (lateness > max_seconds_) max_seconds_ = lateness;
  if (lateness > bound_.to_seconds()) ++violations_;
}

TeReport TeProbe::report() const {
  // Fold still-open records in without mutating state, so report() can be
  // called mid-run and again at the end.
  TeReport r;
  r.revocations = revocations_;
  r.measured = measured_;
  r.violations = violations_;
  r.max_seconds = max_seconds_;
  r.bound_seconds = bound_.to_seconds();
  double sum = sum_seconds_;
  for (const Open& rec : open_) {
    if (!rec.any_allow) continue;
    double lateness = (rec.last_allow - rec.quorum_at).to_seconds();
    ++r.measured;
    sum += lateness;
    if (lateness > r.max_seconds) r.max_seconds = lateness;
    if (lateness > r.bound_seconds) ++r.violations;
  }
  r.mean_seconds = r.measured > 0 ? sum / static_cast<double>(r.measured) : 0.0;
  return r;
}

TeReport TeProbe::analyze(const std::vector<TraceEvent>& events,
                          sim::Duration bound) {
  TeProbe probe(bound);
  for (const TraceEvent& e : events) {
    if (e.name == nullptr) continue;
    sim::TimePoint at = sim::TimePoint::from_nanos(e.at_nanos);
    if (std::strcmp(e.name, "update.quorum") == 0) {
      UserId user{static_cast<std::uint32_t>(e.a0)};
      if (e.a1 != 0) {
        probe.on_revoke_quorum(user, at);
      } else {
        probe.on_grant_quorum(user, at);
      }
    } else if (std::strcmp(e.name, "check.decide") == 0) {
      bool allowed = (e.a1 >> 8) != 0;
      std::int64_t path = e.a1 & 0xff;
      // Only state-based allows count: cache hit (0) or quorum granted (1).
      // Default-allow is the availability fallback, not a stale grant.
      if (allowed && (path == 0 || path == 1)) {
        probe.on_allowed(UserId{static_cast<std::uint32_t>(e.a0)}, at);
      }
    }
  }
  return probe.report();
}

}  // namespace wan::obs
