#include "obs/metrics.hpp"

#include <cstdio>

namespace wan::obs {
namespace {

// Family = name up to the label brace; HELP/TYPE lines are emitted once per
// family even when several labeled series share it.
std::string family_of(const std::string& name) {
  auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histo& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histos_[name];
  if (!slot) slot = std::make_unique<Histo>();
  return *slot;
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  out.reserve(4096);
  std::string last_family;
  auto header = [&](const std::string& name, const char* type) {
    std::string fam = family_of(name);
    if (fam == last_family) return;
    last_family = fam;
    out += "# HELP " + fam + " wan runtime metric\n";
    out += "# TYPE " + fam + " " + type + "\n";
  };
  for (const auto& [name, c] : counters_) {
    header(name, "counter");
    out += name + " ";
    append_number(out, static_cast<double>(c->value()));
    out.push_back('\n');
  }
  for (const auto& [name, g] : gauges_) {
    header(name, "gauge");
    out += name + " ";
    append_number(out, static_cast<double>(g->value()));
    out.push_back('\n');
  }
  for (const auto& [name, h] : histos_) {
    header(name, "summary");
    metrics::Histogram snap = h->snapshot();
    out += name + "_count ";
    append_number(out, static_cast<double>(snap.count()));
    out.push_back('\n');
    out += name + "_sum ";
    append_number(out, snap.mean_seconds() * static_cast<double>(snap.count()));
    out.push_back('\n');
    out += name + "_max ";
    append_number(out, snap.count() > 0 ? snap.max_seconds() : 0.0);
    out.push_back('\n');
    out += name + "{quantile=\"0.5\"} ";
    append_number(out, snap.count() > 0 ? snap.quantile_seconds(0.5) : 0.0);
    out.push_back('\n');
    out += name + "{quantile=\"0.99\"} ";
    append_number(out, snap.count() > 0 ? snap.quantile_seconds(0.99) : 0.0);
    out.push_back('\n');
  }
  return out;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histos_) h->reset();
}

}  // namespace wan::obs
