#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace wan::obs {

// On-disk layout. The header owns the first 4096-byte page; slots follow,
// 80 bytes each. Atomics are used in-process for the claim/stamp protocol;
// the harvester reads the same bytes as plain integers out of a dead file
// (RawHeader/RawSlot below pin the layout equivalence).
struct FlightRecorder::Header {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint16_t slot_size;
  std::uint32_t node;
  std::uint32_t capacity;
  std::atomic<std::uint64_t> cursor;
  std::int64_t anchor_runtime_ns;
  std::int64_t anchor_wall_us;
  char label[64];
};

struct FlightRecorder::Slot {
  std::atomic<std::uint64_t> seq;  ///< 0 = in flight; index+1 = committed
  std::uint64_t trace;
  std::int64_t at_nanos;
  std::int64_t a0;
  std::int64_t a1;
  std::uint32_t node;
  std::uint8_t kind;
  char name[kNameCap + 1];
};

namespace {

constexpr std::size_t kHeaderBytes = 4096;

// Plain-integer mirrors for harvesting: std::atomic<uint64_t> is required
// lock-free here and shares uint64_t's representation, so the raw structs
// are byte-compatible with what the writer mapped.
struct RawHeader {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint16_t slot_size;
  std::uint32_t node;
  std::uint32_t capacity;
  std::uint64_t cursor;
  std::int64_t anchor_runtime_ns;
  std::int64_t anchor_wall_us;
  char label[64];
};

struct RawSlot {
  std::uint64_t seq;
  std::uint64_t trace;
  std::int64_t at_nanos;
  std::int64_t a0;
  std::int64_t a1;
  std::uint32_t node;
  std::uint8_t kind;
  char name[FlightRecorder::kNameCap + 1];
};

bool read_exact(int fd, off_t off, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t got = ::pread(fd, p, n, off);
    if (got <= 0) return false;
    p += got;
    off += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

}  // namespace

static_assert(sizeof(FlightRecorder::Header) <= kHeaderBytes);
static_assert(sizeof(FlightRecorder::Slot) == 80);
static_assert(sizeof(RawHeader) == sizeof(FlightRecorder::Header));
static_assert(sizeof(RawSlot) == sizeof(FlightRecorder::Slot));
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

std::unique_ptr<FlightRecorder> FlightRecorder::create(const std::string& path,
                                                       std::uint32_t node,
                                                       std::uint32_t capacity,
                                                       std::string* error) {
  if (capacity == 0) {
    if (error) *error = "flight recorder capacity must be > 0";
    return nullptr;
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error) {
      *error = "open('" + path + "'): " + std::strerror(errno);
    }
    return nullptr;
  }
  const std::size_t size = kHeaderBytes + std::size_t{capacity} * sizeof(Slot);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    if (error) {
      *error = "ftruncate('" + path + "'): " + std::strerror(errno);
    }
    ::close(fd);
    return nullptr;
  }
  void* map =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    if (error) {
      *error = "mmap('" + path + "'): " + std::strerror(errno);
    }
    return nullptr;
  }

  auto r = std::unique_ptr<FlightRecorder>(new FlightRecorder());
  r->path_ = path;
  r->map_ = map;
  r->map_size_ = size;
  r->hdr_ = static_cast<Header*>(map);
  r->slots_ = reinterpret_cast<Slot*>(static_cast<std::uint8_t*>(map) +
                                      kHeaderBytes);
  r->capacity_ = capacity;
  // Pages come back zeroed from ftruncate; fill the header and set the magic
  // last so a half-created file never validates.
  r->hdr_->version = kVersion;
  r->hdr_->slot_size = sizeof(Slot);
  r->hdr_->node = node;
  r->hdr_->capacity = capacity;
  r->hdr_->cursor.store(0, std::memory_order_relaxed);
  r->hdr_->magic = kMagic;
  return r;
}

FlightRecorder::~FlightRecorder() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

void FlightRecorder::set_identity(const std::string& label,
                                  std::int64_t anchor_runtime_ns,
                                  std::int64_t anchor_wall_us) {
  hdr_->anchor_runtime_ns = anchor_runtime_ns;
  hdr_->anchor_wall_us = anchor_wall_us;
  std::size_t n = std::min(label.size(), sizeof(hdr_->label) - 1);
  std::memcpy(hdr_->label, label.data(), n);
  hdr_->label[n] = '\0';
}

void FlightRecorder::record(const TraceEvent& e) noexcept {
  const std::uint64_t idx =
      hdr_->cursor.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[idx % capacity_];
  // Invalidate before overwriting so a kill mid-rewrite leaves a slot the
  // harvester rejects rather than a chimera of two events.
  s.seq.store(0, std::memory_order_release);
  s.trace = e.trace;
  s.at_nanos = e.at_nanos;
  s.a0 = e.a0;
  s.a1 = e.a1;
  s.node = e.node;
  s.kind = static_cast<std::uint8_t>(e.kind);
  const char* n = e.name != nullptr ? e.name : "?";
  std::size_t i = 0;
  for (; i < kNameCap && n[i] != '\0'; ++i) s.name[i] = n[i];
  s.name[i] = '\0';
  s.seq.store(idx + 1, std::memory_order_release);
}

std::uint64_t FlightRecorder::recorded() const noexcept {
  return hdr_->cursor.load(std::memory_order_relaxed);
}

std::optional<FlightRecorder::Harvested> FlightRecorder::harvest(
    const std::string& path, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error) {
      *error = "open('" + path + "'): " + std::strerror(errno);
    }
    return std::nullopt;
  }
  RawHeader hdr{};
  if (!read_exact(fd, 0, &hdr, sizeof hdr)) {
    if (error) *error = "short read on ring header of '" + path + "'";
    ::close(fd);
    return std::nullopt;
  }
  if (hdr.magic != kMagic || hdr.version != kVersion ||
      hdr.slot_size != sizeof(Slot) || hdr.capacity == 0) {
    if (error) *error = "'" + path + "' is not a v1 flight-recorder ring";
    ::close(fd);
    return std::nullopt;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) <
          kHeaderBytes + std::size_t{hdr.capacity} * sizeof(Slot)) {
    if (error) *error = "'" + path + "' is truncated";
    ::close(fd);
    return std::nullopt;
  }

  Harvested out;
  hdr.label[sizeof(hdr.label) - 1] = '\0';
  out.label = hdr.label;
  out.node = hdr.node;
  out.anchor_runtime_ns = hdr.anchor_runtime_ns;
  out.anchor_wall_us = hdr.anchor_wall_us;
  out.total_recorded = hdr.cursor;

  const std::uint64_t start =
      hdr.cursor > hdr.capacity ? hdr.cursor - hdr.capacity : 0;
  for (std::uint64_t idx = start; idx < hdr.cursor; ++idx) {
    RawSlot slot{};
    const off_t off = static_cast<off_t>(
        kHeaderBytes + (idx % hdr.capacity) * sizeof(Slot));
    if (!read_exact(fd, off, &slot, sizeof slot)) break;
    if (slot.seq != idx + 1) continue;  // torn by the kill, or lapped
    HarvestedEvent ev;
    ev.trace = slot.trace;
    ev.at_nanos = slot.at_nanos;
    slot.name[kNameCap] = '\0';
    ev.name = slot.name;
    ev.node = slot.node;
    ev.kind = slot.kind <= static_cast<std::uint8_t>(SpanKind::kInstant)
                  ? static_cast<SpanKind>(slot.kind)
                  : SpanKind::kInstant;
    ev.a0 = slot.a0;
    ev.a1 = slot.a1;
    out.events.push_back(std::move(ev));
  }
  ::close(fd);
  return out;
}

}  // namespace wan::obs
