// Causal tracing across the runtime seam.
//
// A TraceId is minted once per causal chain — an access-check session at a
// host, an ACL update (grant/revocation) at a manager, an invocation at a
// user agent — and rides inside the proto messages that continue the chain
// (QueryRequest/QueryResponse, UpdateMsg, RevokeNotify), so every span a node
// records lands on the same logical track regardless of which node, thread,
// or runtime recorded it.
//
// Recording is observational only: events carry runtime-clock timestamps and
// never feed back into protocol behaviour, so a traced simulation run stays
// bit-identical to an untraced one (the chaos trace hash certifies this).
// When no tracer is installed the per-event cost is one relaxed atomic load
// and a predictable branch — no locks, no allocation, nothing on the wire.
//
// Exports: a deterministic line-per-event text form (what the determinism
// tests compare) and Chrome trace_event JSON (open in chrome://tracing or
// https://ui.perfetto.dev; see docs/OBSERVABILITY.md for the schema).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/ids.hpp"

namespace wan::obs {

/// Identifies one causal chain; 0 means "untraced".
using TraceId = std::uint64_t;

/// Chain kinds, disambiguating the id space so two modules minting on the
/// same node can never collide.
enum class TraceKind : std::uint64_t {
  kCheck = 0,   ///< access-check session at an application host
  kUpdate = 1,  ///< ACL update (grant/revoke) issued at a manager
  kInvoke = 2,  ///< end-to-end invocation at a user agent
};

/// Deterministic minting: (kind | node | per-module sequence). Sequences
/// start at 1 so a minted id is never 0; the same sim seed mints the same
/// ids in the same order, which keeps trace output bit-identical across runs.
[[nodiscard]] constexpr TraceId mint(TraceKind kind, HostId node,
                                     std::uint32_t seq) noexcept {
  return (static_cast<std::uint64_t>(kind) << 62) |
         (static_cast<std::uint64_t>(node.value()) << 32) | seq;
}

enum class SpanKind : std::uint8_t {
  kBegin,     ///< chain root (session started, update submitted, ...)
  kSend,      ///< message handed to the transport
  kRecv,      ///< message delivered to a module
  kTimer,     ///< timeout / retransmit fired
  kDecision,  ///< terminal outcome (access decision, update quorum, ...)
  kInstant,   ///< anything else worth a mark
};

[[nodiscard]] const char* to_cstring(SpanKind k) noexcept;

/// One recorded span event. POD on purpose: `name` must point at a string
/// literal (static storage), args are two free-form integers whose meaning
/// is per-name (see docs/OBSERVABILITY.md for the vocabulary).
struct TraceEvent {
  TraceId trace = 0;
  std::int64_t at_nanos = 0;  ///< runtime clock (env.now())
  const char* name = nullptr;
  std::uint32_t node = 0;
  SpanKind kind = SpanKind::kInstant;
  std::int64_t a0 = 0;
  std::int64_t a1 = 0;
};

/// Collects trace events (and, when routed, log lines). Thread-safe: the
/// ThreadedEnv runs one loop thread per node and all of them may record
/// concurrently. Capacity-bounded — past `max_events` new events are counted
/// as dropped rather than grown without bound.
class Tracer {
 public:
  explicit Tracer(std::size_t max_events = 1u << 22);

  void record(const TraceEvent& e);
  /// Formatted log line (routed from wan::log while this tracer is installed).
  void log_line(std::string line);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::vector<std::string> log_lines() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

  /// Deterministic text form: one line per event, in recording order.
  /// Identical runs produce byte-identical text.
  [[nodiscard]] std::string text() const;

  /// Chrome trace_event JSON (object form). Each trace id becomes one async
  /// track: a synthesized "b"/"e" pair spanning its first..last event, plus
  /// one async-instant ("n") per recorded event. Routed log lines ride in a
  /// top-level "logLines" array the viewer ignores.
  [[nodiscard]] std::string chrome_json() const;
  /// Writes chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::string> logs_;
  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
};

/// Currently installed tracer (nullptr = tracing disabled). The hot-path
/// guard: modules call obs::record(...) unconditionally and it no-ops on
/// nullptr after a single relaxed load.
[[nodiscard]] Tracer* tracer() noexcept;

/// Secondary event sink, fed the same TraceEvents as the tracer. The one
/// implementation today is the crash-surviving FlightRecorder ring
/// (obs/flight_recorder.hpp): unlike the Tracer it must keep working up to
/// the instant of a SIGKILL, so it gets the raw event instead of riding the
/// Tracer's mutex-guarded vector. Both hooks are independent: either may be
/// installed without the other.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& e) noexcept = 0;
};

/// Currently installed secondary sink (nullptr = none).
[[nodiscard]] TraceSink* trace_sink() noexcept;

/// Installs `s` as the process-global secondary sink (nullptr to disable).
/// Same scoping contract as install_tracer: one traced world at a time.
void install_trace_sink(TraceSink* s);

/// Installs `t` as the process-global tracer and routes wan::log lines into
/// it. Pass nullptr to disable. Not reference-counted: callers scope
/// installation (see TracerScope) and must not run two traced worlds
/// concurrently — the chaos sweep only installs a tracer in single-seed
/// replay mode for exactly this reason.
void install_tracer(Tracer* t);

/// RAII installation for the duration of one run.
class TracerScope {
 public:
  explicit TracerScope(Tracer* t) { install_tracer(t); }
  ~TracerScope() { install_tracer(nullptr); }
  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;
};

/// Hot-path recording helper: one relaxed load, then branch away when
/// tracing is off. Never allocates when disabled.
inline void record(TraceId trace, SpanKind kind, HostId node,
                   sim::TimePoint at, const char* name, std::int64_t a0 = 0,
                   std::int64_t a1 = 0) {
  Tracer* t = tracer();
  TraceSink* s = trace_sink();
  if (t == nullptr && s == nullptr) return;
  TraceEvent e;
  e.trace = trace;
  e.at_nanos = at.nanos_since_origin();
  e.name = name;
  e.node = node.value();
  e.kind = kind;
  e.a0 = a0;
  e.a1 = a1;
  if (t != nullptr) t->record(e);
  if (s != nullptr) s->record(e);
}

/// True when a tracer or sink is installed (for callers that want to skip
/// building args entirely).
[[nodiscard]] inline bool enabled() noexcept {
  return tracer() != nullptr || trace_sink() != nullptr;
}

}  // namespace wan::obs
