// Crash-surviving flight recorder: a bounded, mmap-backed ring of the last N
// trace events a process recorded, written lock-free and readable after the
// process is SIGKILLed.
//
// Why the Tracer is not enough: its event vector lives on the heap and dies
// with the process, so a `--proc-chaos` SIGKILL erases exactly the events
// that explain what the victim was doing. The flight recorder writes every
// event straight into an mmap'd file instead — dirty pages belong to the
// kernel's page cache, which survives any process death short of a machine
// crash (the same durability argument proto/journal.hpp relies on). No
// msync, no flush: SIGKILL cannot unwrite an mmap'd store.
//
// Writer protocol (multi-thread, lock-free): a slot index is claimed with one
// relaxed fetch_add on the header cursor; the slot's sequence stamp is zeroed
// (release), the payload is written, and the stamp is set to index+1 with a
// release store as the LAST write. A harvester — which by contract runs only
// once the writer process is dead — accepts a slot only when its stamp
// matches the expected index, so a slot torn mid-write by the kill (or lapped
// by a concurrent wrap-around) is skipped, never misread. Event names are
// copied into the slot (truncated to kNameCap): the TraceEvent's string
// literal pointer means nothing in the harvesting process.
//
// The header carries the same wall-clock anchor as a process trace file
// (obs/trace_io.hpp), so harvested events land on the merged cross-process
// timeline exactly like live-exported ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace wan::obs {

class FlightRecorder : public TraceSink {
 public:
  static constexpr std::uint32_t kMagic = 0x524C4657;  // "WFLR", little-endian
  static constexpr std::uint16_t kVersion = 1;
  /// Longest span name stored verbatim; longer names are truncated.
  static constexpr std::size_t kNameCap = 27;

  /// Creates (truncating) the ring file with `capacity` slots. Returns
  /// nullptr with `*error` set on I/O failure.
  static std::unique_ptr<FlightRecorder> create(const std::string& path,
                                                std::uint32_t node,
                                                std::uint32_t capacity,
                                                std::string* error);

  ~FlightRecorder() override;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stamps the header with the process label and the wall-clock anchor
  /// (runtime-clock nanos paired with system_clock micros at one instant).
  void set_identity(const std::string& label, std::int64_t anchor_runtime_ns,
                    std::int64_t anchor_wall_us);

  /// Lock-free event write; safe from any thread, at any time up to SIGKILL.
  void record(const TraceEvent& e) noexcept override;

  /// Total events ever recorded (monotonic; exceeds capacity once wrapped).
  [[nodiscard]] std::uint64_t recorded() const noexcept;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// One event recovered from a ring. Name is an owned copy — the writer
  /// process (and its string literals) no longer exists.
  struct HarvestedEvent {
    TraceId trace = 0;
    std::int64_t at_nanos = 0;
    std::string name;
    std::uint32_t node = 0;
    SpanKind kind = SpanKind::kInstant;
    std::int64_t a0 = 0;
    std::int64_t a1 = 0;
  };
  struct Harvested {
    std::string label;
    std::uint32_t node = 0;
    std::int64_t anchor_runtime_ns = 0;
    std::int64_t anchor_wall_us = 0;
    std::uint64_t total_recorded = 0;  ///< cursor value, counts overwritten
    std::vector<HarvestedEvent> events;  ///< surviving slots, oldest first
  };

  /// Reads a ring written by a (now dead) process. Torn or lapped slots are
  /// skipped. Returns nullopt with `*error` set on open/validation failure.
  static std::optional<Harvested> harvest(const std::string& path,
                                          std::string* error);

  // On-disk layout types (defined in flight_recorder.cpp; public so the
  // layout pins there can static_assert against them).
  struct Header;
  struct Slot;

 private:
  FlightRecorder() = default;

  std::string path_;
  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  Header* hdr_ = nullptr;
  Slot* slots_ = nullptr;
  std::uint32_t capacity_ = 0;
};

}  // namespace wan::obs
