// Uniform metric handles over a process-global registry.
//
// Handles are cheap and stable: `Registry::global().counter("name")` returns
// a reference that lives as long as the process, so call sites cache it in a
// function-local static and pay one registry lookup ever:
//
//   static obs::Counter& c =
//       obs::Registry::global().counter("wan_decisions_total{path=\"cache\"}");
//   c.inc();
//
// Counters/gauges are lock-free atomics; histograms wrap metrics::Histogram
// behind a mutex (record path is a handful of float ops, contention is nil).
// Exposition is Prometheus text format: the metric name string is used
// verbatim, so labels are embedded by the caller as `family{k="v"}` and
// families group naturally in the sorted dump.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "metrics/histogram.hpp"

namespace wan::obs {

/// Monotonic counter. inc() is a relaxed atomic add — safe from any thread.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time gauge (signed, settable).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Thread-safe wrapper over the log-linear metrics::Histogram.
class Histo {
 public:
  void observe_seconds(double s) {
    std::lock_guard<std::mutex> lk(mu_);
    hist_.record_seconds(s);
  }
  void observe(sim::Duration d) { observe_seconds(d.to_seconds()); }
  [[nodiscard]] metrics::Histogram snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return hist_;
  }
  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    hist_.reset();
  }

 private:
  mutable std::mutex mu_;
  metrics::Histogram hist_;
};

/// Name-keyed registry. Handles returned by counter()/gauge()/histogram()
/// are owned by the registry and never move or die, so references may be
/// cached indefinitely (the function-local-static pattern above).
class Registry {
 public:
  [[nodiscard]] static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histo& histogram(const std::string& name);

  /// Prometheus text exposition, sorted by metric name. Histograms export
  /// _count/_sum/_max plus p50/p99 quantile samples.
  [[nodiscard]] std::string prometheus_text() const;

  /// Zeroes every registered value (handles stay valid). Test-only escape
  /// hatch: the registry is process-global, so tests isolate by resetting.
  void reset_values();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histo>> histos_;
};

}  // namespace wan::obs
