#include "obs/trace_io.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace wan::obs {
namespace {

void append_printf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_printf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_printf(out, "\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

[[nodiscard]] std::uint32_t mint_node_of(TraceId t) {
  return static_cast<std::uint32_t>((t >> 32) & 0x3FFFFFFFu);
}

[[nodiscard]] TraceKind kind_of(TraceId t) {
  return static_cast<TraceKind>(t >> 62);
}

}  // namespace

ProcessTrace snapshot_process_trace(const Tracer& tracer, std::string label,
                                    std::uint32_t node,
                                    std::int64_t anchor_runtime_ns,
                                    std::int64_t anchor_wall_us) {
  ProcessTrace pt;
  pt.label = std::move(label);
  pt.node = node;
  pt.anchor_runtime_ns = anchor_runtime_ns;
  pt.anchor_wall_us = anchor_wall_us;
  pt.dropped = tracer.dropped();
  const std::vector<TraceEvent> evs = tracer.events();
  pt.events.reserve(evs.size());
  for (const TraceEvent& e : evs) {
    ProcessTrace::Event out;
    out.trace = e.trace;
    out.at_nanos = e.at_nanos;
    out.name = e.name != nullptr ? e.name : "?";
    out.node = e.node;
    out.kind = e.kind;
    out.a0 = e.a0;
    out.a1 = e.a1;
    pt.events.push_back(std::move(out));
  }
  return pt;
}

ProcessTrace from_harvest(const FlightRecorder::Harvested& h,
                          std::string label) {
  ProcessTrace pt;
  pt.label = std::move(label);
  if (pt.label.empty()) pt.label = h.label;
  pt.node = h.node;
  pt.anchor_runtime_ns = h.anchor_runtime_ns;
  pt.anchor_wall_us = h.anchor_wall_us;
  pt.from_flight_recorder = true;
  pt.dropped = h.total_recorded - h.events.size();
  pt.events.reserve(h.events.size());
  for (const FlightRecorder::HarvestedEvent& e : h.events) {
    ProcessTrace::Event out;
    out.trace = e.trace;
    out.at_nanos = e.at_nanos;
    out.name = e.name;
    out.node = e.node;
    out.kind = e.kind;
    out.a0 = e.a0;
    out.a1 = e.a1;
    pt.events.push_back(std::move(out));
  }
  return pt;
}

bool write_process_trace(const std::string& path, const ProcessTrace& pt,
                         std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    if (error) *error = "cannot open '" + tmp + "' for writing";
    return false;
  }
  std::fprintf(f, "WANTRACE 1\n");
  std::fprintf(f, "label %s\n", pt.label.c_str());
  std::fprintf(f, "node %u\n", pt.node);
  std::fprintf(f, "anchor_runtime_ns %" PRId64 "\n", pt.anchor_runtime_ns);
  std::fprintf(f, "anchor_wall_us %" PRId64 "\n", pt.anchor_wall_us);
  std::fprintf(f, "flightrecorder %d\n", pt.from_flight_recorder ? 1 : 0);
  std::fprintf(f, "dropped %" PRIu64 "\n", pt.dropped);
  for (const ProcessTrace::Event& e : pt.events) {
    std::fprintf(f,
                 "E %016" PRIx64 " %" PRId64 " %u %d %" PRId64 " %" PRId64
                 " %s\n",
                 e.trace, e.at_nanos, e.node, static_cast<int>(e.kind), e.a0,
                 e.a1, e.name.empty() ? "?" : e.name.c_str());
  }
  const bool ok = std::fflush(f) == 0 && !std::ferror(f);
  std::fclose(f);
  if (!ok) {
    if (error) *error = "write failure on '" + tmp + "'";
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "rename('" + tmp + "' -> '" + path + "') failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<ProcessTrace> load_process_trace(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  const auto fail = [&](const std::string& what) {
    if (error) *error = "'" + path + "': " + what;
    return std::nullopt;
  };
  std::string line;
  if (!std::getline(in, line) || line != "WANTRACE 1") {
    return fail("missing WANTRACE 1 header");
  }
  ProcessTrace pt;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == 'E' && line.size() > 1 && line[1] == ' ') {
      ProcessTrace::Event e;
      char name[128] = {0};
      int kind = 0;
      if (std::sscanf(line.c_str(),
                      "E %" SCNx64 " %" SCNd64 " %u %d %" SCNd64 " %" SCNd64
                      " %127s",
                      &e.trace, &e.at_nanos, &e.node, &kind, &e.a0, &e.a1,
                      name) != 7) {
        return fail("bad event line '" + line + "'");
      }
      if (kind < 0 || kind > static_cast<int>(SpanKind::kInstant)) {
        kind = static_cast<int>(SpanKind::kInstant);
      }
      e.kind = static_cast<SpanKind>(kind);
      e.name = name;
      pt.events.push_back(std::move(e));
      continue;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "label") {
      fields >> pt.label;
    } else if (key == "node") {
      fields >> pt.node;
    } else if (key == "anchor_runtime_ns") {
      fields >> pt.anchor_runtime_ns;
    } else if (key == "anchor_wall_us") {
      fields >> pt.anchor_wall_us;
    } else if (key == "flightrecorder") {
      int v = 0;
      fields >> v;
      pt.from_flight_recorder = v != 0;
    } else if (key == "dropped") {
      fields >> pt.dropped;
    }
    // Unknown keys are skipped: a v1 reader stays usable on v1+ files.
  }
  return pt;
}

MergedTrace merge_traces(std::vector<ProcessTrace> procs) {
  MergedTrace m;
  m.procs = std::move(procs);
  std::size_t total = 0;
  for (const ProcessTrace& p : m.procs) total += p.events.size();
  m.events.reserve(total);
  for (std::size_t p = 0; p < m.procs.size(); ++p) {
    for (std::size_t i = 0; i < m.procs[p].events.size(); ++i) {
      MergedTrace::Event e;
      e.proc = p;
      e.idx = i;
      e.wall_us = m.procs[p].wall_us_of(m.procs[p].events[i].at_nanos);
      m.events.push_back(e);
    }
  }
  std::sort(m.events.begin(), m.events.end(),
            [](const MergedTrace::Event& a, const MergedTrace::Event& b) {
              if (a.wall_us != b.wall_us) return a.wall_us < b.wall_us;
              if (a.proc != b.proc) return a.proc < b.proc;
              return a.idx < b.idx;
            });
  m.base_wall_us = m.events.empty() ? 0.0 : m.events.front().wall_us;
  return m;
}

std::vector<TraceEvent> analysis_events(const MergedTrace& m) {
  std::vector<TraceEvent> out;
  out.reserve(m.events.size());
  for (const MergedTrace::Event& me : m.events) {
    const ProcessTrace::Event& src = m.at(me);
    TraceEvent e;
    e.trace = src.trace;
    e.at_nanos =
        static_cast<std::int64_t>((me.wall_us - m.base_wall_us) * 1000.0);
    e.name = src.name.c_str();
    e.node = src.node;
    e.kind = src.kind;
    e.a0 = src.a0;
    e.a1 = src.a1;
    out.push_back(e);
  }
  return out;
}

std::vector<ChainStats> chain_stats(const MergedTrace& m) {
  std::vector<ChainStats> out;
  std::map<TraceId, std::size_t> index;
  std::map<TraceId, std::set<std::size_t>> procs;
  for (const MergedTrace::Event& me : m.events) {
    const ProcessTrace::Event& src = m.at(me);
    if (src.trace == 0) continue;
    auto [it, fresh] = index.try_emplace(src.trace, out.size());
    if (fresh) {
      ChainStats cs;
      cs.trace = src.trace;
      cs.kind = kind_of(src.trace);
      cs.mint_node = mint_node_of(src.trace);
      // Events are visited in anchored-clock order, so the first sighting IS
      // the chain's earliest event.
      cs.root_first = src.node == cs.mint_node;
      out.push_back(cs);
    }
    ChainStats& cs = out[it->second];
    ++cs.event_count;
    cs.proc_count = procs[src.trace].insert(me.proc).second
                        ? cs.proc_count + 1
                        : cs.proc_count;
  }
  return out;
}

std::string merged_chrome_json(const MergedTrace& m) {
  std::string out;
  out.reserve(m.events.size() * 192 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out.push_back(',');
    first = false;
  };
  for (std::size_t p = 0; p < m.procs.size(); ++p) {
    comma();
    append_printf(out,
                  "{\"ph\":\"M\",\"pid\":%zu,\"name\":\"process_name\","
                  "\"args\":{\"name\":",
                  p);
    std::string label = m.procs[p].label;
    if (m.procs[p].from_flight_recorder) label += " (flight recorder)";
    append_json_string(out, label);
    out += "}}";
    comma();
    append_printf(out,
                  "{\"ph\":\"M\",\"pid\":%zu,\"name\":\"process_sort_index\","
                  "\"args\":{\"sort_index\":%zu}}",
                  p, p);
  }
  for (const MergedTrace::Event& me : m.events) {
    const ProcessTrace::Event& e = m.at(me);
    comma();
    append_printf(out,
                  "{\"ph\":\"X\",\"cat\":\"wan\",\"name\":\"%s\",\"pid\":%zu,"
                  "\"tid\":%u,\"ts\":%.3f,\"dur\":1,\"args\":{\"kind\":\"%s\","
                  "\"a0\":%" PRId64 ",\"a1\":%" PRId64
                  ",\"trace\":\"0x%016" PRIx64 "\"}}",
                  e.name.c_str(), me.proc, e.node, me.wall_us - m.base_wall_us,
                  to_cstring(e.kind), e.a0, e.a1, e.trace);
  }
  // Flow arrows: one s -> t... -> f sequence per cross-process chain, bound
  // to the first slice the chain records on each process it reaches.
  std::map<TraceId, std::vector<const MergedTrace::Event*>> touches;
  std::map<TraceId, std::set<std::size_t>> seen;
  for (const MergedTrace::Event& me : m.events) {
    const ProcessTrace::Event& e = m.at(me);
    if (e.trace == 0) continue;
    if (seen[e.trace].insert(me.proc).second) {
      touches[e.trace].push_back(&me);
    }
  }
  for (const auto& [trace, firsts] : touches) {
    if (firsts.size() < 2) continue;
    const char* flow_name = m.at(*firsts.front()).name.c_str();
    for (std::size_t i = 0; i < firsts.size(); ++i) {
      const MergedTrace::Event& me = *firsts[i];
      const ProcessTrace::Event& e = m.at(me);
      const char ph = i == 0 ? 's' : (i + 1 == firsts.size() ? 'f' : 't');
      comma();
      append_printf(out,
                    "{\"ph\":\"%c\",\"cat\":\"flow\",\"name\":\"%s\","
                    "\"id\":\"0x%016" PRIx64
                    "\",\"pid\":%zu,\"tid\":%u,\"ts\":%.3f",
                    ph, flow_name, trace, me.proc, e.node,
                    me.wall_us - m.base_wall_us);
      if (ph == 'f') out += ",\"bp\":\"e\"";
      out += "}";
    }
  }
  out += "]}";
  return out;
}

bool write_merged_chrome_json(const std::string& path, const MergedTrace& m,
                              std::string* error) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  f << merged_chrome_json(m);
  if (!f) {
    if (error) *error = "write failure on '" + path + "'";
    return false;
  }
  return true;
}

std::string merged_text(const MergedTrace& m) {
  std::string out;
  out.reserve(m.events.size() * 96);
  for (const MergedTrace::Event& me : m.events) {
    const ProcessTrace::Event& e = m.at(me);
    append_printf(out,
                  "t_us=%.3f proc=%s node=%u trace=%016" PRIx64 " %s %s",
                  me.wall_us - m.base_wall_us, m.procs[me.proc].label.c_str(),
                  e.node, e.trace, to_cstring(e.kind),
                  e.name.empty() ? "?" : e.name.c_str());
    if (e.a0 != 0 || e.a1 != 0) {
      append_printf(out, " a0=%" PRId64 " a1=%" PRId64, e.a0, e.a1);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace wan::obs
