#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "util/logging.hpp"

namespace wan::obs {
namespace {

std::atomic<Tracer*> g_tracer{nullptr};
std::atomic<TraceSink*> g_sink{nullptr};

void append_printf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_printf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

// JSON string escaping for log lines (names are literals and stay ASCII).
void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_printf(out, "\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

const char* to_cstring(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kBegin:
      return "begin";
    case SpanKind::kSend:
      return "send";
    case SpanKind::kRecv:
      return "recv";
    case SpanKind::kTimer:
      return "timer";
    case SpanKind::kDecision:
      return "decision";
    case SpanKind::kInstant:
      return "instant";
  }
  return "?";
}

Tracer::Tracer(std::size_t max_events) : max_events_(max_events) {
  events_.reserve(std::min<std::size_t>(max_events_, 1u << 16));
}

void Tracer::record(const TraceEvent& e) {
  std::lock_guard<std::mutex> lk(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

void Tracer::log_line(std::string line) {
  std::lock_guard<std::mutex> lk(mu_);
  if (logs_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  logs_.push_back(std::move(line));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

std::vector<std::string> Tracer::log_lines() const {
  std::lock_guard<std::mutex> lk(mu_);
  return logs_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  events_.clear();
  logs_.clear();
  dropped_ = 0;
}

std::string Tracer::text() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  out.reserve(events_.size() * 64);
  for (const TraceEvent& e : events_) {
    append_printf(out, "t=%" PRId64 " trace=%016" PRIx64 " node=%u %s %s",
                  e.at_nanos, e.trace, e.node, to_cstring(e.kind),
                  e.name != nullptr ? e.name : "?");
    if (e.a0 != 0 || e.a1 != 0) {
      append_printf(out, " a0=%" PRId64 " a1=%" PRId64, e.a0, e.a1);
    }
    out.push_back('\n');
  }
  return out;
}

std::string Tracer::chrome_json() const {
  std::vector<TraceEvent> evs;
  std::vector<std::string> logs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    evs = events_;
    logs = logs_;
  }

  // First/last event index per trace, for the synthesized async b/e pair
  // that makes each causal chain one named track in the viewer.
  struct Extent {
    std::size_t first;
    std::size_t last;
  };
  std::unordered_map<TraceId, Extent> extents;
  extents.reserve(evs.size());
  for (std::size_t i = 0; i < evs.size(); ++i) {
    auto [it, fresh] = extents.try_emplace(evs[i].trace, Extent{i, i});
    if (!fresh) it->second.last = i;
  }

  std::string out;
  out.reserve(evs.size() * 160 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first_ev = true;
  auto emit = [&](char ph, const TraceEvent& e, const char* name) {
    if (!first_ev) out.push_back(',');
    first_ev = false;
    // trace_event async events pair by (cat, id, name); ts is microseconds.
    append_printf(out,
                  "{\"ph\":\"%c\",\"cat\":\"wan\",\"id\":\"0x%016" PRIx64
                  "\",\"name\":\"%s\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f",
                  ph, e.trace, name, e.node, e.node, e.at_nanos / 1000.0);
    if (ph == 'n') {
      append_printf(out,
                    ",\"args\":{\"kind\":\"%s\",\"a0\":%" PRId64
                    ",\"a1\":%" PRId64 "}",
                    to_cstring(e.kind), e.a0, e.a1);
    }
    out.push_back('}');
  };
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    const Extent& ext = extents.at(e.trace);
    // The track is named after the chain's root event so the viewer groups
    // every span of one check/update/invoke under one label.
    const char* root = evs[ext.first].name;
    if (root == nullptr) root = "?";
    if (i == ext.first) emit('b', e, root);
    emit('n', e, e.name != nullptr ? e.name : "?");
    if (i == ext.last) emit('e', evs[ext.last], root);
  }
  out += "],\"logLines\":[";
  for (std::size_t i = 0; i < logs.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_json_string(out, logs[i]);
  }
  out += "]}";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << chrome_json();
  return static_cast<bool>(f);
}

Tracer* tracer() noexcept { return g_tracer.load(std::memory_order_relaxed); }

TraceSink* trace_sink() noexcept {
  return g_sink.load(std::memory_order_relaxed);
}

void install_trace_sink(TraceSink* s) {
  g_sink.store(s, std::memory_order_release);
}

void install_tracer(Tracer* t) {
  g_tracer.store(t, std::memory_order_release);
  if (t != nullptr) {
    log::set_mirror([t](const std::string& line) { t->log_line(line); });
  } else {
    log::clear_mirror();
  }
}

}  // namespace wan::obs
