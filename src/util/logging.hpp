// Minimal leveled logger for the simulator and the threaded runtime.
//
// Logging is off by default (benchmarks and property tests run millions of
// events); tests and examples flip the level when tracing a scenario. The
// logger prepends the simulation time when a time source has been installed,
// which makes protocol traces directly comparable to the paper's figures.
//
// Thread safety: ThreadedEnv runs one loop thread per node, all of which may
// log while the driver thread installs/removes sinks. The level is an atomic;
// sink, time source, and mirror are shared_ptr snapshots copied under a lock
// and invoked outside it — so a sink swap never races an in-flight emit and a
// removed sink is only destroyed once no emit still holds a reference.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace wan::log {

enum class Level { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global minimum level; messages below it are discarded before formatting.
Level level() noexcept;
void set_level(Level lvl) noexcept;

/// Sink invoked with fully formatted lines; defaults to stderr.
using Sink = std::function<void(Level, const std::string&)>;
void set_sink(Sink sink);
void reset_sink();

/// Optional time source; when set, log lines carry "t=<value>" prefixes.
/// The simulator installs its scheduler clock here (value in seconds).
void set_time_source(std::function<double()> source);
void clear_time_source();

/// Mirror invoked with every formatted line *in addition to* the sink,
/// regardless of which sink is installed. obs::install_tracer routes log
/// lines into the trace via this hook (the indirection keeps wan_util from
/// depending on wan_obs). The mirror receives the line without a level tag
/// decision of its own — filtering already happened at the level gate.
using Mirror = std::function<void(const std::string&)>;
void set_mirror(Mirror mirror);
void clear_mirror();

namespace detail {
void emit(Level lvl, std::string msg);

class LineBuilder {
 public:
  explicit LineBuilder(Level lvl) : lvl_(lvl) {}
  ~LineBuilder() { emit(lvl_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace wan::log

#define WAN_LOG(lvl)                                 \
  if (::wan::log::level() > ::wan::log::Level::lvl) { \
  } else                                             \
    ::wan::log::detail::LineBuilder(::wan::log::Level::lvl)

#define WAN_TRACE WAN_LOG(kTrace)
#define WAN_DEBUG WAN_LOG(kDebug)
#define WAN_INFO WAN_LOG(kInfo)
#define WAN_WARN WAN_LOG(kWarn)
#define WAN_ERROR WAN_LOG(kError)
