// Strong identifier types used throughout the library.
//
// The paper's model names three kinds of principals: hosts (sites running a
// replicated application), users (principals that invoke applications), and
// applications themselves. Managers are ordinary hosts that additionally run
// the manager portion of the protocol, so they are identified by HostId.
//
// A dedicated strong type per identifier prevents the classic bug of passing
// a user id where a host id is expected (everything is an integer underneath).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace wan {

/// CRTP-free strong integer id. `Tag` makes distinct instantiations
/// incompatible; the underlying value is accessible for formatting and
/// container indexing but never converts implicitly.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;

  /// Sentinel "no id" value; default-constructed ids are invalid.
  static constexpr underlying_type kInvalid = ~underlying_type{0};

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(underlying_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

 private:
  underlying_type value_ = kInvalid;
};

struct HostIdTag {};
struct UserIdTag {};
struct AppIdTag {};

/// Identifies a site (application host or manager host) in the system.
using HostId = StrongId<HostIdTag>;
/// Identifies a user principal (the paper assumes unique user ids).
using UserId = StrongId<UserIdTag>;
/// Identifies a distributed application A.
using AppId = StrongId<AppIdTag>;

/// Human-readable rendering, e.g. "host#3", used in logs and test failures.
std::string to_string(HostId id);
std::string to_string(UserId id);
std::string to_string(AppId id);

std::ostream& operator<<(std::ostream& os, HostId id);
std::ostream& operator<<(std::ostream& os, UserId id);
std::ostream& operator<<(std::ostream& os, AppId id);

}  // namespace wan

template <typename Tag>
struct std::hash<wan::StrongId<Tag>> {
  std::size_t operator()(wan::StrongId<Tag> id) const noexcept {
    return std::hash<typename wan::StrongId<Tag>::underlying_type>{}(id.value());
  }
};
