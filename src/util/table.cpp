#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace wan {

void Table::set_header(std::vector<std::string> header) {
  WAN_REQUIRE(!header.empty());
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) WAN_REQUIRE(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt(std::int64_t v) { return std::to_string(v); }
std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }

std::string Table::render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell << std::string(width[i] - cell.size(), ' ');
      os << (i + 1 < cols ? " | " : " |");
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << '|';
    for (std::size_t i = 0; i < cols; ++i)
      os << std::string(width[i] + 2, '-') << '|';
    os << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

std::string render_ascii_chart(const std::string& title,
                               const std::vector<AsciiChartSeries>& series,
                               int height) {
  WAN_REQUIRE(height >= 2);
  std::size_t n = 0;
  for (const auto& s : series) n = std::max(n, s.values.size());
  if (n == 0) return title + "\n(no data)\n";

  // Grid: `height` rows from y=1 (top) to y=0 (bottom), 4 columns per x step.
  const int step = 4;
  const std::size_t cols = n * step;
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(cols, ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      double y = std::clamp(s.values[i], 0.0, 1.0);
      auto row = static_cast<int>((1.0 - y) * (height - 1) + 0.5);
      std::size_t col = i * step + step / 2;
      char& cell = grid[static_cast<std::size_t>(row)][col];
      cell = (cell == ' ' || cell == s.marker) ? s.marker : '+';
    }
  }

  std::ostringstream os;
  os << title << '\n';
  for (int r = 0; r < height; ++r) {
    const double y = 1.0 - static_cast<double>(r) / (height - 1);
    char label[16];
    std::snprintf(label, sizeof(label), "%4.2f |", y);
    os << label << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << "     +" << std::string(cols, '-') << '\n';
  os << "      ";
  for (std::size_t i = 0; i < n; ++i) {
    char label[32];
    std::snprintf(label, sizeof(label), "%-4zu", i + 1);
    os << label;
  }
  os << "(C)\n";
  for (const auto& s : series)
    os << "      " << s.marker << " = " << s.name << '\n';
  return os.str();
}

}  // namespace wan
