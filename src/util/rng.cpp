#include "util/rng.hpp"

#include <cmath>

namespace wan {

double Rng::next_exponential(double mean) noexcept {
  WAN_ASSERT(mean > 0.0);
  // Avoid log(0): next_double() is in [0,1), so 1-u is in (0,1].
  const double u = next_double();
  return -mean * std::log1p(-u);
}

double Rng::next_normal(double mean, double stddev) noexcept {
  WAN_ASSERT(stddev >= 0.0);
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::size_t weighted_pick(Rng& rng, const double* weights, std::size_t n) {
  WAN_REQUIRE(n > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    WAN_REQUIRE(weights[i] >= 0.0);
    total += weights[i];
  }
  WAN_REQUIRE(total > 0.0);
  double x = rng.next_double() * total;
  for (std::size_t i = 0; i < n; ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return n - 1;  // floating-point slop: the last positive-weight bucket
}

}  // namespace wan
