#include "util/ids.hpp"

#include <ostream>

namespace wan {

namespace {
std::string render(const char* prefix, std::uint32_t v, bool valid) {
  std::string out = prefix;
  out += '#';
  out += valid ? std::to_string(v) : std::string("invalid");
  return out;
}
}  // namespace

std::string to_string(HostId id) { return render("host", id.value(), id.valid()); }
std::string to_string(UserId id) { return render("user", id.value(), id.valid()); }
std::string to_string(AppId id) { return render("app", id.value(), id.valid()); }

std::ostream& operator<<(std::ostream& os, HostId id) { return os << to_string(id); }
std::ostream& operator<<(std::ostream& os, UserId id) { return os << to_string(id); }
std::ostream& operator<<(std::ostream& os, AppId id) { return os << to_string(id); }

}  // namespace wan
