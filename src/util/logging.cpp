#include "util/logging.hpp"

#include <cstdio>
#include <utility>

namespace wan::log {

namespace {

Level g_level = Level::kOff;
Sink g_sink;  // empty -> stderr
std::function<double()> g_time_source;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

Level level() noexcept { return g_level; }
void set_level(Level lvl) noexcept { g_level = lvl; }

void set_sink(Sink sink) { g_sink = std::move(sink); }
void reset_sink() { g_sink = nullptr; }

void set_time_source(std::function<double()> source) { g_time_source = std::move(source); }
void clear_time_source() { g_time_source = nullptr; }

namespace detail {

void emit(Level lvl, std::string msg) {
  if (lvl < g_level) return;
  std::string line;
  line.reserve(msg.size() + 32);
  line += '[';
  line += level_name(lvl);
  line += ']';
  if (g_time_source) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " t=%.6f", g_time_source());
    line += buf;
  }
  line += ' ';
  line += msg;
  if (g_sink) {
    g_sink(lvl, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace detail

}  // namespace wan::log
