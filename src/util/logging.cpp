#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

namespace wan::log {

namespace {

std::atomic<Level> g_level{Level::kOff};

// Sink/time-source/mirror swaps must not race in-flight emits on other
// threads. Each is a shared_ptr guarded by g_mu: emit copies the pointer
// under the lock and invokes outside it, so a concurrent reset only drops
// the registry reference — the callable stays alive until the last emit
// using it returns.
std::mutex g_mu;
std::shared_ptr<const Sink> g_sink;  // null -> stderr
std::shared_ptr<const std::function<double()>> g_time_source;
std::shared_ptr<const Mirror> g_mirror;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) noexcept { g_level.store(lvl, std::memory_order_relaxed); }

void set_sink(Sink sink) {
  auto p = sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr;
  std::lock_guard<std::mutex> lk(g_mu);
  g_sink = std::move(p);
}
void reset_sink() { set_sink(nullptr); }

void set_time_source(std::function<double()> source) {
  auto p = source ? std::make_shared<const std::function<double()>>(std::move(source)) : nullptr;
  std::lock_guard<std::mutex> lk(g_mu);
  g_time_source = std::move(p);
}
void clear_time_source() { set_time_source(nullptr); }

void set_mirror(Mirror mirror) {
  auto p = mirror ? std::make_shared<const Mirror>(std::move(mirror)) : nullptr;
  std::lock_guard<std::mutex> lk(g_mu);
  g_mirror = std::move(p);
}
void clear_mirror() { set_mirror(nullptr); }

namespace detail {

void emit(Level lvl, std::string msg) {
  if (lvl < level()) return;
  std::shared_ptr<const Sink> sink;
  std::shared_ptr<const std::function<double()>> time_source;
  std::shared_ptr<const Mirror> mirror;
  {
    std::lock_guard<std::mutex> lk(g_mu);
    sink = g_sink;
    time_source = g_time_source;
    mirror = g_mirror;
  }
  std::string line;
  line.reserve(msg.size() + 32);
  line += '[';
  line += level_name(lvl);
  line += ']';
  if (time_source) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " t=%.6f", (*time_source)());
    line += buf;
  }
  line += ' ';
  line += msg;
  if (mirror) (*mirror)(line);
  if (sink) {
    (*sink)(lvl, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace detail

}  // namespace wan::log
