// Lightweight contract checks, active in all build types.
//
// The simulator is deterministic, so a violated invariant is always
// reproducible from the run seed; failing fast with context is worth far more
// than the nanoseconds saved by compiling checks out.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wan::detail {
[[noreturn]] inline void assert_fail(const char* kind, const char* expr,
                                     const char* file, int line) {
  std::fprintf(stderr, "[wan] %s failed: %s at %s:%d\n", kind, expr, file, line);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void assert_fail_msg(const char* kind, const char* expr,
                                         const char* msg, const char* file,
                                         int line) {
  std::fprintf(stderr, "[wan] %s failed: %s at %s:%d\n  %s\n", kind, expr,
               file, line, msg);
  std::fflush(stderr);
  std::abort();
}
}  // namespace wan::detail

/// Internal invariant: "this cannot happen unless the library has a bug".
#define WAN_ASSERT(expr) \
  ((expr) ? (void)0 : ::wan::detail::assert_fail("assertion", #expr, __FILE__, __LINE__))

/// Precondition on a public API: "the caller handed us nonsense".
#define WAN_REQUIRE(expr) \
  ((expr) ? (void)0 : ::wan::detail::assert_fail("precondition", #expr, __FILE__, __LINE__))

/// Precondition with an explanation of WHY the constraint exists — for
/// configuration checks whose failure message must tell an operator what to
/// change, not just which expression was false.
#define WAN_REQUIRE_MSG(expr, msg)                                       \
  ((expr) ? (void)0                                                     \
          : ::wan::detail::assert_fail_msg("precondition", #expr, msg, \
                                           __FILE__, __LINE__))

/// Marks unreachable control flow.
#define WAN_UNREACHABLE(msg) \
  ::wan::detail::assert_fail("unreachable", msg, __FILE__, __LINE__)
