// Non-cryptographic hashing helpers.
//
// FNV-1a is used for hashing composite keys (e.g. (app, user) pairs) and as
// the mixing primitive inside the toy signature scheme in src/auth. It is
// explicitly NOT a cryptographic hash; see auth/credentials.hpp for the
// security disclaimer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wan {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over raw bytes, continuing from `seed`.
constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Mixes a 64-bit value into a running hash (for composite keys).
constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

/// Combines two std::size_t hashes (boost::hash_combine recipe).
constexpr std::size_t hash_combine(std::size_t a, std::size_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// Seeded, stable 64-bit hash (splitmix64 finalizer over seed + key). Stable
/// means the value is pinned forever: the shard ring (src/shard) persists
/// placements derived from it and the wire carries ring seeds, so changing
/// these constants is a breaking change on par with renumbering wire tags.
/// Every bit of the input avalanches, which the shard balance property test
/// depends on; the reliable-channel dedup window uses it to bucket flow keys
/// so peer-chosen host ids cannot cluster.
constexpr std::uint64_t stable_hash64(std::uint64_t seed,
                                      std::uint64_t x) noexcept {
  std::uint64_t z = x + 0x9e3779b97f4a7c15ULL + seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Two-word variant (e.g. an (app, user) key): feeds the first word's hash
/// back as the seed so the pair avalanches jointly.
constexpr std::uint64_t stable_hash64(std::uint64_t seed, std::uint64_t a,
                                      std::uint64_t b) noexcept {
  return stable_hash64(stable_hash64(seed, a), b);
}

}  // namespace wan
