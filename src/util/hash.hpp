// Non-cryptographic hashing helpers.
//
// FNV-1a is used for hashing composite keys (e.g. (app, user) pairs) and as
// the mixing primitive inside the toy signature scheme in src/auth. It is
// explicitly NOT a cryptographic hash; see auth/credentials.hpp for the
// security disclaimer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wan {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over raw bytes, continuing from `seed`.
constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Mixes a 64-bit value into a running hash (for composite keys).
constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

/// Combines two std::size_t hashes (boost::hash_combine recipe).
constexpr std::size_t hash_combine(std::size_t a, std::size_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace wan
