// Deterministic random number generation.
//
// Every stochastic element of the simulation (latencies, losses, partition
// up/down processes, workload arrivals, clock rates) draws from a seeded
// xoshiro256** stream, so a whole experiment is reproducible from a single
// 64-bit seed. Independent subsystems fork their own streams via split() so
// adding draws in one subsystem never perturbs another.
#pragma once

#include <array>
#include <cstdint>

#include "util/assert.hpp"

namespace wan {

/// SplitMix64 — used to expand seeds into xoshiro state and to fork streams.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full state by expanding `seed` through SplitMix64.
  explicit Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    WAN_ASSERT(bound > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = -bound % bound;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) noexcept {
    WAN_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Exponential variate with the given mean (> 0).
  double next_exponential(double mean) noexcept;

  /// Standard normal variate (Box-Muller, no state carried between calls).
  double next_normal(double mean, double stddev) noexcept;

  /// Uniform double in [lo, hi).
  double next_uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Forks an independent stream; deterministic function of current state.
  Rng split() noexcept { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Draws an index in [0, weights.size()) proportionally to `weights`
/// (Zipf-like distributions are built on top of this in the workload module).
std::size_t weighted_pick(Rng& rng, const double* weights, std::size_t n);

}  // namespace wan
