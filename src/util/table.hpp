// ASCII table rendering for the benchmark harnesses.
//
// Every bench binary reproduces one of the paper's tables or figures; this
// helper prints aligned, paper-style tables (and simple ASCII line charts for
// Figure 5) so the output can be compared against the publication directly.
#pragma once

#include <string>
#include <vector>

namespace wan {

/// Column-aligned ASCII table with an optional title and column headers.
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; defines the number of columns.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header width if one was set.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string fmt(double v, int precision = 5);
  static std::string fmt(std::int64_t v);
  static std::string fmt(std::uint64_t v);

  /// Renders the table (header, separator, rows) as a string.
  [[nodiscard]] std::string render() const;

  /// Renders directly to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders series as an ASCII line chart (used for Figure 5). Each series is
/// a vector of y values sampled at x = 1..n; y is expected in [0, 1].
struct AsciiChartSeries {
  std::string name;
  char marker = '*';
  std::vector<double> values;
};

std::string render_ascii_chart(const std::string& title,
                               const std::vector<AsciiChartSeries>& series,
                               int height = 20);

}  // namespace wan
