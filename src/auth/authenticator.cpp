#include "auth/authenticator.hpp"

#include <string>

namespace wan::auth {

const char* to_string(AuthResult r) noexcept {
  switch (r) {
    case AuthResult::kOk: return "ok";
    case AuthResult::kUnknownUser: return "unknown-user";
    case AuthResult::kBadSignature: return "bad-signature";
    case AuthResult::kReplayed: return "replayed";
  }
  return "?";
}

std::string Authenticator::signed_bytes(std::string_view payload,
                                        std::uint64_t nonce) {
  std::string bytes(payload);
  for (int i = 0; i < 8; ++i)
    bytes.push_back(static_cast<char>((nonce >> (i * 8)) & 0xff));
  return bytes;
}

AuthResult Authenticator::authenticate(UserId user, std::string_view payload,
                                       std::uint64_t nonce, Signature sig) {
  if (!registry_->lookup(user)) return AuthResult::kUnknownUser;
  if (!registry_->verify(user, signed_bytes(payload, nonce), sig))
    return AuthResult::kBadSignature;
  auto [it, inserted] = last_nonce_.try_emplace(user, nonce);
  if (!inserted) {
    if (nonce <= it->second) return AuthResult::kReplayed;
    it->second = nonce;
  }
  return AuthResult::kOk;
}

}  // namespace wan::auth
