// User identities and a simulation-grade signature scheme.
//
// The paper assumes an authentication method (e.g. RSA) so that "a message
// sent by user U has indeed been sent by this user", and treats it as a
// black box. We honour the black box: the protocol only ever calls
// sign()/verify(). The implementation here is a *keyed hash* over FNV-1a —
// deterministic, dependency-free, and adequate for exercising the
// authenticated/forged/tampered code paths in a simulator.
//
//   *** NOT CRYPTOGRAPHICALLY SECURE. Simulation stand-in only. ***
//
// Swapping in a real scheme means reimplementing Signer/Verifier against a
// crypto library; no protocol code changes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/hash.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace wan::auth {

/// Opaque signature value carried inside signed messages.
struct Signature {
  std::uint64_t value = 0;
  bool operator==(const Signature&) const = default;
};

/// A user's long-term key pair. In the toy scheme the "private key" is a
/// random 64-bit secret and the "public key" is a commitment to it that the
/// verifier can check signatures against without learning the secret
/// (trivially breakable; see file comment).
struct KeyPair {
  std::uint64_t secret = 0;
  std::uint64_t public_key = 0;
};

/// Derives the public commitment for a secret.
[[nodiscard]] std::uint64_t derive_public_key(std::uint64_t secret) noexcept;

/// Generates a fresh key pair from the given randomness stream.
[[nodiscard]] KeyPair generate_keypair(Rng& rng) noexcept;

/// Signs `payload` (arbitrary bytes) as `user` with `secret`.
[[nodiscard]] Signature sign(UserId user, std::string_view payload,
                             std::uint64_t secret) noexcept;

/// Trusted registry of user public keys — the paper's authentication
/// infrastructure (Kerberos/RSA certificate directory) reduced to a map.
/// One instance is shared by all hosts in a simulation (it models globally
/// pre-distributed certificates, not an online service).
class KeyRegistry {
 public:
  /// Registers a user's public key; re-registration overwrites (models
  /// re-keying after a compromise).
  void register_user(UserId user, std::uint64_t public_key);

  [[nodiscard]] std::optional<std::uint64_t> lookup(UserId user) const;

  /// Verifies that `sig` is a valid signature by `user` over `payload`.
  /// Unknown users verify as false.
  [[nodiscard]] bool verify(UserId user, std::string_view payload,
                            Signature sig) const;

  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }

 private:
  std::unordered_map<UserId, std::uint64_t> keys_;
};

}  // namespace wan::auth
