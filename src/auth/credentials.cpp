#include "auth/credentials.hpp"

namespace wan::auth {

namespace {
// One extra mixing round keeps signatures visually uncorrelated with inputs.
constexpr std::uint64_t remix(std::uint64_t v) noexcept {
  v ^= v >> 33;
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  v *= 0xc4ceb9fe1a85ec53ULL;
  v ^= v >> 33;
  return v;
}
}  // namespace

std::uint64_t derive_public_key(std::uint64_t secret) noexcept {
  return remix(secret ^ 0xa5a5a5a5deadbeefULL);
}

KeyPair generate_keypair(Rng& rng) noexcept {
  KeyPair kp;
  kp.secret = rng.next_u64();
  kp.public_key = derive_public_key(kp.secret);
  return kp;
}

Signature sign(UserId user, std::string_view payload, std::uint64_t secret) noexcept {
  // The verifier recomputes this from the public key; in this toy scheme the
  // public key determines the signing seed, so "only the secret holder can
  // sign" is a simulation convention, not a cryptographic property (see the
  // header's disclaimer). Honest principals call sign(); an adversary without
  // the key pair is modeled as producing garbage signatures.
  const std::uint64_t seed = remix(derive_public_key(secret) ^ 0x5eed5eed5eed5eedULL);
  std::uint64_t h = hash_mix(seed, user.value());
  h = fnv1a(payload, h);
  return Signature{remix(h)};
}

void KeyRegistry::register_user(UserId user, std::uint64_t public_key) {
  keys_[user] = public_key;
}

std::optional<std::uint64_t> KeyRegistry::lookup(UserId user) const {
  const auto it = keys_.find(user);
  if (it == keys_.end()) return std::nullopt;
  return it->second;
}

bool KeyRegistry::verify(UserId user, std::string_view payload, Signature sig) const {
  const auto pk = lookup(user);
  if (!pk) return false;
  const std::uint64_t seed = remix(*pk ^ 0x5eed5eed5eed5eedULL);
  std::uint64_t h = hash_mix(seed, user.value());
  h = fnv1a(payload, h);
  return Signature{remix(h)} == sig;
}

}  // namespace wan::auth
