// Message authentication front-end used by the access-control layer.
//
// Wraps KeyRegistry verification with replay suppression: each signed request
// carries a per-sender nonce; a verifier remembers the highest nonce seen per
// user and rejects non-increasing ones. The paper assumes authentication as a
// primitive — this class is that primitive's surface, in a form the access
// control module (Figure 1) can consult per incoming message.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "auth/credentials.hpp"
#include "util/ids.hpp"

namespace wan::auth {

/// Outcome of authenticating one message.
enum class AuthResult {
  kOk,             ///< signature valid, nonce fresh
  kUnknownUser,    ///< no registered public key
  kBadSignature,   ///< signature does not verify
  kReplayed,       ///< valid signature but stale nonce
};

[[nodiscard]] const char* to_string(AuthResult r) noexcept;

/// Per-host verifier with replay window state.
class Authenticator {
 public:
  /// The registry models globally distributed certificates; it must outlive
  /// the authenticator.
  explicit Authenticator(const KeyRegistry& registry) : registry_(&registry) {}

  /// Authenticates a message from `user` whose signed bytes are
  /// `payload` + the 8-byte little-endian `nonce` suffix.
  AuthResult authenticate(UserId user, std::string_view payload,
                          std::uint64_t nonce, Signature sig);

  /// Builds the exact byte string that sign()/authenticate() operate on.
  static std::string signed_bytes(std::string_view payload, std::uint64_t nonce);

  /// Clears replay state (host recovery re-initializes volatile state, §3.4;
  /// the nonce floor is volatile by design — replays after recovery are
  /// still caught by the application-level expiry machinery).
  void reset() { last_nonce_.clear(); }

 private:
  const KeyRegistry* registry_;
  std::unordered_map<UserId, std::uint64_t> last_nonce_;
};

}  // namespace wan::auth
