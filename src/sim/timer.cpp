#include "sim/timer.hpp"

#include "util/assert.hpp"

namespace wan::sim {

void PeriodicTimer::start(Duration period, std::function<void()> fn) {
  start(period, period, std::move(fn));
}

void PeriodicTimer::start(Duration initial_delay, Duration period,
                          std::function<void()> fn) {
  WAN_REQUIRE(period > Duration{});
  WAN_REQUIRE(fn != nullptr);
  stop();
  period_ = period;
  fn_ = std::move(fn);
  running_ = true;
  handle_ = sched_->schedule_after(initial_delay, [this] { fire(); });
}

void PeriodicTimer::fire() {
  if (!running_) return;
  // Re-arm before invoking so the callback may call stop() and win.
  handle_ = sched_->schedule_after(period_, [this] { fire(); });
  fn_();
}

}  // namespace wan::sim
