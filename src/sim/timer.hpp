// RAII timers on top of the scheduler.
//
// Protocol modules hold Timers as members; destroying the module cancels all
// its pending callbacks, which is what makes crash/recovery (§3.4) safe to
// model by tearing the module down and rebuilding it.
#pragma once

#include <functional>
#include <utility>

#include "sim/scheduler.hpp"

namespace wan::sim {

/// One-shot timer. Re-arming cancels the previous shot.
class Timer {
 public:
  explicit Timer(Scheduler& sched) noexcept : sched_(&sched) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  Timer(Timer&& other) noexcept : sched_(other.sched_), handle_(std::move(other.handle_)) {
    other.handle_ = EventHandle{};
  }
  Timer& operator=(Timer&& other) noexcept {
    if (this != &other) {
      cancel();
      sched_ = other.sched_;
      handle_ = std::move(other.handle_);
      other.handle_ = EventHandle{};
    }
    return *this;
  }

  /// Arms the timer to fire `delay` from now. Cancels any pending shot.
  void arm(Duration delay, std::function<void()> fn) {
    cancel();
    handle_ = sched_->schedule_after(delay, std::move(fn));
  }

  void cancel() noexcept { handle_.cancel(); }
  [[nodiscard]] bool pending() const noexcept { return handle_.pending(); }

 private:
  Scheduler* sched_;
  EventHandle handle_;
};

/// Periodic timer: fires every `period` until stopped or destroyed.
class PeriodicTimer {
 public:
  explicit PeriodicTimer(Scheduler& sched) noexcept : sched_(&sched) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts firing `fn` every `period`, first shot after `period` (or after
  /// `initial_delay` if given). Restarting cancels the previous schedule.
  void start(Duration period, std::function<void()> fn);
  void start(Duration initial_delay, Duration period, std::function<void()> fn);

  void stop() noexcept { handle_.cancel(); running_ = false; }
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void fire();

  Scheduler* sched_;
  EventHandle handle_;
  Duration period_{};
  std::function<void()> fn_;
  bool running_ = false;
};

}  // namespace wan::sim
