#include "sim/scheduler.hpp"

#include <utility>

#include "util/assert.hpp"

namespace wan::sim {

EventHandle Scheduler::schedule_at(TimePoint at, std::function<void()> fn) {
  WAN_REQUIRE(fn != nullptr);
  WAN_REQUIRE(at >= now_);
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{std::weak_ptr<bool>(cancelled)};
  queue_.push(Entry{at, next_seq_++, std::move(fn), std::move(cancelled)});
  return handle;
}

EventHandle Scheduler::schedule_after(Duration delay, std::function<void()> fn) {
  WAN_REQUIRE(!delay.is_negative());
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::post_at(TimePoint at, std::function<void()> fn) {
  WAN_REQUIRE(fn != nullptr);
  WAN_REQUIRE(at >= now_);
  queue_.push(Entry{at, next_seq_++, std::move(fn), nullptr});
}

void Scheduler::post_after(Duration delay, std::function<void()> fn) {
  WAN_REQUIRE(!delay.is_negative());
  post_at(now_ + delay, std::move(fn));
}

bool Scheduler::pop_and_run() {
  // `const_cast` because priority_queue::top() is const; the entry is moved
  // out and popped before the callback runs, so re-entrant scheduling is safe.
  auto& top = const_cast<Entry&>(queue_.top());
  Entry entry = std::move(top);
  queue_.pop();
  if (entry.cancelled && *entry.cancelled) return false;
  now_ = entry.at;
  ++executed_;
  entry.fn();
  if (observer_) observer_();
  return true;
}

std::uint64_t Scheduler::run_until(TimePoint deadline) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    if (pop_and_run()) ++ran;
  }
  if (now_ < deadline) now_ = deadline;
  return ran;
}

std::uint64_t Scheduler::run_all() {
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    if (pop_and_run()) ++ran;
  }
  return ran;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    if (pop_and_run()) return true;
  }
  return false;
}

}  // namespace wan::sim
