// Host crash/recovery lifecycle process.
//
// The paper assumes individual host failures are relatively rare (MTTF on the
// order of weeks, citing the Long/Muir/Golding Internet reliability survey)
// but must be tolerated: a crashed host loses its volatile ACL cache and
// re-initializes it on recovery (§3.4). This process drives up/down
// transitions with exponentially distributed time-to-failure and time-to-
// repair, invoking the owner's crash/recover callbacks.
#pragma once

#include <functional>

#include "sim/scheduler.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"

namespace wan::sim {

/// Alternating renewal process: UP --(TTF ~ Exp(mttf))--> DOWN
///                               DOWN --(TTR ~ Exp(mttr))--> UP.
class CrashRecoveryProcess {
 public:
  struct Config {
    Duration mttf = Duration::hours(24 * 21);  ///< mean time to failure
    Duration mttr = Duration::minutes(30);     ///< mean time to repair
  };

  CrashRecoveryProcess(Scheduler& sched, Rng rng, Config config)
      : sched_(sched), rng_(rng), config_(config), timer_(sched) {}

  /// Starts the process in the UP state. `on_crash` / `on_recover` fire on
  /// each transition; the entity starts up without a callback.
  void start(std::function<void()> on_crash, std::function<void()> on_recover);

  /// Stops driving transitions (state freezes as-is).
  void stop() noexcept { timer_.cancel(); }

  [[nodiscard]] bool up() const noexcept { return up_; }
  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }

  /// Stationary availability of this process, mttf / (mttf + mttr).
  [[nodiscard]] double stationary_availability() const noexcept {
    const double f = config_.mttf.to_seconds();
    const double r = config_.mttr.to_seconds();
    return f / (f + r);
  }

 private:
  void schedule_next();

  Scheduler& sched_;
  Rng rng_;
  Config config_;
  Timer timer_;
  bool up_ = true;
  std::uint64_t crashes_ = 0;
  std::function<void()> on_crash_;
  std::function<void()> on_recover_;
};

}  // namespace wan::sim
