// Simulation time.
//
// Real ("perfect") time in the simulation is a strong 64-bit count of
// nanoseconds. All protocol time bounds (Te, te, Ti, timeouts) are Durations;
// instants are TimePoints. Local *drifting* clocks (src/clock) map real
// TimePoints to per-host LocalTime values — the distinction is load-bearing:
// the paper's revocation guarantee is stated in real time but enforced with
// local clocks, and mixing the two up is exactly the bug class the strong
// types prevent.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace wan::sim {

/// A span of simulated real time (nanosecond resolution, signed).
class Duration {
 public:
  constexpr Duration() noexcept = default;
  static constexpr Duration nanos(std::int64_t n) noexcept { return Duration(n); }
  static constexpr Duration micros(std::int64_t n) noexcept { return Duration(n * 1'000); }
  static constexpr Duration millis(std::int64_t n) noexcept { return Duration(n * 1'000'000); }
  static constexpr Duration seconds(std::int64_t n) noexcept { return Duration(n * 1'000'000'000); }
  static constexpr Duration minutes(std::int64_t n) noexcept { return seconds(n * 60); }
  static constexpr Duration hours(std::int64_t n) noexcept { return seconds(n * 3600); }
  /// From floating-point seconds (rounds to nearest nanosecond).
  static Duration from_seconds(double s) noexcept;

  [[nodiscard]] constexpr std::int64_t count_nanos() const noexcept { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const noexcept { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_millis() const noexcept { return static_cast<double>(ns_) * 1e-6; }

  [[nodiscard]] constexpr bool is_zero() const noexcept { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const noexcept { return ns_ < 0; }

  friend constexpr auto operator<=>(Duration, Duration) noexcept = default;
  friend constexpr Duration operator+(Duration a, Duration b) noexcept { return Duration(a.ns_ + b.ns_); }
  friend constexpr Duration operator-(Duration a, Duration b) noexcept { return Duration(a.ns_ - b.ns_); }
  friend constexpr Duration operator*(Duration a, std::int64_t k) noexcept { return Duration(a.ns_ * k); }
  friend constexpr Duration operator*(std::int64_t k, Duration a) noexcept { return Duration(a.ns_ * k); }
  friend Duration operator*(Duration a, double k) noexcept { return from_seconds(a.to_seconds() * k); }
  friend constexpr Duration operator/(Duration a, std::int64_t k) noexcept { return Duration(a.ns_ / k); }
  friend constexpr double operator/(Duration a, Duration b) noexcept {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr Duration& operator+=(Duration d) noexcept { ns_ += d.ns_; return *this; }
  constexpr Duration& operator-=(Duration d) noexcept { ns_ -= d.ns_; return *this; }
  constexpr Duration operator-() const noexcept { return Duration(-ns_); }

 private:
  constexpr explicit Duration(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An instant in simulated real time. Time zero is the start of the run.
class TimePoint {
 public:
  constexpr TimePoint() noexcept = default;
  static constexpr TimePoint from_nanos(std::int64_t ns) noexcept { return TimePoint(ns); }
  /// The largest representable instant — used as "never".
  static constexpr TimePoint max() noexcept { return TimePoint(INT64_MAX); }

  [[nodiscard]] constexpr std::int64_t nanos_since_origin() const noexcept { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const noexcept { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr auto operator<=>(TimePoint, TimePoint) noexcept = default;
  friend constexpr TimePoint operator+(TimePoint t, Duration d) noexcept { return TimePoint(t.ns_ + d.count_nanos()); }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) noexcept { return TimePoint(t.ns_ - d.count_nanos()); }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) noexcept { return Duration::nanos(a.ns_ - b.ns_); }

 private:
  constexpr explicit TimePoint(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

std::string to_string(Duration d);
std::string to_string(TimePoint t);
std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);

}  // namespace wan::sim
