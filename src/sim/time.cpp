#include "sim/time.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace wan::sim {

Duration Duration::from_seconds(double s) noexcept {
  return Duration(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::string to_string(Duration d) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6fs", d.to_seconds());
  return buf;
}

std::string to_string(TimePoint t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t+%.6fs", t.to_seconds());
  return buf;
}

std::ostream& operator<<(std::ostream& os, Duration d) { return os << to_string(d); }
std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << to_string(t); }

}  // namespace wan::sim
