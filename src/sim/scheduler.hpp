// Deterministic discrete-event scheduler.
//
// The whole system — network deliveries, protocol timers, workload arrivals,
// partition transitions, host crashes — runs as callbacks ordered by
// (time, insertion sequence). Ties in time are broken by insertion order,
// which together with seeded RNG streams makes every run bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace wan::sim {

/// Handle to a scheduled event; allows cancellation. Cheap to copy.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel() noexcept {
    if (auto p = flag_.lock()) *p = true;
  }

  /// True if the handle refers to an event that is still pending.
  [[nodiscard]] bool pending() const noexcept {
    auto p = flag_.lock();
    return p != nullptr && !*p;
  }

 private:
  friend class Scheduler;
  explicit EventHandle(std::weak_ptr<bool> flag) : flag_(std::move(flag)) {}
  std::weak_ptr<bool> flag_;
};

/// Single-threaded event loop over simulated time.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated real time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now).
  EventHandle schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` from now (delay >= 0).
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Fire-and-forget variants: same ordering semantics as schedule_at /
  /// schedule_after, but no EventHandle and therefore no cancellation-flag
  /// allocation. Hot paths that discard the handle (network deliveries are
  /// the bulk of all events) use these.
  void post_at(TimePoint at, std::function<void()> fn);
  void post_after(Duration delay, std::function<void()> fn);

  /// Runs events until the queue is empty or `deadline` is passed; the clock
  /// is left at min(deadline, time of last event). Returns events executed.
  std::uint64_t run_until(TimePoint deadline);

  /// Runs for `span` of simulated time from now.
  std::uint64_t run_for(Duration span) { return run_until(now_ + span); }

  /// Runs until the queue is completely drained. Returns events executed.
  std::uint64_t run_all();

  /// Executes exactly one event if any is pending. Returns whether one ran.
  bool step();

  /// Number of events currently queued (including cancelled ones not yet
  /// reaped; cancelled events are skipped, not executed).
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

  /// Total events executed since construction (excludes cancelled).
  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

  /// Installs (or clears, with nullptr) an observer invoked after every
  /// executed event, with the clock still at the event's time. Invariant
  /// oracles hook here to audit system state between *every* pair of events
  /// rather than only at run end. The observer must not schedule or cancel
  /// events.
  void set_event_observer(std::function<void()> obs) {
    observer_ = std::move(obs);
  }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;  ///< null for post_at/post_after events
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::function<void()> observer_;
};

}  // namespace wan::sim
