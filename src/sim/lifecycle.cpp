#include "sim/lifecycle.hpp"

#include <utility>

#include "util/assert.hpp"

namespace wan::sim {

void CrashRecoveryProcess::start(std::function<void()> on_crash,
                                 std::function<void()> on_recover) {
  WAN_REQUIRE(config_.mttf > Duration{});
  WAN_REQUIRE(config_.mttr > Duration{});
  on_crash_ = std::move(on_crash);
  on_recover_ = std::move(on_recover);
  up_ = true;
  schedule_next();
}

void CrashRecoveryProcess::schedule_next() {
  const double mean =
      up_ ? config_.mttf.to_seconds() : config_.mttr.to_seconds();
  const Duration wait = Duration::from_seconds(rng_.next_exponential(mean));
  timer_.arm(wait, [this] {
    up_ = !up_;
    if (up_) {
      if (on_recover_) on_recover_();
    } else {
      ++crashes_;
      if (on_crash_) on_crash_();
    }
    schedule_next();
  });
}

}  // namespace wan::sim
