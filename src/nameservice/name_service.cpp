#include "nameservice/name_service.hpp"

#include <utility>

#include "util/assert.hpp"

namespace wan::ns {

void NameService::set_managers(AppId app, std::vector<HostId> managers) {
  WAN_REQUIRE(!managers.empty());
  auto& rec = records_[app];
  rec.managers = std::move(managers);
  ++rec.version;
}

void NameService::set_shard_map(AppId app, shard::ShardMap map) {
  WAN_REQUIRE(map.valid() && !map.empty());
  auto& rec = records_[app];
  rec.managers = map.all_managers();
  rec.map = std::move(map);
  ++rec.version;
}

std::optional<ManagerSet> NameService::resolve(AppId app) const {
  ++lookups_;
  const auto it = records_.find(app);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::optional<ManagerSet> ManagerResolver::resolve(AppId app, clk::LocalTime now) {
  const auto it = cache_.find(app);
  if (it != cache_.end() && now < it->second.expires) {
    ++hits_;
    return it->second.set;
  }
  ++misses_;
  auto fresh = service_->resolve(app);
  if (!fresh) {
    cache_.erase(app);
    return std::nullopt;
  }
  cache_[app] = Entry{*fresh, now + ttl_};
  return fresh;
}

}  // namespace wan::ns
