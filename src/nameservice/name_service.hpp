// Trusted name service (paper §3.2, last paragraph).
//
// The protocol body assumes Managers(A) is fixed and known; the paper lifts
// that with "a trusted name service that provides each host with the set of
// managers when requested. If the set of managers changes, a scheme similar
// to the time-based expiration of cached information can be used to trigger
// a new query."
//
// NameService is the authoritative, versioned app -> managers map. The paper
// treats it as trusted and does not model its failures, so it is consulted by
// direct call rather than over the simulated network; what *is* modeled
// faithfully is the host side: ManagerResolver caches the manager set with a
// TTL on the host's local clock and re-queries when it lapses — exactly the
// mechanism the paper prescribes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "clock/local_clock.hpp"
#include "shard/shard_map.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace wan::ns {

/// A versioned manager-set record. When the deployment is sharded, `map`
/// additionally partitions the key space over manager groups; `managers`
/// stays the flat union so unsharded consumers keep working unchanged.
struct ManagerSet {
  std::vector<HostId> managers;
  std::uint64_t version = 0;
  shard::ShardMap map;  ///< empty (epoch 0) for unsharded apps
};

/// Authoritative directory. One instance per simulation.
class NameService {
 public:
  /// Registers or replaces the manager set for an application; bumps the
  /// record version.
  void set_managers(AppId app, std::vector<HostId> managers);

  /// Registers or replaces the shard map for an application; the flat
  /// manager set becomes the map's group union. Bumps the record version.
  void set_shard_map(AppId app, shard::ShardMap map);

  /// Current record, or nullopt for unknown applications.
  [[nodiscard]] std::optional<ManagerSet> resolve(AppId app) const;

  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }

 private:
  std::unordered_map<AppId, ManagerSet> records_;
  mutable std::uint64_t lookups_ = 0;
};

/// Host-side TTL cache over the name service.
class ManagerResolver {
 public:
  ManagerResolver(const NameService& service, sim::Duration ttl)
      : service_(&service), ttl_(ttl) {}

  /// Returns the manager set for `app`, consulting the cache first. `now` is
  /// the host's local clock reading.
  [[nodiscard]] std::optional<ManagerSet> resolve(AppId app, clk::LocalTime now);

  /// Drops all cached records (host recovery).
  void clear() { cache_.clear(); }

  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept { return misses_; }

 private:
  struct Entry {
    ManagerSet set;
    clk::LocalTime expires{};
  };

  const NameService* service_;
  sim::Duration ttl_;
  std::unordered_map<AppId, Entry> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace wan::ns
