// User-side entity: signs and sends Invoke(A) messages, fails over between
// application hosts, and reports end-to-end outcomes.
//
// "If a host in Hosts(A) fails, potential users of the application simply
// have to locate a new host" (§3.4) — the agent tries candidate hosts in
// order, moving on when a reply timer lapses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "auth/authenticator.hpp"
#include "auth/credentials.hpp"
#include "proto/messages.hpp"
#include "runtime/env.hpp"

namespace wan::proto {

/// End-to-end outcome of one user invocation (possibly after failover).
struct InvokeResult {
  bool ok = false;
  bool timed_out = false;      ///< every candidate host timed out
  DenyReason reason = DenyReason::kNone;
  std::string result;          ///< application reply payload when ok
  int hosts_tried = 0;
  sim::Duration latency{};     ///< request issue -> final outcome
};

class UserAgent {
 public:
  struct Config {
    sim::Duration reply_timeout = sim::Duration::seconds(5);
    int max_hosts = 3;  ///< candidate hosts tried before giving up
  };

  /// `endpoint` is the agent's own network address (users are sites too);
  /// the key pair must match the public key registered for `user`.
  UserAgent(HostId endpoint, UserId user, auth::KeyPair keys,
            runtime::Env& env, Config config);

  /// Invokes `app` with `payload`, trying `hosts` in order.
  void invoke(AppId app, std::vector<HostId> hosts, std::string payload,
              std::function<void(const InvokeResult&)> done);

  /// Network receive entry point.
  void on_message(HostId from, const net::MessagePtr& msg);

  [[nodiscard]] HostId endpoint() const noexcept { return endpoint_; }
  [[nodiscard]] UserId user() const noexcept { return user_; }

 private:
  struct Pending {
    AppId app{};
    std::vector<HostId> hosts;
    std::string payload;
    std::function<void(const InvokeResult&)> done;
    int next_host = 0;
    sim::TimePoint started{};
    obs::TraceId trace = 0;  ///< the invocation's causal chain
    runtime::Timer timer;

    explicit Pending(runtime::Env& env) : timer(env.make_timer()) {}
  };

  void try_next_host(std::uint64_t request_id);
  void finish(std::uint64_t request_id, InvokeResult result);

  HostId endpoint_;
  UserId user_;
  auth::KeyPair keys_;
  runtime::Env& env_;
  runtime::Transport& net_;
  Config config_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t next_nonce_ = 1;
  std::uint32_t next_trace_seq_ = 1;  ///< minted unconditionally (see obs)
  std::unordered_map<std::uint64_t, std::unique_ptr<Pending>> pending_;
};

}  // namespace wan::proto
