// Wire codecs for the access-control protocol messages.
//
// net/codec.hpp owns the framing and the tag registry but knows nothing
// about concrete message types (net/ sits below proto/ in the layer
// diagram); this translation unit supplies the per-type field layouts and
// registers them under their stable tags. docs/WIRE_FORMAT.md is the
// authoritative tag table — tags here are frozen: never renumbered, never
// reused, new types get new tags and removed types leave holes.
//
// Call register_wire_messages() once before touching the codec (socket
// transports, codec tests). It is idempotent and thread-safe; it is an
// explicit call rather than a static initializer because these codecs live
// in a static library, where unreferenced global constructors are dropped
// by the linker.
#pragma once

#include <cstddef>
#include <vector>

#include "acl/store.hpp"
#include "net/codec.hpp"

namespace wan::proto {

/// Stable wire tags for every message in proto/messages.hpp. The enum is
/// public so tests and docs can enumerate the full table.
enum WireTags : net::WireTag {
  kTagInvokeRequest = 1,
  kTagInvokeReply = 2,
  kTagQueryRequest = 3,
  kTagQueryResponse = 4,
  kTagRevokeNotify = 5,
  kTagRevokeNotifyAck = 6,
  kTagUpdateMsg = 7,
  kTagUpdateAck = 8,
  kTagVersionQuery = 9,
  kTagVersionReply = 10,
  kTagSyncRequest = 11,
  kTagSyncResponse = 12,
  kTagSyncPush = 13,
  kTagHeartbeatPing = 14,
  kTagHeartbeatPong = 15,
  // 16 and 17 belong to the reliability envelope (net/reliable.hpp).
  kTagShardMapAnnounce = 18,
  kTagShardHandoffBegin = 19,
  kTagShardHandoffChunk = 20,
  kTagShardHandoffDone = 21,
  kTagRevokeBatch = 22,
  kTagRevokeBatchAck = 23,
  kTagRelayForward = 24,
  kTagRelayAck = 25,
  kTagDeltaSyncRequest = 26,
  kTagDeltaSyncResponse = 27,
};

/// The shared on-wire layout of an ACL slice — a `u32` entry count followed
/// by that many fixed-size AclUpdate records. Four messages carry one
/// (SyncResponse, SyncPush, ShardHandoffChunk, DeltaSyncResponse); they all
/// encode through this helper so the layout, the hostile-count bound check,
/// and the simulated-bandwidth estimate exist exactly once.
struct AclSlicePayload {
  /// Real codec bytes per entry (bounds a claimed count before allocation).
  static constexpr std::size_t kEntryWireSize = 4 + 1 + 1 + (8 + 4 + 8);
  /// Simulated-bandwidth estimate per entry (feeds Message::wire_size(),
  /// which models an early-Internet datagram encoding, not this codec).
  static constexpr std::size_t kEntryEstimate = 32;

  static void encode(net::WireWriter& w, const std::vector<acl::AclUpdate>& slice);
  /// Empty + reader failed on a malformed slice (bad count, bad enum, short).
  static std::vector<acl::AclUpdate> decode(net::WireReader& r);
  /// wire_size() contribution of a slice with `entries` updates.
  static constexpr std::size_t estimate(std::size_t entries) noexcept {
    return entries * kEntryEstimate;
  }
};

/// Registers the codec for every protocol message type with the global
/// net::CodecRegistry. Idempotent; safe to call from multiple threads.
void register_wire_messages();

}  // namespace wan::proto
