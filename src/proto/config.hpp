// Per-application protocol parameters — the paper's central idea is that
// THESE are application-controlled, trading security against availability
// and performance: M (manager-set size), C (check quorum), Te (revocation
// bound), R (verification attempts), plus the freeze-strategy alternative.
#pragma once

#include <cstdint>

#include "clock/local_clock.hpp"
#include "runtime/env_options.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace wan::proto {

/// Which managers a host contacts per check attempt.
enum class QueryFanout : std::uint8_t {
  /// Query all M managers, succeed on the first C distinct responses. This is
  /// the regime the paper's availability analysis assumes (PA(C) = P[at least
  /// C of M accessible]) and the default.
  kAll,
  /// Query exactly C managers per attempt (rotating the subset between
  /// attempts); cheaper in messages — the O(C) claim — but an attempt fails
  /// if any one of the C is unreachable. Used by the overhead ablation.
  kExactQuorum,
};

/// What to do when R verification attempts have failed (paper Fig. 4).
enum class ExhaustedPolicy : std::uint8_t {
  kDeny,   ///< security-first: reject the access
  kAllow,  ///< availability-first: "allow access as default"
};

struct ProtocolConfig {
  // --- the paper's named knobs -------------------------------------------
  sim::Duration Te = sim::Duration::minutes(5);  ///< revocation time bound
  double clock_bound_b = 1.01;   ///< every clock at most b times slower (b>=1)
  int check_quorum = 1;          ///< C; update quorum is M-C+1
  int max_attempts = 3;          ///< R; 0 means retry forever
  ExhaustedPolicy exhausted_policy = ExhaustedPolicy::kDeny;

  /// Byzantine tolerance f: hosts require C + f distinct check responses
  /// while the update quorum stays M - C + 1, so every assembled check
  /// quorum intersects every completed update in at least f + 1 managers —
  /// with at most f liars, at least one honest responder saw the update and
  /// the freshest-wins rule picks an honest, current answer. 0 (the default)
  /// is the paper's crash-only model. Requires C + f <= M to be assemblable.
  int byzantine_slack = 0;

  // --- freeze strategy (the §3.3 alternative to quorums) ------------------
  bool freeze_enabled = false;
  sim::Duration Ti = sim::Duration::minutes(3);  ///< inaccessibility period
  sim::Duration heartbeat_period = sim::Duration::seconds(10);

  // --- engineering parameters (not named in the paper but required by any
  //     implementation of it) ---------------------------------------------
  QueryFanout fanout = QueryFanout::kAll;
  sim::Duration query_timeout = sim::Duration::seconds(2);   ///< Fig. 3 timer
  sim::Duration update_retransmit = sim::Duration::seconds(2);
  sim::Duration revoke_retransmit = sim::Duration::seconds(2);
  sim::Duration sync_retransmit = sim::Duration::seconds(2);
  sim::Duration cache_sweep_period = sim::Duration::minutes(1);
  sim::Duration cache_idle_limit = sim::Duration::minutes(30);
  sim::Duration name_service_ttl = sim::Duration::minutes(10);
  /// How long a host stops querying a manager whose replies contradicted its
  /// own earlier replies (see AccessController hardening). Doubles per
  /// repeat offense, capped at 32x.
  sim::Duration quarantine_backoff = sim::Duration::seconds(30);

  /// How managers fan revocation notices out to cached hosts and how
  /// recovery resync transfers ACL state (src/proto/dissemination.hpp).
  /// Defaults reproduce the paper's unicast loop and full-snapshot sync.
  runtime::DisseminationOptions dissemination;

  /// The local-clock expiration period managers attach to responses. Under
  /// the freeze strategy the budget Te is split between the inaccessibility
  /// period and the cached-entry lifetime ("Ti and te must be chosen so that
  /// their sum is at most Te", §3.3), so te = (Te - Ti) / b; otherwise
  /// te = Te / b.
  [[nodiscard]] sim::Duration expiry_period() const {
    const sim::Duration budget = freeze_enabled ? Te - Ti : Te;
    return clk::local_expiry_period(budget, clock_bound_b);
  }

  /// Validates internal consistency (aborts on misconfiguration).
  void validate() const {
    WAN_REQUIRE(Te > sim::Duration{});
    WAN_REQUIRE(clock_bound_b >= 1.0);
    WAN_REQUIRE(check_quorum >= 1);
    WAN_REQUIRE(max_attempts >= 0);
    WAN_REQUIRE(byzantine_slack >= 0);
    WAN_REQUIRE(query_timeout > sim::Duration{});
    WAN_REQUIRE(quarantine_backoff > sim::Duration{});
    dissemination.validate();
    if (freeze_enabled) {
      WAN_REQUIRE(Ti > sim::Duration{});
      WAN_REQUIRE_MSG(
          Ti < Te,
          "freeze strategy splits the budget Te between the inaccessibility "
          "period Ti and the cache lifetime te = (Te - Ti)/b (section 3.3); "
          "Ti >= Te leaves a non-positive effective te, so every grant a "
          "manager hands out would be born expired");
      WAN_REQUIRE_MSG(
          expiry_period() > sim::Duration{},
          "effective te = (Te - Ti)/b rounded to a positive duration; Ti is "
          "too close to Te for the clock bound b — widen Te or shrink Ti");
      WAN_REQUIRE(heartbeat_period > sim::Duration{});
      WAN_REQUIRE_MSG(
          heartbeat_period < Ti,
          "a peer is declared silent after Ti without traffic; with "
          "heartbeat_period >= Ti a healthy, connected peer cannot ping "
          "often enough to look alive and every manager freezes permanently");
    }
  }
};

}  // namespace wan::proto
