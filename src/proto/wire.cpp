#include "proto/wire.hpp"

#include <mutex>

#include "proto/messages.hpp"

namespace wan::proto {
namespace {

using net::WireReader;
using net::WireWriter;

// --- shared field layouts ---------------------------------------------------

void put_version(WireWriter& w, const acl::Version& v) {
  w.u64(v.counter);
  w.host_id(v.origin);
  w.i64(v.stamp);
}

acl::Version get_version(WireReader& r) {
  acl::Version v;
  v.counter = r.u64();
  v.origin = r.host_id();
  v.stamp = r.i64();
  return v;
}

void put_rights(WireWriter& w, acl::RightSet rights) {
  std::uint8_t bits = 0;
  if (rights.has(acl::Right::kUse)) bits |= 1u;
  if (rights.has(acl::Right::kManage)) bits |= 2u;
  w.u8(bits);
}

acl::RightSet get_rights(WireReader& r) {
  const std::uint8_t bits = r.u8();
  if (bits > 3) r.fail();  // only the two paper rights exist
  acl::RightSet rights;
  if (bits & 1u) rights.add(acl::Right::kUse);
  if (bits & 2u) rights.add(acl::Right::kManage);
  return rights;
}

void put_update(WireWriter& w, const acl::AclUpdate& u) {
  w.user_id(u.user);
  w.u8(static_cast<std::uint8_t>(u.right));
  w.u8(static_cast<std::uint8_t>(u.op));
  put_version(w, u.version);
}

acl::AclUpdate get_update(WireReader& r) {
  acl::AclUpdate u;
  u.user = r.user_id();
  const std::uint8_t right = r.u8();
  if (right != static_cast<std::uint8_t>(acl::Right::kUse) &&
      right != static_cast<std::uint8_t>(acl::Right::kManage)) {
    r.fail();
  } else {
    u.right = static_cast<acl::Right>(right);
  }
  const std::uint8_t op = r.u8();
  if (op > static_cast<std::uint8_t>(acl::Op::kRevoke)) {
    r.fail();
  } else {
    u.op = static_cast<acl::Op>(op);
  }
  u.version = get_version(r);
  return u;
}

/// One (user, version) right inside a RevokeBatch / RelayForward.
void put_item(WireWriter& w, const RevokeItem& it) {
  w.user_id(it.user);
  put_version(w, it.version);
}

/// Serialized size of one RevokeItem — bounds item counts before alloc.
constexpr std::size_t kItemWireSize = 4 + (8 + 4 + 8);

RevokeItem get_item(WireReader& r) {
  RevokeItem it;
  it.user = r.user_id();
  it.version = get_version(r);
  return it;
}

void put_items(WireWriter& w, const std::vector<RevokeItem>& items) {
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const RevokeItem& it : items) put_item(w, it);
}

std::vector<RevokeItem> get_items(WireReader& r) {
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / kItemWireSize) {
    r.fail();
    return {};
  }
  std::vector<RevokeItem> items;
  items.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    items.push_back(get_item(r));
  }
  return items;
}

void put_hosts(WireWriter& w, const std::vector<HostId>& hosts) {
  w.u32(static_cast<std::uint32_t>(hosts.size()));
  for (const HostId h : hosts) w.host_id(h);
}

std::vector<HostId> get_hosts(WireReader& r) {
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / 4) {
    r.fail();
    return {};
  }
  std::vector<HostId> hosts;
  hosts.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    hosts.push_back(r.host_id());
  }
  return hosts;
}

// --- per-type codecs --------------------------------------------------------
//
// Encode writes fields in declaration order; decode mirrors it and validates
// every enum against its legal range, so a flipped bit in flight surfaces as
// a malformed-frame drop instead of an out-of-range enum inside the protocol.

template <typename T>
void reg(const char* type_name, net::WireTag tag,
         void (*encode)(const T&, WireWriter&),
         net::MessagePtr (*decode)(WireReader&)) {
  net::CodecRegistry::global().register_codec(
      tag, net::TypeId::intern(type_name),
      [encode](const net::Message& m, WireWriter& w) {
        encode(static_cast<const T&>(m), w);
      },
      [decode](WireReader& r) { return decode(r); });
}

void do_register() {
  reg<InvokeRequest>(
      "InvokeRequest", kTagInvokeRequest,
      [](const InvokeRequest& m, WireWriter& w) {
        w.app_id(m.app);
        w.user_id(m.user);
        w.u64(m.request_id);
        w.u64(m.nonce);
        w.u64(m.signature.value);
        w.str(m.payload);
        w.u64(m.trace);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const UserId user = r.user_id();
        const std::uint64_t request_id = r.u64();
        const std::uint64_t nonce = r.u64();
        const auth::Signature sig{r.u64()};
        std::string payload = r.str();
        const obs::TraceId trace = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<InvokeRequest>(app, user, request_id, nonce,
                                                sig, std::move(payload), trace);
      });

  reg<InvokeReply>(
      "InvokeReply", kTagInvokeReply,
      [](const InvokeReply& m, WireWriter& w) {
        w.u64(m.request_id);
        w.boolean(m.accepted);
        w.u8(static_cast<std::uint8_t>(m.reason));
        w.str(m.result);
      },
      [](WireReader& r) -> net::MessagePtr {
        const std::uint64_t request_id = r.u64();
        const bool accepted = r.boolean();
        const std::uint8_t reason = r.u8();
        if (reason > static_cast<std::uint8_t>(DenyReason::kUnknownApp)) {
          r.fail();
        }
        std::string result = r.str();
        if (!r.ok()) return nullptr;
        return net::make_message<InvokeReply>(request_id, accepted,
                                              static_cast<DenyReason>(reason),
                                              std::move(result));
      });

  reg<QueryRequest>(
      "QueryRequest", kTagQueryRequest,
      [](const QueryRequest& m, WireWriter& w) {
        w.app_id(m.app);
        w.user_id(m.user);
        w.u64(m.query_id);
        w.u64(m.trace);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const UserId user = r.user_id();
        const std::uint64_t query_id = r.u64();
        const obs::TraceId trace = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<QueryRequest>(app, user, query_id, trace);
      });

  reg<QueryResponse>(
      "QueryResponse", kTagQueryResponse,
      [](const QueryResponse& m, WireWriter& w) {
        w.app_id(m.app);
        w.user_id(m.user);
        w.u64(m.query_id);
        put_rights(w, m.rights);
        put_version(w, m.version);
        w.duration(m.expiry_period);
        w.u64(m.trace);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const UserId user = r.user_id();
        const std::uint64_t query_id = r.u64();
        const acl::RightSet rights = get_rights(r);
        const acl::Version version = get_version(r);
        const sim::Duration te = r.duration();
        const obs::TraceId trace = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<QueryResponse>(app, user, query_id, rights,
                                                version, te, trace);
      });

  reg<RevokeNotify>(
      "RevokeNotify", kTagRevokeNotify,
      [](const RevokeNotify& m, WireWriter& w) {
        w.app_id(m.app);
        w.user_id(m.user);
        put_version(w, m.version);
        w.u64(m.trace);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const UserId user = r.user_id();
        const acl::Version version = get_version(r);
        const obs::TraceId trace = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<RevokeNotify>(app, user, version, trace);
      });

  reg<RevokeNotifyAck>(
      "RevokeNotifyAck", kTagRevokeNotifyAck,
      [](const RevokeNotifyAck& m, WireWriter& w) {
        w.app_id(m.app);
        w.user_id(m.user);
        put_version(w, m.version);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const UserId user = r.user_id();
        const acl::Version version = get_version(r);
        if (!r.ok()) return nullptr;
        return net::make_message<RevokeNotifyAck>(app, user, version);
      });

  reg<UpdateMsg>(
      "UpdateMsg", kTagUpdateMsg,
      [](const UpdateMsg& m, WireWriter& w) {
        w.app_id(m.app);
        put_update(w, m.update);
        w.u64(m.txn_id);
        w.u64(m.trace);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const acl::AclUpdate update = get_update(r);
        const std::uint64_t txn_id = r.u64();
        const obs::TraceId trace = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<UpdateMsg>(app, update, txn_id, trace);
      });

  reg<UpdateAck>(
      "UpdateAck", kTagUpdateAck,
      [](const UpdateAck& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.txn_id);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t txn_id = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<UpdateAck>(app, txn_id);
      });

  reg<VersionQuery>(
      "VersionQuery", kTagVersionQuery,
      [](const VersionQuery& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.read_id);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t read_id = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<VersionQuery>(app, read_id);
      });

  reg<VersionReply>(
      "VersionReply", kTagVersionReply,
      [](const VersionReply& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.read_id);
        put_version(w, m.max_version);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t read_id = r.u64();
        const acl::Version version = get_version(r);
        if (!r.ok()) return nullptr;
        return net::make_message<VersionReply>(app, read_id, version);
      });

  reg<SyncRequest>(
      "SyncRequest", kTagSyncRequest,
      [](const SyncRequest& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.sync_id);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t sync_id = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<SyncRequest>(app, sync_id);
      });

  reg<SyncResponse>(
      "SyncResponse", kTagSyncResponse,
      [](const SyncResponse& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.sync_id);
        AclSlicePayload::encode(w, m.snapshot);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t sync_id = r.u64();
        std::vector<acl::AclUpdate> snap = AclSlicePayload::decode(r);
        if (!r.ok()) return nullptr;
        return net::make_message<SyncResponse>(app, sync_id, std::move(snap));
      });

  reg<SyncPush>(
      "SyncPush", kTagSyncPush,
      [](const SyncPush& m, WireWriter& w) {
        w.app_id(m.app);
        AclSlicePayload::encode(w, m.snapshot);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        std::vector<acl::AclUpdate> snap = AclSlicePayload::decode(r);
        if (!r.ok()) return nullptr;
        return net::make_message<SyncPush>(app, std::move(snap));
      });

  reg<HeartbeatPing>(
      "HeartbeatPing", kTagHeartbeatPing,
      [](const HeartbeatPing& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.seq);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t seq = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<HeartbeatPing>(app, seq);
      });

  reg<HeartbeatPong>(
      "HeartbeatPong", kTagHeartbeatPong,
      [](const HeartbeatPong& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.seq);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t seq = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<HeartbeatPong>(app, seq);
      });

  reg<ShardMapAnnounce>(
      "ShardMapAnnounce", kTagShardMapAnnounce,
      [](const ShardMapAnnounce& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.map.epoch());
        w.u32(m.map.shard_count());
        w.u64(m.map.ring_seed());
        w.u32(static_cast<std::uint32_t>(m.map.groups().size()));
        for (const auto& g : m.map.groups()) {
          w.u32(static_cast<std::uint32_t>(g.size()));
          for (const HostId member : g) w.host_id(member);
        }
        for (const std::uint32_t owner : m.map.owners()) w.u32(owner);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t epoch = r.u64();
        const std::uint32_t shard_count = r.u32();
        const std::uint64_t ring_seed = r.u64();
        const std::uint32_t group_count = r.u32();
        // Every claimed group costs at least a count word plus one member;
        // every owner entry costs 4 bytes. Bounds first, allocations after.
        if (!r.ok() || group_count > r.remaining() / 8) {
          r.fail();
          return nullptr;
        }
        std::vector<std::vector<HostId>> groups;
        groups.reserve(group_count);
        for (std::uint32_t g = 0; g < group_count && r.ok(); ++g) {
          const std::uint32_t members = r.u32();
          if (!r.ok() || members > r.remaining() / 4) {
            r.fail();
            return nullptr;
          }
          std::vector<HostId> group;
          group.reserve(members);
          for (std::uint32_t m = 0; m < members && r.ok(); ++m) {
            group.push_back(r.host_id());
          }
          groups.push_back(std::move(group));
        }
        if (!r.ok() || shard_count > r.remaining() / 4) {
          r.fail();
          return nullptr;
        }
        std::vector<std::uint32_t> owner;
        owner.reserve(shard_count);
        for (std::uint32_t s = 0; s < shard_count && r.ok(); ++s) {
          owner.push_back(r.u32());
        }
        if (!r.ok()) return nullptr;
        // Structural validation (disjoint non-empty groups, owners in range)
        // happens here so a hostile frame is a decode failure, not an abort
        // inside ShardMap's invariant checks.
        std::optional<shard::ShardMap> map = shard::ShardMap::checked(
            std::move(groups), std::move(owner), epoch, ring_seed);
        if (!map) {
          r.fail();
          return nullptr;
        }
        return net::make_message<ShardMapAnnounce>(app, std::move(*map));
      });

  reg<ShardHandoffBegin>(
      "ShardHandoffBegin", kTagShardHandoffBegin,
      [](const ShardHandoffBegin& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.epoch);
        w.u32(m.shard);
        w.u64(m.series);
        w.u32(m.total);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t epoch = r.u64();
        const std::uint32_t shard = r.u32();
        const std::uint64_t series = r.u64();
        const std::uint32_t total = r.u32();
        if (!r.ok()) return nullptr;
        return net::make_message<ShardHandoffBegin>(app, epoch, shard, series,
                                                    total);
      });

  reg<ShardHandoffChunk>(
      "ShardHandoffChunk", kTagShardHandoffChunk,
      [](const ShardHandoffChunk& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.epoch);
        w.u32(m.shard);
        w.u64(m.series);
        w.u32(m.seq);
        AclSlicePayload::encode(w, m.updates);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t epoch = r.u64();
        const std::uint32_t shard = r.u32();
        const std::uint64_t series = r.u64();
        const std::uint32_t seq = r.u32();
        std::vector<acl::AclUpdate> updates = AclSlicePayload::decode(r);
        if (!r.ok()) return nullptr;
        return net::make_message<ShardHandoffChunk>(app, epoch, shard, series,
                                                    seq, std::move(updates));
      });

  reg<ShardHandoffDone>(
      "ShardHandoffDone", kTagShardHandoffDone,
      [](const ShardHandoffDone& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.epoch);
        w.u32(m.shard);
        w.u64(m.series);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t epoch = r.u64();
        const std::uint32_t shard = r.u32();
        const std::uint64_t series = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<ShardHandoffDone>(app, epoch, shard, series);
      });

  reg<RevokeBatch>(
      "RevokeBatch", kTagRevokeBatch,
      [](const RevokeBatch& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.batch_id);
        put_items(w, m.items);
        w.u64(m.trace);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t batch_id = r.u64();
        std::vector<RevokeItem> items = get_items(r);
        const obs::TraceId trace = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<RevokeBatch>(app, batch_id, std::move(items),
                                              trace);
      });

  reg<RevokeBatchAck>(
      "RevokeBatchAck", kTagRevokeBatchAck,
      [](const RevokeBatchAck& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.batch_id);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t batch_id = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<RevokeBatchAck>(app, batch_id);
      });

  reg<RelayForward>(
      "RelayForward", kTagRelayForward,
      [](const RelayForward& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.batch_id);
        put_items(w, m.items);
        put_hosts(w, m.dests);
        w.u64(m.trace);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t batch_id = r.u64();
        std::vector<RevokeItem> items = get_items(r);
        std::vector<HostId> dests = get_hosts(r);
        const obs::TraceId trace = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<RelayForward>(app, batch_id, std::move(items),
                                               std::move(dests), trace);
      });

  reg<RelayAck>(
      "RelayAck", kTagRelayAck,
      [](const RelayAck& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.batch_id);
        put_hosts(w, m.acked_dests);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t batch_id = r.u64();
        std::vector<HostId> acked = get_hosts(r);
        if (!r.ok()) return nullptr;
        return net::make_message<RelayAck>(app, batch_id, std::move(acked));
      });

  reg<DeltaSyncRequest>(
      "DeltaSyncRequest", kTagDeltaSyncRequest,
      [](const DeltaSyncRequest& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.sync_id);
        w.u64(m.log_epoch);
        w.u64(m.cursor);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t sync_id = r.u64();
        const std::uint64_t log_epoch = r.u64();
        const std::uint64_t cursor = r.u64();
        if (!r.ok()) return nullptr;
        return net::make_message<DeltaSyncRequest>(app, sync_id, log_epoch,
                                                   cursor);
      });

  reg<DeltaSyncResponse>(
      "DeltaSyncResponse", kTagDeltaSyncResponse,
      [](const DeltaSyncResponse& m, WireWriter& w) {
        w.app_id(m.app);
        w.u64(m.sync_id);
        w.boolean(m.full);
        w.u64(m.log_epoch);
        w.u64(m.next_seq);
        AclSlicePayload::encode(w, m.updates);
      },
      [](WireReader& r) -> net::MessagePtr {
        const AppId app = r.app_id();
        const std::uint64_t sync_id = r.u64();
        const bool full = r.boolean();
        const std::uint64_t log_epoch = r.u64();
        const std::uint64_t next_seq = r.u64();
        std::vector<acl::AclUpdate> updates = AclSlicePayload::decode(r);
        if (!r.ok()) return nullptr;
        return net::make_message<DeltaSyncResponse>(app, sync_id, full,
                                                    log_epoch, next_seq,
                                                    std::move(updates));
      });
}

}  // namespace

void AclSlicePayload::encode(WireWriter& w,
                             const std::vector<acl::AclUpdate>& slice) {
  w.u32(static_cast<std::uint32_t>(slice.size()));
  for (const acl::AclUpdate& u : slice) put_update(w, u);
}

std::vector<acl::AclUpdate> AclSlicePayload::decode(WireReader& r) {
  const std::uint32_t count = r.u32();
  // A hostile count field must not drive the allocation: every entry takes
  // kEntryWireSize bytes, so a count the remaining payload cannot hold is
  // malformed by construction.
  if (count > r.remaining() / kEntryWireSize) {
    r.fail();
    return {};
  }
  std::vector<acl::AclUpdate> slice;
  slice.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    slice.push_back(get_update(r));
  }
  return slice;
}

void register_wire_messages() {
  static std::once_flag once;
  std::call_once(once, do_register);
}

}  // namespace wan::proto
