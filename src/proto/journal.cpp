#include "proto/journal.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <algorithm>

#include "obs/metrics.hpp"

namespace wan::proto {

namespace {

constexpr std::uint32_t kJournalMagic = 0x4C414A57;  // "WJAL" little-endian
constexpr std::uint16_t kJournalVersion = 1;
constexpr std::size_t kHeaderSize = 8;
// u32 app_id + u32 user + u8 right + u8 op + u64 counter + u32 origin +
// i64 stamp. Mirrors the AclUpdate wire layout (docs/WIRE_FORMAT.md).
constexpr std::uint32_t kRecordLen = 30;

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

void encode_record(std::uint8_t* out, std::uint32_t app,
                   const acl::AclUpdate& u) {
  put_u32(out + 0, kRecordLen);
  put_u32(out + 4, app);
  put_u32(out + 8, u.user.value());
  out[12] = static_cast<std::uint8_t>(u.right);
  out[13] = static_cast<std::uint8_t>(u.op);
  put_u64(out + 14, u.version.counter);
  put_u32(out + 22, u.version.origin.value());
  put_u64(out + 26, static_cast<std::uint64_t>(u.version.stamp));
}

/// Decodes a record body (after the length prefix); enum range-checks guard
/// against on-disk corruption the same way the wire decoder guards against
/// hostile frames. Returns false to stop replay of this file.
bool decode_record(const std::uint8_t* body, std::uint32_t expected_app,
                   acl::AclUpdate* out) {
  if (get_u32(body + 0) != expected_app) return false;
  const std::uint8_t right = body[8];
  const std::uint8_t op = body[9];
  if (right > static_cast<std::uint8_t>(acl::Right::kManage)) return false;
  if (op > static_cast<std::uint8_t>(acl::Op::kRevoke)) return false;
  out->user = UserId{get_u32(body + 4)};
  out->right = static_cast<acl::Right>(right);
  out->op = static_cast<acl::Op>(op);
  out->version.counter = get_u64(body + 10);
  out->version.origin = HostId{get_u32(body + 18)};
  out->version.stamp = static_cast<std::int64_t>(get_u64(body + 22));
  return true;
}

bool write_header(std::FILE* f) {
  std::uint8_t h[kHeaderSize] = {};
  put_u32(h + 0, kJournalMagic);
  put_u16(h + 4, kJournalVersion);
  put_u16(h + 6, 0);
  return std::fwrite(h, 1, sizeof h, f) == sizeof h;
}

/// Replays one journal file into `fn`; returns the number of whole records
/// read. A short or corrupt tail stops the read — a torn final append is the
/// expected kill -9 artifact, not an error.
std::size_t replay_file(const std::string& path, std::uint32_t app,
                        const std::function<void(AppId, const acl::AclUpdate&)>& fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return 0;
  std::size_t replayed = 0;
  std::uint8_t header[kHeaderSize];
  if (std::fread(header, 1, sizeof header, f) == sizeof header &&
      get_u32(header) == kJournalMagic &&
      get_u16(header + 4) == kJournalVersion) {
    for (;;) {
      std::uint8_t lenbuf[4];
      if (std::fread(lenbuf, 1, sizeof lenbuf, f) != sizeof lenbuf) break;
      const std::uint32_t len = get_u32(lenbuf);
      if (len != kRecordLen) break;  // corrupt or torn — stop here
      std::uint8_t body[kRecordLen];
      if (std::fread(body, 1, len, f) != len) break;  // torn tail
      acl::AclUpdate u;
      if (!decode_record(body, app, &u)) break;
      fn(AppId{app}, u);
      ++replayed;
    }
  }
  std::fclose(f);
  return replayed;
}

/// Whole bytes of complete records in a log (past the header) — used to
/// truncate away a torn tail before reopening for append, so a new record
/// is never written after garbage.
long valid_log_extent(const std::string& path, std::uint32_t app,
                      std::size_t* records) {
  *records = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return -1;
  long extent = -1;
  std::uint8_t header[kHeaderSize];
  if (std::fread(header, 1, sizeof header, f) == sizeof header &&
      get_u32(header) == kJournalMagic &&
      get_u16(header + 4) == kJournalVersion) {
    extent = static_cast<long>(kHeaderSize);
    for (;;) {
      std::uint8_t lenbuf[4];
      if (std::fread(lenbuf, 1, sizeof lenbuf, f) != sizeof lenbuf) break;
      const std::uint32_t len = get_u32(lenbuf);
      if (len != kRecordLen) break;
      std::uint8_t body[kRecordLen];
      if (std::fread(body, 1, len, f) != len) break;
      acl::AclUpdate u;
      if (!decode_record(body, app, &u)) break;
      extent += static_cast<long>(4 + len);
      ++*records;
    }
  }
  std::fclose(f);
  return extent;
}

}  // namespace

std::unique_ptr<ManagerJournal> ManagerJournal::open(const std::string& dir,
                                                     std::string* error) {
  struct stat st{};
  if (::stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      if (error) *error = "state dir '" + dir + "' is not a directory";
      return nullptr;
    }
  } else if (::mkdir(dir.c_str(), 0755) != 0) {
    if (error) {
      *error = "cannot create state dir '" + dir + "': " + std::strerror(errno);
    }
    return nullptr;
  }

  std::unique_ptr<ManagerJournal> j(new ManagerJournal(dir));
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* ent = ::readdir(d)) {
      unsigned app = 0;
      char suffix[8] = {};
      // Matches app-<id>.snap / app-<id>.log; anything else is ignored.
      if (std::sscanf(ent->d_name, "app-%u.%4s", &app, suffix) == 2 &&
          (std::strcmp(suffix, "snap") == 0 || std::strcmp(suffix, "log") == 0)) {
        j->had_state_ = true;
        if (std::find(j->found_apps_.begin(), j->found_apps_.end(), app) ==
            j->found_apps_.end()) {
          j->found_apps_.push_back(app);
        }
      }
    }
    ::closedir(d);
  }
  std::sort(j->found_apps_.begin(), j->found_apps_.end());
  return j;
}

ManagerJournal::~ManagerJournal() {
  for (auto& [app, f] : logs_) {
    if (f) std::fclose(f);
  }
}

std::string ManagerJournal::snap_path(std::uint32_t app) const {
  return dir_ + "/app-" + std::to_string(app) + ".snap";
}

std::string ManagerJournal::log_path(std::uint32_t app) const {
  return dir_ + "/app-" + std::to_string(app) + ".log";
}

std::size_t ManagerJournal::replay(
    const std::function<void(AppId, const acl::AclUpdate&)>& fn) {
  static obs::Counter& replayed_records =
      obs::Registry::global().counter("wan_journal_replayed_records_total");
  std::size_t total = 0;
  for (std::uint32_t app : found_apps_) {
    total += replay_file(snap_path(app), app, fn);
    std::size_t log_count = 0;
    // Trim any torn tail now, so the append handle opened later starts at a
    // record boundary.
    const long extent = valid_log_extent(log_path(app), app, &log_count);
    if (extent >= 0) {
      struct stat st{};
      if (::stat(log_path(app).c_str(), &st) == 0 && st.st_size > extent) {
        [[maybe_unused]] const int rc =
            ::truncate(log_path(app).c_str(), extent);
      }
    }
    total += replay_file(log_path(app), app, fn);
    log_counts_[app] = log_count;
  }
  replayed_records.inc(total);
  return total;
}

std::FILE* ManagerJournal::log_handle(std::uint32_t app) {
  auto it = logs_.find(app);
  if (it != logs_.end()) return it->second;
  const std::string path = log_path(app);
  struct stat st{};
  const bool fresh = ::stat(path.c_str(), &st) != 0 ||
                     st.st_size < static_cast<off_t>(kHeaderSize);
  std::FILE* f = std::fopen(path.c_str(), fresh ? "wb" : "ab");
  if (f && fresh && !write_header(f)) {
    std::fclose(f);
    f = nullptr;
  }
  logs_[app] = f;
  return f;
}

bool ManagerJournal::append(AppId app, const acl::AclUpdate& update) {
  static obs::Counter& appends =
      obs::Registry::global().counter("wan_journal_appends_total");
  static obs::Counter& failures =
      obs::Registry::global().counter("wan_journal_append_failures_total");
  std::FILE* f = log_handle(app.value());
  if (!f) {
    failures.inc();
    return false;
  }
  std::uint8_t rec[4 + kRecordLen];
  encode_record(rec, app.value(), update);
  const bool wrote = std::fwrite(rec, 1, sizeof rec, f) == sizeof rec;
  // fflush is the durability point: the record reaches the kernel page
  // cache, which outlives a kill -9 of this process (see the header comment
  // for why there is no fsync).
  if (!wrote || std::fflush(f) != 0) {
    failures.inc();
    return false;
  }
  ++log_counts_[app.value()];
  appends.inc();
  return true;
}

bool ManagerJournal::compact(AppId app,
                             const std::vector<acl::AclUpdate>& snapshot) {
  static obs::Counter& compactions =
      obs::Registry::global().counter("wan_journal_compactions_total");
  static obs::Counter& snap_records =
      obs::Registry::global().counter("wan_journal_compacted_records_total");
  const std::string tmp = snap_path(app.value()) + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok = write_header(f);
  for (const acl::AclUpdate& u : snapshot) {
    if (!ok) break;
    std::uint8_t rec[4 + kRecordLen];
    encode_record(rec, app.value(), u);
    ok = std::fwrite(rec, 1, sizeof rec, f) == sizeof rec;
  }
  ok = (std::fflush(f) == 0) && ok;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), snap_path(app.value()).c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  // Truncate (not delete) the log: the append handle, if open, stays valid
  // and keeps writing at the new end.
  auto it = logs_.find(app.value());
  if (it != logs_.end() && it->second) {
    std::fclose(it->second);
    logs_.erase(it);
  }
  std::FILE* log = std::fopen(log_path(app.value()).c_str(), "wb");
  if (log) {
    write_header(log);
    std::fflush(log);
    logs_[app.value()] = log;
  }
  log_counts_[app.value()] = 0;
  compactions.inc();
  snap_records.inc(snapshot.size());
  return true;
}

std::size_t ManagerJournal::log_records(AppId app) const {
  const auto it = log_counts_.find(app.value());
  return it == log_counts_.end() ? 0 : it->second;
}

}  // namespace wan::proto
