#include "proto/dissemination.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "proto/messages.hpp"
#include "util/assert.hpp"

namespace wan::proto {
namespace {

// One in-flight right, keyed by (app, user, version counter) — the same key
// the old inline loop used, extended by the app so one strategy instance can
// serve every app a manager runs.
using Key = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;

Key key_of(AppId app, UserId user, const acl::Version& v) {
  return {static_cast<std::uint64_t>(app.value()),
          static_cast<std::uint64_t>(user.value()), v.counter};
}

obs::Counter& fanout_frames_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_revoke_fanout_frames_total");
  return c;
}

obs::Counter& coalesced_rights_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_revoke_coalesced_rights");
  return c;
}

obs::Counter& retransmits_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_revoke_retransmits_total");
  return c;
}

// --------------------------------------------------------------- unicast

/// The reference strategy: frame-for-frame identical to the inline loop this
/// interface replaced (one RevokeNotify per host per right, retransmitted on
/// the manager's revoke_retransmit period until acked or past the deadline).
/// The conformance sweeps pin unicast against the model on every backend, so
/// any drift from the old behavior surfaces there.
class UnicastDisseminator final : public Disseminator {
 public:
  UnicastDisseminator(HostId self, runtime::Env& env, sim::Duration te,
                      sim::Duration retransmit, Sink& sink)
      : self_(self), env_(env), te_(te), retransmit_(retransmit), sink_(sink) {}

  void revoke(AppId app, UserId user, acl::Version version,
              const std::set<HostId>& hosts, obs::TraceId trace) override {
    const Key key = key_of(app, user, version);
    auto fwd = std::make_unique<Fwd>(env_);
    fwd->app = app;
    fwd->user = user;
    fwd->version = version;
    fwd->pending = hosts;
    fwd->trace = trace;
    // "it can stop resending the message when the access right would have
    // expired based on the time mechanism" (§3.4): Te after now bounds every
    // outstanding cached copy.
    fwd->deadline = env_.now() + te_;

    static obs::Counter& notifies =
        obs::Registry::global().counter("wan_revoke_notifies_total");
    const auto msg = net::make_message<RevokeNotify>(app, user, version, trace);
    for (const HostId h : fwd->pending) {
      obs::record(trace, obs::SpanKind::kSend, self_, env_.now(),
                  "revoke.notify.send", h.value(),
                  static_cast<std::int64_t>(version.counter));
      notifies.inc();
      fanout_frames_counter().inc();
      sink_.send(h, msg);
    }
    Fwd& ref = *fwd;
    fwds_[key] = std::move(fwd);
    ref.retry.arm(retransmit_, [this, key] { retransmit(key); });
  }

  bool on_message(HostId from, const net::MessagePtr& msg) override {
    const auto* a = net::message_cast<RevokeNotifyAck>(msg);
    if (a == nullptr) return false;
    const auto it = fwds_.find(key_of(a->app, a->user, a->version));
    if (it == fwds_.end()) return true;
    obs::record(it->second->trace, obs::SpanKind::kRecv, self_, env_.now(),
                "revoke.ack.recv", from.value());
    it->second->pending.erase(from);
    sink_.delivered(a->app, from, a->user, a->version);
    if (it->second->pending.empty()) fwds_.erase(it);
    return true;
  }

  [[nodiscard]] std::size_t inflight() const override { return fwds_.size(); }

  void drop_app(AppId app) override {
    const std::uint64_t a = app.value();
    for (auto it = fwds_.begin(); it != fwds_.end();) {
      it = std::get<0>(it->first) == a ? fwds_.erase(it) : std::next(it);
    }
  }

  void shutdown() override { fwds_.clear(); }

 private:
  struct Fwd {
    AppId app{};
    UserId user{};
    acl::Version version{};
    std::set<HostId> pending;
    sim::TimePoint deadline{};
    obs::TraceId trace = 0;
    runtime::Timer retry;

    explicit Fwd(runtime::Env& env) : retry(env.make_timer()) {}
  };

  void retransmit(Key key) {
    const auto it = fwds_.find(key);
    if (it == fwds_.end()) return;
    Fwd& fwd = *it->second;
    if (env_.now() >= fwd.deadline || fwd.pending.empty()) {
      fwds_.erase(it);
      return;
    }
    obs::record(fwd.trace, obs::SpanKind::kTimer, self_, env_.now(),
                "revoke.retransmit",
                static_cast<std::int64_t>(fwd.pending.size()));
    retransmits_counter().inc();
    const auto msg =
        net::make_message<RevokeNotify>(fwd.app, fwd.user, fwd.version,
                                        fwd.trace);
    for (const HostId h : fwd.pending) {
      fanout_frames_counter().inc();
      sink_.send(h, msg);
    }
    fwd.retry.arm(retransmit_, [this, key] { retransmit(key); });
  }

  HostId self_;
  runtime::Env& env_;
  sim::Duration te_;
  sim::Duration retransmit_;
  Sink& sink_;
  std::map<Key, std::unique_ptr<Fwd>> fwds_;
};

// ----------------------------------------------------- coalesced / tree

/// Shared machinery of the two batching strategies: a Right ledger (who
/// still needs which (user, version)), a short-lived flush buffer that
/// collects rights revoked within one flush window, and Batch records that
/// own the retransmit loop for the frames actually sent. The tree subclass
/// only overrides how a flushed set of destinations turns into frames.
class BatchingDisseminator : public Disseminator {
 public:
  BatchingDisseminator(const runtime::DisseminationOptions& opts, HostId self,
                       runtime::Env& env, sim::Duration te,
                       sim::Duration retransmit, Sink& sink)
      : opts_(opts), self_(self), env_(env), te_(te), retransmit_(retransmit),
        sink_(sink) {}

  void revoke(AppId app, UserId user, acl::Version version,
              const std::set<HostId>& hosts, obs::TraceId trace) override {
    const Key key = key_of(app, user, version);
    Right& r = rights_[key];
    r.app = app;
    r.user = user;
    r.version = version;
    r.trace = trace;
    r.deadline = env_.now() + te_;
    r.pending = hosts;

    Buffer& buf = buffer_of(app);
    buf.keys.push_back(key);
    if (buf.keys.size() >= opts_.batch_max_rights ||
        opts_.flush_interval.is_zero()) {
      flush_app(app);
      return;
    }
    if (!buf.armed) {
      buf.armed = true;
      buf.flush.arm(opts_.flush_interval, [this, app] { flush_app(app); });
    }
  }

  bool on_message(HostId from, const net::MessagePtr& msg) override {
    if (const auto* a = net::message_cast<RevokeBatchAck>(msg)) {
      confirm(from, a->batch_id, {from});
      return true;
    }
    if (const auto* a = net::message_cast<RelayAck>(msg)) {
      confirm(from, a->batch_id, a->acked_dests);
      return true;
    }
    // Stray RevokeNotifyAck (e.g. from a host that acked a pre-reconfig
    // unicast notify) is dissemination traffic too; consume it.
    return net::message_cast<RevokeNotifyAck>(msg) != nullptr;
  }

  [[nodiscard]] std::size_t inflight() const override { return rights_.size(); }

  void drop_app(AppId app) override {
    const std::uint64_t a = app.value();
    for (auto it = rights_.begin(); it != rights_.end();) {
      it = std::get<0>(it->first) == a ? rights_.erase(it) : std::next(it);
    }
    for (auto it = batches_.begin(); it != batches_.end();) {
      it = it->second->app == app ? batches_.erase(it) : std::next(it);
    }
    buffers_.erase(app);
  }

  void shutdown() override {
    rights_.clear();
    batches_.clear();
    buffers_.clear();
  }

 protected:
  struct Right {
    AppId app{};
    UserId user{};
    acl::Version version{};
    obs::TraceId trace = 0;
    sim::TimePoint deadline{};
    std::set<HostId> pending;
  };

  /// One first-hop frame's worth of retransmission state: the rights it
  /// carries and the destinations that have not confirmed yet. For the
  /// coalesced strategy a batch has exactly one destination; for the tree
  /// strategy it covers a relay group and re-routes through a different
  /// member each retry round.
  struct Batch {
    AppId app{};
    std::vector<Key> items;       ///< rights carried by the LAST frame sent
    std::vector<HostId> dests;    ///< confirmation targets, sorted
    std::set<HostId> pending;     ///< dests still unconfirmed
    obs::TraceId trace = 0;
    std::size_t round = 0;        ///< retry rounds completed (relay rotation)
    runtime::Timer retry;

    explicit Batch(runtime::Env& env) : retry(env.make_timer()) {}
  };

  struct Buffer {
    std::vector<Key> keys;  ///< rights awaiting the flush window (may repeat)
    bool armed = false;
    runtime::Timer flush;

    explicit Buffer(runtime::Env& env) : flush(env.make_timer()) {}
  };

  Buffer& buffer_of(AppId app) {
    auto it = buffers_.find(app);
    if (it == buffers_.end()) {
      it = buffers_.emplace(app, std::make_unique<Buffer>(env_)).first;
    }
    return *it->second;
  }

  /// Filters `keys` down to live, unexpired rights (deduplicated, original
  /// order); expired rights are retired wholesale — their cached copies have
  /// expired on their own clocks, so retrying is pointless (§3.4).
  std::vector<Key> live_keys(const std::vector<Key>& keys) {
    std::vector<Key> live;
    std::set<Key> seen;
    for (const Key& k : keys) {
      if (!seen.insert(k).second) continue;
      const auto it = rights_.find(k);
      if (it == rights_.end()) continue;
      if (env_.now() >= it->second.deadline || it->second.pending.empty()) {
        rights_.erase(it);
        continue;
      }
      live.push_back(k);
    }
    return live;
  }

  std::vector<RevokeItem> wire_items(const std::vector<Key>& keys) const {
    std::vector<RevokeItem> items;
    items.reserve(keys.size());
    for (const Key& k : keys) {
      const auto it = rights_.find(k);
      if (it == rights_.end()) continue;
      items.push_back(RevokeItem{it->second.user, it->second.version});
    }
    return items;
  }

  void flush_app(AppId app) {
    const auto bit = buffers_.find(app);
    if (bit == buffers_.end()) return;
    std::vector<Key> keys;
    keys.swap(bit->second->keys);
    bit->second->armed = false;
    bit->second->flush.cancel();
    const std::vector<Key> live = live_keys(keys);
    if (live.empty()) return;
    dispatch(app, live);
  }

  /// Turns one flush window's rights into Batch records + first frames.
  virtual void dispatch(AppId app, const std::vector<Key>& keys) = 0;
  /// Sends one (re)frame for `batch`; round > 0 means a retry.
  virtual void send_frame(std::uint64_t batch_id, Batch& batch) = 0;

  void open_batch(AppId app, std::vector<Key> keys, std::vector<HostId> dests) {
    const std::uint64_t id = next_batch_id_++;
    auto batch = std::make_unique<Batch>(env_);
    batch->app = app;
    batch->items = std::move(keys);
    batch->dests = std::move(dests);
    batch->pending.insert(batch->dests.begin(), batch->dests.end());
    batch->trace = rights_[batch->items.front()].trace;
    Batch& ref = *batch;
    batches_[id] = std::move(batch);
    send_frame(id, ref);
    ref.retry.arm(retransmit_, [this, id] { retransmit(id); });
  }

  void retransmit(std::uint64_t id) {
    const auto it = batches_.find(id);
    if (it == batches_.end()) return;
    Batch& b = *it->second;
    b.items = live_keys(b.items);
    if (b.items.empty() || b.pending.empty()) {
      batches_.erase(it);
      return;
    }
    ++b.round;
    obs::record(b.trace, obs::SpanKind::kTimer, self_, env_.now(),
                "revoke.retransmit",
                static_cast<std::int64_t>(b.pending.size()));
    retransmits_counter().inc();
    send_frame(id, b);
    b.retry.arm(retransmit_, [this, id] { retransmit(id); });
  }

  /// Applies confirmations for `dests` of batch `id`: every right the LAST
  /// frame carried is delivered at each newly confirmed destination.
  void confirm(HostId from, std::uint64_t id,
               const std::vector<HostId>& dests) {
    const auto it = batches_.find(id);
    if (it == batches_.end()) return;
    Batch& b = *it->second;
    // Only members of the batch may vouch for it; anyone else claiming
    // progress is an outsider (a lying member only delays its own flush,
    // which cache expiry bounds — see the tree notes in the header).
    if (b.pending.count(from) == 0 &&
        std::find(b.dests.begin(), b.dests.end(), from) == b.dests.end()) {
      return;
    }
    std::size_t confirmed = 0;
    for (const HostId d : dests) {
      if (b.pending.erase(d) == 0) continue;
      ++confirmed;
      for (const Key& k : b.items) {
        const auto rit = rights_.find(k);
        if (rit == rights_.end()) continue;
        Right& r = rit->second;
        r.pending.erase(d);
        sink_.delivered(r.app, d, r.user, r.version);
        if (r.pending.empty()) rights_.erase(rit);
      }
    }
    if (confirmed > 0) {
      obs::record(b.trace, obs::SpanKind::kRecv, self_, env_.now(),
                  "revoke.ack.recv", from.value(),
                  static_cast<std::int64_t>(confirmed));
    }
    if (b.pending.empty()) batches_.erase(it);
  }

  runtime::DisseminationOptions opts_;
  HostId self_;
  runtime::Env& env_;
  sim::Duration te_;
  sim::Duration retransmit_;
  Sink& sink_;
  std::map<Key, Right> rights_;
  std::map<std::uint64_t, std::unique_ptr<Batch>> batches_;
  std::map<AppId, std::unique_ptr<Buffer>> buffers_;
  std::uint64_t next_batch_id_ = 1;
};

/// One RevokeBatch per destination per flush window.
class CoalescedDisseminator final : public BatchingDisseminator {
 public:
  using BatchingDisseminator::BatchingDisseminator;

 private:
  void dispatch(AppId app, const std::vector<Key>& keys) override {
    // Group the window's rights by destination: each host gets exactly one
    // frame carrying every right it still holds.
    std::map<HostId, std::vector<Key>> by_dest;
    for (const Key& k : keys) {
      for (const HostId h : rights_[k].pending) by_dest[h].push_back(k);
    }
    for (auto& [dest, dest_keys] : by_dest) {
      open_batch(app, std::move(dest_keys), {dest});
    }
  }

  void send_frame(std::uint64_t batch_id, Batch& b) override {
    const HostId dest = b.dests.front();
    obs::record(b.trace, obs::SpanKind::kSend, self_, env_.now(),
                "revoke_fanout", dest.value(),
                static_cast<std::int64_t>(b.items.size()));
    fanout_frames_counter().inc();
    coalesced_rights_counter().inc(b.items.size());
    sink_.send(dest, net::make_message<RevokeBatch>(b.app, batch_id,
                                                    wire_items(b.items),
                                                    b.trace));
  }
};

/// One RelayForward per relay group per flush window; the relay fans out and
/// acks upward. Retries rotate the relay through the surviving (unconfirmed)
/// members, so a crashed, partitioned, or lying relay costs one retransmit
/// period, never the bound: by the deadline every cached entry has expired
/// on its own local clock (te <= Te).
class TreeDisseminator final : public BatchingDisseminator {
 public:
  using BatchingDisseminator::BatchingDisseminator;

 private:
  void dispatch(AppId app, const std::vector<Key>& keys) override {
    // The union of destinations, partitioned into relay groups. Every group
    // member receives the whole window's items — over-delivery is idempotent
    // (flushing an uncached entry is a no-op) and keeps the envelope one
    // frame per group.
    std::set<HostId> dests;
    for (const Key& k : keys) {
      const auto& pending = rights_[k].pending;
      dests.insert(pending.begin(), pending.end());
    }
    std::vector<HostId> ordered(dests.begin(), dests.end());
    const std::size_t width = std::max<std::size_t>(1, opts_.relay_width);
    for (std::size_t i = 0; i < ordered.size(); i += width) {
      const std::size_t end = std::min(ordered.size(), i + width);
      open_batch(app, std::vector<Key>(keys),
                 std::vector<HostId>(ordered.begin() + i,
                                     ordered.begin() + end));
    }
  }

  void send_frame(std::uint64_t batch_id, Batch& b) override {
    std::vector<HostId> pending(b.pending.begin(), b.pending.end());
    std::vector<RevokeItem> items = wire_items(b.items);
    fanout_frames_counter().inc();
    coalesced_rights_counter().inc(items.size());
    if (pending.size() == 1) {
      // Singleton group (or every other member confirmed): relay indirection
      // buys nothing, send the batch straight to the last holdout.
      const HostId dest = pending.front();
      obs::record(b.trace, obs::SpanKind::kSend, self_, env_.now(),
                  "revoke_fanout", dest.value(),
                  static_cast<std::int64_t>(items.size()));
      sink_.send(dest, net::make_message<RevokeBatch>(b.app, batch_id,
                                                      std::move(items),
                                                      b.trace));
      return;
    }
    const HostId relay = pending[b.round % pending.size()];
    obs::record(b.trace, obs::SpanKind::kSend, self_, env_.now(),
                "revoke_fanout", relay.value(),
                static_cast<std::int64_t>(items.size()));
    sink_.send(relay, net::make_message<RelayForward>(b.app, batch_id,
                                                      std::move(items),
                                                      std::move(pending),
                                                      b.trace));
  }
};

}  // namespace

std::unique_ptr<Disseminator> make_disseminator(
    const runtime::DisseminationOptions& opts, HostId self, runtime::Env& env,
    sim::Duration te, sim::Duration retransmit_period,
    Disseminator::Sink& sink) {
  opts.validate();
  switch (opts.kind) {
    case runtime::DisseminationKind::kUnicast:
      return std::make_unique<UnicastDisseminator>(self, env, te,
                                                   retransmit_period, sink);
    case runtime::DisseminationKind::kCoalesced:
      return std::make_unique<CoalescedDisseminator>(opts, self, env, te,
                                                     retransmit_period, sink);
    case runtime::DisseminationKind::kTree:
      return std::make_unique<TreeDisseminator>(opts, self, env, te,
                                                retransmit_period, sink);
  }
  WAN_REQUIRE(false);
  return nullptr;
}

}  // namespace wan::proto
