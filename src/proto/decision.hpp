// Access-decision records — the observable behaviour of the protocol.
//
// Every allow/deny produced by an AccessController is described by one
// AccessDecision and handed to an observer callback; the metrics layer
// classifies these against the workload's ground truth to measure empirical
// availability (PA) and security (PS).
#pragma once

#include <cstdint>

#include "acl/version.hpp"
#include "proto/messages.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace wan::proto {

/// How the decision was reached (maps onto the paper's code paths).
enum class DecisionPath : std::uint8_t {
  kCacheHit,          ///< live ACL_cache entry (Fig. 3 fast path)
  kQuorumGranted,     ///< C responses assembled; freshest says granted
  kQuorumDenied,      ///< C responses assembled; freshest says no right
  kDefaultAllow,      ///< R attempts failed; availability rule fired (Fig. 4)
  kUnverifiableDeny,  ///< R attempts failed; security-first policy denies
  kAuthRejected,      ///< signature/replay check failed before any ACL work
  kUnknownApp,        ///< host does not run the application
};

[[nodiscard]] const char* to_cstring(DecisionPath p) noexcept;

struct AccessDecision {
  AppId app{};
  UserId user{};
  HostId host{};
  sim::TimePoint requested{};   ///< real time the check began at this host
  sim::TimePoint decided{};     ///< real time the decision was made
  bool allowed = false;
  DecisionPath path = DecisionPath::kCacheHit;
  DenyReason reason = DenyReason::kNone;
  int attempts = 0;             ///< manager-query attempts consumed
  acl::Version basis_version{}; ///< version of the ACL info the decision used
  /// Two responders reported contradictory rights at the SAME version — at
  /// least one of them lied (quorum intersection makes an honest pair
  /// impossible). The session resolved it deny-wins; basis_version is
  /// therefore tainted and the quorum-conflict oracle must not treat this
  /// decision as that version's authoritative reading.
  bool conflicting_replies = false;

  [[nodiscard]] sim::Duration latency() const noexcept { return decided - requested; }
};

/// Counters for the host-side Byzantine hardening (see AccessController):
/// how often replies were rejected as lies and managers benched for them.
struct HardeningStats {
  std::uint64_t stale_replies_discarded = 0;   ///< grants at/below a known revoke version, downgraded to denies
  std::uint64_t conflicting_replies = 0;       ///< equal-version contradiction, deny won
  std::uint64_t self_inconsistent_replies = 0; ///< manager contradicted its own reports
  std::uint64_t quarantines_imposed = 0;       ///< backoff windows started
  std::uint64_t queries_suppressed = 0;        ///< fanout sends skipped (quarantined)
  std::uint64_t quarantined_replies_ignored = 0;
};

}  // namespace wan::proto
