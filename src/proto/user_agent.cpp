#include "proto/user_agent.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace wan::proto {

UserAgent::UserAgent(HostId endpoint, UserId user, auth::KeyPair keys,
                     runtime::Env& env, Config config)
    : endpoint_(endpoint),
      user_(user),
      keys_(keys),
      env_(env),
      net_(env.transport()),
      config_(config) {
  WAN_REQUIRE(config_.reply_timeout > sim::Duration{});
  WAN_REQUIRE(config_.max_hosts >= 1);
}

void UserAgent::invoke(AppId app, std::vector<HostId> hosts,
                       std::string payload,
                       std::function<void(const InvokeResult&)> done) {
  WAN_REQUIRE(!hosts.empty());
  WAN_REQUIRE(done != nullptr);
  const std::uint64_t request_id = next_request_id_++;
  auto pending = std::make_unique<Pending>(env_);
  pending->app = app;
  pending->hosts = std::move(hosts);
  pending->payload = std::move(payload);
  pending->done = std::move(done);
  pending->started = env_.now();
  pending->trace =
      obs::mint(obs::TraceKind::kInvoke, endpoint_, next_trace_seq_++);
  obs::record(pending->trace, obs::SpanKind::kBegin, endpoint_, env_.now(),
              "invoke.begin", user_.value());
  static obs::Counter& invokes =
      obs::Registry::global().counter("wan_invokes_total");
  invokes.inc();
  pending_.emplace(request_id, std::move(pending));
  try_next_host(request_id);
}

void UserAgent::try_next_host(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  WAN_ASSERT(it != pending_.end());
  Pending& p = *it->second;

  const int limit =
      std::min<int>(config_.max_hosts, static_cast<int>(p.hosts.size()));
  if (p.next_host >= limit) {
    obs::record(p.trace, obs::SpanKind::kTimer, endpoint_, env_.now(),
                "invoke.exhausted", p.next_host);
    InvokeResult r;
    r.ok = false;
    r.timed_out = true;
    r.hosts_tried = p.next_host;
    r.latency = env_.now() - p.started;
    finish(request_id, std::move(r));
    return;
  }
  if (p.next_host > 0) {
    obs::record(p.trace, obs::SpanKind::kTimer, endpoint_, env_.now(),
                "invoke.timeout", p.next_host);
  }

  const HostId target = p.hosts[static_cast<std::size_t>(p.next_host++)];
  const std::uint64_t nonce = next_nonce_++;
  const auth::Signature sig =
      auth::sign(user_, auth::Authenticator::signed_bytes(p.payload, nonce),
                 keys_.secret);
  obs::record(p.trace, obs::SpanKind::kSend, endpoint_, env_.now(),
              "invoke.send", target.value());
  net_.send(endpoint_, target,
            net::make_message<InvokeRequest>(p.app, user_, request_id, nonce,
                                             sig, p.payload, p.trace));
  p.timer.arm(config_.reply_timeout,
              [this, request_id] { try_next_host(request_id); });
}

void UserAgent::on_message(HostId /*from*/, const net::MessagePtr& msg) {
  const auto* reply = net::message_cast<InvokeReply>(msg);
  if (reply == nullptr) return;
  const auto it = pending_.find(reply->request_id);
  if (it == pending_.end()) return;  // reply raced a timeout/failover
  Pending& p = *it->second;
  obs::record(p.trace, obs::SpanKind::kRecv, endpoint_, env_.now(),
              "invoke.reply", reply->accepted ? 1 : 0);
  InvokeResult r;
  r.ok = reply->accepted;
  r.reason = reply->reason;
  r.result = reply->result;
  r.hosts_tried = p.next_host;
  r.latency = env_.now() - p.started;
  finish(reply->request_id, std::move(r));
}

void UserAgent::finish(std::uint64_t request_id, InvokeResult result) {
  const auto it = pending_.find(request_id);
  WAN_ASSERT(it != pending_.end());
  auto pending = std::move(it->second);
  pending_.erase(it);
  pending->timer.cancel();
  obs::record(pending->trace, obs::SpanKind::kDecision, endpoint_, env_.now(),
              "invoke.done", result.ok ? 1 : 0, result.hosts_tried);
  auto& reg = obs::Registry::global();
  if (result.ok) {
    static obs::Counter& ok = reg.counter("wan_invokes_ok_total");
    ok.inc();
  } else if (result.timed_out) {
    static obs::Counter& to = reg.counter("wan_invokes_timeout_total");
    to.inc();
  } else {
    static obs::Counter& denied = reg.counter("wan_invokes_denied_total");
    denied.inc();
  }
  static obs::Histo& lat = reg.histogram("wan_invoke_latency_seconds");
  lat.observe(result.latency);
  pending->done(result);
}

}  // namespace wan::proto
