// ManagerJournal: durable manager state under a --state-dir.
//
// The paper's managers survive crashes by re-synchronizing from a quorum of
// peers (§2.4) — which works only while a quorum remembers. This journal
// adds the local half of recovery: every applied AclUpdate is appended to an
// on-disk log before the manager acts on it, so a manager restarted after
// kill -9 replays its own state first and then runs the existing resync to
// pick up what it missed while down. Replay + resync together make recovery
// exact instead of quorum-dependent.
//
// On-disk layout, per application, inside the state directory:
//
//   app-<id>.snap   compacted snapshot: header, then one record per register
//   app-<id>.log    append-only tail: records applied since the snapshot
//
// Both files share the format (all little-endian):
//
//   header   u32 magic 0x4C414A57 ("WJAL"), u16 version 1, u16 reserved 0
//   record   u32 len (= 30), then:
//              u32 app_id      (must match the filename — corruption check)
//              u32 user
//              u8  right       (acl::Right)
//              u8  op          (acl::Op)
//              u64 version.counter
//              u32 version.origin
//              i64 version.stamp
//
// The record body deliberately mirrors the AclUpdate wire layout
// (docs/WIRE_FORMAT.md) so the two serializations can never drift apart
// silently — test_journal pins both to the same bytes.
//
// Durability model: append() writes the record and fflush()es it. That moves
// the bytes into the kernel page cache, which survives the *process* dying
// (kill -9, the failure mode the chaos orchestrator injects); it does not
// survive the machine dying (no fsync — the paper's managers already handle
// peer amnesia via sync, so machine-level durability is not worth an fsync
// per update on the dissemination path). A crash mid-append leaves a torn
// final record; replay detects it, stops there, and truncate-repairs on the
// next append. Records after a torn one are unreachable by construction —
// appends go through one FILE* — so stopping loses nothing.
//
// Compaction: compact() writes the full store snapshot to app-<id>.snap.tmp,
// renames it over the snapshot (atomic on POSIX), then truncates the log.
// A crash between rename and truncate leaves log records that are already in
// the snapshot — harmless, replay applies them as stale no-ops (AclUpdate
// application is idempotent LWW).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "acl/store.hpp"
#include "util/ids.hpp"

namespace wan::proto {

class ManagerJournal {
 public:
  /// Opens (creating if needed) the state directory and scans it for
  /// existing app-*.snap / app-*.log files. On failure returns nullptr and
  /// sets *error ("state dir '<dir>' is not a directory" when the path names
  /// a non-directory; "cannot create state dir '<dir>': <reason>" when
  /// mkdir fails).
  static std::unique_ptr<ManagerJournal> open(const std::string& dir,
                                              std::string* error);
  ~ManagerJournal();
  ManagerJournal(const ManagerJournal&) = delete;
  ManagerJournal& operator=(const ManagerJournal&) = delete;

  /// True when open() found any journal files — i.e. this is a restart, not
  /// a first boot. Gates the restart-resync in ManagerModule::attach_journal
  /// (a fresh simultaneous boot must not sync against peers that cannot
  /// answer yet).
  [[nodiscard]] bool had_state() const noexcept { return had_state_; }

  /// Replays every durable record (snapshot first, then log, per app) into
  /// `fn`. Torn trailing records stop that file's replay without error.
  /// Returns the number of records replayed. Call once, before append().
  std::size_t replay(
      const std::function<void(AppId, const acl::AclUpdate&)>& fn);

  /// Appends one applied update to app-<id>.log and flushes it to the page
  /// cache. Returns false on I/O failure (disk full — the manager keeps
  /// running; durability degrades, correctness does not).
  bool append(AppId app, const acl::AclUpdate& update);

  /// Replaces app-<id>.snap with `snapshot` (tmp + rename) and truncates the
  /// log. Call with AclStore::snapshot() output.
  bool compact(AppId app, const std::vector<acl::AclUpdate>& snapshot);

  /// Log records appended (or found at open) since the last compact() for
  /// this app — the compaction trigger reads this.
  [[nodiscard]] std::size_t log_records(AppId app) const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  explicit ManagerJournal(std::string dir) : dir_(std::move(dir)) {}

  [[nodiscard]] std::string snap_path(std::uint32_t app) const;
  [[nodiscard]] std::string log_path(std::uint32_t app) const;

  /// The open append handle for one app's log (opened lazily, kept for the
  /// journal's lifetime so appends are one fwrite+fflush).
  std::FILE* log_handle(std::uint32_t app);

  std::string dir_;
  bool had_state_ = false;
  std::vector<std::uint32_t> found_apps_;          ///< from the open() scan
  std::map<std::uint32_t, std::FILE*> logs_;       ///< open append handles
  std::map<std::uint32_t, std::size_t> log_counts_;
};

}  // namespace wan::proto
