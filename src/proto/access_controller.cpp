#include "proto/access_controller.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace wan::proto {

namespace {

// Metric handles resolve once (function-local static) and then cost one
// relaxed atomic add per event.
obs::Counter& decision_counter(DecisionPath p) {
  auto& reg = obs::Registry::global();
  switch (p) {
    case DecisionPath::kCacheHit: {
      static obs::Counter& c =
          reg.counter("wan_decisions_total{path=\"cache-hit\"}");
      return c;
    }
    case DecisionPath::kQuorumGranted: {
      static obs::Counter& c =
          reg.counter("wan_decisions_total{path=\"quorum-granted\"}");
      return c;
    }
    case DecisionPath::kQuorumDenied: {
      static obs::Counter& c =
          reg.counter("wan_decisions_total{path=\"quorum-denied\"}");
      return c;
    }
    case DecisionPath::kDefaultAllow: {
      static obs::Counter& c =
          reg.counter("wan_decisions_total{path=\"default-allow\"}");
      return c;
    }
    case DecisionPath::kUnverifiableDeny: {
      static obs::Counter& c =
          reg.counter("wan_decisions_total{path=\"unverifiable-deny\"}");
      return c;
    }
    case DecisionPath::kAuthRejected: {
      static obs::Counter& c =
          reg.counter("wan_decisions_total{path=\"auth-rejected\"}");
      return c;
    }
    case DecisionPath::kUnknownApp: {
      static obs::Counter& c =
          reg.counter("wan_decisions_total{path=\"unknown-app\"}");
      return c;
    }
  }
  static obs::Counter& c = reg.counter("wan_decisions_total{path=\"?\"}");
  return c;
}

// "check.decide" span arg encoding, shared with obs::TeProbe::analyze:
// allowed in bit 8, DecisionPath in the low byte.
std::int64_t encode_decision(bool allowed, DecisionPath path) {
  return (static_cast<std::int64_t>(allowed) << 8) |
         static_cast<std::int64_t>(path);
}

}  // namespace

const char* to_cstring(DecisionPath p) noexcept {
  switch (p) {
    case DecisionPath::kCacheHit: return "cache-hit";
    case DecisionPath::kQuorumGranted: return "quorum-granted";
    case DecisionPath::kQuorumDenied: return "quorum-denied";
    case DecisionPath::kDefaultAllow: return "default-allow";
    case DecisionPath::kUnverifiableDeny: return "unverifiable-deny";
    case DecisionPath::kAuthRejected: return "auth-rejected";
    case DecisionPath::kUnknownApp: return "unknown-app";
  }
  return "?";
}

const char* to_cstring(DenyReason r) noexcept {
  switch (r) {
    case DenyReason::kNone: return "none";
    case DenyReason::kAuthentication: return "authentication";
    case DenyReason::kNotAuthorized: return "not-authorized";
    case DenyReason::kUnverifiable: return "unverifiable";
    case DenyReason::kUnknownApp: return "unknown-app";
  }
  return "?";
}

AccessController::AccessController(HostId self, runtime::Env& env,
                                   clk::LocalClock clock,
                                   const ns::NameService& names,
                                   const auth::KeyRegistry& keys,
                                   ProtocolConfig config)
    : self_(self),
      env_(env),
      net_(env.transport()),
      clock_(env, clock),
      resolver_(names, config.name_service_ttl),
      authenticator_(keys),
      config_(config),
      sweep_timer_(env.make_periodic_timer()) {
  config_.validate();
  sweep_timer_.start(config_.cache_sweep_period, [this] { sweep_tick(); });
}

void AccessController::sweep_tick() {
  if (!up_) return;
  const clk::LocalTime now = local_now();
  for (auto& [app, state] : apps_) {
    state.cache.sweep(now, config_.cache_idle_limit);
  }
  // Relay sessions the manager stopped driving (fully acked, expired, or
  // the manager crashed) age out after Te: by then every right the session
  // carried has expired on each leaf's own clock, and a late RelayForward
  // for the same batch would simply mint a fresh session.
  const sim::TimePoint horizon = env_.now();
  for (auto it = relay_sessions_.begin(); it != relay_sessions_.end();) {
    if (horizon - it->second.touched >= config_.Te) {
      relay_leaf_index_.erase(it->second.leaf_batch_id);
      it = relay_sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

AccessController::~AccessController() = default;

void AccessController::register_app(AppId app, AppHandler handler) {
  WAN_REQUIRE(app.valid());
  WAN_REQUIRE(handler != nullptr);
  apps_[app].handler = std::move(handler);
}

AccessController::AppState* AccessController::app_state(AppId app) {
  const auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second;
}

const acl::AclCache* AccessController::cache(AppId app) const {
  const auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second.cache;
}

acl::AclCache* AccessController::mutable_cache(AppId app) {
  AppState* state = app_state(app);
  return state == nullptr ? nullptr : &state->cache;
}

void AccessController::on_message(HostId from, const net::MessagePtr& msg) {
  if (!up_) return;
  if (const auto* invoke = net::message_cast<InvokeRequest>(msg)) {
    handle_invoke(from, *invoke);
  } else if (const auto* resp = net::message_cast<QueryResponse>(msg)) {
    handle_query_response(from, *resp);
  } else if (const auto* revoke = net::message_cast<RevokeNotify>(msg)) {
    handle_revoke(from, *revoke);
  } else if (const auto* batch = net::message_cast<RevokeBatch>(msg)) {
    handle_revoke_batch(from, *batch);
  } else if (const auto* relay = net::message_cast<RelayForward>(msg)) {
    handle_relay_forward(from, *relay);
  } else if (const auto* leaf = net::message_cast<RevokeBatchAck>(msg)) {
    handle_leaf_ack(from, *leaf);
  } else if (const auto* announce = net::message_cast<ShardMapAnnounce>(msg)) {
    handle_shard_map(from, *announce);
  }
  // Other message types are not addressed to an application host; a real
  // deployment would log and drop, which is exactly what happens here.
}

void AccessController::handle_invoke(HostId from, const InvokeRequest& req) {
  // Latency clock starts at arrival: every decision stemming from this
  // invoke — including the cache hit decided later in this same handler —
  // charges authentication and lookup time to wan_check_latency_seconds.
  const sim::TimePoint arrived = env_.now();
  AppState* state = app_state(req.app);
  if (state == nullptr) {
    AccessDecision d;
    d.app = req.app;
    d.user = req.user;
    d.host = self_;
    d.requested = arrived;
    d.decided = env_.now();
    d.allowed = false;
    d.path = DecisionPath::kUnknownApp;
    d.reason = DenyReason::kUnknownApp;
    emit(d);
    net_.send(self_, from,
              net::make_message<InvokeReply>(req.request_id, false,
                                             DenyReason::kUnknownApp, ""));
    return;
  }

  const auth::AuthResult auth = authenticator_.authenticate(
      req.user, req.payload, req.nonce, req.signature);
  if (auth != auth::AuthResult::kOk) {
    WAN_DEBUG << to_string(self_) << " rejects " << to_string(req.user)
              << ": " << auth::to_string(auth);
    AccessDecision d;
    d.app = req.app;
    d.user = req.user;
    d.host = self_;
    d.requested = arrived;
    d.decided = env_.now();
    d.allowed = false;
    d.path = DecisionPath::kAuthRejected;
    d.reason = DenyReason::kAuthentication;
    emit(d);
    net_.send(self_, from,
              net::make_message<InvokeReply>(req.request_id, false,
                                             DenyReason::kAuthentication, ""));
    return;
  }

  // Authenticated; now the Fig. 3 access check. The reply path captures the
  // caller so coalesced sessions answer every pending invocation.
  const AppId app = req.app;
  const std::uint64_t request_id = req.request_id;
  const std::string payload = req.payload;
  check_access(
      app, req.user,
      [this, from, app, request_id, payload](const AccessDecision& d) {
    AppState* state = app_state(app);
    if (state == nullptr) return;  // app deregistered while checking
    if (d.allowed) {
      std::string result = state->handler(d.user, payload);
      net_.send(self_, from,
                net::make_message<InvokeReply>(request_id, true,
                                               DenyReason::kNone,
                                               std::move(result)));
    } else {
      net_.send(self_, from,
                net::make_message<InvokeReply>(request_id, false, d.reason, ""));
    }
      },
      req.trace, arrived);
}

void AccessController::check_access(AppId app, UserId user, CheckCallback done,
                                    obs::TraceId parent,
                                    std::optional<sim::TimePoint> requested) {
  WAN_REQUIRE(done != nullptr);
  if (!up_) return;  // a crashed host runs nothing; the caller's session dies
  const sim::TimePoint t_req = requested.value_or(env_.now());
  AppState* state = app_state(app);
  if (state == nullptr) {
    AccessDecision d;
    d.app = app;
    d.user = user;
    d.host = self_;
    d.requested = t_req;
    d.decided = env_.now();
    d.allowed = false;
    d.path = DecisionPath::kUnknownApp;
    d.reason = DenyReason::kUnknownApp;
    emit(d);
    done(d);
    return;
  }

  // Fig. 3 fast path: live cache entry with the "use" right.
  const clk::LocalTime now_local = local_now();
  if (auto entry = state->cache.lookup(user, now_local);
      entry && entry->rights.has(acl::Right::kUse)) {
    const obs::TraceId trace =
        obs::mint(obs::TraceKind::kCheck, self_, next_trace_seq_++);
    obs::record(trace, obs::SpanKind::kBegin, self_, env_.now(), "check.begin",
                user.value(), static_cast<std::int64_t>(parent));
    obs::record(trace, obs::SpanKind::kDecision, self_, env_.now(),
                "check.decide", user.value(),
                encode_decision(true, DecisionPath::kCacheHit));
    AccessDecision d;
    d.app = app;
    d.user = user;
    d.host = self_;
    d.requested = t_req;
    d.decided = env_.now();
    d.allowed = true;
    d.path = DecisionPath::kCacheHit;
    d.basis_version = entry->version;
    emit(d);
    done(d);
    return;
  }
  // A cached entry *without* the use right cannot exist (only grants are
  // cached), so a miss here always means "ask the managers".

  const SessionKey key = session_key(app, user);
  if (const auto it = sessions_.find(key); it != sessions_.end()) {
    obs::record(it->second->trace, obs::SpanKind::kInstant, self_, env_.now(),
                "check.join", user.value(), static_cast<std::int64_t>(parent));
    it->second->waiters.push_back(std::move(done));
    return;
  }
  start_session(app, user, std::move(done), parent, t_req);
}

void AccessController::start_session(AppId app, UserId user, CheckCallback done,
                                     obs::TraceId parent,
                                     sim::TimePoint requested) {
  auto managers = resolver_.resolve(app, local_now());
  const SessionKey key = session_key(app, user);

  // Sharded routing: the check quorum assembles inside the manager group
  // that owns (app, user) — the shard map shrinks the protocol's world, it
  // never changes the protocol. An installed override (rebalance commit,
  // ShardMapAnnounce) wins over the name-service record so the flip is
  // atomic per host even when the directory lags.
  if (managers) {
    const shard::ShardMap* map = shard_map(app);
    if (map == nullptr && !managers->map.empty()) map = &managers->map;
    if (map != nullptr && !map->trivial()) {
      managers->managers = map->group_for(app, user);
    }
  }

  if (!managers || managers->managers.empty()) {
    AccessDecision d;
    d.app = app;
    d.user = user;
    d.host = self_;
    d.requested = requested;
    d.decided = env_.now();
    d.allowed = config_.exhausted_policy == ExhaustedPolicy::kAllow;
    d.path = d.allowed ? DecisionPath::kDefaultAllow
                       : DecisionPath::kUnverifiableDeny;
    d.reason = d.allowed ? DenyReason::kNone : DenyReason::kUnverifiable;
    emit(d);
    done(d);
    return;
  }

  // With byzantine_slack = f, C + f responders guarantee an intersection of
  // at least f + 1 with every completed update quorum: at least one honest
  // responder has seen every completed update, so freshest-wins still reads
  // current state past up to f liars. Refusing to decide on fewer IS the
  // defense: capping at a smaller manager set would let <= f liars decide
  // alone (a reconfiguration down to one compromised manager could then
  // serve a stale grant forever). A set too small to ever assemble C + f
  // exhausts to the configured policy — availability, never the Te bound.
  const int needed =
      config_.byzantine_slack > 0
          ? config_.check_quorum + config_.byzantine_slack
          : std::min<int>(config_.check_quorum,
                          static_cast<int>(managers->managers.size()));
  auto session = std::make_unique<CheckSession>(needed, env_);
  session->app = app;
  session->user = user;
  session->started = requested;
  session->managers = std::move(managers->managers);
  session->trace = obs::mint(obs::TraceKind::kCheck, self_, next_trace_seq_++);
  session->waiters.push_back(std::move(done));
  obs::record(session->trace, obs::SpanKind::kBegin, self_, env_.now(),
              "check.begin", user.value(), static_cast<std::int64_t>(parent));
  CheckSession& ref = *session;
  sessions_.emplace(key, std::move(session));
  begin_attempt(ref);
}

void AccessController::begin_attempt(CheckSession& s) {
  const SessionKey key = session_key(s.app, s.user);
  query_to_session_.erase(s.query_id);
  s.query_id = next_query_id_++;
  query_to_session_[s.query_id] = key;
  s.attempt_sent = env_.now();
  s.responders.reset();
  s.best_rights = acl::RightSet{};
  s.best_version = acl::Version{};
  s.best_expiry = sim::Duration{};

  // Quarantined managers are not queried: their replies would be ignored
  // anyway, and skipping them gives honest managers the attempt's airtime.
  // If every manager is benched the attempt sends nothing and times out into
  // the exhausted policy — an unverifiable access, which is the safe reading.
  const clk::LocalTime bench_now = local_now();
  const auto usable = [&](HostId m) {
    if (!quarantined(m, bench_now)) return true;
    ++hardening_.queries_suppressed;
    return false;
  };

  const auto msg =
      net::make_message<QueryRequest>(s.app, s.user, s.query_id, s.trace);
  static obs::Counter& queries_sent =
      obs::Registry::global().counter("wan_queries_sent_total");
  const auto send_query = [&](HostId target) {
    obs::record(s.trace, obs::SpanKind::kSend, self_, env_.now(), "query.send",
                target.value(), s.attempts);
    queries_sent.inc();
    net_.send(self_, target, msg);
  };
  if (config_.fanout == QueryFanout::kAll) {
    for (const HostId m : s.managers) {
      if (usable(m)) send_query(m);
    }
  } else {
    // Exactly C managers, rotating the window between attempts so that
    // repeated failures try "different managers" (Fig. 2's loop).
    const std::size_t m = s.managers.size();
    const auto c = static_cast<std::size_t>(s.responders.needed());
    std::size_t sent = 0;
    for (std::size_t i = 0; i < m && sent < c; ++i) {
      const HostId target = s.managers[(s.rotate + i) % m];
      if (usable(target)) {
        send_query(target);
        ++sent;
      }
    }
    s.rotate = (s.rotate + c) % m;
  }

  s.timer.arm(config_.query_timeout, [this, key] { on_attempt_timeout(key); });
}

void AccessController::handle_query_response(HostId from,
                                             const QueryResponse& resp) {
  const auto qit = query_to_session_.find(resp.query_id);
  if (qit == query_to_session_.end()) return;  // stale attempt (Fig. 3 timer)
  const SessionKey key = qit->second;
  const auto sit = sessions_.find(key);
  WAN_ASSERT(sit != sessions_.end());
  CheckSession& s = *sit->second;
  WAN_ASSERT(resp.app == s.app && resp.user == s.user);
  obs::record(s.trace, obs::SpanKind::kRecv, self_, env_.now(), "query.recv",
              from.value(),
              static_cast<std::int64_t>(resp.version.counter));
  static obs::Counter& replies =
      obs::Registry::global().counter("wan_query_replies_total");
  replies.inc();
  // Only the managers this session queried may vote: the paper's trust model
  // authenticates manager traffic, so a response from anyone else is forged.
  if (std::find(s.managers.begin(), s.managers.end(), from) ==
      s.managers.end()) {
    WAN_WARN << to_string(self_) << " dropped QueryResponse from non-manager "
             << to_string(from);
    return;
  }

  if (!admit_reply(from, resp)) return;

  acl::RightSet rights = resp.rights;
  acl::Version version = resp.version;
  // Deny floor: a grant claim at or below a deny this host already saw
  // (clean quorum deny or RevokeNotify) is the signature move of a stale-
  // store liar. The host's own evidence supersedes the claim — the reply is
  // downgraded to a deny vote at the floor version, so it still counts toward
  // the quorum (an honest-but-lagging manager must not starve assembly) but
  // can never be the allow the liar wanted. Only active under a Byzantine
  // threat model (slack > 0): an honest lagging manager's stale grant is the
  // same wire bytes, and honouring it during a revoke's in-flight window is
  // paper-legal availability the crash-only configuration must keep. Lie
  // resistance trades availability; it never gets to trade it for free.
  if (config_.byzantine_slack > 0 && rights.has(acl::Right::kUse)) {
    if (const auto fit = deny_floor_.find(user_key(resp.app, resp.user));
        fit != deny_floor_.end() && version <= fit->second) {
      ++hardening_.stale_replies_discarded;
      rights = acl::RightSet{};
      version = fit->second;
    }
  }

  const bool claims_use = rights.has(acl::Right::kUse);
  // Clamp the advertised lifetime to this host's own configured te: a liar
  // must not be able to stretch a cache entry past the bound the host's
  // application chose.
  const sim::Duration expiry =
      std::min(resp.expiry_period, config_.expiry_period());
  if (!s.any_reply || version > s.best_version) {
    s.best_version = version;
    s.best_rights = rights;
    s.best_expiry = expiry;
  } else if (version == s.best_version &&
             claims_use != s.best_rights.has(acl::Right::kUse)) {
    // Contradictory rights at the SAME version: quorum intersection makes an
    // honest pair impossible, so one of the two lied — and the host cannot
    // tell which. Deny is the side that cannot break the Te bound; the
    // decision is flagged so the version oracle knows its basis is tainted.
    s.conflict = true;
    ++hardening_.conflicting_replies;
    if (!claims_use) {
      s.best_rights = rights;
      s.best_expiry = expiry;
    }
  }
  s.any_reply = true;
  if (!s.responders.record(from)) return;

  // Check quorum assembled; freshest response decides. The update quorum
  // (M - C + 1) guarantees at least one responder saw any completed update.
  if (s.best_rights.has(acl::Right::kUse)) {
    // Cache with the transmission delay subtracted (Fig. 3's delta). The
    // host measures delta on its own clock over the whole attempt RTT —
    // an upper bound on the response's age, which only shortens the entry.
    AppState* state = app_state(s.app);
    WAN_ASSERT(state != nullptr);
    const clk::LocalTime now_local = local_now();
    const clk::LocalTime sent_local = clock_.skew().now(s.attempt_sent);
    const sim::Duration delta = now_local - sent_local;
    const sim::Duration remaining = s.best_expiry - delta;
    if (remaining > sim::Duration{}) {
      state->cache.insert(s.user, s.best_rights, now_local + remaining,
                          s.best_version, now_local);
    }
    finish_session(key, true, DecisionPath::kQuorumGranted, DenyReason::kNone);
  } else {
    // A clean quorum deny at a real version is authoritative evidence: any
    // later grant claim at or below it contradicts a completed update. A
    // conflicted quorum's version is tainted and must not raise the floor —
    // the deny side of the contradiction may itself be the lie.
    if (!s.conflict && !s.best_version.initial()) {
      acl::Version& floor = deny_floor_[user_key(s.app, s.user)];
      if (s.best_version > floor) floor = s.best_version;
    }
    finish_session(key, false, DecisionPath::kQuorumDenied,
                   DenyReason::kNotAuthorized);
  }
}

bool AccessController::quarantined(HostId manager, clk::LocalTime now) const {
  // offenses gates the comparison: local clocks may legitimately read
  // negative (arbitrary per-host epoch offsets), so the zero-valued
  // quarantined_until of a fresh, innocent profile must not look like a
  // bench that extends past `now`.
  const auto it = profiles_.find(manager);
  return it != profiles_.end() && it->second.offenses > 0 &&
         now < it->second.quarantined_until;
}

void AccessController::quarantine(HostId manager, clk::LocalTime now) {
  ManagerProfile& prof = profiles_[manager];
  const std::uint32_t shift = std::min<std::uint32_t>(prof.offenses, 5);
  ++prof.offenses;
  prof.quarantined_until =
      now + sim::Duration::nanos(config_.quarantine_backoff.count_nanos()
                                 << shift);
  ++hardening_.quarantines_imposed;
  WAN_WARN << to_string(self_) << " quarantines manager "
           << to_string(manager) << " (offense " << prof.offenses << ")";
}

bool AccessController::manager_quarantined(HostId manager) const {
  return quarantined(manager, clock_.local_now());
}

bool AccessController::admit_reply(HostId from, const QueryResponse& resp) {
  const clk::LocalTime now = local_now();
  if (quarantined(from, now)) {
    ++hardening_.quarantined_replies_ignored;
    return false;
  }
  const std::uint64_t key = user_key(resp.app, resp.user);
  const bool claims_use = resp.rights.has(acl::Right::kUse);

  // Self-consistency: a manager's use register is an LWW cell, so the version
  // in a reply fully determines the use bit — two replies from the SAME
  // manager at the SAME version with different bits is something no honest
  // manager produces under any schedule, and benches the sender for a backoff
  // window. (Version *regressions* are NOT evidence: the network can reorder
  // one manager's in-flight replies, and a crash-recovered manager honestly
  // regresses past updates that never completed a quorum. Those replies are
  // admitted; the deny floor below separately defuses stale grants.)
  ManagerProfile& prof = profiles_[from];
  if (const auto it = prof.reported.find(key); it != prof.reported.end()) {
    const ManagerReport& prev = it->second;
    if (resp.version == prev.version && claims_use != prev.claims_use) {
      ++hardening_.self_inconsistent_replies;
      quarantine(from, now);
      return false;
    }
  }
  prof.reported[key] = ManagerReport{resp.version, claims_use};
  return true;
}

void AccessController::on_attempt_timeout(SessionKey key) {
  const auto sit = sessions_.find(key);
  WAN_ASSERT(sit != sessions_.end());
  CheckSession& s = *sit->second;
  ++s.attempts;
  obs::record(s.trace, obs::SpanKind::kTimer, self_, env_.now(),
              "check.timeout", s.attempts);
  static obs::Counter& timeouts =
      obs::Registry::global().counter("wan_check_attempt_timeouts_total");
  timeouts.inc();
  if (config_.max_attempts > 0 && s.attempts >= config_.max_attempts) {
    if (config_.exhausted_policy == ExhaustedPolicy::kAllow) {
      // Fig. 4: "when attempt to verify access right has failed R times,
      // allow access". No authoritative information exists, so nothing is
      // cached — the next invocation re-verifies.
      finish_session(key, true, DecisionPath::kDefaultAllow, DenyReason::kNone);
    } else {
      finish_session(key, false, DecisionPath::kUnverifiableDeny,
                     DenyReason::kUnverifiable);
    }
    return;
  }
  begin_attempt(s);
}

void AccessController::finish_session(SessionKey key, bool allowed,
                                      DecisionPath path, DenyReason reason) {
  const auto sit = sessions_.find(key);
  WAN_ASSERT(sit != sessions_.end());
  // Detach the session before invoking waiters: a waiter may immediately
  // issue another check_access for the same (app, user).
  std::unique_ptr<CheckSession> s = std::move(sit->second);
  sessions_.erase(sit);
  query_to_session_.erase(s->query_id);
  s->timer.cancel();
  obs::record(s->trace, obs::SpanKind::kDecision, self_, env_.now(),
              "check.decide", s->user.value(), encode_decision(allowed, path));

  AccessDecision d;
  d.app = s->app;
  d.user = s->user;
  d.host = self_;
  d.requested = s->started;
  d.decided = env_.now();
  d.allowed = allowed;
  d.path = path;
  d.reason = reason;
  d.attempts = s->attempts + (path == DecisionPath::kQuorumGranted ||
                                      path == DecisionPath::kQuorumDenied
                                  ? 1
                                  : 0);
  d.basis_version = s->best_version;
  d.conflicting_replies = s->conflict;
  // One decision record per coalesced invocation: each represents a user
  // access, and the metrics layer weights availability by accesses.
  for (std::size_t i = 0; i < s->waiters.size(); ++i) emit(d);
  for (auto& waiter : s->waiters) waiter(d);
}

bool AccessController::sender_is_manager(AppId app, HostId from) {
  // Under sharding "manager" means any member of any group (the union):
  // during a rebalance either owner of the moving shard may legitimately
  // act, and traffic from the wrong group only costs one re-check.
  const auto managers = resolver_.resolve(app, local_now());
  if (managers && std::find(managers->managers.begin(),
                            managers->managers.end(),
                            from) != managers->managers.end()) {
    return true;
  }
  const shard::ShardMap* override_map = shard_map(app);
  return override_map != nullptr &&
         override_map->group_index_of(from).has_value();
}

void AccessController::flush_right(AppId app, UserId user,
                                   acl::Version version, obs::TraceId trace,
                                   bool authoritative) {
  // Fig. 2: flush unconditionally. If the user was meanwhile re-granted, the
  // flush only costs one re-check — safe for security, cheap for availability.
  // The flush span lands on the *issuing manager's* update trace (`trace`),
  // closing the revocation chain at each notified host.
  obs::record(trace, obs::SpanKind::kRecv, self_, env_.now(),
              "revoke.flush", user.value(),
              static_cast<std::int64_t>(version.counter));
  static obs::Counter& flushes =
      obs::Registry::global().counter("wan_revoke_flushes_total");
  flushes.inc();
  if (AppState* state = app_state(app)) {
    state->cache.remove_on_revoke(user);
  }
  // The notify is authoritative deny evidence at its version: remember it so
  // a lying manager's stale grant replies at or below it are discarded. Only
  // a copy received from an authenticated manager qualifies — see
  // handle_revoke_batch for why relayed copies do not.
  if (authoritative && !version.initial()) {
    acl::Version& floor = deny_floor_[user_key(app, user)];
    if (version > floor) floor = version;
  }
}

void AccessController::handle_revoke(HostId from, const RevokeNotify& msg) {
  // Only genuine managers may flush the cache — otherwise any host could
  // deny service to arbitrary users with spoofed RevokeNotify datagrams.
  if (!sender_is_manager(msg.app, from)) {
    WAN_WARN << to_string(self_) << " dropped RevokeNotify from non-manager "
             << to_string(from);
    return;
  }
  flush_right(msg.app, msg.user, msg.version, msg.trace,
              /*authoritative=*/true);
  net_.send(self_, from,
            net::make_message<RevokeNotifyAck>(msg.app, msg.user, msg.version));
}

void AccessController::handle_revoke_batch(HostId from,
                                           const RevokeBatch& msg) {
  // Two senders are possible: the manager itself (coalesced dissemination,
  // or a tree group down to one member) and a peer host relaying on a
  // manager's behalf. A relay cannot be authenticated as one — any host
  // could claim the role — so a relayed item still flushes the cache
  // (spoofing it costs the victim at most one re-check per item) but NEVER
  // raises the deny floor: a floor is sticky deny evidence, and only a
  // genuine manager's word is good for that.
  const bool authoritative = sender_is_manager(msg.app, from);
  for (const RevokeItem& item : msg.items) {
    flush_right(msg.app, item.user, item.version, msg.trace, authoritative);
  }
  net_.send(self_, from,
            net::make_message<RevokeBatchAck>(msg.app, msg.batch_id));
}

void AccessController::handle_relay_forward(HostId from,
                                            const RelayForward& msg) {
  // Relay duty is only accepted from an authenticated manager: the frame
  // names other hosts to contact, and honouring a forged one would turn
  // this host into an amplification cannon.
  if (!sender_is_manager(msg.app, from)) {
    WAN_WARN << to_string(self_) << " dropped RelayForward from non-manager "
             << to_string(from);
    return;
  }
  if (lying_relay_) {
    // Chaos hook (debug_set_lying_relay): claim complete delivery, deliver
    // nothing. The Te bound must absorb this — see the header comment.
    net_.send(self_, from,
              net::make_message<RelayAck>(msg.app, msg.batch_id, msg.dests));
    return;
  }
  const auto key = std::make_pair(from, msg.batch_id);
  auto [it, created] = relay_sessions_.try_emplace(key);
  RelaySession& s = it->second;
  if (created) {
    s.app = msg.app;
    s.leaf_batch_id = next_leaf_batch_id_++;
    s.trace = msg.trace;
    relay_leaf_index_[s.leaf_batch_id] = key;
  }
  s.touched = env_.now();
  // The manager refilters the payload on every retransmission (expired
  // rights drop out), so the latest frame is authoritative for the leaves.
  s.items = msg.items;
  for (const HostId d : msg.dests) {
    if (s.acked.count(d) != 0) continue;
    if (d == self_) {
      // The relay is itself a destination; deliver locally. The sender is a
      // manager, so this copy is authoritative.
      for (const RevokeItem& item : s.items) {
        flush_right(msg.app, item.user, item.version, s.trace,
                    /*authoritative=*/true);
      }
      s.acked.insert(d);
      continue;
    }
    s.pending.insert(d);
  }
  static obs::Counter& frames =
      obs::Registry::global().counter("wan_revoke_fanout_frames_total");
  static obs::Counter& rights =
      obs::Registry::global().counter("wan_revoke_coalesced_rights");
  const auto leaf_frame = net::make_message<RevokeBatch>(
      msg.app, s.leaf_batch_id, s.items, s.trace);
  for (const HostId d : s.pending) {
    obs::record(s.trace, obs::SpanKind::kSend, self_, env_.now(),
                "revoke_fanout", d.value(),
                static_cast<std::int64_t>(s.items.size()));
    frames.inc();
    rights.inc(s.items.size());
    net_.send(self_, d, leaf_frame);
  }
  // Cumulative ack — everything confirmed so far, self included — sent on
  // every round, so a lost ack costs one retransmit period and nothing more.
  if (!s.acked.empty()) {
    net_.send(self_, from,
              net::make_message<RelayAck>(
                  msg.app, msg.batch_id,
                  std::vector<HostId>(s.acked.begin(), s.acked.end())));
  }
}

void AccessController::handle_leaf_ack(HostId from, const RevokeBatchAck& msg) {
  const auto idx = relay_leaf_index_.find(msg.batch_id);
  if (idx == relay_leaf_index_.end()) return;
  const auto sit = relay_sessions_.find(idx->second);
  if (sit == relay_sessions_.end()) return;
  RelaySession& s = sit->second;
  if (s.app != msg.app || s.pending.erase(from) == 0) return;
  s.acked.insert(from);
  s.touched = env_.now();
  // Push the news upward immediately (still cumulative, still idempotent).
  net_.send(self_, idx->second.first,
            net::make_message<RelayAck>(
                s.app, idx->second.second,
                std::vector<HostId>(s.acked.begin(), s.acked.end())));
}

void AccessController::install_shard_map(AppId app, shard::ShardMap map) {
  WAN_REQUIRE(map.valid() && !map.empty());
  shard_maps_[app] = std::move(map);
}

const shard::ShardMap* AccessController::shard_map(AppId app) const {
  const auto it = shard_maps_.find(app);
  return it == shard_maps_.end() ? nullptr : &it->second;
}

void AccessController::handle_shard_map(HostId from, const ShardMapAnnounce& msg) {
  // Epoch discipline: only strictly newer maps install, so replays and
  // reordered announces are no-ops. Trust: the sender must already be a
  // manager of the app — in the current map or the name-service record —
  // mirroring the RevokeNotify rule above.
  const shard::ShardMap* current = shard_map(msg.app);
  if (current != nullptr && msg.map.epoch() <= current->epoch()) return;
  const auto managers = resolver_.resolve(msg.app, local_now());
  const bool known_via_record =
      managers && std::find(managers->managers.begin(),
                            managers->managers.end(),
                            from) != managers->managers.end();
  const bool known_via_map =
      current != nullptr && current->group_index_of(from).has_value();
  if (!known_via_record && !known_via_map) {
    WAN_WARN << to_string(self_) << " dropped ShardMapAnnounce from "
             << to_string(from);
    return;
  }
  shard_maps_[msg.app] = msg.map;
}

void AccessController::crash() {
  up_ = false;
  sessions_.clear();  // Timer members cancel on destruction
  query_to_session_.clear();
  for (auto& [app, state] : apps_) state.cache.clear();
  // Hardening memory (reports, floors, benches) is volatile like the cache;
  // the stats ledger survives, like any metrics counter would.
  profiles_.clear();
  deny_floor_.clear();
  // Relay duties die with the host; the retransmitting managers re-seed
  // them. A reimaged host also comes back honest.
  relay_sessions_.clear();
  relay_leaf_index_.clear();
  lying_relay_ = false;
  authenticator_.reset();
  resolver_.clear();
  sweep_timer_.stop();
}

void AccessController::recover() {
  // §3.4: "ACL_cache(A) can simply be initialized to null and refilled using
  // the normal algorithm" — crash() already dropped it; nothing to restore.
  up_ = true;
  sweep_timer_.start(config_.cache_sweep_period, [this] { sweep_tick(); });
}

void AccessController::emit(const AccessDecision& d) {
  decision_counter(d.path).inc();
  static obs::Histo& latency =
      obs::Registry::global().histogram("wan_check_latency_seconds");
  latency.observe(d.decided - d.requested);
  if (observer_) observer_(d);
}

}  // namespace wan::proto
