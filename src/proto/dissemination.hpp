// Collective revocation dissemination — the strategy behind a manager's
// revoke fan-out (§3.1, §3.4).
//
// The reference protocol unicasts one RevokeNotify per cached host per
// revoked right and retransmits until acked or until the right would have
// expired anyway (deadline = issue + Te). At large Hosts(A) that loop is the
// scale frontier: a mass revocation of U rights cached at H hosts costs
// U x H frames. The Disseminator interface makes the loop pluggable:
//
//   * kUnicast   — the reference, frame-for-frame identical to the old
//                  inline loop (pinned by the conformance sweeps);
//   * kCoalesced — buffers (user, version) rights for a small flush window
//                  and sends ONE RevokeBatch per destination, so a storm
//                  costs H frames instead of U x H;
//   * kTree      — partitions destinations into relay groups and sends each
//                  group one RelayForward through a relay host, which fans
//                  out locally and acks upward; H/relay_width frames leave
//                  the manager. Relay failure modes (crash, partition, lying
//                  acks) are bounded exactly like a lost RevokeNotify: the
//                  manager retries through a different relay each round, and
//                  past the deadline the cached entries have expired on
//                  their own (te <= Te), so the paper's bound holds without
//                  trusting any relay.
//
// Every strategy keeps the manager's retransmit-until-deadline discipline and
// reports per-(host, right) delivery through Sink::delivered so the owning
// ManagerModule can retire grant-table entries exactly as before. The
// strategy owns all in-flight state; ManagerModule::crash() drops it through
// shutdown() like any other volatile state.
#pragma once

#include <cstddef>
#include <memory>
#include <set>

#include "acl/store.hpp"
#include "net/message.hpp"
#include "obs/trace.hpp"
#include "runtime/env.hpp"
#include "runtime/env_options.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace wan::proto {

class Disseminator {
 public:
  /// How a strategy talks back to its owning manager. `send` puts a frame on
  /// the wire from the manager's address; `delivered` reports that `host`
  /// confirmed flushing (user, version) — the manager erases the matching
  /// grant-table entry, exactly what the old inline ack handler did.
  struct Sink {
    virtual ~Sink() = default;
    virtual void send(HostId to, const net::MessagePtr& msg) = 0;
    virtual void delivered(AppId app, HostId host, UserId user,
                           acl::Version version) = 0;
  };

  virtual ~Disseminator() = default;

  /// Begins fan-out of the revocation (user, version) to `hosts` (the grant
  /// table's row) on the issuing manager's trace. The strategy retransmits
  /// until every host confirmed or the Te deadline passes.
  virtual void revoke(AppId app, UserId user, acl::Version version,
                      const std::set<HostId>& hosts, obs::TraceId trace) = 0;

  /// Offers an inbound message. Returns true when consumed (an ack kind this
  /// strategy understands — even if it matched no in-flight state), false
  /// when the message is not dissemination traffic.
  virtual bool on_message(HostId from, const net::MessagePtr& msg) = 0;

  /// Rights still awaiting confirmations (test/diag hook).
  [[nodiscard]] virtual std::size_t inflight() const = 0;

  /// Drops in-flight state for one app (the manager left its manager set).
  virtual void drop_app(AppId app) = 0;

  /// Drops all in-flight state (manager crash: everything here is volatile).
  virtual void shutdown() = 0;
};

/// Builds the strategy `opts.kind` names. `te` bounds every fan-out
/// (deadline = now + te at revoke time) and `retransmit_period` paces the
/// retry loop — both come from the manager's ProtocolConfig.
[[nodiscard]] std::unique_ptr<Disseminator> make_disseminator(
    const runtime::DisseminationOptions& opts, HostId self, runtime::Env& env,
    sim::Duration te, sim::Duration retransmit_period, Disseminator::Sink& sink);

}  // namespace wan::proto
