#include "proto/manager.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/journal.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace wan::proto {

namespace {

// "update.quorum" / "update.submit" span arg: op in a1 (1 = revoke), shared
// with obs::TeProbe::analyze.
std::int64_t op_arg(acl::Op op) { return op == acl::Op::kRevoke ? 1 : 0; }

obs::Counter& update_quorum_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_update_quorums_total");
  return c;
}

}  // namespace

ManagerModule::ManagerModule(HostId self, runtime::Env& env,
                             clk::LocalClock clock, ProtocolConfig config)
    : self_(self),
      env_(env),
      net_(env.transport()),
      clock_(env, clock),
      config_(config) {
  config_.validate();
}

ManagerModule::~ManagerModule() = default;

ManagerModule::AppCtl* ManagerModule::ctl_of(AppId app) {
  const auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second;
}

const ManagerModule::AppCtl* ManagerModule::ctl_of(AppId app) const {
  const auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second;
}

void ManagerModule::manage_app(AppId app, std::vector<HostId> managers) {
  WAN_REQUIRE(app.valid());
  WAN_REQUIRE(std::find(managers.begin(), managers.end(), self_) != managers.end());
  WAN_REQUIRE(config_.check_quorum <= static_cast<int>(managers.size()));
  AppCtl& ctl = apps_[app];
  ctl.managers = std::move(managers);
  ctl.peers.clear();
  for (const HostId m : ctl.managers) {
    if (m != self_) ctl.peers.push_back(m);
  }
  ctl.check_quorum = config_.check_quorum;
  const clk::LocalTime now = local_now();
  for (const HostId p : ctl.peers) ctl.last_heard[p] = now;
  if (config_.freeze_enabled) start_heartbeats(app, ctl);
}

void ManagerModule::reconfigure_app(AppId app, std::vector<HostId> managers) {
  WAN_REQUIRE(std::find(managers.begin(), managers.end(), self_) !=
              managers.end());
  const bool newcomer = ctl_of(app) == nullptr;
  if (newcomer) {
    manage_app(app, std::move(managers));
    AppCtl& ctl = apps_[app];
    begin_sync(app, ctl);  // do not answer queries until caught up
    return;
  }
  AppCtl& ctl = apps_[app];
  ctl.managers = std::move(managers);
  ctl.peers.clear();
  for (const HostId m : ctl.managers) {
    if (m != self_) ctl.peers.push_back(m);
  }
  // Refresh freeze bookkeeping: drop departed peers, adopt new ones as
  // just-heard (they get a full Ti before they can freeze us).
  const clk::LocalTime now = local_now();
  std::unordered_map<HostId, clk::LocalTime> heard;
  for (const HostId p : ctl.peers) {
    const auto it = ctl.last_heard.find(p);
    heard[p] = it != ctl.last_heard.end() ? it->second : now;
  }
  ctl.last_heard = std::move(heard);
  // Departed peers will never ack: prune them from in-flight work so
  // transactions can complete (or retire) against the new membership.
  for (auto it = ctl.txns.begin(); it != ctl.txns.end();) {
    Txn& txn = *it->second;
    for (auto p = txn.pending_peers.begin(); p != txn.pending_peers.end();) {
      p = is_peer(ctl, *p) ? std::next(p) : txn.pending_peers.erase(p);
    }
    it = txn.pending_peers.empty() ? ctl.txns.erase(it) : std::next(it);
  }
}

void ManagerModule::forget_app(AppId app) { apps_.erase(app); }

void ManagerModule::start_heartbeats(AppId app, AppCtl& ctl) {
  ctl.heartbeat = std::make_unique<runtime::PeriodicTimer>(env_.make_periodic_timer());
  ctl.heartbeat->start(config_.heartbeat_period, [this, app] {
    AppCtl* ctl = ctl_of(app);
    if (ctl == nullptr || !up_) return;
    const auto ping =
        net::make_message<HeartbeatPing>(app, ++ctl->heartbeat_seq);
    for (const HostId p : ctl->peers) net_.send(self_, p, ping);
  });
}

bool ManagerModule::is_peer(const AppCtl& ctl, HostId from) noexcept {
  return std::find(ctl.peers.begin(), ctl.peers.end(), from) != ctl.peers.end();
}

void ManagerModule::note_peer(AppCtl& ctl, HostId peer) {
  const auto it = ctl.last_heard.find(peer);
  if (it != ctl.last_heard.end()) it->second = local_now();
}

sim::Duration ManagerModule::freeze_threshold() const {
  // Ti is a real-time bound; this clock may run up to b times slow, so the
  // local threshold is Ti / b ("care must be taken to account for clock rate
  // differences at managers", §3.3).
  return sim::Duration::from_seconds(config_.Ti.to_seconds() /
                                     config_.clock_bound_b);
}

bool ManagerModule::frozen_by_silence(AppId app) const {
  if (!config_.freeze_enabled) return false;
  const AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr) return false;
  const sim::Duration threshold = freeze_threshold();
  const clk::LocalTime now = clock_.local_now();
  for (const auto& [peer, heard] : ctl->last_heard) {
    if (now - heard > threshold) return true;
  }
  return false;
}

bool ManagerModule::frozen(AppId app) const {
  if (debug_frozen_.has_value()) return *debug_frozen_;
  return frozen_by_silence(app);
}

std::vector<ManagerModule::PeerSilence> ManagerModule::peer_silences(
    AppId app) const {
  std::vector<PeerSilence> out;
  const AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr) return out;
  const clk::LocalTime now = clock_.local_now();
  for (const HostId p : ctl->peers) {
    PeerSilence ps;
    ps.peer = p;
    if (const auto it = ctl->last_heard.find(p); it != ctl->last_heard.end()) {
      ps.tracked = true;
      ps.silence = now - it->second;
    }
    out.push_back(ps);
  }
  return out;
}

bool ManagerModule::synced(AppId app) const {
  const AppCtl* ctl = ctl_of(app);
  return ctl != nullptr && ctl->synced;
}

const acl::AclStore* ManagerModule::store(AppId app) const {
  const AppCtl* ctl = ctl_of(app);
  return ctl == nullptr ? nullptr : &ctl->store;
}

std::vector<HostId> ManagerModule::granted_hosts(AppId app, UserId user) const {
  const AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr) return {};
  const auto it = ctl->grant_table.find(user);
  if (it == ctl->grant_table.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::size_t ManagerModule::inflight_updates(AppId app) const {
  const AppCtl* ctl = ctl_of(app);
  return ctl == nullptr ? 0 : ctl->txns.size();
}

// ------------------------------------------------------------- operations

void ManagerModule::submit_update(AppId app, acl::Op op, UserId user,
                                  acl::Right right, UpdateCallback done) {
  WAN_REQUIRE(up_);
  AppCtl* ctl = ctl_of(app);
  WAN_REQUIRE(ctl != nullptr);

  // While recovering, this manager's store is not a valid version floor: a
  // C == 1 read would complete against the empty store and mint a version
  // that LOSES to every completed update — a revoke issued that way is a
  // silent no-op everywhere (found by chaos seed 645). The paper's blocking
  // Add/Revoke call simply waits for the §3.4 sync to finish. A compromised
  // manager parks submits for the same reason: its frozen store is an equally
  // invalid floor, and the admin's operation must not be minted into a
  // version that loses everywhere.
  if (!ctl->synced || byzantine_) {
    ctl->deferred_submits.push_back(
        DeferredSubmit{op, user, right, std::move(done)});
    return;
  }

  // Phase 1: version read from a check quorum of C managers (self included).
  const int needed = std::min(ctl->check_quorum,
                              static_cast<int>(ctl->managers.size()));
  const std::uint64_t read_id = next_read_id_++;
  auto read = std::make_unique<PendingRead>(needed, env_);
  read->op = op;
  read->user = user;
  read->right = right;
  read->done = std::move(done);
  read->issued = env_.now();
  read->max_seen = ctl->store.max_version();
  read->trace = obs::mint(obs::TraceKind::kUpdate, self_, next_trace_seq_++);
  read->readers.record(self_);
  obs::record(read->trace, obs::SpanKind::kBegin, self_, env_.now(),
              "update.submit", user.value(), op_arg(op));
  static obs::Counter& submits =
      obs::Registry::global().counter("wan_updates_submitted_total");
  submits.inc();
  if (read->readers.reached()) {
    issue_write(app, std::move(read));
    return;
  }
  const obs::TraceId trace = read->trace;
  ctl->reads.emplace(read_id, std::move(read));
  const auto msg = net::make_message<VersionQuery>(app, read_id);
  for (const HostId p : ctl->peers) {
    obs::record(trace, obs::SpanKind::kSend, self_, env_.now(),
                "version.query.send", p.value());
    net_.send(self_, p, msg);
  }
  ctl->reads.at(read_id)->retry.arm(
      config_.update_retransmit,
      [this, app, read_id] { retransmit_read(app, read_id); });
}

void ManagerModule::retransmit_read(AppId app, std::uint64_t read_id) {
  AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr || !up_) return;
  const auto it = ctl->reads.find(read_id);
  if (it == ctl->reads.end()) return;
  const auto msg = net::make_message<VersionQuery>(app, read_id);
  for (const HostId p : ctl->peers) {
    if (!it->second->readers.has(p)) net_.send(self_, p, msg);
  }
  it->second->retry.arm(config_.update_retransmit, [this, app, read_id] {
    retransmit_read(app, read_id);
  });
}

void ManagerModule::handle_version_reply(HostId from, const VersionReply& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  const auto it = ctl->reads.find(m.read_id);
  if (it == ctl->reads.end()) return;
  PendingRead& read = *it->second;
  obs::record(read.trace, obs::SpanKind::kRecv, self_, env_.now(),
              "version.reply.recv", from.value(),
              static_cast<std::int64_t>(m.max_version.counter));
  if (m.max_version > read.max_seen) read.max_seen = m.max_version;
  if (!read.readers.record(from)) return;
  auto owned = std::move(it->second);
  ctl->reads.erase(it);
  owned->retry.cancel();
  issue_write(m.app, std::move(owned));
}

void ManagerModule::issue_write(AppId app, std::unique_ptr<PendingRead> read) {
  AppCtl* ctl = ctl_of(app);
  WAN_ASSERT(ctl != nullptr);

  acl::AclUpdate update;
  update.user = read->user;
  update.right = read->right;
  update.op = read->op;
  // Dominates every completed update (via the read quorum) and everything
  // this manager has applied since the read began.
  acl::Version base = read->max_seen;
  if (ctl->store.max_version() > base) base = ctl->store.max_version();
  // The stamp makes a post-crash reissue of an already-used counter compare
  // strictly newer than the lost original (see acl/version.hpp). The local
  // clock is monotone across crashes; the +1 floor only orders same-instant
  // issues within one incarnation and cannot outrun the clock in practice.
  const std::int64_t stamp =
      std::max(version_stamp_ + 1, local_now().nanos());
  version_stamp_ = stamp;
  update.version = base.next(self_, stamp);
  apply_update(app, *ctl, update);

  const acl::Op op = read->op;
  const UserId user = read->user;
  UpdateCallback done = std::move(read->done);
  const std::uint64_t txn_id = next_txn_id_++;
  auto txn = std::make_unique<Txn>(update_quorum(*ctl), env_);
  txn->update = update;
  txn->txn_id = txn_id;
  txn->issued = read->issued;  // the user's operation began at the read
  txn->done = std::move(done);
  txn->trace = read->trace;
  txn->acks.record(self_);  // the issuer counts toward the update quorum
  for (const HostId p : ctl->peers) txn->pending_peers.insert(p);
  obs::record(txn->trace, obs::SpanKind::kInstant, self_, env_.now(),
              "update.issue", user.value(),
              static_cast<std::int64_t>(update.version.counter));

  WAN_DEBUG << to_string(self_) << " issues " << acl::to_cstring(op) << "("
            << to_string(app) << "," << to_string(user) << ") v"
            << update.version.counter;

  Txn& ref = *txn;
  ctl->txns.emplace(txn_id, std::move(txn));

  if (op == acl::Op::kRevoke) {
    start_revoke_forwarding(app, *ctl, user, update.version, ref.trace);
  }

  if (ref.acks.reached() && !ref.quorum_fired) {
    // Update quorum of 1 (C == M): guaranteed as soon as it is local.
    ref.quorum_fired = true;
    obs::record(ref.trace, obs::SpanKind::kDecision, self_, env_.now(),
                "update.quorum", user.value(), op_arg(op));
    update_quorum_counter().inc();
    if (ref.done) {
      ref.done(UpdateOutcome{app, ref.update, ref.issued, env_.now(),
                             ref.acks.count()});
    }
  }

  if (ref.pending_peers.empty()) {
    ctl->txns.erase(txn_id);
    return;
  }
  const auto msg = net::make_message<UpdateMsg>(app, update, txn_id, ref.trace);
  for (const HostId p : ref.pending_peers) {
    obs::record(ref.trace, obs::SpanKind::kSend, self_, env_.now(),
                "update.send", p.value());
    net_.send(self_, p, msg);
  }
  ref.retry.arm(config_.update_retransmit,
                [this, app, txn_id] { retransmit_txn(app, txn_id); });
}

void ManagerModule::retransmit_txn(AppId app, std::uint64_t txn_id) {
  AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr || !up_) return;
  const auto it = ctl->txns.find(txn_id);
  if (it == ctl->txns.end()) return;
  Txn& txn = *it->second;
  // "A manager issuing an update uses a persistent strategy ... it repeatedly
  // transmits the update to every manager until it succeeds."
  obs::record(txn.trace, obs::SpanKind::kTimer, self_, env_.now(),
              "update.retransmit",
              static_cast<std::int64_t>(txn.pending_peers.size()));
  static obs::Counter& retx =
      obs::Registry::global().counter("wan_update_retransmits_total");
  retx.inc();
  const auto msg = net::make_message<UpdateMsg>(app, txn.update, txn_id,
                                                txn.trace);
  for (const HostId p : txn.pending_peers) net_.send(self_, p, msg);
  txn.retry.arm(config_.update_retransmit,
                [this, app, txn_id] { retransmit_txn(app, txn_id); });
}

void ManagerModule::start_revoke_forwarding(AppId app, AppCtl& ctl, UserId user,
                                            acl::Version version,
                                            obs::TraceId trace) {
  const auto git = ctl.grant_table.find(user);
  if (git == ctl.grant_table.end() || git->second.empty()) return;

  const auto key = std::make_pair(static_cast<std::uint64_t>(user.value()),
                                  version.counter);
  auto fwd = std::make_unique<RevokeFwd>(env_);
  fwd->app = app;
  fwd->user = user;
  fwd->version = version;
  fwd->pending_hosts = git->second;
  fwd->trace = trace;
  // "it can stop resending the message when the access right would have
  // expired based on the time mechanism" (§3.4): Te after now bounds every
  // outstanding cached copy.
  fwd->deadline = env_.now() + config_.Te;

  static obs::Counter& notifies =
      obs::Registry::global().counter("wan_revoke_notifies_total");
  const auto msg = net::make_message<RevokeNotify>(app, user, version, trace);
  for (const HostId h : fwd->pending_hosts) {
    obs::record(trace, obs::SpanKind::kSend, self_, env_.now(),
                "revoke.notify.send", h.value(),
                static_cast<std::int64_t>(version.counter));
    notifies.inc();
    net_.send(self_, h, msg);
  }
  RevokeFwd& ref = *fwd;
  ctl.revoke_fwds[key] = std::move(fwd);
  ref.retry.arm(config_.revoke_retransmit, [this, app, key] {
    retransmit_revoke(app, key.first, key.second);
  });
}

void ManagerModule::retransmit_revoke(AppId app, std::uint64_t user_value,
                                      std::uint64_t version_counter) {
  AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr || !up_) return;
  const auto key = std::make_pair(user_value, version_counter);
  const auto it = ctl->revoke_fwds.find(key);
  if (it == ctl->revoke_fwds.end()) return;
  RevokeFwd& fwd = *it->second;
  if (env_.now() >= fwd.deadline || fwd.pending_hosts.empty()) {
    ctl->revoke_fwds.erase(it);
    return;
  }
  obs::record(fwd.trace, obs::SpanKind::kTimer, self_, env_.now(),
              "revoke.retransmit",
              static_cast<std::int64_t>(fwd.pending_hosts.size()));
  static obs::Counter& retx =
      obs::Registry::global().counter("wan_revoke_retransmits_total");
  retx.inc();
  const auto msg =
      net::make_message<RevokeNotify>(app, fwd.user, fwd.version, fwd.trace);
  for (const HostId h : fwd.pending_hosts) net_.send(self_, h, msg);
  fwd.retry.arm(config_.revoke_retransmit, [this, app, key] {
    retransmit_revoke(app, key.first, key.second);
  });
}

// --------------------------------------------------------------- receive

void ManagerModule::on_message(HostId from, const net::MessagePtr& msg) {
  if (!up_) return;
  if (byzantine_) {
    byzantine_on_message(from, msg);
    return;
  }
  if (const auto* q = net::message_cast<QueryRequest>(msg)) {
    handle_query(from, *q);
  } else if (const auto* u = net::message_cast<UpdateMsg>(msg)) {
    handle_update(from, *u);
  } else if (const auto* a = net::message_cast<UpdateAck>(msg)) {
    handle_update_ack(from, *a);
  } else if (const auto* r = net::message_cast<RevokeNotifyAck>(msg)) {
    handle_revoke_ack(from, *r);
  } else if (const auto* vq = net::message_cast<VersionQuery>(msg)) {
    if (AppCtl* ctl = ctl_of(vq->app); ctl != nullptr && is_peer(*ctl, from)) {
      note_peer(*ctl, from);
      // An unsynced (recovering) manager cannot vouch for a version floor.
      if (ctl->synced) {
        net_.send(self_, from,
                  net::make_message<VersionReply>(vq->app, vq->read_id,
                                                  ctl->store.max_version()));
      }
    }
  } else if (const auto* vr = net::message_cast<VersionReply>(msg)) {
    handle_version_reply(from, *vr);
  } else if (const auto* s = net::message_cast<SyncRequest>(msg)) {
    handle_sync_request(from, *s);
  } else if (const auto* sr = net::message_cast<SyncResponse>(msg)) {
    handle_sync_response(from, *sr);
  } else if (const auto* sp = net::message_cast<SyncPush>(msg)) {
    handle_sync_push(from, *sp);
  } else if (const auto* ping = net::message_cast<HeartbeatPing>(msg)) {
    if (AppCtl* ctl = ctl_of(ping->app); ctl != nullptr && is_peer(*ctl, from)) {
      note_peer(*ctl, from);
      net_.send(self_, from,
                net::make_message<HeartbeatPong>(ping->app, ping->seq));
    }
  } else if (const auto* pong = net::message_cast<HeartbeatPong>(msg)) {
    if (AppCtl* ctl = ctl_of(pong->app); ctl != nullptr && is_peer(*ctl, from)) {
      note_peer(*ctl, from);
    }
  }
}

void ManagerModule::handle_query(HostId from, const QueryRequest& q) {
  AppCtl* ctl = ctl_of(q.app);
  if (ctl == nullptr) return;
  // A recovering manager answers nothing until synced (§3.4); a frozen one
  // answers nothing until all peers are reachable again (§3.3).
  if (!ctl->synced || frozen(q.app)) {
    obs::record(q.trace, obs::SpanKind::kInstant, self_, env_.now(),
                "query.refuse", from.value(), ctl->synced ? 1 : 0);
    static obs::Counter& refused =
        obs::Registry::global().counter("wan_queries_refused_total");
    refused.inc();
    return;
  }

  const acl::RightSet rights = ctl->store.rights_of(q.user);
  // The decision-relevant version is the "use" register's: a fresher write to
  // the unrelated "manage" register must not let stale use-rights win a
  // freshest-response race at the host.
  acl::Version version{};
  if (const auto st = ctl->store.state(q.user, acl::Right::kUse)) {
    version = st->version;
  }
  if (response_observer_) {
    response_observer_(QueryAnswerEvent{q.app, q.user, from, version,
                                        frozen_by_silence(q.app), ctl->synced,
                                        /*byzantine=*/false});
  }
  obs::record(q.trace, obs::SpanKind::kSend, self_, env_.now(), "query.answer",
              from.value(), static_cast<std::int64_t>(version.counter));
  static obs::Counter& answered =
      obs::Registry::global().counter("wan_queries_answered_total");
  answered.inc();
  net_.send(self_, from,
            net::make_message<QueryResponse>(q.app, q.user, q.query_id, rights,
                                             version, config_.expiry_period(),
                                             q.trace));
  if (rights.has(acl::Right::kUse)) {
    // Remember who holds cached rights so revocations can be forwarded.
    ctl->grant_table[q.user].insert(from);
  }
}

// ----------------------------------------------------- byzantine behaviour

void ManagerModule::set_byzantine(std::uint64_t lie_seed, LieMode mode) {
  WAN_REQUIRE(up_);
  byzantine_ = true;
  lie_mode_ = mode;
  lie_rng_ = Rng(lie_seed);
}

void ManagerModule::restore_honest() {
  if (!byzantine_) return;
  byzantine_ = false;
  // Operations parked during the compromise window resume exactly like
  // operations parked during a recovery sync.
  flush_deferred_submits();
}

void ManagerModule::flush_deferred_submits() {
  for (auto& [app, ctl] : apps_) {
    if (!ctl.synced) continue;  // still parked for the §3.4 reason
    std::vector<DeferredSubmit> parked;
    parked.swap(ctl.deferred_submits);
    for (DeferredSubmit& s : parked) {
      submit_update(app, s.op, s.user, s.right, std::move(s.done));
    }
  }
}

void ManagerModule::byzantine_on_message(HostId from, const net::MessagePtr& msg) {
  if (const auto* q = net::message_cast<QueryRequest>(msg)) {
    byzantine_answer_query(from, *q);
    return;
  }
  if (const auto* u = net::message_cast<UpdateMsg>(msg)) {
    // Never apply the update (the store stays frozen at its pre-flip state),
    // and never send a usable ack. Half the time, mis-ack with a mangled txn
    // id: the issuer's lookup misses, so the liar can neither stall the
    // quorum nor count toward it — exactly the "at most f liars are outside
    // every update quorum" premise byzantine_slack relies on.
    AppCtl* ctl = ctl_of(u->app);
    if (ctl != nullptr && is_peer(*ctl, from) && lie_rng_.next_bool(0.5)) {
      net_.send(self_, from,
                net::make_message<UpdateAck>(
                    u->app, u->txn_id ^ 0x8000000000000000ULL));
    }
    return;
  }
  if (const auto* ping = net::message_cast<HeartbeatPing>(msg)) {
    // Keep pinging back: a liar that played dead would trip the freeze
    // strategy and bench itself — answering heartbeats while lying about
    // rights is the strictly nastier adversary.
    if (AppCtl* ctl = ctl_of(ping->app); ctl != nullptr && is_peer(*ctl, from)) {
      note_peer(*ctl, from);
      net_.send(self_, from,
                net::make_message<HeartbeatPong>(ping->app, ping->seq));
    }
    return;
  }
  if (const auto* pong = net::message_cast<HeartbeatPong>(msg)) {
    if (AppCtl* ctl = ctl_of(pong->app); ctl != nullptr && is_peer(*ctl, from)) {
      note_peer(*ctl, from);
    }
    return;
  }
  // VersionQuery, SyncRequest, sync traffic, acks: silence. Manager-side
  // quorums (version reads, recovery syncs) therefore only ever assemble
  // from honest peers.
}

void ManagerModule::byzantine_answer_query(HostId from, const QueryRequest& q) {
  AppCtl* ctl = ctl_of(q.app);
  if (ctl == nullptr || !ctl->synced) return;  // nothing plausible to lie with

  LieMode mode = lie_mode_;
  if (mode == LieMode::kSeeded) {
    const double roll = lie_rng_.next_uniform(0.0, 1.0);
    if (roll < 0.25) {
      mode = LieMode::kSilent;
    } else if (roll < 0.625) {
      mode = LieMode::kInvert;
    } else {
      mode = LieMode::kStale;
    }
  }
  if (mode == LieMode::kSilent) return;

  // Everything the liar says derives from its frozen store: admin-signed
  // updates mean it cannot fabricate versions it never received, only
  // misreport the rights attached to ones it did.
  acl::RightSet rights = ctl->store.rights_of(q.user);
  acl::Version version{};
  if (const auto st = ctl->store.state(q.user, acl::Right::kUse)) {
    version = st->version;
  }
  if (mode == LieMode::kInvert) {
    if (rights.has(acl::Right::kUse)) {
      rights.remove(acl::Right::kUse);
    } else {
      rights.add(acl::Right::kUse);
    }
  }
  sim::Duration expiry = config_.expiry_period();
  if (mode == LieMode::kHugeExpiry) {
    expiry = sim::Duration::nanos(expiry.count_nanos() * 64);
  }
  if (response_observer_) {
    response_observer_(QueryAnswerEvent{q.app, q.user, from, version,
                                        frozen_by_silence(q.app), ctl->synced,
                                        /*byzantine=*/true});
  }
  net_.send(self_, from,
            net::make_message<QueryResponse>(q.app, q.user, q.query_id, rights,
                                             version, expiry, q.trace));
  // Deliberately no grant_table insert: the liar also shirks its revocation
  // forwarding duty for grants it hands out.
}

void ManagerModule::handle_update(HostId from, const UpdateMsg& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  obs::record(m.trace, obs::SpanKind::kRecv, self_, env_.now(), "update.recv",
              from.value(),
              static_cast<std::int64_t>(m.update.version.counter));
  const bool applied = apply_update(m.app, *ctl, m.update);
  net_.send(self_, from, net::make_message<UpdateAck>(m.app, m.txn_id));
  if (applied && m.update.op == acl::Op::kRevoke) {
    // Each manager forwards the revocation to the hosts *it* granted (§3.1);
    // the forwarded notifies stay on the ISSUER's trace, so the full
    // revocation fan-out reconstructs from one id.
    start_revoke_forwarding(m.app, *ctl, m.update.user, m.update.version,
                            m.trace);
  }
}

void ManagerModule::handle_update_ack(HostId from, const UpdateAck& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  const auto it = ctl->txns.find(m.txn_id);
  if (it == ctl->txns.end()) return;
  Txn& txn = *it->second;
  txn.pending_peers.erase(from);
  obs::record(txn.trace, obs::SpanKind::kRecv, self_, env_.now(), "update.ack",
              from.value());
  txn.acks.record(from);
  if (txn.acks.reached() && !txn.quorum_fired) {
    txn.quorum_fired = true;
    obs::record(txn.trace, obs::SpanKind::kDecision, self_, env_.now(),
                "update.quorum", txn.update.user.value(),
                op_arg(txn.update.op));
    update_quorum_counter().inc();
    WAN_DEBUG << to_string(self_) << " update v" << txn.update.version.counter
              << " reached quorum (" << txn.acks.count() << " acks)";
    if (txn.done) {
      txn.done(UpdateOutcome{m.app, txn.update, txn.issued, env_.now(),
                             txn.acks.count()});
    }
  }
  if (txn.pending_peers.empty()) ctl->txns.erase(it);
}

void ManagerModule::handle_revoke_ack(HostId from, const RevokeNotifyAck& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr) return;
  const auto key = std::make_pair(static_cast<std::uint64_t>(m.user.value()),
                                  m.version.counter);
  const auto it = ctl->revoke_fwds.find(key);
  if (it == ctl->revoke_fwds.end()) return;
  obs::record(it->second->trace, obs::SpanKind::kRecv, self_, env_.now(),
              "revoke.ack.recv", from.value());
  it->second->pending_hosts.erase(from);
  // The host flushed its cache; it no longer holds a grant from us.
  if (auto git = ctl->grant_table.find(m.user); git != ctl->grant_table.end()) {
    git->second.erase(from);
  }
  if (it->second->pending_hosts.empty()) ctl->revoke_fwds.erase(it);
}

void ManagerModule::handle_sync_request(HostId from, const SyncRequest& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  if (!ctl->synced) return;  // cannot vouch for state we have not recovered
  net_.send(self_, from,
            net::make_message<SyncResponse>(m.app, m.sync_id,
                                            ctl->store.snapshot()));
}

void ManagerModule::handle_sync_response(HostId from, const SyncResponse& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  if (m.sync_id != ctl->sync_id) return;
  if (ctl->synced) {
    // Straggler from the sync that already completed. It can still carry an
    // update the quorum responders never saw (stranded by an issuer crash),
    // so merge it — and if it taught us anything, spread the news.
    if (merge_snapshot(m.app, *ctl, m.snapshot) > 0) push_snapshot(m.app, *ctl);
    return;
  }
  if (ctl->sync_votes == nullptr) return;
  merge_snapshot(m.app, *ctl, m.snapshot);
  if (ctl->sync_votes->record(from)) {
    ctl->synced = true;
    ctl->sync_votes.reset();
    if (ctl->sync_timer) ctl->sync_timer->cancel();
    ctl->sync_timer.reset();
    WAN_DEBUG << to_string(self_) << " recovery sync complete for "
              << to_string(m.app);
    // Push the merged state back: peers that missed a partially-disseminated
    // update (whose issuer crashed and lost its retransmission duty) pick it
    // up here, restoring store convergence that pull-only sync cannot.
    push_snapshot(m.app, *ctl);
    // Release operations that blocked on the sync, in submission order.
    flush_deferred_submits();
  }
}

void ManagerModule::handle_sync_push(HostId from, const SyncPush& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  // Merging is safe in every state (idempotent, version-gated); receipt
  // never triggers a further push, so pushes cannot cascade.
  merge_snapshot(m.app, *ctl, m.snapshot);
}

void ManagerModule::push_snapshot(AppId app, AppCtl& ctl) {
  if (ctl.peers.empty()) return;
  const auto msg = net::make_message<SyncPush>(app, ctl.store.snapshot());
  for (const HostId p : ctl.peers) net_.send(self_, p, msg);
}

void ManagerModule::begin_sync(AppId app, AppCtl& ctl) {
  if (ctl.peers.empty()) {
    ctl.synced = true;  // single-manager degenerate case (see header)
    return;
  }
  ctl.synced = false;
  ctl.sync_id = next_sync_id_++;
  const int needed = std::min(ctl.check_quorum,
                              static_cast<int>(ctl.peers.size()));
  ctl.sync_votes = std::make_unique<quorum::QuorumTracker>(needed);
  ctl.sync_timer = std::make_unique<runtime::Timer>(env_.make_timer());
  sync_round(app);
}

void ManagerModule::sync_round(AppId app) {
  AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr || !up_ || ctl->synced) return;
  // Retransmit until enough snapshots arrive.
  const auto msg = net::make_message<SyncRequest>(app, ctl->sync_id);
  for (const HostId p : ctl->peers) net_.send(self_, p, msg);
  if (ctl->sync_timer) {
    ctl->sync_timer->arm(config_.sync_retransmit,
                         [this, app] { sync_round(app); });
  }
}

// ------------------------------------------------------ durable state

std::size_t ManagerModule::attach_journal(ManagerJournal* journal) {
  journal_ = journal;
  if (journal_ == nullptr) return 0;
  std::size_t replayed = 0;
  journal_->replay([this, &replayed](AppId app, const acl::AclUpdate& u) {
    AppCtl* ctl = ctl_of(app);
    if (ctl == nullptr) return;  // app no longer managed; records are inert
    // Direct apply: replay must not re-append what is already durable.
    ctl->store.apply(u);
    // Restore the issue-stamp floor from our own updates so a restarted
    // incarnation never mints a stamp at or below one it already used.
    if (u.version.origin == self_ && u.version.stamp > version_stamp_) {
      version_stamp_ = u.version.stamp;
    }
    ++replayed;
  });
  return replayed;
}

bool ManagerModule::apply_update(AppId app, AppCtl& ctl,
                                 const acl::AclUpdate& update) {
  const bool applied = ctl.store.apply(update);
  if (applied && journal_ != nullptr) {
    journal_->append(app, update);
    maybe_compact(app, ctl);
  }
  return applied;
}

std::size_t ManagerModule::merge_snapshot(
    AppId app, AppCtl& ctl, const std::vector<acl::AclUpdate>& snapshot) {
  // AclStore::merge is a loop of applies; doing the loop here keeps the
  // journal exact (only registers that actually changed are appended).
  std::size_t changed = 0;
  for (const acl::AclUpdate& u : snapshot) {
    if (apply_update(app, ctl, u)) ++changed;
  }
  return changed;
}

void ManagerModule::maybe_compact(AppId app, AppCtl& ctl) {
  // Past this many log records a replay costs more than a snapshot write;
  // stale log entries surviving a crash-between-rename-and-truncate are
  // re-applied as no-ops, so the threshold is pure tuning.
  constexpr std::size_t kCompactAfter = 256;
  if (journal_->log_records(app) >= kCompactAfter) {
    journal_->compact(app, ctl.store.snapshot());
  }
}

// ------------------------------------------------------ crash / recovery

void ManagerModule::crash() {
  up_ = false;
  byzantine_ = false;  // a crashed-and-reimaged replica comes back honest
  for (auto& [app, ctl] : apps_) {
    ctl.store = acl::AclStore{};
    ctl.grant_table.clear();
    ctl.reads.clear();
    ctl.txns.clear();
    ctl.revoke_fwds.clear();
    ctl.last_heard.clear();
    ctl.sync_votes.reset();
    ctl.sync_timer.reset();
    if (ctl.heartbeat) ctl.heartbeat->stop();
    ctl.heartbeat.reset();
    ctl.synced = false;
    ctl.deferred_submits.clear();  // ops die with the crash; callers time out
  }
}

void ManagerModule::recover() {
  up_ = true;
  const clk::LocalTime now = local_now();
  for (auto& [app, ctl] : apps_) {
    for (const HostId p : ctl.peers) ctl.last_heard[p] = now;
    if (config_.freeze_enabled) start_heartbeats(app, ctl);
    begin_sync(app, ctl);
  }
}

void ManagerModule::resync(AppId app) {
  AppCtl* ctl = ctl_of(app);
  if (!up_ || ctl == nullptr || !ctl->synced) return;
  begin_sync(app, *ctl);
}

}  // namespace wan::proto
