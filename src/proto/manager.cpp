#include "proto/manager.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/journal.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace wan::proto {

namespace {

// "update.quorum" / "update.submit" span arg: op in a1 (1 = revoke), shared
// with obs::TeProbe::analyze.
std::int64_t op_arg(acl::Op op) { return op == acl::Op::kRevoke ? 1 : 0; }

obs::Counter& update_quorum_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_update_quorums_total");
  return c;
}

// Seed of the handoff series hash — a content hash over a slice snapshot in
// its deterministic snapshot() order, so two managers holding identical
// slices advertise identical series without exchanging a byte.
constexpr std::uint64_t kSeriesSeed = 0x5348414e444f4646ULL;  // "SHANDOFF"

// Updates per ShardHandoffChunk: 512 × 30-byte updates + the 48-byte chunk
// header stays far under kMaxFrameSize, so chunks survive the UDP backends.
constexpr std::size_t kHandoffChunkUpdates = 512;

std::uint64_t slice_series(const std::vector<acl::AclUpdate>& slice) {
  std::uint64_t h = stable_hash64(kSeriesSeed, slice.size());
  for (const acl::AclUpdate& u : slice) {
    h = stable_hash64(h, u.user.value());
    h = stable_hash64(h, (static_cast<std::uint64_t>(u.right) << 8) |
                             static_cast<std::uint64_t>(u.op));
    h = stable_hash64(h, u.version.counter);
    h = stable_hash64(h, u.version.origin.value());
    h = stable_hash64(h, static_cast<std::uint64_t>(u.version.stamp));
  }
  return h;
}

}  // namespace

ManagerModule::ManagerModule(HostId self, runtime::Env& env,
                             clk::LocalClock clock, ProtocolConfig config)
    : self_(self),
      env_(env),
      net_(env.transport()),
      clock_(env, clock),
      config_(config) {
  config_.validate();
  disseminator_ =
      make_disseminator(config_.dissemination, self_, env_, config_.Te,
                        config_.revoke_retransmit, *this);
}

ManagerModule::~ManagerModule() = default;

ManagerModule::AppCtl* ManagerModule::ctl_of(AppId app) {
  const auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second;
}

const ManagerModule::AppCtl* ManagerModule::ctl_of(AppId app) const {
  const auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second;
}

void ManagerModule::manage_app(AppId app, std::vector<HostId> managers) {
  WAN_REQUIRE(app.valid());
  WAN_REQUIRE(std::find(managers.begin(), managers.end(), self_) != managers.end());
  WAN_REQUIRE(config_.check_quorum <= static_cast<int>(managers.size()));
  AppCtl& ctl = apps_[app];
  ctl.managers = std::move(managers);
  ctl.peers.clear();
  for (const HostId m : ctl.managers) {
    if (m != self_) ctl.peers.push_back(m);
  }
  ctl.check_quorum = config_.check_quorum;
  mint_log_epoch(ctl);
  const clk::LocalTime now = local_now();
  for (const HostId p : ctl.peers) ctl.last_heard[p] = now;
  if (config_.freeze_enabled) start_heartbeats(app, ctl);
}

void ManagerModule::reconfigure_app(AppId app, std::vector<HostId> managers) {
  WAN_REQUIRE(std::find(managers.begin(), managers.end(), self_) !=
              managers.end());
  const bool newcomer = ctl_of(app) == nullptr;
  if (newcomer) {
    manage_app(app, std::move(managers));
    AppCtl& ctl = apps_[app];
    begin_sync(app, ctl);  // do not answer queries until caught up
    return;
  }
  AppCtl& ctl = apps_[app];
  ctl.managers = std::move(managers);
  ctl.peers.clear();
  for (const HostId m : ctl.managers) {
    if (m != self_) ctl.peers.push_back(m);
  }
  // Refresh freeze bookkeeping: drop departed peers, adopt new ones as
  // just-heard (they get a full Ti before they can freeze us).
  const clk::LocalTime now = local_now();
  std::unordered_map<HostId, clk::LocalTime> heard;
  for (const HostId p : ctl.peers) {
    const auto it = ctl.last_heard.find(p);
    heard[p] = it != ctl.last_heard.end() ? it->second : now;
  }
  ctl.last_heard = std::move(heard);
  // Departed peers will never ack: prune them from in-flight work so
  // transactions can complete (or retire) against the new membership.
  for (auto it = ctl.txns.begin(); it != ctl.txns.end();) {
    Txn& txn = *it->second;
    for (auto p = txn.pending_peers.begin(); p != txn.pending_peers.end();) {
      p = is_peer(ctl, *p) ? std::next(p) : txn.pending_peers.erase(p);
    }
    it = txn.pending_peers.empty() ? ctl.txns.erase(it) : std::next(it);
  }
}

void ManagerModule::forget_app(AppId app) {
  disseminator_->drop_app(app);
  apps_.erase(app);
}

void ManagerModule::start_heartbeats(AppId app, AppCtl& ctl) {
  ctl.heartbeat = std::make_unique<runtime::PeriodicTimer>(env_.make_periodic_timer());
  ctl.heartbeat->start(config_.heartbeat_period, [this, app] {
    AppCtl* ctl = ctl_of(app);
    if (ctl == nullptr || !up_) return;
    const auto ping =
        net::make_message<HeartbeatPing>(app, ++ctl->heartbeat_seq);
    for (const HostId p : ctl->peers) net_.send(self_, p, ping);
  });
}

bool ManagerModule::is_peer(const AppCtl& ctl, HostId from) noexcept {
  return std::find(ctl.peers.begin(), ctl.peers.end(), from) != ctl.peers.end();
}

void ManagerModule::note_peer(AppCtl& ctl, HostId peer) {
  const auto it = ctl.last_heard.find(peer);
  if (it != ctl.last_heard.end()) it->second = local_now();
}

sim::Duration ManagerModule::freeze_threshold() const {
  // Ti is a real-time bound; this clock may run up to b times slow, so the
  // local threshold is Ti / b ("care must be taken to account for clock rate
  // differences at managers", §3.3).
  return sim::Duration::from_seconds(config_.Ti.to_seconds() /
                                     config_.clock_bound_b);
}

bool ManagerModule::frozen_by_silence(AppId app) const {
  if (!config_.freeze_enabled) return false;
  const AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr) return false;
  const sim::Duration threshold = freeze_threshold();
  const clk::LocalTime now = clock_.local_now();
  for (const auto& [peer, heard] : ctl->last_heard) {
    if (now - heard > threshold) return true;
  }
  return false;
}

bool ManagerModule::frozen(AppId app) const {
  if (debug_frozen_.has_value()) return *debug_frozen_;
  return frozen_by_silence(app);
}

std::vector<ManagerModule::PeerSilence> ManagerModule::peer_silences(
    AppId app) const {
  std::vector<PeerSilence> out;
  const AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr) return out;
  const clk::LocalTime now = clock_.local_now();
  for (const HostId p : ctl->peers) {
    PeerSilence ps;
    ps.peer = p;
    if (const auto it = ctl->last_heard.find(p); it != ctl->last_heard.end()) {
      ps.tracked = true;
      ps.silence = now - it->second;
    }
    out.push_back(ps);
  }
  return out;
}

bool ManagerModule::synced(AppId app) const {
  const AppCtl* ctl = ctl_of(app);
  return ctl != nullptr && ctl->synced;
}

const acl::AclStore* ManagerModule::store(AppId app) const {
  const AppCtl* ctl = ctl_of(app);
  return ctl == nullptr ? nullptr : &ctl->store;
}

std::vector<HostId> ManagerModule::granted_hosts(AppId app, UserId user) const {
  const AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr) return {};
  const auto it = ctl->grant_table.find(user);
  if (it == ctl->grant_table.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::size_t ManagerModule::inflight_updates(AppId app) const {
  const AppCtl* ctl = ctl_of(app);
  return ctl == nullptr ? 0 : ctl->txns.size();
}

// ------------------------------------------------------------- operations

void ManagerModule::submit_update(AppId app, acl::Op op, UserId user,
                                  acl::Right right, UpdateCallback done) {
  WAN_REQUIRE(up_);
  AppCtl* ctl = ctl_of(app);
  WAN_REQUIRE(ctl != nullptr);

  // A submit for a key whose shard this group does not own is a routing
  // error (stale map at the caller, or a deferred submit that outlived a
  // rebalance). Refusing — rather than minting an update the owner group
  // would never see — keeps the single-owner invariant; the caller
  // re-resolves and retries against the owner group. A shard gained at a
  // flip but still short of its handoff quorum is refused for the same
  // reason a query is: the pre-activation store is not a valid version
  // floor, and an update minted against it could lose to the staged slice
  // when activation merges it.
  const bool acquiring =
      !ctl->shard_map.trivial() &&
      ctl->pending_acquire.count(ctl->shard_map.shard_of(app, user)) != 0;
  if (!owns_key(*ctl, app, user) || acquiring) {
    ++submits_refused_unowned_;
    static obs::Counter& refused =
        obs::Registry::global().counter("wan_submits_refused_unowned_total");
    refused.inc();
    WAN_DEBUG << to_string(self_) << " refuses unowned submit "
              << acl::to_cstring(op) << "(" << to_string(app) << ","
              << to_string(user) << ")";
    return;
  }

  // While recovering, this manager's store is not a valid version floor: a
  // C == 1 read would complete against the empty store and mint a version
  // that LOSES to every completed update — a revoke issued that way is a
  // silent no-op everywhere (found by chaos seed 645). The paper's blocking
  // Add/Revoke call simply waits for the §3.4 sync to finish. A compromised
  // manager parks submits for the same reason: its frozen store is an equally
  // invalid floor, and the admin's operation must not be minted into a
  // version that loses everywhere.
  if (!ctl->synced || byzantine_) {
    ctl->deferred_submits.push_back(
        DeferredSubmit{op, user, right, std::move(done)});
    return;
  }

  // Phase 1: version read from a check quorum of C managers (self included).
  const int needed = std::min(ctl->check_quorum,
                              static_cast<int>(ctl->managers.size()));
  const std::uint64_t read_id = next_read_id_++;
  auto read = std::make_unique<PendingRead>(needed, env_);
  read->op = op;
  read->user = user;
  read->right = right;
  read->done = std::move(done);
  read->issued = env_.now();
  read->max_seen = ctl->store.max_version();
  read->trace = obs::mint(obs::TraceKind::kUpdate, self_, next_trace_seq_++);
  read->readers.record(self_);
  obs::record(read->trace, obs::SpanKind::kBegin, self_, env_.now(),
              "update.submit", user.value(), op_arg(op));
  static obs::Counter& submits =
      obs::Registry::global().counter("wan_updates_submitted_total");
  submits.inc();
  if (read->readers.reached()) {
    issue_write(app, std::move(read));
    return;
  }
  const obs::TraceId trace = read->trace;
  ctl->reads.emplace(read_id, std::move(read));
  const auto msg = net::make_message<VersionQuery>(app, read_id);
  for (const HostId p : ctl->peers) {
    obs::record(trace, obs::SpanKind::kSend, self_, env_.now(),
                "version.query.send", p.value());
    net_.send(self_, p, msg);
  }
  ctl->reads.at(read_id)->retry.arm(
      config_.update_retransmit,
      [this, app, read_id] { retransmit_read(app, read_id); });
}

void ManagerModule::retransmit_read(AppId app, std::uint64_t read_id) {
  AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr || !up_) return;
  const auto it = ctl->reads.find(read_id);
  if (it == ctl->reads.end()) return;
  const auto msg = net::make_message<VersionQuery>(app, read_id);
  for (const HostId p : ctl->peers) {
    if (!it->second->readers.has(p)) net_.send(self_, p, msg);
  }
  it->second->retry.arm(config_.update_retransmit, [this, app, read_id] {
    retransmit_read(app, read_id);
  });
}

void ManagerModule::handle_version_reply(HostId from, const VersionReply& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  const auto it = ctl->reads.find(m.read_id);
  if (it == ctl->reads.end()) return;
  PendingRead& read = *it->second;
  obs::record(read.trace, obs::SpanKind::kRecv, self_, env_.now(),
              "version.reply.recv", from.value(),
              static_cast<std::int64_t>(m.max_version.counter));
  if (m.max_version > read.max_seen) read.max_seen = m.max_version;
  if (!read.readers.record(from)) return;
  auto owned = std::move(it->second);
  ctl->reads.erase(it);
  owned->retry.cancel();
  issue_write(m.app, std::move(owned));
}

void ManagerModule::issue_write(AppId app, std::unique_ptr<PendingRead> read) {
  AppCtl* ctl = ctl_of(app);
  WAN_ASSERT(ctl != nullptr);

  acl::AclUpdate update;
  update.user = read->user;
  update.right = read->right;
  update.op = read->op;
  // Dominates every completed update (via the read quorum) and everything
  // this manager has applied since the read began.
  acl::Version base = read->max_seen;
  if (ctl->store.max_version() > base) base = ctl->store.max_version();
  // The stamp makes a post-crash reissue of an already-used counter compare
  // strictly newer than the lost original (see acl/version.hpp). The local
  // clock is monotone across crashes; the +1 floor only orders same-instant
  // issues within one incarnation and cannot outrun the clock in practice.
  const std::int64_t stamp =
      std::max(version_stamp_ + 1, local_now().nanos());
  version_stamp_ = stamp;
  update.version = base.next(self_, stamp);
  apply_update(app, *ctl, update);

  const acl::Op op = read->op;
  const UserId user = read->user;
  UpdateCallback done = std::move(read->done);
  const std::uint64_t txn_id = next_txn_id_++;
  auto txn = std::make_unique<Txn>(update_quorum(*ctl), env_);
  txn->update = update;
  txn->txn_id = txn_id;
  txn->issued = read->issued;  // the user's operation began at the read
  txn->done = std::move(done);
  txn->trace = read->trace;
  txn->acks.record(self_);  // the issuer counts toward the update quorum
  for (const HostId p : ctl->peers) txn->pending_peers.insert(p);
  obs::record(txn->trace, obs::SpanKind::kInstant, self_, env_.now(),
              "update.issue", user.value(),
              static_cast<std::int64_t>(update.version.counter));

  WAN_DEBUG << to_string(self_) << " issues " << acl::to_cstring(op) << "("
            << to_string(app) << "," << to_string(user) << ") v"
            << update.version.counter;

  Txn& ref = *txn;
  ctl->txns.emplace(txn_id, std::move(txn));

  if (op == acl::Op::kRevoke) {
    start_revoke_forwarding(app, *ctl, user, update.version, ref.trace);
  }

  if (ref.acks.reached() && !ref.quorum_fired) {
    // Update quorum of 1 (C == M): guaranteed as soon as it is local.
    ref.quorum_fired = true;
    obs::record(ref.trace, obs::SpanKind::kDecision, self_, env_.now(),
                "update.quorum", user.value(), op_arg(op));
    update_quorum_counter().inc();
    if (ref.done) {
      ref.done(UpdateOutcome{app, ref.update, ref.issued, env_.now(),
                             ref.acks.count()});
    }
  }

  if (ref.pending_peers.empty()) {
    ctl->txns.erase(txn_id);
    return;
  }
  const auto msg = net::make_message<UpdateMsg>(app, update, txn_id, ref.trace);
  for (const HostId p : ref.pending_peers) {
    obs::record(ref.trace, obs::SpanKind::kSend, self_, env_.now(),
                "update.send", p.value());
    net_.send(self_, p, msg);
  }
  ref.retry.arm(config_.update_retransmit,
                [this, app, txn_id] { retransmit_txn(app, txn_id); });
}

void ManagerModule::retransmit_txn(AppId app, std::uint64_t txn_id) {
  AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr || !up_) return;
  const auto it = ctl->txns.find(txn_id);
  if (it == ctl->txns.end()) return;
  Txn& txn = *it->second;
  // "A manager issuing an update uses a persistent strategy ... it repeatedly
  // transmits the update to every manager until it succeeds."
  obs::record(txn.trace, obs::SpanKind::kTimer, self_, env_.now(),
              "update.retransmit",
              static_cast<std::int64_t>(txn.pending_peers.size()));
  static obs::Counter& retx =
      obs::Registry::global().counter("wan_update_retransmits_total");
  retx.inc();
  const auto msg = net::make_message<UpdateMsg>(app, txn.update, txn_id,
                                                txn.trace);
  for (const HostId p : txn.pending_peers) net_.send(self_, p, msg);
  txn.retry.arm(config_.update_retransmit,
                [this, app, txn_id] { retransmit_txn(app, txn_id); });
}

void ManagerModule::start_revoke_forwarding(AppId app, AppCtl& ctl, UserId user,
                                            acl::Version version,
                                            obs::TraceId trace) {
  // The grant table stays the manager's: the strategy is handed the row and
  // reports per-host delivery back through Sink::delivered.
  const auto git = ctl.grant_table.find(user);
  if (git == ctl.grant_table.end() || git->second.empty()) return;
  disseminator_->revoke(app, user, version, git->second, trace);
}

// Disseminator::Sink -------------------------------------------------------

void ManagerModule::send(HostId to, const net::MessagePtr& msg) {
  net_.send(self_, to, msg);
}

void ManagerModule::delivered(AppId app, HostId host, UserId user,
                              acl::Version /*version*/) {
  AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr) return;
  // The host flushed its cache; it no longer holds a grant from us.
  if (auto git = ctl->grant_table.find(user); git != ctl->grant_table.end()) {
    git->second.erase(host);
  }
}

// --------------------------------------------------------------- receive

void ManagerModule::on_message(HostId from, const net::MessagePtr& msg) {
  if (!up_) return;
  if (byzantine_) {
    byzantine_on_message(from, msg);
    return;
  }
  if (const auto* q = net::message_cast<QueryRequest>(msg)) {
    handle_query(from, *q);
  } else if (const auto* u = net::message_cast<UpdateMsg>(msg)) {
    handle_update(from, *u);
  } else if (const auto* a = net::message_cast<UpdateAck>(msg)) {
    handle_update_ack(from, *a);
  } else if (disseminator_->on_message(from, msg)) {
    // Revocation fan-out acks (RevokeNotifyAck / RevokeBatchAck / RelayAck):
    // consumed by the dissemination strategy, which reports per-host
    // delivery back through Sink::delivered.
  } else if (const auto* vq = net::message_cast<VersionQuery>(msg)) {
    if (AppCtl* ctl = ctl_of(vq->app); ctl != nullptr && is_peer(*ctl, from)) {
      note_peer(*ctl, from);
      // An unsynced (recovering) manager cannot vouch for a version floor.
      if (ctl->synced) {
        net_.send(self_, from,
                  net::make_message<VersionReply>(vq->app, vq->read_id,
                                                  ctl->store.max_version()));
      }
    }
  } else if (const auto* vr = net::message_cast<VersionReply>(msg)) {
    handle_version_reply(from, *vr);
  } else if (const auto* s = net::message_cast<SyncRequest>(msg)) {
    handle_sync_request(from, *s);
  } else if (const auto* sr = net::message_cast<SyncResponse>(msg)) {
    handle_sync_response(from, *sr);
  } else if (const auto* sp = net::message_cast<SyncPush>(msg)) {
    handle_sync_push(from, *sp);
  } else if (const auto* dq = net::message_cast<DeltaSyncRequest>(msg)) {
    handle_delta_sync_request(from, *dq);
  } else if (const auto* dr = net::message_cast<DeltaSyncResponse>(msg)) {
    handle_delta_sync_response(from, *dr);
  } else if (const auto* sa = net::message_cast<ShardMapAnnounce>(msg)) {
    handle_shard_map_announce(from, *sa);
  } else if (const auto* hb = net::message_cast<ShardHandoffBegin>(msg)) {
    handle_handoff_begin(from, *hb);
  } else if (const auto* hc = net::message_cast<ShardHandoffChunk>(msg)) {
    handle_handoff_chunk(from, *hc);
  } else if (const auto* hd = net::message_cast<ShardHandoffDone>(msg)) {
    handle_handoff_done(from, *hd);
  } else if (const auto* ping = net::message_cast<HeartbeatPing>(msg)) {
    if (AppCtl* ctl = ctl_of(ping->app); ctl != nullptr && is_peer(*ctl, from)) {
      note_peer(*ctl, from);
      net_.send(self_, from,
                net::make_message<HeartbeatPong>(ping->app, ping->seq));
    }
  } else if (const auto* pong = net::message_cast<HeartbeatPong>(msg)) {
    if (AppCtl* ctl = ctl_of(pong->app); ctl != nullptr && is_peer(*ctl, from)) {
      note_peer(*ctl, from);
    }
  }
}

void ManagerModule::handle_query(HostId from, const QueryRequest& q) {
  AppCtl* ctl = ctl_of(q.app);
  if (ctl == nullptr) return;
  // Ownership gate: a key outside this group's shards — or inside a shard
  // gained at a flip that is still waiting for its quorum of handoff series —
  // gets no answer. The host times out and denies, which is the safe
  // direction: an unowned store could only vouch for a stale slice, and a
  // grant from it could outlive a revocation the true owner completed.
  if (!ctl->shard_map.trivial()) {
    const bool owned = owns_key(*ctl, q.app, q.user);
    const bool acquiring =
        owned && ctl->pending_acquire.count(
                     ctl->shard_map.shard_of(q.app, q.user)) != 0;
    if (!owned || acquiring) {
      ++queries_refused_unowned_;
      static obs::Counter& refused = obs::Registry::global().counter(
          "wan_queries_refused_unowned_total");
      refused.inc();
      obs::record(q.trace, obs::SpanKind::kInstant, self_, env_.now(),
                  "query.refuse.unowned", from.value(), owned ? 1 : 0);
      return;
    }
  }
  // A recovering manager answers nothing until synced (§3.4); a frozen one
  // answers nothing until all peers are reachable again (§3.3).
  if (!ctl->synced || frozen(q.app)) {
    obs::record(q.trace, obs::SpanKind::kInstant, self_, env_.now(),
                "query.refuse", from.value(), ctl->synced ? 1 : 0);
    static obs::Counter& refused =
        obs::Registry::global().counter("wan_queries_refused_total");
    refused.inc();
    return;
  }

  const acl::RightSet rights = ctl->store.rights_of(q.user);
  // The decision-relevant version is the "use" register's: a fresher write to
  // the unrelated "manage" register must not let stale use-rights win a
  // freshest-response race at the host.
  acl::Version version{};
  if (const auto st = ctl->store.state(q.user, acl::Right::kUse)) {
    version = st->version;
  }
  if (response_observer_) {
    response_observer_(QueryAnswerEvent{q.app, q.user, from, version,
                                        frozen_by_silence(q.app), ctl->synced,
                                        /*byzantine=*/false});
  }
  obs::record(q.trace, obs::SpanKind::kSend, self_, env_.now(), "query.answer",
              from.value(), static_cast<std::int64_t>(version.counter));
  static obs::Counter& answered =
      obs::Registry::global().counter("wan_queries_answered_total");
  answered.inc();
  net_.send(self_, from,
            net::make_message<QueryResponse>(q.app, q.user, q.query_id, rights,
                                             version, config_.expiry_period(),
                                             q.trace));
  if (rights.has(acl::Right::kUse)) {
    // Remember who holds cached rights so revocations can be forwarded.
    ctl->grant_table[q.user].insert(from);
  }
}

// ----------------------------------------------------- byzantine behaviour

void ManagerModule::set_byzantine(std::uint64_t lie_seed, LieMode mode) {
  WAN_REQUIRE(up_);
  byzantine_ = true;
  lie_mode_ = mode;
  lie_rng_ = Rng(lie_seed);
}

void ManagerModule::restore_honest() {
  if (!byzantine_) return;
  byzantine_ = false;
  // Operations parked during the compromise window resume exactly like
  // operations parked during a recovery sync.
  flush_deferred_submits();
}

void ManagerModule::flush_deferred_submits() {
  for (auto& [app, ctl] : apps_) {
    if (!ctl.synced) continue;  // still parked for the §3.4 reason
    std::vector<DeferredSubmit> parked;
    parked.swap(ctl.deferred_submits);
    for (DeferredSubmit& s : parked) {
      submit_update(app, s.op, s.user, s.right, std::move(s.done));
    }
  }
}

void ManagerModule::byzantine_on_message(HostId from, const net::MessagePtr& msg) {
  if (const auto* q = net::message_cast<QueryRequest>(msg)) {
    byzantine_answer_query(from, *q);
    return;
  }
  if (const auto* u = net::message_cast<UpdateMsg>(msg)) {
    // Never apply the update (the store stays frozen at its pre-flip state),
    // and never send a usable ack. Half the time, mis-ack with a mangled txn
    // id: the issuer's lookup misses, so the liar can neither stall the
    // quorum nor count toward it — exactly the "at most f liars are outside
    // every update quorum" premise byzantine_slack relies on.
    AppCtl* ctl = ctl_of(u->app);
    if (ctl != nullptr && is_peer(*ctl, from) && lie_rng_.next_bool(0.5)) {
      net_.send(self_, from,
                net::make_message<UpdateAck>(
                    u->app, u->txn_id ^ 0x8000000000000000ULL));
    }
    return;
  }
  if (const auto* ping = net::message_cast<HeartbeatPing>(msg)) {
    // Keep pinging back: a liar that played dead would trip the freeze
    // strategy and bench itself — answering heartbeats while lying about
    // rights is the strictly nastier adversary.
    if (AppCtl* ctl = ctl_of(ping->app); ctl != nullptr && is_peer(*ctl, from)) {
      note_peer(*ctl, from);
      net_.send(self_, from,
                net::make_message<HeartbeatPong>(ping->app, ping->seq));
    }
    return;
  }
  if (const auto* pong = net::message_cast<HeartbeatPong>(msg)) {
    if (AppCtl* ctl = ctl_of(pong->app); ctl != nullptr && is_peer(*ctl, from)) {
      note_peer(*ctl, from);
    }
    return;
  }
  // VersionQuery, SyncRequest, sync traffic, acks: silence. Manager-side
  // quorums (version reads, recovery syncs) therefore only ever assemble
  // from honest peers.
}

void ManagerModule::byzantine_answer_query(HostId from, const QueryRequest& q) {
  AppCtl* ctl = ctl_of(q.app);
  if (ctl == nullptr || !ctl->synced) return;  // nothing plausible to lie with

  LieMode mode = lie_mode_;
  if (mode == LieMode::kSeeded) {
    const double roll = lie_rng_.next_uniform(0.0, 1.0);
    if (roll < 0.25) {
      mode = LieMode::kSilent;
    } else if (roll < 0.625) {
      mode = LieMode::kInvert;
    } else {
      mode = LieMode::kStale;
    }
  }
  if (mode == LieMode::kSilent) return;

  // Everything the liar says derives from its frozen store: admin-signed
  // updates mean it cannot fabricate versions it never received, only
  // misreport the rights attached to ones it did.
  acl::RightSet rights = ctl->store.rights_of(q.user);
  acl::Version version{};
  if (const auto st = ctl->store.state(q.user, acl::Right::kUse)) {
    version = st->version;
  }
  if (mode == LieMode::kInvert) {
    if (rights.has(acl::Right::kUse)) {
      rights.remove(acl::Right::kUse);
    } else {
      rights.add(acl::Right::kUse);
    }
  }
  sim::Duration expiry = config_.expiry_period();
  if (mode == LieMode::kHugeExpiry) {
    expiry = sim::Duration::nanos(expiry.count_nanos() * 64);
  }
  if (response_observer_) {
    response_observer_(QueryAnswerEvent{q.app, q.user, from, version,
                                        frozen_by_silence(q.app), ctl->synced,
                                        /*byzantine=*/true});
  }
  net_.send(self_, from,
            net::make_message<QueryResponse>(q.app, q.user, q.query_id, rights,
                                             version, expiry, q.trace));
  // Deliberately no grant_table insert: the liar also shirks its revocation
  // forwarding duty for grants it hands out.
}

void ManagerModule::handle_update(HostId from, const UpdateMsg& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  obs::record(m.trace, obs::SpanKind::kRecv, self_, env_.now(), "update.recv",
              from.value(),
              static_cast<std::int64_t>(m.update.version.counter));
  // Ack-without-apply for unowned keys: a retransmit that lands after a
  // shard flipped away must still retire the issuer's transaction (the
  // drained handoff already carried the update to the new owner group), but
  // applying it would resurrect a dropped slice.
  const bool applied = owns_key(*ctl, m.app, m.update.user) &&
                       apply_update(m.app, *ctl, m.update);
  net_.send(self_, from, net::make_message<UpdateAck>(m.app, m.txn_id));
  if (applied && m.update.op == acl::Op::kRevoke) {
    // Each manager forwards the revocation to the hosts *it* granted (§3.1);
    // the forwarded notifies stay on the ISSUER's trace, so the full
    // revocation fan-out reconstructs from one id.
    start_revoke_forwarding(m.app, *ctl, m.update.user, m.update.version,
                            m.trace);
  }
}

void ManagerModule::handle_update_ack(HostId from, const UpdateAck& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  const auto it = ctl->txns.find(m.txn_id);
  if (it == ctl->txns.end()) return;
  Txn& txn = *it->second;
  txn.pending_peers.erase(from);
  obs::record(txn.trace, obs::SpanKind::kRecv, self_, env_.now(), "update.ack",
              from.value());
  txn.acks.record(from);
  if (txn.acks.reached() && !txn.quorum_fired) {
    txn.quorum_fired = true;
    obs::record(txn.trace, obs::SpanKind::kDecision, self_, env_.now(),
                "update.quorum", txn.update.user.value(),
                op_arg(txn.update.op));
    update_quorum_counter().inc();
    WAN_DEBUG << to_string(self_) << " update v" << txn.update.version.counter
              << " reached quorum (" << txn.acks.count() << " acks)";
    if (txn.done) {
      txn.done(UpdateOutcome{m.app, txn.update, txn.issued, env_.now(),
                             txn.acks.count()});
    }
  }
  if (txn.pending_peers.empty()) ctl->txns.erase(it);
}

void ManagerModule::handle_sync_request(HostId from, const SyncRequest& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  if (!ctl->synced) return;  // cannot vouch for state we have not recovered
  // Scope the snapshot to the shards the REQUESTER's group owns. Before
  // sharding this sent the whole store, which under a shard map leaks
  // unowned residual slices back into a freshly-recovered peer (and costs
  // bandwidth proportional to the deployment, not the shard). The regression
  // tests pin the transferred entry count through sync_entries_sent().
  std::vector<acl::AclUpdate> snap;
  if (const shard::ShardMap& map = ctl->shard_map; !map.trivial()) {
    if (const auto req_group = map.group_index_of(from)) {
      snap = ctl->store.snapshot_if([&](UserId u) {
        return map.group_of_shard(map.shard_of(m.app, u)) == *req_group;
      });
    }
    // A requester outside the map owns nothing; the empty response still
    // lets its recovery quorum complete.
  } else {
    snap = ctl->store.snapshot();
  }
  sync_entries_sent_ += snap.size();
  net_.send(self_, from,
            net::make_message<SyncResponse>(m.app, m.sync_id, std::move(snap)));
}

void ManagerModule::handle_sync_response(HostId from, const SyncResponse& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  if (m.sync_id != ctl->sync_id) return;
  if (ctl->synced) {
    // Straggler from the sync that already completed. It can still carry an
    // update the quorum responders never saw (stranded by an issuer crash),
    // so merge it — and if it taught us anything, spread the news.
    if (merge_snapshot(m.app, *ctl, m.snapshot) > 0) push_snapshot(m.app, *ctl);
    return;
  }
  if (ctl->sync_votes == nullptr) return;
  merge_snapshot(m.app, *ctl, m.snapshot);
  record_sync_vote(m.app, *ctl, from);
}

void ManagerModule::record_sync_vote(AppId app, AppCtl& ctl, HostId from) {
  if (ctl.sync_votes == nullptr || !ctl.sync_votes->record(from)) return;
  ctl.synced = true;
  ctl.sync_votes.reset();
  if (ctl.sync_timer) ctl.sync_timer->cancel();
  ctl.sync_timer.reset();
  WAN_DEBUG << to_string(self_) << " recovery sync complete for "
            << to_string(app);
  if (ctl.sync_adopts_pending) adopt_pending_shards(app, ctl);
  // Push the merged state back: peers that missed a partially-disseminated
  // update (whose issuer crashed and lost its retransmission duty) pick it
  // up here, restoring store convergence that pull-only sync cannot.
  push_snapshot(app, ctl);
  // Release operations that blocked on the sync, in submission order.
  flush_deferred_submits();
}

void ManagerModule::handle_sync_push(HostId from, const SyncPush& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  // Merging is safe in every state (idempotent, version-gated); receipt
  // never triggers a further push, so pushes cannot cascade.
  merge_snapshot(m.app, *ctl, m.snapshot);
}

void ManagerModule::handle_delta_sync_request(HostId from,
                                              const DeltaSyncRequest& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  if (!ctl->synced) return;  // cannot vouch for state we have not recovered

  // Same scoping as handle_sync_request: only the shards the REQUESTER's
  // group owns travel (everything, under a trivial map).
  const auto owned_by_requester = [&](UserId u) {
    const shard::ShardMap& map = ctl->shard_map;
    if (map.trivial()) return true;
    const auto req_group = map.group_index_of(from);
    if (!req_group) return false;
    return map.group_of_shard(map.shard_of(m.app, u)) == *req_group;
  };

  // A cursor is only a position in THIS incarnation's log, and only while
  // the capped log still holds everything past it. Anything else falls back
  // to the full snapshot — correctness never depends on the log.
  const bool delta_ok = m.log_epoch == ctl->log_epoch &&
                        m.cursor >= ctl->log_floor &&
                        m.cursor <= ctl->next_apply_seq;
  std::vector<acl::AclUpdate> updates;
  if (delta_ok) {
    for (std::uint64_t seq = m.cursor; seq < ctl->next_apply_seq; ++seq) {
      const acl::AclUpdate& u =
          ctl->apply_log[static_cast<std::size_t>(seq - ctl->log_floor)];
      if (owned_by_requester(u.user)) updates.push_back(u);
    }
  } else {
    updates = ctl->store.snapshot_if(owned_by_requester);
  }
  sync_entries_sent_ += updates.size();
  net_.send(self_, from,
            net::make_message<DeltaSyncResponse>(
                m.app, m.sync_id, /*full=*/!delta_ok, ctl->log_epoch,
                ctl->next_apply_seq, std::move(updates)));
}

void ManagerModule::handle_delta_sync_response(HostId from,
                                               const DeltaSyncResponse& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !is_peer(*ctl, from)) return;
  note_peer(*ctl, from);
  if (m.sync_id != ctl->sync_id) return;
  if (ctl->synced) {
    // Straggler from the completed sync (see handle_sync_response). A delta
    // suffix merges just as safely as a snapshot: both are version-gated.
    if (merge_snapshot(m.app, *ctl, m.updates) > 0) push_snapshot(m.app, *ctl);
    ctl->sync_cursors[from] = {m.log_epoch, m.next_seq};
    return;
  }
  if (ctl->sync_votes == nullptr) return;
  merge_snapshot(m.app, *ctl, m.updates);
  // Only after merging may we claim the peer's position: the cursor asserts
  // "everything this peer applied before next_seq is reflected here".
  ctl->sync_cursors[from] = {m.log_epoch, m.next_seq};
  record_sync_vote(m.app, *ctl, from);
}

void ManagerModule::mint_log_epoch(AppCtl& ctl) {
  // Deterministic under the simulated clock, unique per incarnation (the
  // salt survives crash() like version_stamp_ does): a fresh epoch
  // invalidates every cursor handed out against the previous log.
  ctl.log_epoch = stable_hash64(
      static_cast<std::uint64_t>(self_.value()),
      static_cast<std::uint64_t>(env_.now().nanos_since_origin()),
      ++log_epoch_salt_);
  if (ctl.log_epoch == 0) ctl.log_epoch = 1;  // 0 is the "no cursor" epoch
  ctl.apply_log.clear();
  ctl.log_floor = 0;
  ctl.next_apply_seq = 0;
}

void ManagerModule::log_applied(AppCtl& ctl, const acl::AclUpdate& update) {
  ctl.apply_log.push_back(update);
  ++ctl.next_apply_seq;
  const std::size_t cap =
      std::max<std::size_t>(1, config_.dissemination.delta_log_cap);
  while (ctl.apply_log.size() > cap) {
    ctl.apply_log.pop_front();
    ++ctl.log_floor;
  }
}

void ManagerModule::push_snapshot(AppId app, AppCtl& ctl) {
  if (ctl.peers.empty()) return;
  // Same scoping as handle_sync_request: peers are this group, so only the
  // group's owned slice travels.
  std::vector<acl::AclUpdate> snap;
  if (const shard::ShardMap& map = ctl.shard_map; !map.trivial()) {
    if (const auto my_group = map.group_index_of(self_)) {
      snap = ctl.store.snapshot_if([&](UserId u) {
        return map.group_of_shard(map.shard_of(app, u)) == *my_group;
      });
    }
    if (snap.empty()) return;
  } else {
    snap = ctl.store.snapshot();
  }
  const auto msg = net::make_message<SyncPush>(app, std::move(snap));
  for (const HostId p : ctl.peers) net_.send(self_, p, msg);
}

void ManagerModule::begin_sync(AppId app, AppCtl& ctl) {
  if (ctl.peers.empty()) {
    ctl.synced = true;  // single-manager degenerate case (see header)
    // No group peer can vouch for a stuck acquisition, so pending shards
    // stay refused; the old owners' retransmissions remain the only exit.
    ctl.sync_adopts_pending = false;
    return;
  }
  ctl.synced = false;
  ctl.sync_id = next_sync_id_++;
  const int needed = std::min(ctl.check_quorum,
                              static_cast<int>(ctl.peers.size()));
  ctl.sync_votes = std::make_unique<quorum::QuorumTracker>(needed);
  ctl.sync_timer = std::make_unique<runtime::Timer>(env_.make_timer());
  sync_round(app);
}

void ManagerModule::sync_round(AppId app) {
  AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr || !up_ || ctl->synced) return;
  // Retransmit until enough snapshots arrive.
  if (config_.dissemination.delta_sync) {
    // Ask each peer for just the suffix past our last-known cursor; a peer
    // that cannot honour the cursor answers with a full snapshot anyway.
    for (const HostId p : ctl->peers) {
      const auto it = ctl->sync_cursors.find(p);
      const std::uint64_t epoch = it != ctl->sync_cursors.end()
                                      ? it->second.first : 0;
      const std::uint64_t cursor = it != ctl->sync_cursors.end()
                                       ? it->second.second : 0;
      net_.send(self_, p,
                net::make_message<DeltaSyncRequest>(app, ctl->sync_id, epoch,
                                                    cursor));
    }
  } else {
    const auto msg = net::make_message<SyncRequest>(app, ctl->sync_id);
    for (const HostId p : ctl->peers) net_.send(self_, p, msg);
  }
  if (ctl->sync_timer) {
    ctl->sync_timer->arm(config_.sync_retransmit,
                         [this, app] { sync_round(app); });
  }
}

// ------------------------------------------------------ durable state

std::size_t ManagerModule::attach_journal(ManagerJournal* journal) {
  journal_ = journal;
  if (journal_ == nullptr) return 0;
  std::size_t replayed = 0;
  journal_->replay([this, &replayed](AppId app, const acl::AclUpdate& u) {
    AppCtl* ctl = ctl_of(app);
    if (ctl == nullptr) return;  // app no longer managed; records are inert
    // Direct apply: replay must not re-append what is already durable.
    ctl->store.apply(u);
    // Restore the issue-stamp floor from our own updates so a restarted
    // incarnation never mints a stamp at or below one it already used.
    if (u.version.origin == self_ && u.version.stamp > version_stamp_) {
      version_stamp_ = u.version.stamp;
    }
    ++replayed;
  });
  obs::record(/*trace=*/0, obs::SpanKind::kInstant, self_, env_.now(),
              "journal.replay", static_cast<std::int64_t>(replayed));
  return replayed;
}

bool ManagerModule::apply_update(AppId app, AppCtl& ctl,
                                 const acl::AclUpdate& update) {
  const bool applied = ctl.store.apply(update);
  if (applied && config_.dissemination.delta_sync) log_applied(ctl, update);
  if (applied && journal_ != nullptr) {
    journal_->append(app, update);
    maybe_compact(app, ctl);
  }
  return applied;
}

std::size_t ManagerModule::merge_snapshot(
    AppId app, AppCtl& ctl, const std::vector<acl::AclUpdate>& snapshot) {
  // AclStore::merge is a loop of applies; doing the loop here keeps the
  // journal exact (only registers that actually changed are appended).
  // Unowned entries are skipped — a sync peer that still carries a residual
  // slice from before a flip must not re-seed it here.
  std::size_t changed = 0;
  for (const acl::AclUpdate& u : snapshot) {
    if (!owns_key(ctl, app, u.user)) continue;
    if (apply_update(app, ctl, u)) ++changed;
  }
  return changed;
}

void ManagerModule::maybe_compact(AppId app, AppCtl& ctl) {
  // Past this many log records a replay costs more than a snapshot write;
  // stale log entries surviving a crash-between-rename-and-truncate are
  // re-applied as no-ops, so the threshold is pure tuning.
  constexpr std::size_t kCompactAfter = 256;
  if (journal_->log_records(app) >= kCompactAfter) {
    const auto snapshot = ctl.store.snapshot();
    journal_->compact(app, snapshot);
    obs::record(/*trace=*/0, obs::SpanKind::kInstant, self_, env_.now(),
                "journal.compact", static_cast<std::int64_t>(snapshot.size()));
  }
}

// ------------------------------------------------------------- sharding

bool ManagerModule::owns_key(const AppCtl& ctl, AppId app, UserId user) const {
  return ctl.shard_map.trivial() || ctl.shard_map.owns(self_, app, user);
}

bool ManagerModule::shard_sender_ok(const AppCtl& ctl, HostId from) const {
  // Handoff traffic crosses group boundaries, so is_peer alone cannot vet
  // it; any member of the current map is a trusted manager (joining groups
  // get the pre-rebalance map installed before the handoff starts).
  if (!ctl.shard_map.empty()) {
    return ctl.shard_map.group_index_of(from).has_value();
  }
  return is_peer(ctl, from);
}

void ManagerModule::set_shard_map(AppId app, shard::ShardMap map) {
  AppCtl* ctl = ctl_of(app);
  WAN_REQUIRE(ctl != nullptr);
  WAN_REQUIRE(map.valid());
  ctl->shard_map = std::move(map);
}

const shard::ShardMap* ManagerModule::shard_map(AppId app) const {
  const AppCtl* ctl = ctl_of(app);
  return ctl == nullptr ? nullptr : &ctl->shard_map;
}

std::size_t ManagerModule::pending_shards(AppId app) const {
  const AppCtl* ctl = ctl_of(app);
  return ctl == nullptr ? 0 : ctl->pending_acquire.size();
}

std::size_t ManagerModule::staged_shards(AppId app) const {
  const AppCtl* ctl = ctl_of(app);
  return ctl == nullptr ? 0 : ctl->staging.size();
}

std::size_t ManagerModule::tracked_handoff_series(AppId app) const {
  const AppCtl* ctl = ctl_of(app);
  return ctl == nullptr ? 0 : ctl->handoffs_in.size();
}

std::vector<acl::AclUpdate> ManagerModule::slice_snapshot(
    const AppCtl& ctl, AppId app, const shard::ShardMap& map,
    std::uint32_t shard) const {
  return ctl.store.snapshot_if(
      [&](UserId u) { return map.shard_of(app, u) == shard; });
}

std::size_t ManagerModule::complete_senders(const AppCtl& ctl,
                                            std::uint32_t shard) {
  const auto pit = ctl.pending_acquire.find(shard);
  if (pit == ctl.pending_acquire.end()) return 0;
  const PendingAcquire& pa = pit->second;
  std::size_t n = 0;
  for (const auto& [key, hi] : ctl.handoffs_in) {
    if (key.first != shard || !hi.complete) continue;
    // Only a series carrying the committed rebalance's epoch, streamed by a
    // member of the shard's old owner group, is quorum evidence. Anything
    // else is a leftover from an earlier epoch — a shard that bounced away
    // and back — and proves nothing about the slice in flight now.
    if (hi.epoch != pa.epoch || pa.senders.count(key.second) == 0) continue;
    ++n;
  }
  return n;
}

void ManagerModule::drop_handoff_in(AppCtl& ctl, std::uint32_t shard) {
  for (auto it = ctl.handoffs_in.begin(); it != ctl.handoffs_in.end();) {
    it = it->first.first == shard ? ctl.handoffs_in.erase(it) : std::next(it);
  }
  ctl.staging.erase(shard);
}

void ManagerModule::begin_shard_handoff(AppId app,
                                        const shard::ShardMap& next) {
  AppCtl* ctl = ctl_of(app);
  WAN_REQUIRE(ctl != nullptr);
  WAN_REQUIRE(next.valid() && !next.empty());
  // shard_count is fixed for a deployment's lifetime — only ownership moves.
  WAN_REQUIRE(ctl->shard_map.trivial() ||
              ctl->shard_map.shard_count() == next.shard_count());
  if (!up_) return;
  ctl->proposed = next;
  const shard::ShardMap& cur = ctl->shard_map;
  const auto my_next = next.group_index_of(self_);
  for (std::uint32_t s = 0; s < next.shard_count(); ++s) {
    // A trivial current map means this manager holds the whole key space.
    if (!(cur.trivial() || cur.owns_shard(self_, s))) continue;
    const std::uint32_t next_group = next.group_of_shard(s);
    if (my_next.has_value() && *my_next == next_group) continue;  // stays
    auto h = std::make_unique<HandoffOut>(env_);
    h->shard = s;
    h->epoch = next.epoch();
    h->slice = slice_snapshot(*ctl, app, next, s);
    h->series = slice_series(h->slice);
    for (const HostId d : next.group(next_group)) h->dests.insert(d);
    WAN_DEBUG << to_string(self_) << " hands off shard " << s << " of "
              << to_string(app) << " (" << h->slice.size() << " entries, "
              << h->dests.size() << " dests)";
    static obs::Counter& handoffs =
        obs::Registry::global().counter("wan_shard_handoffs_total");
    handoffs.inc();
    obs::record(/*trace=*/0, obs::SpanKind::kInstant, self_, env_.now(),
                "shard.handoff.begin", s,
                static_cast<std::int64_t>(h->epoch));
    ctl->handoffs_out[s] = std::move(h);
    handoff_round(app, s);
  }
}

void ManagerModule::handoff_round(AppId app, std::uint32_t shard) {
  AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr || !up_) return;
  const auto it = ctl->handoffs_out.find(shard);
  if (it == ctl->handoffs_out.end()) return;
  HandoffOut& h = *it->second;
  if (!h.frozen && ctl->proposed.has_value()) {
    // Re-snapshot: a write that raced the previous series starts a fresh one
    // (new content hash), invalidating every ack collected so far.
    auto slice = slice_snapshot(*ctl, app, *ctl->proposed, h.shard);
    if (const std::uint64_t series = slice_series(slice);
        series != h.series) {
      h.series = series;
      h.slice = std::move(slice);
      h.acked.clear();
    }
  }
  if (h.acked.size() == h.dests.size()) {
    if (h.frozen) {  // post-commit drain finished; nothing left to watch
      h.retry.cancel();
      ctl->handoffs_out.erase(it);
      return;
    }
  } else {
    send_handoff_series(app, *ctl, h);
  }
  h.retry.arm(config_.sync_retransmit,
              [this, app, shard] { handoff_round(app, shard); });
}

void ManagerModule::send_handoff_series(AppId app, const AppCtl& ctl,
                                        const HandoffOut& h) {
  (void)ctl;
  const auto total = static_cast<std::uint32_t>(
      (h.slice.size() + kHandoffChunkUpdates - 1) / kHandoffChunkUpdates);
  const auto begin = net::make_message<ShardHandoffBegin>(app, h.epoch,
                                                          h.shard, h.series,
                                                          total);
  std::vector<net::MessagePtr> chunks;
  chunks.reserve(total);
  for (std::uint32_t q = 0; q < total; ++q) {
    const std::size_t lo = static_cast<std::size_t>(q) * kHandoffChunkUpdates;
    const std::size_t hi =
        std::min(h.slice.size(), lo + kHandoffChunkUpdates);
    chunks.push_back(net::make_message<ShardHandoffChunk>(
        app, h.epoch, h.shard, h.series, q,
        std::vector<acl::AclUpdate>(h.slice.begin() + lo,
                                    h.slice.begin() + hi)));
  }
  static obs::Counter& chunks_sent =
      obs::Registry::global().counter("wan_shard_chunks_sent_total");
  for (const HostId d : h.dests) {
    if (h.acked.count(d) != 0) continue;
    net_.send(self_, d, begin);
    for (const auto& c : chunks) net_.send(self_, d, c);
    chunks_sent.inc(chunks.size());
    obs::record(/*trace=*/0, obs::SpanKind::kSend, self_, env_.now(),
                "shard.handoff.chunks", h.shard,
                static_cast<std::int64_t>(total));
  }
}

bool ManagerModule::handoff_drained(AppId app) const {
  const AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr) return false;
  for (const auto& [shard, hptr] : ctl->handoffs_out) {
    const HandoffOut& h = *hptr;
    if (h.acked.size() != h.dests.size()) return false;
    if (!h.frozen && ctl->proposed.has_value()) {
      // The acks are only evidence if the slice has not moved on since.
      if (slice_series(slice_snapshot(*ctl, app, *ctl->proposed, h.shard)) !=
          h.series) {
        return false;
      }
    }
  }
  return true;
}

void ManagerModule::commit_shard_map(AppId app, shard::ShardMap next) {
  AppCtl* ctl = ctl_of(app);
  WAN_REQUIRE(ctl != nullptr);
  WAN_REQUIRE(next.valid() && !next.empty());
  const shard::ShardMap old = ctl->shard_map;
  WAN_REQUIRE(old.trivial() || old.shard_count() == next.shard_count());

  // Freeze outgoing handoffs at their final slice. On the drained-commit
  // path every series is already acked and the record retires; a scripted
  // commit that raced a write keeps retransmitting the frozen final slice
  // until its destinations ack it.
  for (auto it = ctl->handoffs_out.begin(); it != ctl->handoffs_out.end();) {
    HandoffOut& h = *it->second;
    if (!h.frozen && ctl->proposed.has_value()) {
      auto slice = slice_snapshot(*ctl, app, *ctl->proposed, h.shard);
      if (const std::uint64_t series = slice_series(slice);
          series != h.series) {
        h.series = series;
        h.slice = std::move(slice);
        h.acked.clear();
      }
    }
    h.frozen = true;
    if (h.acked.size() == h.dests.size()) {
      h.retry.cancel();
      it = ctl->handoffs_out.erase(it);
    } else {
      ++it;
    }
  }

  ctl->shard_map = std::move(next);
  ctl->proposed.reset();
  const shard::ShardMap& map = ctl->shard_map;

  const auto owned_under = [this](const shard::ShardMap& m, std::uint32_t s) {
    return m.trivial() || m.owns_shard(self_, s);
  };
  std::vector<std::uint32_t> gained;
  std::vector<char> lost(map.shard_count(), 0);
  bool any_lost = false;
  for (std::uint32_t s = 0; s < map.shard_count(); ++s) {
    const bool was = owned_under(old, s);
    const bool now = owned_under(map, s);
    if (was && !now) {
      lost[s] = 1;
      any_lost = true;
    } else if (!was && now) {
      gained.push_back(s);
    }
  }

  if (any_lost) {
    // Shed the moved slices and their grant-table rows, then force-compact
    // the journal: replay must never resurrect a register the new owner now
    // speaks for. Grant tables are not transferred — every grant the old
    // owner issued dies of cache expiry within te, so the Te bound holds
    // across the flip without them.
    const auto in_lost = [&](UserId u) {
      return lost[map.shard_of(app, u)] != 0;
    };
    ctl->store.erase_users_if(in_lost);
    for (auto it = ctl->grant_table.begin(); it != ctl->grant_table.end();) {
      it = in_lost(it->first) ? ctl->grant_table.erase(it) : std::next(it);
    }
    if (journal_ != nullptr) journal_->compact(app, ctl->store.snapshot());
    // A lost shard's acquisition state dies with it: a pending entry is
    // moot (this group no longer answers for the shard), and any tracked or
    // staged inbound series must not linger to masquerade as evidence if a
    // later rebalance brings the shard back.
    for (std::uint32_t s = 0; s < map.shard_count(); ++s) {
      if (lost[s] == 0) continue;
      ctl->pending_acquire.erase(s);
      drop_handoff_in(*ctl, s);
    }
  }

  for (const std::uint32_t s : gained) {
    // Quorum intersection (§3.4 applied to the old group): complete series
    // from min(C, |old group|) distinct old members are guaranteed to carry
    // every update that completed its quorum there. `old` is non-trivial
    // whenever `gained` is non-empty (a trivial map owned everything).
    const std::vector<HostId>& old_members = old.group(old.group_of_shard(s));
    PendingAcquire pa;
    pa.need = std::min(ctl->check_quorum, static_cast<int>(old_members.size()));
    pa.epoch = map.epoch();
    pa.senders.insert(old_members.begin(), old_members.end());
    pa.begun = env_.now();
    ctl->pending_acquire[s] = std::move(pa);
    maybe_activate_shard(app, *ctl, s);
  }
  static obs::Counter& rebalances =
      obs::Registry::global().counter("wan_shard_rebalances_total");
  rebalances.inc();
  obs::record(/*trace=*/0, obs::SpanKind::kInstant, self_, env_.now(),
              "shard.map.commit", static_cast<std::int64_t>(map.epoch()),
              static_cast<std::int64_t>(gained.size()));
  WAN_DEBUG << to_string(self_) << " committed shard map epoch "
            << map.epoch() << " for " << to_string(app) << " (+"
            << gained.size() << " shards, pending "
            << ctl->pending_acquire.size() << ")";
}

void ManagerModule::abort_shard_handoff(AppId app) {
  AppCtl* ctl = ctl_of(app);
  if (ctl == nullptr) return;
  for (auto& [shard, h] : ctl->handoffs_out) h->retry.cancel();
  ctl->handoffs_out.clear();
  ctl->handoffs_in.clear();
  ctl->staging.clear();
  ctl->proposed.reset();
}

void ManagerModule::announce_shard_map(AppId app,
                                       const std::vector<HostId>& recipients) {
  AppCtl* ctl = ctl_of(app);
  WAN_REQUIRE(ctl != nullptr);
  if (!up_ || ctl->shard_map.empty()) return;
  const auto msg = net::make_message<ShardMapAnnounce>(app, ctl->shard_map);
  for (const HostId r : recipients) {
    if (r != self_) net_.send(self_, r, msg);
  }
}

void ManagerModule::maybe_activate_shard(AppId app, AppCtl& ctl,
                                         std::uint32_t shard) {
  const auto it = ctl.pending_acquire.find(shard);
  if (it == ctl.pending_acquire.end()) return;
  if (static_cast<int>(complete_senders(ctl, shard)) < it->second.need) {
    return;
  }
  if (const auto sit = ctl.staging.find(shard); sit != ctl.staging.end()) {
    merge_snapshot(app, ctl, sit->second.snapshot());
    ctl.staging.erase(sit);
  }
  const std::uint64_t epoch = it->second.epoch;
  const sim::TimePoint begun = it->second.begun;
  ctl.pending_acquire.erase(it);
  static obs::Counter& activations =
      obs::Registry::global().counter("wan_shard_activations_total");
  activations.inc();
  static obs::Histo& handoff_latency =
      obs::Registry::global().histogram("wan_shard_handoff_seconds");
  handoff_latency.observe(env_.now() - begun);
  obs::record(/*trace=*/0, obs::SpanKind::kInstant, self_, env_.now(),
              "shard.activate", shard, static_cast<std::int64_t>(epoch));
  // The series did their job; drop them so they can never be mistaken for
  // evidence by a later rebalance. A sender whose Done was lost retransmits
  // its Begin and gets re-acked through the active-shard path.
  drop_handoff_in(ctl, shard);
  WAN_DEBUG << to_string(self_) << " activated shard " << shard << " of "
            << to_string(app);
}

void ManagerModule::adopt_pending_shards(AppId app, AppCtl& ctl) {
  ctl.sync_adopts_pending = false;
  if (ctl.pending_acquire.empty()) return;
  // A quorum of group peers just vouched for their stores, and a store (or
  // a sync response) only ever carries activation-complete slices — staging
  // never leaks into either. Adopting that state is the only exit when the
  // old owners retired their handoffs against acks this manager lost in
  // the crash: without it the shard is refused forever, even though the
  // group answers for it. Sub-quorum staging is dropped, not merged — short
  // of the transfer quorum it may hold a grant whose completed revoke only
  // the missing senders carry, which is exactly what pending_acquire
  // guards the Te bound against.
  static obs::Counter& adoptions =
      obs::Registry::global().counter("wan_shard_adoptions_total");
  for (auto it = ctl.pending_acquire.begin();
       it != ctl.pending_acquire.end();) {
    const std::uint32_t s = it->first;
    const std::uint64_t epoch = it->second.epoch;
    it = ctl.pending_acquire.erase(it);
    drop_handoff_in(ctl, s);
    adoptions.inc();
    obs::record(/*trace=*/0, obs::SpanKind::kInstant, self_, env_.now(),
                "shard.adopt", s, static_cast<std::int64_t>(epoch));
    WAN_DEBUG << to_string(self_) << " adopted shard " << s << " of "
              << to_string(app) << " from its recovery sync";
  }
}

void ManagerModule::handle_shard_map_announce(HostId from,
                                              const ShardMapAnnounce& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !shard_sender_ok(*ctl, from)) return;
  // Epoch discipline: only strictly newer maps are adopted, so replayed or
  // reordered announces cannot roll ownership back.
  if (m.map.epoch() <= ctl->shard_map.epoch()) return;
  // shard_count is fixed for a deployment's lifetime; an announce that
  // disagrees with the installed map is a misconfigured (or lying)
  // coordinator. A bad frame is a drop, never an abort — funnelling it into
  // commit_shard_map's WAN_REQUIRE would let one such announce crash every
  // manager that hears it.
  if (!ctl->shard_map.trivial() &&
      m.map.shard_count() != ctl->shard_map.shard_count()) {
    WAN_DEBUG << to_string(self_) << " drops shard map announce from "
              << to_string(from) << " (shard_count " << m.map.shard_count()
              << " != " << ctl->shard_map.shard_count() << ")";
    return;
  }
  commit_shard_map(m.app, m.map);
}

void ManagerModule::handle_handoff_begin(HostId from,
                                         const ShardHandoffBegin& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !shard_sender_ok(*ctl, from)) return;
  // Equal epoch stays accepted: post-commit straggler series must still be
  // able to complete a pending shard.
  if (m.epoch < ctl->shard_map.epoch()) return;
  if (!ctl->shard_map.empty() && m.shard >= ctl->shard_map.shard_count()) {
    return;
  }
  // A current-epoch series for a shard that is not pending is a straggler:
  // either this manager already activated the shard (its quorum is met and
  // the series carries nothing the merge did not) or the shard was never
  // gained here. Ack the former so the sender can retire — repairing a lost
  // Done — but do not track or stage it: recreating staging for an active
  // shard would leak it for the process lifetime, since nothing drains
  // staging after activation. Higher-epoch series (pre-commit transfers)
  // fall through to normal tracking.
  if (m.epoch == ctl->shard_map.epoch() &&
      ctl->pending_acquire.count(m.shard) == 0) {
    if (ctl->shard_map.trivial() || ctl->shard_map.owns_shard(self_, m.shard)) {
      net_.send(self_, from,
                net::make_message<ShardHandoffDone>(m.app, m.epoch, m.shard,
                                                    m.series));
    }
    return;
  }
  HandoffIn& hi = ctl->handoffs_in[{m.shard, from}];
  if (hi.series != m.series) {
    hi = HandoffIn{};  // a new series from this sender restarts its tracking
    hi.epoch = m.epoch;
    hi.series = m.series;
    hi.total = m.total;
  }
  if (!hi.complete && hi.received.size() >= hi.total) {
    hi.complete = true;  // covers the empty-slice series (total == 0)
  }
  if (hi.complete) {
    // Re-acking on a retransmitted Begin repairs a lost Done.
    net_.send(self_, from,
              net::make_message<ShardHandoffDone>(m.app, hi.epoch, m.shard,
                                                  hi.series));
    maybe_activate_shard(m.app, *ctl, m.shard);
  }
}

void ManagerModule::handle_handoff_chunk(HostId from,
                                         const ShardHandoffChunk& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr || !shard_sender_ok(*ctl, from)) return;
  if (m.epoch < ctl->shard_map.epoch()) return;
  // Same straggler discipline as handle_handoff_begin: once the shard is no
  // longer pending at the current epoch, inbound series are finished
  // business — drop any leftover tracking instead of staging data nothing
  // will ever drain.
  if (m.epoch == ctl->shard_map.epoch() &&
      ctl->pending_acquire.count(m.shard) == 0) {
    drop_handoff_in(*ctl, m.shard);
    return;
  }
  const auto it = ctl->handoffs_in.find({m.shard, from});
  if (it == ctl->handoffs_in.end() || it->second.series != m.series) return;
  HandoffIn& hi = it->second;
  if (m.seq >= hi.total) return;
  if (!hi.received.insert(m.seq).second) return;  // duplicate chunk
  static obs::Counter& chunks_received =
      obs::Registry::global().counter("wan_shard_chunks_received_total");
  chunks_received.inc();
  // Chunks merge into the staging store, never the live one: queries must
  // not see a half-transferred slice, and an abort simply discards staging.
  // LWW merging makes chunks from different senders and restarted series
  // all land correctly regardless of order.
  ctl->staging[m.shard].merge(m.updates);
  if (!hi.complete && hi.received.size() >= hi.total) {
    hi.complete = true;
    net_.send(self_, from,
              net::make_message<ShardHandoffDone>(m.app, hi.epoch, m.shard,
                                                  hi.series));
    maybe_activate_shard(m.app, *ctl, m.shard);
  }
}

void ManagerModule::handle_handoff_done(HostId from,
                                        const ShardHandoffDone& m) {
  AppCtl* ctl = ctl_of(m.app);
  if (ctl == nullptr) return;
  const auto it = ctl->handoffs_out.find(m.shard);
  if (it == ctl->handoffs_out.end()) return;
  HandoffOut& h = *it->second;
  if (m.series != h.series || h.dests.count(from) == 0) return;
  h.acked.insert(from);
  if (h.frozen && h.acked.size() == h.dests.size()) {
    h.retry.cancel();
    ctl->handoffs_out.erase(it);
  }
}

// ------------------------------------------------------ crash / recovery

void ManagerModule::crash() {
  up_ = false;
  byzantine_ = false;  // a crashed-and-reimaged replica comes back honest
  for (auto& [app, ctl] : apps_) {
    ctl.store = acl::AclStore{};
    ctl.grant_table.clear();
    ctl.reads.clear();
    ctl.txns.clear();
    ctl.last_heard.clear();
    // Delta-sync state is as volatile as the store it shadows: the log dies
    // with the store, and our cursors into peers are void (an empty store
    // cannot be completed by a suffix — recovery must pull full snapshots).
    ctl.apply_log.clear();
    ctl.log_floor = 0;
    ctl.next_apply_seq = 0;
    ctl.sync_cursors.clear();
    ctl.sync_votes.reset();
    ctl.sync_timer.reset();
    if (ctl.heartbeat) ctl.heartbeat->stop();
    ctl.heartbeat.reset();
    ctl.synced = false;
    ctl.deferred_submits.clear();  // ops die with the crash; callers time out
    // Handoff machinery is volatile. The shard map itself survives (like the
    // name-service record it mirrors), and so does pending_acquire: a gained
    // shard whose transfer quorum never completed has no activation in the
    // journal, so a restarted manager must keep refusing it — answering from
    // a partial slice could outlive a revocation the old owner completed.
    // The refusal ends when old owners re-stream enough series, or when the
    // recovery sync completes and adopts the group's activated state
    // (adopt_pending_shards).
    for (auto& [shard, h] : ctl.handoffs_out) h->retry.cancel();
    ctl.handoffs_out.clear();
    ctl.handoffs_in.clear();
    ctl.staging.clear();
    ctl.proposed.reset();
  }
  // Every in-flight revocation fan-out is volatile strategy state.
  disseminator_->shutdown();
}

void ManagerModule::recover() {
  up_ = true;
  const clk::LocalTime now = local_now();
  for (auto& [app, ctl] : apps_) {
    for (const HostId p : ctl.peers) ctl.last_heard[p] = now;
    if (config_.freeze_enabled) start_heartbeats(app, ctl);
    // A fresh apply-log incarnation: cursors peers hold into the pre-crash
    // log must miss (the log died with the store) and fall back to full.
    mint_log_epoch(ctl);
    // Crash-recovery syncs (and only those) may adopt group state for
    // shards stuck in pending_acquire — see adopt_pending_shards().
    ctl.sync_adopts_pending = true;
    begin_sync(app, ctl);
  }
}

void ManagerModule::resync(AppId app) {
  AppCtl* ctl = ctl_of(app);
  if (!up_ || ctl == nullptr || !ctl->synced) return;
  begin_sync(app, *ctl);
}

}  // namespace wan::proto
