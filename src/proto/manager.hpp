// Manager side of the protocol (§3.1, §3.3, §3.4).
//
// A manager holds the authoritative ACL for each application it manages and
// implements:
//
//  * Add/Revoke operations with *persistent dissemination*: the update is
//    retransmitted to every peer manager until acknowledged. The operation's
//    guarantee point is when an update quorum (M - C + 1 managers, counting
//    the issuer) has acknowledged — from then on, at most Te passes before
//    the operation is globally effective.
//  * The grant table: per user, the set of application hosts this manager has
//    granted cached rights to. On revocation (locally issued or received from
//    a peer) the manager forwards RevokeNotify to exactly those hosts and
//    retries until acked — or until the right would have expired anyway, at
//    which point retrying is pointless and stops (§3.4).
//  * The freeze strategy (§3.3 alternative): with heartbeats tracking peer
//    reachability on the local clock, the manager refuses to answer host
//    queries while any peer has been silent longer than Ti (scaled by the
//    clock bound b), guaranteeing the time bound without quorums at the cost
//    of availability.
//  * Crash recovery: the ACL is volatile; a recovering manager re-syncs by
//    merging snapshots from C distinct peers before answering queries. Any
//    update that completed its quorum of M - C + 1 managers is present in at
//    least M - C of the M - 1 peers, and any C-subset of peers intersects
//    that set. (Degenerate cases: with M == 1 there are no peers and the
//    store simply restarts empty; with C == M the required C peers do not
//    exist, so we sync from all M - 1 — an update acknowledged only by the
//    crashed issuer can then be lost, which is the price the paper's C == M
//    corner pays without stable storage. Expiry still bounds the damage.)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "acl/store.hpp"
#include "clock/local_clock.hpp"
#include "proto/config.hpp"
#include "proto/dissemination.hpp"
#include "proto/messages.hpp"
#include "quorum/quorum.hpp"
#include "runtime/env.hpp"
#include "shard/shard_map.hpp"
#include "util/rng.hpp"

namespace wan::proto {

class ManagerJournal;

/// Result of a manager Add/Revoke operation, reported when the update quorum
/// is assembled (the paper's blocking call "returning").
struct UpdateOutcome {
  AppId app{};
  acl::AclUpdate update{};
  sim::TimePoint issued_at{};
  sim::TimePoint quorum_at{};
  int acks_at_quorum = 0;  ///< managers (incl. issuer) acked at quorum time
};

using UpdateCallback = std::function<void(const UpdateOutcome&)>;

class ManagerModule : private Disseminator::Sink {
 public:
  ManagerModule(HostId self, runtime::Env& env, clk::LocalClock clock,
                ProtocolConfig config);
  ~ManagerModule();
  ManagerModule(const ManagerModule&) = delete;
  ManagerModule& operator=(const ManagerModule&) = delete;

  /// Declares that this manager manages `app`; `managers` is the full set
  /// Managers(app) including this manager. check_quorum must be <= M.
  void manage_app(AppId app, std::vector<HostId> managers);

  /// Applies a manager-set change (§3.2: the set "changes relatively
  /// infrequently" and is published through the trusted name service; hosts
  /// pick it up when their cached resolution expires). Call on every member
  /// of the NEW set after updating the name service:
  ///  * an existing member keeps its store and prunes departed peers from
  ///    in-flight transactions;
  ///  * a newcomer starts unsynced and recovers state from C peers before
  ///    answering queries (same machinery as crash recovery).
  /// Departed managers should call forget_app().
  void reconfigure_app(AppId app, std::vector<HostId> managers);

  /// Stops managing `app` entirely (the manager left the set).
  void forget_app(AppId app);

  /// The paper's Add(A,U,R) / Revoke(A,U,R). Two phases:
  ///  1. version read — collect the freshest store version from a check
  ///     quorum of C managers (self included), so the new update's version
  ///     dominates every previously *completed* update (see VersionQuery);
  ///  2. persistent dissemination with update-quorum acknowledgment.
  /// `done` fires when the update quorum is reached (the guarantee point);
  /// dissemination to remaining managers continues in the background. Under
  /// a partition that denies even the read quorum, the operation simply
  /// blocks (retrying) until connectivity returns — the paper's blocking
  /// semantics. Under a non-trivial shard map the submit must be routed to a
  /// member of the key's owner group; a mis-routed submit is refused
  /// (counted in submits_refused_unowned(), callback dropped) exactly like a
  /// mis-routed query — the caller re-resolves and retries.
  void submit_update(AppId app, acl::Op op, UserId user, acl::Right right,
                     UpdateCallback done = nullptr);

  /// Network receive entry point.
  void on_message(HostId from, const net::MessagePtr& msg);

  /// Attaches a durable journal (proto/journal.hpp) and replays its records
  /// into the stores of currently-managed apps — call after manage_app() and
  /// before the node starts answering. Every subsequent store mutation
  /// (local issue, peer dissemination, sync merge) is appended to the
  /// journal before the manager acts on the result, and the journal is
  /// compacted to a snapshot once the log grows past a threshold. Replayed
  /// records also restore the version-stamp floor for updates this manager
  /// issued, so a restarted manager never reissues a stamp. The grant table
  /// is deliberately NOT journaled: a restarted manager that forgot a grant
  /// merely fails to forward one revocation, and the paper's Te expiry
  /// already bounds that exposure (§3.4) — the resync it runs on restart
  /// (gated on ManagerJournal::had_state()) restores the ACL itself exactly.
  /// Non-owning; pass nullptr to detach. Returns records replayed.
  std::size_t attach_journal(ManagerJournal* journal);

  /// Crash: the whole manager state is volatile (§3.4).
  void crash();
  /// Recovery: re-syncs every managed app before answering queries.
  void recover();

  /// Administrative anti-entropy: re-runs the recovery sync (pull snapshots
  /// from peers, merge, push the merge back) without a crash. Operators run
  /// this after an incident to re-converge updates stranded by issuer
  /// crashes; the chaos harness runs it at quiescence for the same reason.
  /// No-op while down, unsynced, or peerless.
  void resync(AppId app);

  [[nodiscard]] bool up() const noexcept { return up_; }
  [[nodiscard]] HostId id() const noexcept { return self_; }

  /// Whether the freeze strategy currently suppresses responses for `app`.
  /// Honours debug_override_frozen(); protocol code routes through this.
  [[nodiscard]] bool frozen(AppId app) const;
  /// The honest §3.3 computation only: has any tracked peer been silent
  /// longer than the local threshold? Ignores the debug override — the chaos
  /// oracle uses this as ground truth when auditing frozen().
  [[nodiscard]] bool frozen_by_silence(AppId app) const;
  /// Local-clock silence threshold at which frozen_by_silence trips (Ti / b).
  [[nodiscard]] sim::Duration freeze_threshold() const;
  /// Test hook: forces frozen() to the given value (nullopt restores the
  /// honest computation). Exists so freeze-oracle self-tests can plant a
  /// manager that answers while it should be frozen, or reports unfrozen
  /// while a peer is long silent, and prove the oracle catches both.
  void debug_override_frozen(std::optional<bool> forced) {
    debug_frozen_ = forced;
  }
  /// Whether this manager is synced (false while recovering).
  [[nodiscard]] bool synced(AppId app) const;

  /// Per-peer silence on this manager's local clock (freeze diagnostics; the
  /// oracle's premature-unfreeze check reads it). `tracked == false` means
  /// the peer is in Managers(app) but missing from the silence bookkeeping —
  /// itself a freeze bug, since an untracked peer can never freeze us.
  struct PeerSilence {
    HostId peer{};
    bool tracked = false;
    sim::Duration silence{};
  };
  [[nodiscard]] std::vector<PeerSilence> peer_silences(AppId app) const;

  // --- compromise injection (chaos harness) --------------------------------
  // A Byzantine manager keeps its pre-flip store but stops cooperating:
  //  * host check queries get stale or inverted grant/deny answers (or
  //    silence), all derived from the frozen store — the trust model signs
  //    ACL updates at the admin, so a liar can misreport rights it holds but
  //    cannot fabricate versions it never saw;
  //  * peer updates are dropped, or mis-acked with a mangled txn id the
  //    issuer will not recognize — a liar never counts toward update quorums;
  //  * version reads and recovery syncs from peers go unanswered, keeping
  //    manager-side quorums all-honest;
  //  * admin submits THROUGH the compromised manager park exactly like
  //    submits on an unsynced one, and release on restore.
  // All lie choices are deterministic in `lie_seed`.

  /// How a Byzantine manager answers host check queries. kSeeded mixes the
  /// others pseudo-randomly; the fixed modes exist for deterministic tests.
  enum class LieMode : std::uint8_t {
    kSeeded,      ///< draw silent/stale/invert per query from lie_seed
    kStale,       ///< answer honestly from the frozen (stale) store
    kInvert,      ///< flip the use right, version kept from the store
    kSilent,      ///< never answer
    kHugeExpiry,  ///< stale answer advertising a 64x expiry period
  };

  void set_byzantine(std::uint64_t lie_seed, LieMode mode = LieMode::kSeeded);
  /// Back to honest operation with whatever (stale) store survived; parked
  /// submits are released. State is kept — this is remediation, not
  /// reimaging (crash()/recover() models the latter and also clears the flag).
  void restore_honest();
  [[nodiscard]] bool byzantine() const noexcept { return byzantine_; }

  /// One record per QueryResponse this manager actually sends (honest or
  /// lying); the freeze oracle audits answered-while-frozen through it.
  struct QueryAnswerEvent {
    AppId app{};
    UserId user{};
    HostId host{};  ///< the asking host
    acl::Version version{};
    bool frozen_by_silence = false;  ///< honest §3.3 reading at send time
    bool synced = true;
    bool byzantine = false;
  };
  void set_response_observer(std::function<void(const QueryAnswerEvent&)> obs) {
    response_observer_ = std::move(obs);
  }

  [[nodiscard]] const acl::AclStore* store(AppId app) const;

  /// Hosts currently in the grant table for (app, user) — test/diag hook.
  [[nodiscard]] std::vector<HostId> granted_hosts(AppId app, UserId user) const;

  /// Count of in-flight originated updates (diagnostics).
  [[nodiscard]] std::size_t inflight_updates(AppId app) const;

  // --- sharding (shard/shard_map.hpp) --------------------------------------
  // A sharded manager runs the unmodified protocol inside its own group (its
  // AppCtl.managers IS the group), and the map adds exactly two things on
  // top: ownership gating — queries, submits, and peer updates for keys
  // outside the shards this group owns are refused or ack'd-without-apply,
  // so a stale router times out into a deny (the safe direction) — and the
  // catch-up-then-flip handoff below, which moves a shard's ACL slice to its
  // next owner group while reads and writes stay on the old owner until
  // commit.

  /// Installs `map` as the app's current shard map (deployment setup, or the
  /// receive side of a committed rebalance). Does not touch group
  /// membership: groups are fixed, they only enter or leave the map. The map
  /// survives crash() like the name-service record it mirrors — it is
  /// distribution state, not protocol state.
  void set_shard_map(AppId app, shard::ShardMap map);

  /// The current map (empty map if none installed / app unknown).
  [[nodiscard]] const shard::ShardMap* shard_map(AppId app) const;

  /// Old-owner side of a rebalance: for every shard this manager holds today
  /// that `next` assigns to a different group, start streaming the slice
  /// (Begin + Chunk series keyed by a content hash) to every member of the
  /// next owner group, re-snapshotting and re-sending on each retransmit
  /// period until each destination acks the series it currently advertises.
  /// Reads and writes keep landing here until commit_shard_map().
  void begin_shard_handoff(AppId app, const shard::ShardMap& next);

  /// True when every outgoing handoff series has been acked by every
  /// destination AND still matches the live slice (no write raced the last
  /// snapshot). The rebalance coordinator polls this and must call
  /// commit_shard_map() in the same scheduler event that observed true —
  /// that atomicity is what makes the flip race-free in the simulator.
  [[nodiscard]] bool handoff_drained(AppId app) const;

  /// Flips to `next`: adopts the map, merges staged slices for shards this
  /// group gained (gated on complete series from a quorum of old-owner
  /// members — quorum intersection carries every completed update), drops
  /// slices and grant-table entries for shards it lost, and force-compacts
  /// the journal so dropped registers cannot resurrect on replay. Grant
  /// tables are deliberately NOT transferred: cache expiry (te) bounds every
  /// grant the old owner issued, so the Te revocation bound holds across the
  /// flip without them.
  void commit_shard_map(AppId app, shard::ShardMap next);

  /// Abandons an in-progress rebalance: outgoing handoffs stop, staged
  /// slices are discarded, the current map stays authoritative.
  void abort_shard_handoff(AppId app);

  /// Sends the CURRENT map as a ShardMapAnnounce to `recipients` (the
  /// coordinator's post-commit distribution step; receivers apply epoch
  /// discipline).
  void announce_shard_map(AppId app, const std::vector<HostId>& recipients);

  /// Shards this group owns under the current map but cannot answer for yet
  /// (flipped before enough complete handoff series arrived). Queries for
  /// them are refused — deny by timeout — until the series count is met.
  [[nodiscard]] std::size_t pending_shards(AppId app) const;

  /// Shards with a staged (received but not yet activated) inbound slice.
  /// Test observability: after a shard activates or is adopted, stragglers
  /// must not recreate staging — a non-zero count at quiescence is a leak.
  [[nodiscard]] std::size_t staged_shards(AppId app) const;
  /// Inbound handoff series still tracked, across all shards and senders
  /// (same quiescence expectation as staged_shards()).
  [[nodiscard]] std::size_t tracked_handoff_series(AppId app) const;

  /// Host queries refused because the key's shard is not owned here.
  [[nodiscard]] std::uint64_t queries_refused_unowned() const noexcept {
    return queries_refused_unowned_;
  }
  /// Submits refused for the same reason (caller routed with a stale map).
  [[nodiscard]] std::uint64_t submits_refused_unowned() const noexcept {
    return submits_refused_unowned_;
  }
  /// ACL entries this manager has sent in SyncResponse messages — the
  /// resync-scoping regression tests pin this (a sync must transfer the
  /// requester's owned slice, not the whole store).
  [[nodiscard]] std::uint64_t sync_entries_sent() const noexcept {
    return sync_entries_sent_;
  }
  /// Revocations still fanning out (all apps) — owned by the configured
  /// dissemination strategy (proto/dissemination.hpp).
  [[nodiscard]] std::size_t inflight_revocations() const {
    return disseminator_->inflight();
  }

 private:
  struct PendingRead {
    acl::Op op = acl::Op::kAdd;
    UserId user{};
    acl::Right right = acl::Right::kUse;
    UpdateCallback done;
    sim::TimePoint issued{};
    quorum::QuorumTracker readers;
    acl::Version max_seen{};
    obs::TraceId trace = 0;  ///< the update's causal chain (minted at submit)
    runtime::Timer retry;

    PendingRead(int quorum, runtime::Env& env)
        : readers(quorum), retry(env.make_timer()) {}
  };

  struct Txn {
    acl::AclUpdate update{};
    std::uint64_t txn_id = 0;
    sim::TimePoint issued{};
    quorum::QuorumTracker acks;
    std::set<HostId> pending_peers;
    UpdateCallback done;
    bool quorum_fired = false;
    obs::TraceId trace = 0;  ///< inherited from the PendingRead
    runtime::Timer retry;

    Txn(int quorum, runtime::Env& env) : acks(quorum), retry(env.make_timer()) {}
  };

  struct DeferredSubmit {
    acl::Op op = acl::Op::kAdd;
    UserId user{};
    acl::Right right = acl::Right::kUse;
    UpdateCallback done;
  };

  /// One outgoing handoff: this manager streaming one shard's slice to the
  /// members of its next owner group. `series` is the content hash of
  /// `slice`; a write racing the handoff changes the hash, which resets the
  /// ack set and resends — so an acked series always names exactly the bytes
  /// the destination holds. After commit the slice leaves the store and the
  /// snapshot freezes; retransmission continues until every destination
  /// acks, then the record retires.
  struct HandoffOut {
    std::uint32_t shard = 0;
    std::uint64_t epoch = 0;  ///< the PROPOSED map's epoch
    std::uint64_t series = 0;
    std::vector<acl::AclUpdate> slice;
    std::set<HostId> dests;
    std::set<HostId> acked;  ///< dests that acked the current series
    bool frozen = false;     ///< post-commit: stop re-snapshotting
    runtime::Timer retry;

    explicit HandoffOut(runtime::Env& env) : retry(env.make_timer()) {}
  };

  /// One incoming handoff series from one old-owner member. Chunks merge
  /// into the per-shard staging store as they land (idempotent LWW, so
  /// redelivery and series restarts are harmless); completeness is tracked
  /// per sender because the flip requires complete series from a QUORUM of
  /// distinct old-owner members before the staged slice may answer queries.
  struct HandoffIn {
    std::uint64_t epoch = 0;
    std::uint64_t series = 0;
    std::uint32_t total = 0;
    std::set<std::uint32_t> received;  ///< chunk seqs of the current series
    bool complete = false;
  };

  /// A gained shard awaiting its transfer quorum: how many complete series
  /// are still required, the epoch of the rebalance that moved the shard
  /// here, and the members of its OLD owner group — the only hosts whose
  /// series count toward `need`. Without the epoch/sender filter, a
  /// complete series left over from an earlier rebalance (a shard that
  /// bounced away and back) would satisfy the quorum instantly and activate
  /// the shard around the real transfer, voiding the quorum-intersection
  /// guarantee the flip rests on.
  struct PendingAcquire {
    int need = 0;
    std::uint64_t epoch = 0;
    std::set<HostId> senders;
    sim::TimePoint begun{};  ///< commit time; activation latency is measured
                             ///< from here into wan_shard_handoff_seconds
  };

  struct AppCtl;

  [[nodiscard]] bool owns_key(const AppCtl& ctl, AppId app,
                              UserId user) const;

  struct AppCtl {
    std::vector<HostId> managers;  ///< full set, incl. self
    std::vector<HostId> peers;     ///< managers minus self
    int check_quorum = 1;
    acl::AclStore store;
    std::map<UserId, std::set<HostId>> grant_table;
    std::unordered_map<std::uint64_t, std::unique_ptr<PendingRead>> reads;
    std::unordered_map<std::uint64_t, std::unique_ptr<Txn>> txns;
    std::unordered_map<HostId, clk::LocalTime> last_heard;  ///< freeze input
    bool synced = true;
    /// Operations submitted while recovering (§3.4: an unsynced manager can
    /// vouch for nothing, not even its own version floor); issued in order
    /// once the sync completes. The paper's blocking call simply waits.
    std::vector<DeferredSubmit> deferred_submits;
    std::uint64_t sync_id = 0;
    std::unique_ptr<quorum::QuorumTracker> sync_votes;
    std::unique_ptr<runtime::Timer> sync_timer;
    std::unique_ptr<runtime::PeriodicTimer> heartbeat;
    std::uint64_t heartbeat_seq = 0;
    /// Current shard map (empty = flat). Survives crash() — see
    /// set_shard_map().
    shard::ShardMap shard_map;
    /// The map a begin_shard_handoff() is migrating toward; defines shard
    /// numbering for slice re-snapshots. Cleared at commit/abort.
    std::optional<shard::ShardMap> proposed;
    /// Outgoing handoffs by shard (this manager is an old owner).
    std::map<std::uint32_t, std::unique_ptr<HandoffOut>> handoffs_out;
    /// Incoming handoff series by (shard, sender).
    std::map<std::pair<std::uint32_t, HostId>, HandoffIn> handoffs_in;
    /// Staged slices by shard — merged into the store only at activation,
    /// never consulted by queries, discarded on abort.
    std::map<std::uint32_t, acl::AclStore> staging;
    /// Gained shards awaiting enough complete series. Queries for these
    /// shards are refused.
    std::map<std::uint32_t, PendingAcquire> pending_acquire;
    /// Set by recover(): the in-flight sync is a crash recovery, so its
    /// completion (a quorum of group peers vouching for their stores) may
    /// adopt the group's state for shards stuck in pending_acquire whose
    /// senders retired against acks the crash erased.
    bool sync_adopts_pending = false;
    /// Delta-sync apply log (config.dissemination.delta_sync): the tail of
    /// updates applied to the store, in apply order. A recovering peer
    /// presenting a cursor inside [log_floor, next_apply_seq] under the
    /// current log_epoch gets just the suffix; anything else (epoch
    /// mismatch, cursor older than the capped log) falls back to a full
    /// snapshot. Volatile — cleared with the store on crash().
    std::deque<acl::AclUpdate> apply_log;
    std::uint64_t log_floor = 0;       ///< apply seq of apply_log.front()
    std::uint64_t next_apply_seq = 0;  ///< seq the next applied update gets
    /// Identifies one incarnation of this manager's apply log; a cursor is
    /// only meaningful under the epoch it was handed out with. Re-minted by
    /// mint_log_epoch() whenever the log restarts (manage_app, recover).
    std::uint64_t log_epoch = 0;
    /// Requester-side cursors: the (log_epoch, next_seq) each peer reported
    /// in its last DeltaSyncResponse. Cleared on crash() — a recovering
    /// manager's store is empty, so a suffix cannot reconstruct it.
    std::map<HostId, std::pair<std::uint64_t, std::uint64_t>> sync_cursors;
  };

  void handle_query(HostId from, const QueryRequest& q);
  void byzantine_on_message(HostId from, const net::MessagePtr& msg);
  void byzantine_answer_query(HostId from, const QueryRequest& q);
  void flush_deferred_submits();
  void handle_version_reply(HostId from, const VersionReply& m);
  void retransmit_read(AppId app, std::uint64_t read_id);
  void issue_write(AppId app, std::unique_ptr<PendingRead> read);
  void handle_update(HostId from, const UpdateMsg& m);
  void handle_update_ack(HostId from, const UpdateAck& m);
  void handle_sync_request(HostId from, const SyncRequest& m);
  void handle_sync_response(HostId from, const SyncResponse& m);
  void handle_sync_push(HostId from, const SyncPush& m);
  void handle_delta_sync_request(HostId from, const DeltaSyncRequest& m);
  void handle_delta_sync_response(HostId from, const DeltaSyncResponse& m);
  /// Records a sync vote from `from`; on quorum, completes the recovery
  /// (shared tail of handle_sync_response / handle_delta_sync_response).
  void record_sync_vote(AppId app, AppCtl& ctl, HostId from);
  void push_snapshot(AppId app, AppCtl& ctl);

  void handle_shard_map_announce(HostId from, const ShardMapAnnounce& m);
  void handle_handoff_begin(HostId from, const ShardHandoffBegin& m);
  void handle_handoff_chunk(HostId from, const ShardHandoffChunk& m);
  void handle_handoff_done(HostId from, const ShardHandoffDone& m);
  /// One retransmit round of an outgoing handoff: re-snapshot the slice
  /// (unless frozen), restart the series if it changed, send Begin + all
  /// chunks to every destination that has not acked the current series.
  void handoff_round(AppId app, std::uint32_t shard);
  void send_handoff_series(AppId app, const AppCtl& ctl, const HandoffOut& h);
  /// Slice predicate under `map` for shard `s` (which users belong to it).
  [[nodiscard]] std::vector<acl::AclUpdate> slice_snapshot(
      const AppCtl& ctl, AppId app, const shard::ShardMap& map,
      std::uint32_t shard) const;
  /// Count of distinct ELIGIBLE senders — old-owner-group members whose
  /// complete series carries the committed rebalance's epoch — for `shard`.
  [[nodiscard]] static std::size_t complete_senders(const AppCtl& ctl,
                                                    std::uint32_t shard);
  /// If `shard` is pending and enough complete series arrived, merge the
  /// staged slice into the live store and open the shard for queries.
  void maybe_activate_shard(AppId app, AppCtl& ctl, std::uint32_t shard);
  /// Drops every inbound-handoff record and the staged slice for `shard` —
  /// at activation, when the shard is lost, or when recovery adopts it.
  static void drop_handoff_in(AppCtl& ctl, std::uint32_t shard);
  /// Crash-recovery exit for stuck acquisitions: once a quorum of group
  /// peers vouched for their stores, adopt that state for every shard still
  /// in pending_acquire (see handle_sync_response).
  void adopt_pending_shards(AppId app, AppCtl& ctl);
  /// Whether cross-group shard traffic from `from` is trustworthy: a member
  /// of the current map (old and new owners both are — joining groups get
  /// the pre-rebalance map installed before handoff), falling back to
  /// is_peer when no map is installed.
  [[nodiscard]] bool shard_sender_ok(const AppCtl& ctl, HostId from) const;

  void start_revoke_forwarding(AppId app, AppCtl& ctl, UserId user,
                               acl::Version version, obs::TraceId trace);
  void retransmit_txn(AppId app, std::uint64_t txn_id);
  // Disseminator::Sink — the strategy's way back into the manager.
  void send(HostId to, const net::MessagePtr& msg) override;
  void delivered(AppId app, HostId host, UserId user,
                 acl::Version version) override;
  /// Starts a fresh apply-log incarnation for `ctl` (new epoch, empty log).
  void mint_log_epoch(AppCtl& ctl);
  /// Appends an APPLIED update to the delta-sync log (capped; advancing the
  /// floor past a compaction point forces stale cursors to full snapshots).
  void log_applied(AppCtl& ctl, const acl::AclUpdate& update);
  /// The journaled mutation path: AclStore::apply plus, when a journal is
  /// attached and the update changed a register, a durable append (and a
  /// compaction check). Every store mutation site routes through this or
  /// merge_snapshot() so durable state can never miss an applied update.
  bool apply_update(AppId app, AppCtl& ctl, const acl::AclUpdate& update);
  /// Journaled AclStore::merge (a merge is a loop of applies); returns the
  /// number of registers changed.
  std::size_t merge_snapshot(AppId app, AppCtl& ctl,
                             const std::vector<acl::AclUpdate>& snapshot);
  void maybe_compact(AppId app, AppCtl& ctl);

  void begin_sync(AppId app, AppCtl& ctl);
  void sync_round(AppId app);
  void start_heartbeats(AppId app, AppCtl& ctl);
  void note_peer(AppCtl& ctl, HostId peer);
  /// Manager-to-manager messages are only honoured from genuine peers (the
  /// paper's model authenticates manager traffic; crash-only managers never
  /// lie, so anything else claiming to be one is an outsider).
  [[nodiscard]] static bool is_peer(const AppCtl& ctl, HostId from) noexcept;
  [[nodiscard]] int update_quorum(const AppCtl& ctl) const noexcept {
    return static_cast<int>(ctl.managers.size()) - ctl.check_quorum + 1;
  }
  [[nodiscard]] clk::LocalTime local_now() const {
    return clock_.local_now();
  }

  AppCtl* ctl_of(AppId app);
  const AppCtl* ctl_of(AppId app) const;

  HostId self_;
  runtime::Env& env_;
  runtime::Transport& net_;
  runtime::Clock clock_;
  ProtocolConfig config_;
  bool up_ = true;
  bool byzantine_ = false;
  ManagerJournal* journal_ = nullptr;  ///< non-owning; nullptr == volatile
  LieMode lie_mode_ = LieMode::kSeeded;
  Rng lie_rng_{0};
  /// Revocation fan-out strategy (built from config_.dissemination; owns all
  /// in-flight revoke state, which crash() drops via shutdown()).
  std::unique_ptr<Disseminator> disseminator_;
  std::uint64_t log_epoch_salt_ = 0;  ///< per-incarnation epoch tie-breaker
  std::optional<bool> debug_frozen_;
  std::function<void(const QueryAnswerEvent&)> response_observer_;

  std::map<AppId, AppCtl> apps_;
  /// Floor for version issue stamps: strictly increasing per issued update
  /// and across crash/recover. Deliberately NOT wiped by crash() — it stands
  /// in for the local hardware clock, which keeps ticking through a crash
  /// (the same property LocalClock has; the floor only adds tie-breaking for
  /// same-instant issues).
  std::int64_t version_stamp_ = 0;
  std::uint64_t next_txn_id_ = 1;
  std::uint64_t next_sync_id_ = 1;
  std::uint64_t next_read_id_ = 1;
  std::uint64_t queries_refused_unowned_ = 0;
  std::uint64_t submits_refused_unowned_ = 0;
  std::uint64_t sync_entries_sent_ = 0;
  // Minted unconditionally so message-borne trace ids never depend on whether
  // a tracer is installed (traced/untraced runs stay bit-identical).
  std::uint32_t next_trace_seq_ = 1;
};

}  // namespace wan::proto
