// Wire messages of the access-control protocol.
//
// Message flows (paper Figures 1-3, §3.3-3.4):
//
//   user agent -> app host    InvokeRequest / InvokeReply
//   app host  <-> manager     QueryRequest / QueryResponse
//   manager    -> app host    RevokeNotify   (acked with RevokeNotifyAck)
//   manager   <-> manager     UpdateMsg / UpdateAck  (persistent dissemination)
//   manager   <-> manager     SyncRequest / SyncResponse (recovery, §3.4)
//   manager   <-> manager     HeartbeatPing / HeartbeatPong (freeze strategy)
//
// Wire sizes are rough estimates of an early-Internet datagram encoding;
// they only feed the bandwidth-overhead accounting.
//
// Messages that continue a causal chain — invoke -> check (InvokeRequest),
// check -> query (QueryRequest/QueryResponse), update dissemination
// (UpdateMsg), and revocation flush (RevokeNotify) — carry the chain's
// obs::TraceId so spans recorded at the receiving node land on the same
// trace. The field defaults to 0 ("untraced") and adds 8 bytes of wire size,
// the cost of making the propagation timeline observable end to end.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "acl/rights.hpp"
#include "acl/store.hpp"
#include "auth/credentials.hpp"
#include "net/message.hpp"
#include "obs/trace.hpp"
#include "proto/wire.hpp"
#include "shard/shard_map.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace wan::proto {

/// User -> application host: "Invoke(A)" carrying the application payload,
/// authenticated with the user's signature over payload+nonce.
struct InvokeRequest final : net::Message {
  AppId app{};
  UserId user{};
  std::uint64_t request_id = 0;
  std::uint64_t nonce = 0;
  auth::Signature signature{};
  std::string payload;
  obs::TraceId trace = 0;  ///< the agent's invoke chain

  InvokeRequest(AppId a, UserId u, std::uint64_t req, std::uint64_t n,
                auth::Signature sig, std::string body, obs::TraceId tr = 0)
      : app(a), user(u), request_id(req), nonce(n), signature(sig),
        payload(std::move(body)), trace(tr) {}

  WAN_MESSAGE_TYPE("InvokeRequest")
  std::size_t wire_size() const override { return 72 + payload.size(); }
};

/// Why an invocation was rejected (surfaced to the user agent and metrics).
enum class DenyReason : std::uint8_t {
  kNone,             ///< not denied
  kAuthentication,   ///< signature/replay failure
  kNotAuthorized,    ///< managers say the user lacks the "use" right
  kUnverifiable,     ///< could not assemble a check quorum within R attempts
  kUnknownApp,       ///< this host does not run the application
};

[[nodiscard]] const char* to_cstring(DenyReason r) noexcept;

/// Application host -> user.
struct InvokeReply final : net::Message {
  std::uint64_t request_id = 0;
  bool accepted = false;
  DenyReason reason = DenyReason::kNone;
  std::string result;

  InvokeReply(std::uint64_t req, bool ok, DenyReason why, std::string res)
      : request_id(req), accepted(ok), reason(why), result(std::move(res)) {}

  WAN_MESSAGE_TYPE("InvokeReply")
  std::size_t wire_size() const override { return 32 + result.size(); }
};

/// Application host -> manager: "does `user` hold rights on `app`?"
struct QueryRequest final : net::Message {
  AppId app{};
  UserId user{};
  std::uint64_t query_id = 0;  ///< identifies the host's check attempt
  obs::TraceId trace = 0;      ///< the host's check chain

  QueryRequest(AppId a, UserId u, std::uint64_t q, obs::TraceId tr = 0)
      : app(a), user(u), query_id(q), trace(tr) {}

  WAN_MESSAGE_TYPE("QueryRequest")
  std::size_t wire_size() const override { return 48; }
};

/// Manager -> application host. Carries the user's current rights, the
/// version they were last written at, and the local-clock expiration period
/// te the host must apply (extended protocol, Fig. 3).
struct QueryResponse final : net::Message {
  AppId app{};
  UserId user{};
  std::uint64_t query_id = 0;
  acl::RightSet rights;          ///< empty set == no rights / unknown user
  acl::Version version{};        ///< freshest version backing `rights`
  sim::Duration expiry_period{}; ///< te = Te / b
  obs::TraceId trace = 0;        ///< echoed from the QueryRequest

  QueryResponse(AppId a, UserId u, std::uint64_t q, acl::RightSet r,
                acl::Version v, sim::Duration te, obs::TraceId tr = 0)
      : app(a), user(u), query_id(q), rights(r), version(v), expiry_period(te),
        trace(tr) {}

  WAN_MESSAGE_TYPE("QueryResponse")
  std::size_t wire_size() const override { return 64; }
};

/// Manager -> application host: flush `user` from ACL_cache(app) (Fig. 2).
struct RevokeNotify final : net::Message {
  AppId app{};
  UserId user{};
  acl::Version version{};
  obs::TraceId trace = 0;  ///< the issuing manager's update chain

  RevokeNotify(AppId a, UserId u, acl::Version v, obs::TraceId tr = 0)
      : app(a), user(u), version(v), trace(tr) {}

  WAN_MESSAGE_TYPE("RevokeNotify")
  std::size_t wire_size() const override { return 48; }
};

/// Application host -> manager: stops the revoke retransmission loop.
struct RevokeNotifyAck final : net::Message {
  AppId app{};
  UserId user{};
  acl::Version version{};

  RevokeNotifyAck(AppId a, UserId u, acl::Version v) : app(a), user(u), version(v) {}

  WAN_MESSAGE_TYPE("RevokeNotifyAck")
  std::size_t wire_size() const override { return 40; }
};

/// Manager -> manager: persistent dissemination of one ACL update.
struct UpdateMsg final : net::Message {
  AppId app{};
  acl::AclUpdate update{};
  std::uint64_t txn_id = 0;
  obs::TraceId trace = 0;  ///< the issuing manager's update chain

  UpdateMsg(AppId a, acl::AclUpdate u, std::uint64_t t, obs::TraceId tr = 0)
      : app(a), update(u), txn_id(t), trace(tr) {}

  WAN_MESSAGE_TYPE("UpdateMsg")
  std::size_t wire_size() const override { return 64; }
};

/// Manager -> manager: acknowledges an UpdateMsg.
struct UpdateAck final : net::Message {
  AppId app{};
  std::uint64_t txn_id = 0;

  UpdateAck(AppId a, std::uint64_t t) : app(a), txn_id(t) {}

  WAN_MESSAGE_TYPE("UpdateAck")
  std::size_t wire_size() const override { return 24; }
};

/// Manager -> manager: version read for the pre-write quorum. Before issuing
/// an update, a manager reads the freshest version from a *check quorum* of
/// C managers (itself included): any C-subset intersects every completed
/// update's M-C+1 ack set, so the new update's version strictly dominates
/// everything already guaranteed — without this read, a revoke issued at a
/// version-lagging manager could lose the last-writer-wins race against an
/// older grant and never take effect, silently voiding the Te bound.
struct VersionQuery final : net::Message {
  AppId app{};
  std::uint64_t read_id = 0;

  VersionQuery(AppId a, std::uint64_t r) : app(a), read_id(r) {}

  WAN_MESSAGE_TYPE("VersionQuery")
  std::size_t wire_size() const override { return 24; }
};

/// Manager -> manager: the responder's freshest store version.
struct VersionReply final : net::Message {
  AppId app{};
  std::uint64_t read_id = 0;
  acl::Version max_version{};

  VersionReply(AppId a, std::uint64_t r, acl::Version v)
      : app(a), read_id(r), max_version(v) {}

  WAN_MESSAGE_TYPE("VersionReply")
  std::size_t wire_size() const override { return 32; }
};

/// Recovering manager -> peer: "send me your ACL for `app`" (§3.4).
struct SyncRequest final : net::Message {
  AppId app{};
  std::uint64_t sync_id = 0;

  SyncRequest(AppId a, std::uint64_t s) : app(a), sync_id(s) {}

  WAN_MESSAGE_TYPE("SyncRequest")
  std::size_t wire_size() const override { return 24; }
};

/// Peer -> recovering manager: full ACL snapshot.
struct SyncResponse final : net::Message {
  AppId app{};
  std::uint64_t sync_id = 0;
  std::vector<acl::AclUpdate> snapshot;

  SyncResponse(AppId a, std::uint64_t s, std::vector<acl::AclUpdate> snap)
      : app(a), sync_id(s), snapshot(std::move(snap)) {}

  WAN_MESSAGE_TYPE("SyncResponse")
  std::size_t wire_size() const override {
    return 24 + AclSlicePayload::estimate(snapshot.size());
  }
};

/// Recovered manager -> peers: its merged post-sync snapshot, pushed so that
/// updates stranded by an issuer crash (partially disseminated, issuer's
/// retransmission state lost) still reach every member. Pull-only §3.4
/// recovery cannot converge those; the push is the one extra message per peer
/// that can. Best-effort, unacknowledged — the next recovery pushes again.
struct SyncPush final : net::Message {
  AppId app{};
  std::vector<acl::AclUpdate> snapshot;

  SyncPush(AppId a, std::vector<acl::AclUpdate> snap)
      : app(a), snapshot(std::move(snap)) {}

  WAN_MESSAGE_TYPE("SyncPush")
  std::size_t wire_size() const override {
    return 16 + AclSlicePayload::estimate(snapshot.size());
  }
};

/// Manager <-> manager liveness probes for the freeze strategy (§3.3).
struct HeartbeatPing final : net::Message {
  AppId app{};
  std::uint64_t seq = 0;

  HeartbeatPing(AppId a, std::uint64_t s) : app(a), seq(s) {}

  WAN_MESSAGE_TYPE("HeartbeatPing")
  std::size_t wire_size() const override { return 24; }
  // A lost probe is indistinguishable from a silent peer, which is exactly
  // what the freeze strategy measures — retransmitting probes would mask it.
  bool reliable() const override { return false; }
};

struct HeartbeatPong final : net::Message {
  AppId app{};
  std::uint64_t seq = 0;

  HeartbeatPong(AppId a, std::uint64_t s) : app(a), seq(s) {}

  WAN_MESSAGE_TYPE("HeartbeatPong")
  std::size_t wire_size() const override { return 24; }
  bool reliable() const override { return false; }
};

// --- shard rebalancing (src/shard/shard_map.hpp) -----------------------------
//
// A rebalance moves shard ownership between manager groups in two phases:
// catch-up (the old owner streams its slice to every member of the new
// group, re-snapshotting until drained) and flip (the coordinator commits
// the new epoch everywhere at once). The four messages below carry both
// phases. Handoff chunks are AclUpdate snapshots — idempotent last-writer-
// wins merges, so redelivery, reordering, and whole-series resends are all
// harmless by construction.

/// Coordinator -> everyone: adopt this shard map. Receivers install it only
/// if `map.epoch()` exceeds their current epoch and the sender is a manager
/// they already trust; a replayed or stale announce is a no-op.
struct ShardMapAnnounce final : net::Message {
  AppId app{};
  shard::ShardMap map;

  ShardMapAnnounce(AppId a, shard::ShardMap m) : app(a), map(std::move(m)) {}

  WAN_MESSAGE_TYPE("ShardMapAnnounce")
  std::size_t wire_size() const override {
    std::size_t members = 0;
    for (const auto& g : map.groups()) members += g.size();
    return 44 + members * 8 + map.shard_count() * 4;
  }
};

/// Old owner -> each new-group member: a handoff series for one shard is
/// coming, `total` chunks long. `series` is a content hash of the snapshot;
/// the old owner re-snapshots every retransmit period, so a slice that
/// changed mid-handoff (a racing revoke) shows up as a fresh series and the
/// receiver simply keeps merging — completeness is judged per series.
struct ShardHandoffBegin final : net::Message {
  AppId app{};
  std::uint64_t epoch = 0;   ///< the PROPOSED map's epoch, not the current one
  std::uint32_t shard = 0;
  std::uint64_t series = 0;  ///< content hash of this snapshot of the slice
  std::uint32_t total = 0;   ///< chunk count of the series

  ShardHandoffBegin(AppId a, std::uint64_t e, std::uint32_t s,
                    std::uint64_t ser, std::uint32_t n)
      : app(a), epoch(e), shard(s), series(ser), total(n) {}

  WAN_MESSAGE_TYPE("ShardHandoffBegin")
  std::size_t wire_size() const override { return 40; }
};

/// One chunk of a handoff series. Chunks of a known series merge into the
/// receiver's staging store immediately (idempotent LWW); the series is
/// complete when all `total` seqs arrived.
struct ShardHandoffChunk final : net::Message {
  AppId app{};
  std::uint64_t epoch = 0;
  std::uint32_t shard = 0;
  std::uint64_t series = 0;
  std::uint32_t seq = 0;  ///< 0-based chunk index within the series
  std::vector<acl::AclUpdate> updates;

  ShardHandoffChunk(AppId a, std::uint64_t e, std::uint32_t s,
                    std::uint64_t ser, std::uint32_t q,
                    std::vector<acl::AclUpdate> u)
      : app(a), epoch(e), shard(s), series(ser), seq(q), updates(std::move(u)) {}

  WAN_MESSAGE_TYPE("ShardHandoffChunk")
  std::size_t wire_size() const override {
    return 48 + AclSlicePayload::estimate(updates.size());
  }
};

/// New-group member -> old owner: series received in full. The old owner is
/// drained for the shard once every destination member has acked a series
/// equal to the content hash of its CURRENT slice — only then may the
/// coordinator flip the epoch.
struct ShardHandoffDone final : net::Message {
  AppId app{};
  std::uint64_t epoch = 0;
  std::uint32_t shard = 0;
  std::uint64_t series = 0;

  ShardHandoffDone(AppId a, std::uint64_t e, std::uint32_t s, std::uint64_t ser)
      : app(a), epoch(e), shard(s), series(ser) {}

  WAN_MESSAGE_TYPE("ShardHandoffDone")
  std::size_t wire_size() const override { return 32; }
};

// --- collective revocation dissemination (src/proto/dissemination.hpp) -------
//
// The reference protocol unicasts one RevokeNotify per cached host per
// revoked right. The coalesced and tree strategies trade a small slice of
// the Te budget (a flush window) for fewer frames: many (user, version)
// rights ride one RevokeBatch per destination, and the tree strategy pushes
// whole batches through relay hosts that fan out locally and ack upward.
// All three strategies keep the manager's retransmit-until-Te loop — a
// relay or batch that goes unacked is simply resent (possibly through a
// different relay), so the paper's revocation bound is unchanged.

/// One revoked right inside a batch: flush `user`'s cache entry; deny-floor
/// evidence at `version` (only when the sender is an authenticated manager).
struct RevokeItem {
  UserId user{};
  acl::Version version{};
};

/// Manager (or relay) -> application host: flush every listed right from
/// ACL_cache(app). Semantically a vector of RevokeNotify in one frame.
struct RevokeBatch final : net::Message {
  AppId app{};
  std::uint64_t batch_id = 0;  ///< sender-local; echoed by the ack
  std::vector<RevokeItem> items;
  obs::TraceId trace = 0;  ///< the issuing manager's update chain

  RevokeBatch(AppId a, std::uint64_t b, std::vector<RevokeItem> it,
              obs::TraceId tr = 0)
      : app(a), batch_id(b), items(std::move(it)), trace(tr) {}

  WAN_MESSAGE_TYPE("RevokeBatch")
  std::size_t wire_size() const override { return 40 + items.size() * 16; }
};

/// Application host -> batch sender: the whole batch was applied. The sender
/// maps `batch_id` back to the (destination, rights) it packed into that
/// frame; an ack for a forgotten batch (sender restarted) is a no-op.
struct RevokeBatchAck final : net::Message {
  AppId app{};
  std::uint64_t batch_id = 0;

  RevokeBatchAck(AppId a, std::uint64_t b) : app(a), batch_id(b) {}

  WAN_MESSAGE_TYPE("RevokeBatchAck")
  std::size_t wire_size() const override { return 24; }
};

/// Manager -> relay host: apply `items` locally if you appear in `dests`,
/// then fan a relay-minted RevokeBatch out to every other destination and
/// report progress upward with incremental RelayAcks. The relay keeps no
/// durable state — a crashed or partitioned relay just stops acking and the
/// manager's retransmit loop re-routes the pending destinations through a
/// surviving relay (or directly, for singleton groups).
struct RelayForward final : net::Message {
  AppId app{};
  std::uint64_t batch_id = 0;  ///< manager-local; echoed by RelayAck
  std::vector<RevokeItem> items;
  std::vector<HostId> dests;  ///< leaf destinations (the relay may be one)
  obs::TraceId trace = 0;     ///< the issuing manager's update chain

  RelayForward(AppId a, std::uint64_t b, std::vector<RevokeItem> it,
               std::vector<HostId> d, obs::TraceId tr = 0)
      : app(a), batch_id(b), items(std::move(it)), dests(std::move(d)),
        trace(tr) {}

  WAN_MESSAGE_TYPE("RelayForward")
  std::size_t wire_size() const override {
    return 40 + items.size() * 16 + dests.size() * 8;
  }
};

/// Relay host -> manager: these destinations of `batch_id` have acked their
/// leaf batches (the relay lists itself once its own cache is flushed).
/// Incremental and idempotent — each ack carries the relay's cumulative set.
struct RelayAck final : net::Message {
  AppId app{};
  std::uint64_t batch_id = 0;
  std::vector<HostId> acked_dests;

  RelayAck(AppId a, std::uint64_t b, std::vector<HostId> d)
      : app(a), batch_id(b), acked_dests(std::move(d)) {}

  WAN_MESSAGE_TYPE("RelayAck")
  std::size_t wire_size() const override { return 24 + acked_dests.size() * 8; }
};

// --- delta ACL sync (recovery, §3.4) ----------------------------------------
//
// Full-snapshot sync re-sends the entire ACL on every recovery. With delta
// sync enabled (DisseminationOptions::delta_sync) each manager keeps a
// bounded apply log — the updates it applied, in apply order, stamped with a
// per-incarnation log_epoch and a monotonic apply_seq — and a recovering
// peer presents its last cursor to receive only the suffix it missed. A
// cursor from another incarnation (epoch mismatch) or below the log's
// compaction floor falls back to a full snapshot. Plain SyncRequest/
// SyncResponse remain the reference path and the cross-version fallback.

/// Recovering manager -> peer: "send me what I missed since (log_epoch,
/// cursor)". cursor == the next apply_seq the requester has NOT applied;
/// log_epoch == 0 means "no cursor for you, send everything".
struct DeltaSyncRequest final : net::Message {
  AppId app{};
  std::uint64_t sync_id = 0;
  std::uint64_t log_epoch = 0;  ///< responder incarnation the cursor is from
  std::uint64_t cursor = 0;     ///< first apply_seq the requester lacks

  DeltaSyncRequest(AppId a, std::uint64_t s, std::uint64_t e, std::uint64_t c)
      : app(a), sync_id(s), log_epoch(e), cursor(c) {}

  WAN_MESSAGE_TYPE("DeltaSyncRequest")
  std::size_t wire_size() const override { return 40; }
};

/// Peer -> recovering manager: the post-cursor suffix of the peer's apply
/// log (`full == false`), or a full snapshot when the cursor was unusable
/// (`full == true`). `log_epoch`/`next_seq` are the cursor to present next
/// time.
struct DeltaSyncResponse final : net::Message {
  AppId app{};
  std::uint64_t sync_id = 0;
  bool full = false;            ///< updates is a complete snapshot
  std::uint64_t log_epoch = 0;  ///< responder's current incarnation
  std::uint64_t next_seq = 0;   ///< resume cursor after applying `updates`
  std::vector<acl::AclUpdate> updates;

  DeltaSyncResponse(AppId a, std::uint64_t s, bool f, std::uint64_t e,
                    std::uint64_t n, std::vector<acl::AclUpdate> u)
      : app(a), sync_id(s), full(f), log_epoch(e), next_seq(n),
        updates(std::move(u)) {}

  WAN_MESSAGE_TYPE("DeltaSyncResponse")
  std::size_t wire_size() const override {
    return 48 + AclSlicePayload::estimate(updates.size());
  }
};

}  // namespace wan::proto
