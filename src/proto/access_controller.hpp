// Host-side access control — the paper's "Access Control" + "Access Control
// Management" components (Figure 1), implementing the extended protocol of
// Figure 3 plus the quorum extension of §3.3 and the high-availability rule
// of Figure 4.
//
// The paper's pseudo-code blocks inside `Invoke`; an event-driven simulator
// cannot block, so the query loop becomes an explicit CheckSession state
// machine: each *attempt* sends QueryRequests to managers, arms the Fig. 3
// timer, counts distinct responders toward the check quorum C, and either
// decides (freshest-version response wins) or retries with the next attempt
// until R attempts are exhausted.
//
// Concurrent invocations by the same (app, user) coalesce onto one session —
// an optimization the paper does not discuss but any implementation needs to
// avoid query storms; it is behaviour-preserving because all coalesced
// invocations would have received identical responses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "acl/cache.hpp"
#include "auth/authenticator.hpp"
#include "clock/local_clock.hpp"
#include "nameservice/name_service.hpp"
#include "proto/config.hpp"
#include "proto/decision.hpp"
#include "proto/messages.hpp"
#include "quorum/quorum.hpp"
#include "runtime/env.hpp"

namespace wan::proto {

/// Handles an authorized application message; the return value is sent back
/// to the user in the InvokeReply. This is the paper's "Application"
/// component: it never sees unauthorized traffic — the access-control wrapper
/// filters first, which is what lets existing applications be wrapped
/// transparently.
using AppHandler = std::function<std::string(UserId, const std::string& payload)>;

/// Completion callback for a programmatic access check.
using CheckCallback = std::function<void(const AccessDecision&)>;

class AccessController {
 public:
  AccessController(HostId self, runtime::Env& env, clk::LocalClock clock,
                   const ns::NameService& names, const auth::KeyRegistry& keys,
                   ProtocolConfig config);
  ~AccessController();
  AccessController(const AccessController&) = delete;
  AccessController& operator=(const AccessController&) = delete;

  /// Installs the application behind the access-control wrapper.
  void register_app(AppId app, AppHandler handler);

  /// Network receive entry point; wire this as the host's net handler.
  void on_message(HostId from, const net::MessagePtr& msg);

  /// Programmatic access check (used by benches and tests; skips user
  /// authentication, which the paper treats as an orthogonal oracle).
  /// `parent` links the check's trace to an enclosing causal chain (the
  /// invoke path passes the InvokeRequest's trace); 0 = standalone.
  /// `requested` backdates the decision's latency clock to when the work
  /// actually began (the invoke path passes its arrival time, so the
  /// wan_check_latency_seconds histogram includes authentication); unset =
  /// the check starts now.
  void check_access(AppId app, UserId user, CheckCallback done,
                    obs::TraceId parent = 0,
                    std::optional<sim::TimePoint> requested = std::nullopt);

  /// Observer for every decision this host makes (metrics hook).
  void set_decision_observer(std::function<void(const AccessDecision&)> obs) {
    observer_ = std::move(obs);
  }

  /// Crash: all volatile state (caches, sessions, replay floors) is lost.
  /// In-flight invocations die silently, like the host they ran on.
  void crash();

  /// Recovery re-initializes ACL_cache(A) to empty (§3.4) and resumes.
  void recover();

  [[nodiscard]] bool up() const noexcept { return up_; }
  [[nodiscard]] HostId id() const noexcept { return self_; }
  [[nodiscard]] const ProtocolConfig& config() const noexcept { return config_; }

  /// Cache under an app (nullptr if the app is not registered here).
  [[nodiscard]] const acl::AclCache* cache(AppId app) const;

  /// Writable cache handle, for fault injection by the chaos harness and its
  /// oracle self-tests (planting a deliberately broken entry proves the
  /// oracle detects it). Protocol code must never use this.
  [[nodiscard]] acl::AclCache* mutable_cache(AppId app);

  /// Byzantine-hardening counters (reply rejections, quarantines). Survives
  /// crash() — it is a metrics ledger, not protocol state.
  [[nodiscard]] const HardeningStats& hardening_stats() const noexcept {
    return hardening_;
  }

  /// Whether `manager` is currently benched by the self-inconsistency
  /// quarantine (test/diag hook).
  [[nodiscard]] bool manager_quarantined(HostId manager) const;

  /// Chaos/test hook: a Byzantine relay. While set, a RelayForward is acked
  /// upward as fully delivered WITHOUT forwarding or flushing anything — the
  /// worst lie a relay can tell. The dissemination Te bound must survive it:
  /// the manager believes the lie, but every leaf's cached entry still
  /// expires on its own local clock within te. Cleared by crash() (a
  /// reimaged host comes back honest).
  void debug_set_lying_relay(bool lying) noexcept { lying_relay_ = lying; }

  /// Relay duties currently held open for retransmitting managers
  /// (test/diag hook).
  [[nodiscard]] std::size_t relay_sessions() const noexcept {
    return relay_sessions_.size();
  }

  /// Installs (or replaces) the shard map this host routes `app`'s checks
  /// through; overrides whatever map the name service carries. The
  /// coordinator of a rebalance calls this at commit; over the wire the
  /// same installation happens via ShardMapAnnounce. Survives crash() like
  /// the name-service record it mirrors — a stale epoch only ever routes to
  /// the OLD owner group, which after commit refuses and times the check out
  /// into a deny (safe direction) until a fresher map arrives.
  void install_shard_map(AppId app, shard::ShardMap map);

  /// The installed shard-map override for `app`, or nullptr when none is
  /// installed (routing then falls back to the name-service record's map).
  [[nodiscard]] const shard::ShardMap* shard_map(AppId app) const;

  /// Local clock reading (the paper's Time()).
  [[nodiscard]] clk::LocalTime local_now() const {
    return clock_.local_now();
  }

 private:
  struct AppState {
    AppHandler handler;
    acl::AclCache cache;
  };

  struct CheckSession {
    AppId app{};
    UserId user{};
    sim::TimePoint started{};
    sim::TimePoint attempt_sent{};
    std::uint64_t query_id = 0;
    int attempts = 0;
    std::size_t rotate = 0;  ///< rotates the manager subset between attempts
    std::vector<HostId> managers;
    quorum::QuorumTracker responders;
    acl::RightSet best_rights;
    acl::Version best_version{};
    sim::Duration best_expiry{};
    bool any_reply = false;    ///< best_* fields hold a real response
    bool conflict = false;     ///< equal-version contradiction seen (liar present)
    obs::TraceId trace = 0;    ///< this check's causal chain
    std::vector<CheckCallback> waiters;
    runtime::Timer timer;

    CheckSession(int needed, runtime::Env& env)
        : responders(needed), timer(env.make_timer()) {}
  };
  using SessionKey = std::uint64_t;  ///< (app,user) packed

  static SessionKey session_key(AppId app, UserId user) noexcept {
    return (static_cast<std::uint64_t>(app.value()) << 32) | user.value();
  }

  void handle_invoke(HostId from, const InvokeRequest& req);
  void handle_query_response(HostId from, const QueryResponse& resp);
  void handle_revoke(HostId from, const RevokeNotify& msg);
  void handle_revoke_batch(HostId from, const RevokeBatch& msg);
  void handle_relay_forward(HostId from, const RelayForward& msg);
  void handle_leaf_ack(HostId from, const RevokeBatchAck& msg);
  void handle_shard_map(HostId from, const ShardMapAnnounce& msg);
  /// Whether `from` is a manager of `app` (name-service record or installed
  /// shard map) — the trust gate every revocation message goes through.
  [[nodiscard]] bool sender_is_manager(AppId app, HostId from);
  /// One right's local revocation treatment: flush the cache entry, record
  /// the flush span/counter on `trace`, and — only when the sender was an
  /// authenticated manager — raise the deny floor. Relay-delivered copies
  /// are NOT floor evidence: any host can claim to relay, and a spoofed
  /// frame must cost at most one re-check, never a sticky deny.
  void flush_right(AppId app, UserId user, acl::Version version,
                   obs::TraceId trace, bool authoritative);
  /// Periodic housekeeping: cache sweep + relay-session purge.
  void sweep_tick();

  void start_session(AppId app, UserId user, CheckCallback done,
                     obs::TraceId parent, sim::TimePoint requested);
  void begin_attempt(CheckSession& s);
  void on_attempt_timeout(SessionKey key);
  void finish_session(SessionKey key, bool allowed, DecisionPath path,
                      DenyReason reason);
  void emit(const AccessDecision& d);

  AppState* app_state(AppId app);

  // --- Byzantine hardening (tentpole PR: lying managers) -------------------
  // The wire format is unchanged; all defenses are local bookkeeping:
  //  * deny_floor_ remembers the highest version at which this host saw
  //    authoritative deny evidence (a clean quorum deny, or a RevokeNotify);
  //    any later grant claim at or below that version contradicts an update
  //    the host already knows completed, and is downgraded to a deny vote at
  //    the floor version (still counted toward the quorum, never an allow).
  //  * profiles_ remembers each manager's own last (version, use-bit) report
  //    per user; a rights flip at the same version is self-inconsistent —
  //    only a liar does that (honest reorderings and crash recoveries can
  //    regress versions, but never flip the bit a version carries) — and
  //    benches the manager for a backoff window (skipped in fanout, replies
  //    ignored).
  //  * equal-version contradictions BETWEEN managers can't identify the liar,
  //    so the session takes the deny side and flags the decision.

  struct ManagerReport {
    acl::Version version{};
    bool claims_use = false;
  };
  struct ManagerProfile {
    std::unordered_map<std::uint64_t, ManagerReport> reported;  ///< by user key
    clk::LocalTime quarantined_until{};
    std::uint32_t offenses = 0;
  };

  static std::uint64_t user_key(AppId app, UserId user) noexcept {
    return (static_cast<std::uint64_t>(app.value()) << 32) | user.value();
  }
  [[nodiscard]] bool quarantined(HostId manager, clk::LocalTime now) const;
  void quarantine(HostId manager, clk::LocalTime now);
  /// Returns false if the reply must be ignored (quarantined sender, stale
  /// grant under the deny floor, or a self-inconsistent report).
  bool admit_reply(HostId from, const QueryResponse& resp);

  HostId self_;
  runtime::Env& env_;
  runtime::Transport& net_;
  runtime::Clock clock_;
  ns::ManagerResolver resolver_;
  auth::Authenticator authenticator_;
  ProtocolConfig config_;
  bool up_ = true;

  std::map<AppId, AppState> apps_;
  /// Installed shard-map overrides by app (empty when routing flat). Kept
  /// across crash(): distribution state, not protocol state — see
  /// install_shard_map.
  std::map<AppId, shard::ShardMap> shard_maps_;
  std::unordered_map<SessionKey, std::unique_ptr<CheckSession>> sessions_;
  std::unordered_map<std::uint64_t, SessionKey> query_to_session_;
  std::unordered_map<HostId, ManagerProfile> profiles_;
  std::unordered_map<std::uint64_t, acl::Version> deny_floor_;  ///< by user key

  /// One relay duty under tree dissemination: the manager's (sender,
  /// batch_id) on one side, this host's own leaf batch id on the other.
  /// The relay keeps NO timer — the manager's RelayForward retransmissions
  /// drive every resend, so a crashed relay simply stops mattering. The
  /// acked set makes the upward RelayAck cumulative (idempotent under
  /// duplication and loss); `touched` feeds the sweep purge, which retires
  /// sessions the manager has clearly abandoned (older than Te).
  struct RelaySession {
    AppId app{};
    std::uint64_t leaf_batch_id = 0;  ///< id on the frames this relay sends
    std::vector<RevokeItem> items;    ///< latest frame's payload
    std::set<HostId> pending;         ///< leaves not yet acked
    std::set<HostId> acked;           ///< cumulative RelayAck payload
    obs::TraceId trace = 0;
    sim::TimePoint touched{};
  };
  /// Sessions keyed by (manager, manager's batch id).
  std::map<std::pair<HostId, std::uint64_t>, RelaySession> relay_sessions_;
  /// Reverse index: this relay's leaf batch id -> owning session key.
  std::map<std::uint64_t, std::pair<HostId, std::uint64_t>> relay_leaf_index_;
  std::uint64_t next_leaf_batch_id_ = 1;
  bool lying_relay_ = false;  ///< chaos hook, see debug_set_lying_relay()

  HardeningStats hardening_;
  std::uint64_t next_query_id_ = 1;
  // Minted unconditionally (a plain increment) so the ids riding in messages
  // do not depend on whether a tracer happens to be installed — traced and
  // untraced runs of the same seed stay bit-identical.
  std::uint32_t next_trace_seq_ = 1;
  runtime::PeriodicTimer sweep_timer_;
  std::function<void(const AccessDecision&)> observer_;
};

}  // namespace wan::proto
