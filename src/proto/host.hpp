// Host compositions: wire a protocol module to the transport and the host
// lifecycle. These are the deployable units of Figure 1 — an application host
// (Access Control + Access Control Management + Applications) and a manager
// host (Manager + its authoritative ACL state).
//
// Crashing a host both silences its transport endpoint and destroys the
// module's volatile state; recovery brings the endpoint back and runs the
// module's §3.4 recovery procedure.
#pragma once

#include <memory>

#include "clock/local_clock.hpp"
#include "proto/access_controller.hpp"
#include "proto/manager.hpp"
#include "runtime/env.hpp"

namespace wan::proto {

/// An application host: runs applications behind the access-control wrapper.
class AppHost {
 public:
  AppHost(HostId id, runtime::Env& env, clk::LocalClock clock,
          const ns::NameService& names, const auth::KeyRegistry& keys,
          ProtocolConfig config)
      : id_(id),
        transport_(env.transport()),
        controller_(id, env, clock, names, keys, config) {
    transport_.register_endpoint(
        id, [this](HostId from, const net::MessagePtr& msg) {
          controller_.on_message(from, msg);
        });
  }

  void crash() {
    transport_.set_endpoint_down(id_, true);
    controller_.crash();
  }
  void recover() {
    transport_.set_endpoint_down(id_, false);
    controller_.recover();
  }
  [[nodiscard]] bool up() const noexcept { return controller_.up(); }

  [[nodiscard]] HostId id() const noexcept { return id_; }
  [[nodiscard]] AccessController& controller() noexcept { return controller_; }
  [[nodiscard]] const AccessController& controller() const noexcept {
    return controller_;
  }

 private:
  HostId id_;
  runtime::Transport& transport_;
  AccessController controller_;
};

/// A manager host.
class ManagerHost {
 public:
  ManagerHost(HostId id, runtime::Env& env, clk::LocalClock clock,
              ProtocolConfig config)
      : id_(id), transport_(env.transport()), manager_(id, env, clock, config) {
    transport_.register_endpoint(
        id, [this](HostId from, const net::MessagePtr& msg) {
          manager_.on_message(from, msg);
        });
  }

  void crash() {
    transport_.set_endpoint_down(id_, true);
    manager_.crash();
  }
  void recover() {
    transport_.set_endpoint_down(id_, false);
    manager_.recover();
  }
  [[nodiscard]] bool up() const noexcept { return manager_.up(); }

  [[nodiscard]] HostId id() const noexcept { return id_; }
  [[nodiscard]] ManagerModule& manager() noexcept { return manager_; }
  [[nodiscard]] const ManagerModule& manager() const noexcept { return manager_; }

 private:
  HostId id_;
  runtime::Transport& transport_;
  ManagerModule manager_;
};

}  // namespace wan::proto
