// Host compositions: wire a protocol module to the network and the host
// lifecycle. These are the deployable units of Figure 1 — an application host
// (Access Control + Access Control Management + Applications) and a manager
// host (Manager + its authoritative ACL state).
//
// Crashing a host both silences its network endpoint and destroys the
// module's volatile state; recovery brings the endpoint back and runs the
// module's §3.4 recovery procedure.
#pragma once

#include <memory>

#include "clock/local_clock.hpp"
#include "proto/access_controller.hpp"
#include "proto/manager.hpp"
#include "sim/lifecycle.hpp"

namespace wan::proto {

/// An application host: runs applications behind the access-control wrapper.
class AppHost {
 public:
  AppHost(HostId id, sim::Scheduler& sched, net::Network& net,
          clk::LocalClock clock, const ns::NameService& names,
          const auth::KeyRegistry& keys, ProtocolConfig config)
      : id_(id),
        net_(net),
        controller_(id, sched, net, clock, names, keys, config) {
    net.register_host(id, [this](HostId from, const net::MessagePtr& msg) {
      controller_.on_message(from, msg);
    });
  }

  void crash() {
    net_.set_host_down(id_, true);
    controller_.crash();
  }
  void recover() {
    net_.set_host_down(id_, false);
    controller_.recover();
  }
  [[nodiscard]] bool up() const noexcept { return controller_.up(); }

  [[nodiscard]] HostId id() const noexcept { return id_; }
  [[nodiscard]] AccessController& controller() noexcept { return controller_; }
  [[nodiscard]] const AccessController& controller() const noexcept {
    return controller_;
  }

 private:
  HostId id_;
  net::Network& net_;
  AccessController controller_;
};

/// A manager host.
class ManagerHost {
 public:
  ManagerHost(HostId id, sim::Scheduler& sched, net::Network& net,
              clk::LocalClock clock, ProtocolConfig config)
      : id_(id), net_(net), manager_(id, sched, net, clock, config) {
    net.register_host(id, [this](HostId from, const net::MessagePtr& msg) {
      manager_.on_message(from, msg);
    });
  }

  void crash() {
    net_.set_host_down(id_, true);
    manager_.crash();
  }
  void recover() {
    net_.set_host_down(id_, false);
    manager_.recover();
  }
  [[nodiscard]] bool up() const noexcept { return manager_.up(); }

  [[nodiscard]] HostId id() const noexcept { return id_; }
  [[nodiscard]] ManagerModule& manager() noexcept { return manager_; }
  [[nodiscard]] const ManagerModule& manager() const noexcept { return manager_; }

 private:
  HostId id_;
  net::Network& net_;
  ManagerModule manager_;
};

}  // namespace wan::proto
