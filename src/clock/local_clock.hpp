// Drifting local clocks.
//
// Partitions make clock synchronization impossible, so the paper's time-bound
// revocation relies only on a bounded clock *rate*: "every local clock is at
// most b times slower than real time" (b >= 1, close to 1 in practice).
// If a manager wants revocations effective within Te real time, it hands out
// cache entries that expire after te = Te / b units of the *host's local
// clock*: even the slowest admissible clock measures te local units within
// b * te = Te real time.
//
// LocalTime is a distinct strong type from sim::TimePoint precisely so that
// protocol code cannot compare a local timestamp against real time — the
// paper's correctness argument lives in that distinction.
#pragma once

#include <compare>
#include <cstdint>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace wan::clk {

/// An instant on one host's local clock (nanosecond resolution). Values from
/// different hosts' clocks are not comparable in any meaningful way; the type
/// system cannot express that, but the protocol never ships LocalTime values
/// across the network — only *durations* (expiration periods) travel.
class LocalTime {
 public:
  constexpr LocalTime() noexcept = default;
  static constexpr LocalTime from_nanos(std::int64_t ns) noexcept { return LocalTime(ns); }

  [[nodiscard]] constexpr std::int64_t nanos() const noexcept { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const noexcept { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr auto operator<=>(LocalTime, LocalTime) noexcept = default;
  friend constexpr LocalTime operator+(LocalTime t, sim::Duration d) noexcept {
    return LocalTime(t.ns_ + d.count_nanos());
  }
  friend constexpr LocalTime operator-(LocalTime t, sim::Duration d) noexcept {
    return LocalTime(t.ns_ - d.count_nanos());
  }
  friend constexpr sim::Duration operator-(LocalTime a, LocalTime b) noexcept {
    return sim::Duration::nanos(a.ns_ - b.ns_);
  }

 private:
  constexpr explicit LocalTime(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// A local clock with constant rate `rate` = d(local)/d(real) and arbitrary
/// initial offset. The paper's model admits rates in [1/b, 1]; we additionally
/// allow slightly fast clocks (rate > 1), which only expire entries *early*
/// and therefore never violate the security bound.
class LocalClock {
 public:
  /// The paper's Time() function: local time at real instant `real_now`.
  [[nodiscard]] LocalTime now(sim::TimePoint real_now) const noexcept {
    const double real = static_cast<double>(real_now.nanos_since_origin());
    const auto local = static_cast<std::int64_t>(real * rate_) + offset_ns_;
    return LocalTime::from_nanos(local);
  }

  /// Real time required for this clock to measure `local_units`.
  [[nodiscard]] sim::Duration real_for_local(sim::Duration local_units) const noexcept {
    return sim::Duration::from_seconds(local_units.to_seconds() / rate_);
  }

  [[nodiscard]] double rate() const noexcept { return rate_; }

  /// A perfect clock (rate 1, offset 0).
  static LocalClock perfect() noexcept { return LocalClock(1.0, 0); }

  /// A clock with explicit rate and offset; rate must be positive.
  static LocalClock with_rate(double rate, std::int64_t offset_ns = 0) noexcept {
    WAN_REQUIRE(rate > 0.0);
    return LocalClock(rate, offset_ns);
  }

  /// Samples a random admissible clock for bound `b` (>= 1): the rate is
  /// uniform in [1/b, max_fast_rate] and the offset uniform in +-1 hour.
  static LocalClock sample(Rng& rng, double b, double max_fast_rate = 1.001);

 private:
  LocalClock(double rate, std::int64_t offset_ns) noexcept
      : rate_(rate), offset_ns_(offset_ns) {}

  double rate_ = 1.0;
  std::int64_t offset_ns_ = 0;
};

/// Computes the local expiration period te = Te / b that a manager attaches
/// to access-control information (paper §3.2). b must be >= 1.
[[nodiscard]] sim::Duration local_expiry_period(sim::Duration Te, double b) noexcept;

}  // namespace wan::clk
