#include "clock/local_clock.hpp"

namespace wan::clk {

LocalClock LocalClock::sample(Rng& rng, double b, double max_fast_rate) {
  WAN_REQUIRE(b >= 1.0);
  WAN_REQUIRE(max_fast_rate >= 1.0 / b);
  const double rate = rng.next_uniform(1.0 / b, max_fast_rate);
  const std::int64_t hour_ns = 3'600'000'000'000LL;
  const std::int64_t offset = rng.next_in_range(-hour_ns, hour_ns);
  return LocalClock(rate, offset);
}

sim::Duration local_expiry_period(sim::Duration Te, double b) noexcept {
  WAN_REQUIRE(b >= 1.0);
  WAN_REQUIRE(Te > sim::Duration{});
  return sim::Duration::from_seconds(Te.to_seconds() / b);
}

}  // namespace wan::clk
