#include "metrics/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace wan::metrics {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

std::size_t Histogram::bucket_for(double seconds) const noexcept {
  if (seconds <= kBase) return 0;
  const auto idx = static_cast<std::size_t>(
      std::ceil(std::log(seconds / kBase) / std::log(kGrowth)));
  return std::min(idx, kBuckets - 1);
}

double Histogram::bucket_upper(std::size_t idx) const noexcept {
  return kBase * std::pow(kGrowth, static_cast<double>(idx));
}

void Histogram::record_seconds(double seconds) {
  seconds = std::max(seconds, 0.0);
  ++buckets_[bucket_for(seconds)];
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
}

double Histogram::mean_seconds() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile_seconds(double q) const {
  WAN_REQUIRE(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

}  // namespace wan::metrics
