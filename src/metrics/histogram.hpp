// Log-linear latency histogram.
//
// Buckets grow geometrically from 1 microsecond, giving ~5% relative error
// over the nanosecond-to-hours range the experiments span, with O(1) record
// and O(buckets) percentile queries. Used for access-check delays, end-to-end
// invoke latencies, and revocation-effect times.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace wan::metrics {

class Histogram {
 public:
  Histogram();

  void record(sim::Duration d) { record_seconds(d.to_seconds()); }
  void record_seconds(double seconds);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean_seconds() const noexcept;
  [[nodiscard]] double min_seconds() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max_seconds() const noexcept { return count_ ? max_ : 0.0; }

  /// Value at quantile q in [0,1]; returns an upper bucket bound, so p100
  /// may slightly exceed max(). Returns 0 when empty.
  [[nodiscard]] double quantile_seconds(double q) const;

  void merge(const Histogram& other);
  void reset();

 private:
  [[nodiscard]] std::size_t bucket_for(double seconds) const noexcept;
  [[nodiscard]] double bucket_upper(std::size_t idx) const noexcept;

  static constexpr double kBase = 1e-6;   ///< first bucket upper bound: 1us
  static constexpr double kGrowth = 1.1;  ///< geometric bucket growth
  static constexpr std::size_t kBuckets = 400;  ///< covers ~ 1us .. >1e10 s

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wan::metrics
