// Ground-truth rights timeline for violation accounting.
//
// The workload driver records every manager operation's *quorum instant* —
// the paper's guarantee point ("the time when an update quorum is obtained is
// the first point at which a guarantee can be made"). Against that timeline,
// each observed access decision is classified:
//
//   allowed + authorized            -> correct (availability success)
//   denied  + authorized            -> AVAILABILITY VIOLATION
//   allowed + unauthorized for the  -> SECURITY VIOLATION: the paper promises
//            entire trailing Te        no access later than Te after a
//            window                     revoke's quorum instant
//   allowed + unauthorized, but     -> within the Te grace the protocol
//            authorized at some       explicitly permits; counted separately
//            point in (t-Te, t]
//   denied  + unauthorized          -> correct (security success)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "acl/rights.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace wan::metrics {

/// Authoritative record of grant/revoke quorum instants per (app, user).
class GroundTruth {
 public:
  /// Records that an update reached its quorum at `quorum_at`.
  void record(AppId app, UserId user, acl::Right right, bool granted,
              sim::TimePoint quorum_at);

  /// Was the user authorized (per completed updates) at instant `t`?
  [[nodiscard]] bool authorized(AppId app, UserId user, acl::Right right,
                                sim::TimePoint t) const;

  /// Was the user authorized at *any* instant in [from, to]?
  [[nodiscard]] bool authorized_in_window(AppId app, UserId user,
                                          acl::Right right, sim::TimePoint from,
                                          sim::TimePoint to) const;

  /// Quorum instant of the revoke that began the current unauthorized
  /// stretch containing `t` (nullopt if authorized at `t` or never granted).
  [[nodiscard]] std::optional<sim::TimePoint> unauthorized_since(
      AppId app, UserId user, acl::Right right, sim::TimePoint t) const;

  [[nodiscard]] std::size_t tracked_registers() const noexcept {
    return timelines_.size();
  }

 private:
  struct Key {
    std::uint64_t packed;
    auto operator<=>(const Key&) const = default;
  };
  static Key key(AppId app, UserId user, acl::Right right) noexcept {
    return Key{(static_cast<std::uint64_t>(app.value()) << 33) |
               (static_cast<std::uint64_t>(user.value()) << 1) |
               (right == acl::Right::kManage ? 1u : 0u)};
  }

  struct Event {
    sim::TimePoint at{};
    bool granted = false;
  };

  // Events are appended in quorum-time order by construction (the driver
  // records them as they complete); lookups binary-search.
  std::map<Key, std::vector<Event>> timelines_;
};

}  // namespace wan::metrics
