#include "metrics/ground_truth.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wan::metrics {

void GroundTruth::record(AppId app, UserId user, acl::Right right, bool granted,
                         sim::TimePoint quorum_at) {
  auto& events = timelines_[key(app, user, right)];
  WAN_REQUIRE(events.empty() || events.back().at <= quorum_at);
  events.push_back(Event{quorum_at, granted});
}

bool GroundTruth::authorized(AppId app, UserId user, acl::Right right,
                             sim::TimePoint t) const {
  const auto it = timelines_.find(key(app, user, right));
  if (it == timelines_.end()) return false;
  const auto& events = it->second;
  const auto pos = std::upper_bound(
      events.begin(), events.end(), t,
      [](sim::TimePoint v, const Event& e) { return v < e.at; });
  if (pos == events.begin()) return false;
  return std::prev(pos)->granted;
}

bool GroundTruth::authorized_in_window(AppId app, UserId user, acl::Right right,
                                       sim::TimePoint from,
                                       sim::TimePoint to) const {
  const auto it = timelines_.find(key(app, user, right));
  if (it == timelines_.end()) return false;
  const auto& events = it->second;
  if (authorized(app, user, right, from)) return true;
  // Any grant event inside (from, to] makes the window authorized.
  auto pos = std::upper_bound(
      events.begin(), events.end(), from,
      [](sim::TimePoint v, const Event& e) { return v < e.at; });
  for (; pos != events.end() && pos->at <= to; ++pos) {
    if (pos->granted) return true;
  }
  return false;
}

std::optional<sim::TimePoint> GroundTruth::unauthorized_since(
    AppId app, UserId user, acl::Right right, sim::TimePoint t) const {
  const auto it = timelines_.find(key(app, user, right));
  if (it == timelines_.end()) return std::nullopt;
  const auto& events = it->second;
  auto pos = std::upper_bound(
      events.begin(), events.end(), t,
      [](sim::TimePoint v, const Event& e) { return v < e.at; });
  if (pos == events.begin()) return std::nullopt;  // never granted before t
  auto last = std::prev(pos);
  if (last->granted) return std::nullopt;  // authorized at t
  // Walk back to the first revoke of this unauthorized stretch.
  while (last != events.begin() && !std::prev(last)->granted) --last;
  return last->at;
}

}  // namespace wan::metrics
