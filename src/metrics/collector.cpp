#include "metrics/collector.hpp"

namespace wan::metrics {

const char* to_cstring(DecisionClass c) noexcept {
  switch (c) {
    case DecisionClass::kLegitAllowed: return "legit-allowed";
    case DecisionClass::kLegitDenied: return "legit-denied";
    case DecisionClass::kUnauthDenied: return "unauth-denied";
    case DecisionClass::kUnauthAllowedGrace: return "unauth-allowed-grace";
    case DecisionClass::kSecurityViolation: return "SECURITY-VIOLATION";
  }
  return "?";
}

DecisionClass Collector::observe(const proto::AccessDecision& d) {
  ++report_.total;
  latency_by_path_[d.path].record(d.latency());
  ++count_by_path_[d.path];
  all_latency_.record(d.latency());

  // Authorization is judged at the instant the decision was *requested*: a
  // user legitimately authorized when they asked should not count against
  // availability merely because a revoke landed mid-check.
  const bool auth_now =
      truth_->authorized(d.app, d.user, acl::Right::kUse, d.requested);

  DecisionClass cls;
  if (d.allowed) {
    if (auth_now) {
      cls = DecisionClass::kLegitAllowed;
    } else if (truth_->authorized_in_window(d.app, d.user, acl::Right::kUse,
                                            d.decided - te_, d.decided)) {
      // The paper allows a revoked user through until Te after the revoke's
      // quorum instant; "authorized at some point within the trailing Te
      // window" is exactly that allowance.
      cls = DecisionClass::kUnauthAllowedGrace;
    } else {
      cls = DecisionClass::kSecurityViolation;
    }
  } else {
    cls = auth_now ? DecisionClass::kLegitDenied : DecisionClass::kUnauthDenied;
  }

  switch (cls) {
    case DecisionClass::kLegitAllowed: ++report_.legit_allowed; break;
    case DecisionClass::kLegitDenied: ++report_.legit_denied; break;
    case DecisionClass::kUnauthDenied: ++report_.unauth_denied; break;
    case DecisionClass::kUnauthAllowedGrace: ++report_.unauth_allowed_grace; break;
    case DecisionClass::kSecurityViolation: ++report_.security_violations; break;
  }
  return cls;
}

const Histogram& Collector::latency(proto::DecisionPath path) const {
  static const Histogram kEmpty;
  const auto it = latency_by_path_.find(path);
  return it == latency_by_path_.end() ? kEmpty : it->second;
}

std::uint64_t Collector::path_count(proto::DecisionPath path) const {
  const auto it = count_by_path_.find(path);
  return it == count_by_path_.end() ? 0 : it->second;
}

void Collector::reset() {
  report_ = CollectorReport{};
  latency_by_path_.clear();
  count_by_path_.clear();
  all_latency_.reset();
}

}  // namespace wan::metrics
