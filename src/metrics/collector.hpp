// Decision classifier and experiment-level metric aggregation.
//
// Consumes AccessDecision records (from AccessController observers) and the
// GroundTruth timeline, producing the empirical counterparts of the paper's
// PA (availability) and PS (security) probabilities plus latency and message
// overhead summaries. One Collector per experiment run.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "metrics/ground_truth.hpp"
#include "metrics/histogram.hpp"
#include "proto/decision.hpp"
#include "sim/time.hpp"

namespace wan::metrics {

/// Classification of a single decision against ground truth.
enum class DecisionClass : std::uint8_t {
  kLegitAllowed,     ///< authorized user allowed — availability success
  kLegitDenied,      ///< authorized user denied — AVAILABILITY VIOLATION
  kUnauthDenied,     ///< unauthorized user denied — security success
  kUnauthAllowedGrace,  ///< unauthorized allowed within the Te grace window
  kSecurityViolation,   ///< unauthorized allowed beyond Te — FORBIDDEN
};

[[nodiscard]] const char* to_cstring(DecisionClass c) noexcept;

struct CollectorReport {
  std::uint64_t total = 0;
  std::uint64_t legit_allowed = 0;
  std::uint64_t legit_denied = 0;
  std::uint64_t unauth_denied = 0;
  std::uint64_t unauth_allowed_grace = 0;
  std::uint64_t security_violations = 0;

  /// Empirical availability: fraction of authorized accesses that succeeded.
  [[nodiscard]] double availability() const noexcept {
    const auto legit = legit_allowed + legit_denied;
    return legit == 0 ? 1.0
                      : static_cast<double>(legit_allowed) /
                            static_cast<double>(legit);
  }
  /// Empirical security: fraction of unauthorized accesses (outside the Te
  /// grace) that were denied.
  [[nodiscard]] double security() const noexcept {
    const auto bad = unauth_denied + security_violations;
    return bad == 0 ? 1.0
                    : static_cast<double>(unauth_denied) /
                          static_cast<double>(bad);
  }
};

class Collector {
 public:
  /// `Te` is the application's revocation bound — the grace window for
  /// unauthorized-but-allowed accesses. The GroundTruth must outlive the
  /// collector.
  Collector(const GroundTruth& truth, sim::Duration Te)
      : truth_(&truth), te_(Te) {}

  /// Classifies and accumulates one decision (wire into the controller's
  /// decision observer).
  DecisionClass observe(const proto::AccessDecision& d);

  [[nodiscard]] const CollectorReport& report() const noexcept { return report_; }

  /// Latency distribution per decision path.
  [[nodiscard]] const Histogram& latency(proto::DecisionPath path) const;
  [[nodiscard]] const Histogram& all_latency() const noexcept { return all_latency_; }

  /// Count of decisions per path.
  [[nodiscard]] std::uint64_t path_count(proto::DecisionPath path) const;

  void reset();

 private:
  const GroundTruth* truth_;
  sim::Duration te_;
  CollectorReport report_;
  std::map<proto::DecisionPath, Histogram> latency_by_path_;
  std::map<proto::DecisionPath, std::uint64_t> count_by_path_;
  Histogram all_latency_;
};

}  // namespace wan::metrics
