// EnvOptions: the one configuration surface shared by every runtime backend.
//
// Before this header each backend grew its own config struct (the simulator
// took a net::Network::Config, the loopback fabric a LoopbackFabric::Config,
// and the socket transport would have added a third). Tools that let the
// user pick a backend at the command line had to translate flags three ways.
// Now they fill one EnvOptions and hand it to whichever backend runs:
//
//   * SimEnv        — to_network_config(opts) builds the simulated network
//     (delay/jitter/loss/seed); listen/topology are ignored.
//   * LoopbackFabric — delay/jitter/loss/seed shape the in-process fabric;
//     listen/topology are ignored.
//   * UdpTransport  — listen/topology_path/send_queue_limit wire the socket;
//     delay/jitter/loss are ignored (a real network provides its own).
//
// Fields a backend ignores are deliberately not an error: the whole point is
// that one struct travels from flag parsing to whichever backend the run
// selects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "shard/shard_map.hpp"
#include "sim/time.hpp"

namespace wan::runtime {

/// Which runtime backend a run constructs. kSim is the discrete-event
/// simulator (an Env, not a Fabric); the other three are real-thread fabrics
/// built by make_fabric() (runtime/backend.hpp).
enum class BackendKind : std::uint8_t {
  kSim,       ///< SimEnv: virtual time, single thread
  kLoopback,  ///< LoopbackFabric: real threads, in-process delivery
  kUdp,       ///< UdpTransport: real sockets, thread-per-direction
  kReactor,   ///< ReactorTransport: real sockets, epoll + batched syscalls
};

/// "sim" / "loopback" / "udp" / "reactor" <-> BackendKind (for flags).
[[nodiscard]] const char* to_cstring(BackendKind kind) noexcept;
[[nodiscard]] bool parse_backend(const std::string& text, BackendKind* out);

/// Knobs of the socket backends' reliability layer (ack/retransmit/dedup;
/// runtime/reliable_channel.hpp). Off by default: the raw fabrics keep plain
/// UDP semantics unless a deployment opts in, and transport tests that pin
/// duplicate-delivery behavior run against the raw path.
struct ReliabilityOptions {
  bool enabled = false;
  /// First retransmit fires this long after the original send...
  sim::Duration initial_rto = sim::Duration::millis(50);
  /// ...then backs off exponentially (rto *= backoff) up to this ceiling...
  sim::Duration max_rto = sim::Duration::millis(1000);
  double backoff = 2.0;
  /// ...with each interval jittered by a uniform +/- fraction so synchronized
  /// retransmit storms decorrelate.
  double jitter = 0.1;
  /// Transmissions per message including the first; when exhausted the
  /// message is abandoned and the peer_unreachable upcall fires.
  int retry_budget = 10;
  /// Receive-side dedup remembers out-of-order seqs this far above the
  /// cumulative watermark; frames beyond it are dropped (seq_out_of_window)
  /// until retransmits fill the gap.
  std::size_t recv_window = 1024;
  /// Seed of the jitter stream (deterministic tests pin it).
  std::uint64_t jitter_seed = 1;
};

/// How a manager fans revocation notices out to the hosts caching a right
/// (src/proto/dissemination.hpp). Backend-agnostic: the strategy shapes the
/// messages a manager sends, not how any fabric moves them.
enum class DisseminationKind : std::uint8_t {
  kUnicast,    ///< one RevokeNotify per cached host per right (the reference)
  kCoalesced,  ///< one RevokeBatch per destination carrying many rights
  kTree,       ///< fan out through relay hosts via RelayForward envelopes
};

/// "unicast" / "coalesced" / "tree" <-> DisseminationKind (for flags).
[[nodiscard]] const char* to_cstring(DisseminationKind kind) noexcept;
[[nodiscard]] bool parse_dissemination(const std::string& text,
                                       DisseminationKind* out);

/// Knobs of the revocation-dissemination strategy. Defaults reproduce the
/// paper's unicast loop exactly, so existing deployments and pinned chaos
/// seeds are untouched unless a run opts in.
struct DisseminationOptions {
  DisseminationKind kind = DisseminationKind::kUnicast;
  /// Coalesced/tree: a destination's buffered batch is flushed once it holds
  /// this many (user, version) rights even if the flush timer has not fired.
  std::size_t batch_max_rights = 64;
  /// Coalesced/tree: how long a freshly revoked right may sit buffered
  /// waiting for more rights to share its frame. Small by construction —
  /// it spends a slice of the Te budget to save frames.
  sim::Duration flush_interval = sim::Duration::millis(20);
  /// Tree: destinations per relay group; each group's first member acts as
  /// the relay for the rest. 0 or 1 degenerates to coalesced-direct.
  std::size_t relay_width = 4;
  /// Recovery resync: when true managers answer SyncRequests with only the
  /// updates the requester has not yet applied (delta sync over the peer's
  /// apply log), falling back to a full snapshot when the requester's cursor
  /// predates log compaction. Off by default (full snapshots, the reference).
  bool delta_sync = false;
  /// Delta sync: apply-log entries a manager retains per app before the
  /// floor advances (older cursors then fall back to a full snapshot).
  std::size_t delta_log_cap = 1024;

  /// Validates internal consistency (aborts on misconfiguration).
  void validate() const;
  /// One-line human-readable summary ("tree relay_width=4 batch=64 ...").
  [[nodiscard]] std::string describe() const;
};

/// Shard topology of a deployment (src/shard/shard_map.hpp). Backend-
/// agnostic like everything in EnvOptions: the sim scenario, the loopback
/// conformance rigs, and wan_node's socket deployments all derive their
/// initial ShardMap from these knobs via make_shard_map().
struct ShardTopologyOptions {
  /// Manager groups the deployment partitions into; 0 or 1 = unsharded.
  std::uint32_t groups = 0;
  /// Logical shards placed over the groups; 0 = one shard per group.
  /// Fixed for the deployment's lifetime — rebalances move ownership only.
  std::uint32_t shards = 0;
  /// Placement-ring seed (pinned; see shard::kDefaultRingSeed).
  std::uint64_t ring_seed = shard::kDefaultRingSeed;
};

struct EnvOptions {
  /// Which backend to construct (tools route on this; see make_fabric()).
  BackendKind backend = BackendKind::kLoopback;

  // --- simulated-path shaping (SimEnv, LoopbackFabric) ---
  std::uint64_t seed = 1;                          ///< loss/jitter stream
  sim::Duration delay = sim::Duration::millis(1);  ///< per-datagram latency
  sim::Duration jitter = sim::Duration{};          ///< + uniform [0, jitter]
  double loss = 0.0;                               ///< i.i.d. drop probability

  // --- socket backends (UdpTransport) ---
  std::string listen;         ///< bind address "host:port"; port 0 = ephemeral
  std::string topology_path;  ///< HostId -> host:port map file (docs/WIRE_FORMAT.md)
  std::size_t send_queue_limit = 1024;  ///< outbound frames queued before drop
  ReliabilityOptions reliability;       ///< ack/retransmit layer (socket backends)
  ShardTopologyOptions sharding;        ///< manager-group partition (all backends)
  DisseminationOptions dissemination;   ///< revocation fan-out strategy (all backends)
};

/// Builds the epoch-1 shard map the topology knobs describe: `managers` is
/// split into `groups` equal contiguous groups and the shards are placed by
/// the consistent-hash ring. Returns an empty map when the topology is flat
/// (groups <= 1). Requires managers to divide evenly into the groups.
[[nodiscard]] shard::ShardMap make_shard_map(const ShardTopologyOptions& topo,
                                             const std::vector<HostId>& managers);

/// Builds the simulated network's config from the shared options: constant
/// delay (or uniform [delay, delay+jitter]) plus i.i.d. loss, matching what
/// LoopbackFabric does with the same fields on real threads.
[[nodiscard]] net::Network::Config to_network_config(const EnvOptions& opts);

}  // namespace wan::runtime
