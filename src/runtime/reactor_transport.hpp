// ReactorTransport: the epoll-batched socket fabric for saturation loads.
//
// Same wire protocol, topology surface, and delivery semantics as
// UdpTransport (both sit on runtime/socket_base.hpp — the conformance suite
// in tests/test_conformance.cpp proves the behaviors identical), but built
// for throughput instead of simplicity:
//
//   * One nonblocking socket driven by ONE event-loop thread — the reactor —
//     replacing UdpTransport's sender-thread + recv-thread pair. The loop
//     multiplexes readiness through epoll over two fds: the socket and an
//     eventfd that send() rings when the outbound queue goes nonempty (and
//     shutdown() rings to stop the loop).
//   * Batched syscalls: inbound datagrams are drained with recvmmsg (up to
//     kBatch frames per syscall, preallocated buffers) until EAGAIN;
//     outbound frames are flushed with sendmmsg. At saturation the per-frame
//     syscall cost amortizes to ~1/kBatch of the thread-per-datagram design.
//   * Reusable encode buffers: send() encodes through
//     CodecRegistry::encode_into into a vector recycled from a free pool, so
//     the steady-state hot path performs no allocation once buffers reach
//     their working size. Buffers return to the pool after sendmmsg flushes
//     them; the pool is capped at the queue limit.
//
// Queue semantics are unchanged from UdpTransport: the outbound queue is
// bounded by EnvOptions::send_queue_limit, overflow drops the frame with
// wan_udp_drops_total{reason="queue_full"} — UDP never backpressures into
// protocol code. When the kernel socket buffer itself fills (sendmmsg
// EAGAIN), frames stay queued and EPOLLOUT is armed, so a full kernel buffer
// delays rather than drops (the bounded queue still caps memory).
//
// Select it with EnvOptions::backend = BackendKind::kReactor (see
// runtime/backend.hpp); everything above the Fabric seam is untouched.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/env_options.hpp"
#include "runtime/socket_base.hpp"

namespace wan::runtime {

class ReactorTransport final : public SocketTransport {
 public:
  /// Binds opts.listen (default "127.0.0.1:0") nonblocking, loads
  /// opts.topology_path if non-empty, and starts the reactor thread.
  /// Returns nullptr and sets *error on failure.
  static std::unique_ptr<ReactorTransport> create(const EnvOptions& opts,
                                                  std::string* error);
  ~ReactorTransport() override;

  /// Stops attached envs, then the reactor thread. Idempotent; the
  /// destructor calls it.
  void shutdown() override;

  /// Datagrams per recvmmsg/sendmmsg syscall.
  static constexpr unsigned kBatch = 64;

 private:
  struct Outbound {
    std::vector<std::uint8_t> frame;
    ResolvedAddr dest;
  };

  ReactorTransport() = default;

  bool enqueue_frame(std::vector<std::uint8_t> frame,
                     const ResolvedAddr& dest) override;
  void count_env_send() override;
  std::vector<std::uint8_t> take_send_buffer() override;
  void recycle_send_buffer(std::vector<std::uint8_t>&& buf) override;

  void reactor_loop();
  /// Drains the inbound side with recvmmsg until EAGAIN.
  void drain_inbound();
  /// Flushes the outbound queue with sendmmsg; returns true when fully
  /// drained, false when the kernel buffer filled (caller arms EPOLLOUT).
  bool flush_outbound();
  void set_want_write(bool want);

  std::vector<std::uint8_t> take_buffer();
  void recycle_buffer(std::vector<std::uint8_t>&& buf);

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool want_write_ = false;  ///< reactor thread only

  std::mutex queue_mu_;
  std::deque<Outbound> queue_;

  std::mutex pool_mu_;
  std::vector<std::vector<std::uint8_t>> pool_;

  std::atomic<bool> stopping_{false};
  std::thread reactor_;
};

}  // namespace wan::runtime
