#include "runtime/reliable_channel.hpp"

#include <algorithm>
#include <utility>

#include "net/codec.hpp"
#include "runtime/socket_base.hpp"
#include "util/assert.hpp"

namespace wan::runtime {

namespace {

std::chrono::nanoseconds to_chrono(sim::Duration d) {
  return std::chrono::nanoseconds(d.count_nanos());
}

/// Fallback span clock for channels built without a fabric: steady time
/// since this channel came up. Useless for cross-process merging but keeps
/// standalone-test spans monotonic.
ReliableChannel::NowFn local_epoch_now() {
  const auto epoch = std::chrono::steady_clock::now();
  return [epoch] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  };
}

}  // namespace

ReliableChannel::ReliableChannel(const ReliabilityOptions& opts,
                                 EnqueueFn enqueue, ResolveFn resolve,
                                 DeliverFn deliver, NowFn now_nanos)
    : opts_(opts),
      enqueue_(std::move(enqueue)),
      resolve_(std::move(resolve)),
      deliver_(std::move(deliver)),
      now_nanos_(now_nanos ? std::move(now_nanos) : local_epoch_now()),
      jitter_rng_(opts.jitter_seed),
      retransmits_(obs::Registry::global().counter("wan_retransmits_total")),
      acks_sent_(obs::Registry::global().counter("wan_acks_total")),
      dup_drops_(obs::Registry::global().counter("wan_dup_drops_total")),
      expired_(obs::Registry::global().counter("wan_reliable_expired_total")),
      rtt_(obs::Registry::global().histogram("wan_reliable_rtt_seconds")) {
  WAN_REQUIRE(enqueue_ != nullptr && resolve_ != nullptr &&
              deliver_ != nullptr);
  WAN_REQUIRE(opts_.retry_budget >= 1);
  WAN_REQUIRE(opts_.backoff >= 1.0);
  net::register_reliable_codecs();
  timer_ = std::thread([this] { timer_loop(); });
}

ReliableChannel::~ReliableChannel() { stop(); }

void ReliableChannel::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (timer_.joinable()) timer_.join();
}

void ReliableChannel::set_peer_unreachable(UnreachableFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  unreachable_ = std::move(fn);
}

std::size_t ReliableChannel::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, flow] : send_flows_) n += flow.pending.size();
  return n;
}

std::chrono::nanoseconds ReliableChannel::jittered(
    std::chrono::nanoseconds rto) {
  const double factor =
      1.0 + opts_.jitter * (2.0 * jitter_rng_.next_double() - 1.0);
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(rto.count()) * factor));
}

void ReliableChannel::trace_flow(const char* name, obs::SpanKind kind,
                                 std::uint32_t from, std::uint32_t to,
                                 std::int64_t a1) const noexcept {
  if (!obs::enabled()) return;
  obs::record(/*trace=*/0, kind, HostId(from),
              sim::TimePoint::from_nanos(now_nanos_()), name, to, a1);
}

std::pair<std::uint64_t, std::uint64_t> ReliableChannel::ack_state(
    std::uint64_t key) const {
  const auto it = recv_flows_.find(key);
  if (it == recv_flows_.end()) return {0, 0};
  std::uint64_t bits = 0;
  for (const std::uint64_t seq : it->second.above) {
    const std::uint64_t off = seq - it->second.cum - 1;
    if (off < net::kAckBitmapWidth) bits |= (std::uint64_t{1} << off);
  }
  return {it->second.cum, bits};
}

void ReliableChannel::send_reliable(HostId from, HostId to,
                                    const net::Message& msg,
                                    const ResolvedAddr& dest) {
  const net::CodecRegistry& codec = net::CodecRegistry::global();
  std::optional<std::vector<std::uint8_t>> inner =
      codec.encode(from, to, msg);
  if (!inner || inner->size() + net::kReliableDataOverhead +
                    net::kWireHeaderSize >
                net::kMaxFrameSize) {
    // Checked before a sequence number is burned: the receiver's cumulative
    // watermark would wait forever on a seq that was never transmitted.
    count_socket_drop("oversize");
    return;
  }

  std::vector<std::uint8_t> frame;
  std::uint64_t sent_seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    SendFlow& flow = send_flows_[flow_key(from.value(), to.value())];
    const std::uint64_t seq = flow.next_seq++;
    sent_seq = seq;
    const auto [cum, bits] = ack_state(flow_key(to.value(), from.value()));
    const net::ReliableData data(seq, cum, bits, std::move(*inner));
    std::optional<std::vector<std::uint8_t>> outer =
        codec.encode(from, to, data);
    WAN_ASSERT(outer.has_value());  // size pre-checked above
    const auto now = SteadyClock::now();
    Pending p;
    p.frame = *outer;
    p.dest = dest;
    p.first_sent = now;
    p.rto = to_chrono(opts_.initial_rto);
    p.next_due = now + jittered(p.rto);
    flow.pending.emplace(seq, std::move(p));
    frame = std::move(*outer);
  }
  cv_.notify_all();  // the new deadline may be the earliest
  trace_flow("rel.send", obs::SpanKind::kSend, from.value(), to.value(),
             static_cast<std::int64_t>(sent_seq));
  // A false return is a queue-full shed: the pending entry above already
  // guarantees a retransmit picks it up, so the drop only delays.
  (void)enqueue_(std::move(frame), dest);
}

void ReliableChannel::absorb_ack(std::uint64_t key, std::uint64_t cum,
                                 std::uint64_t bits,
                                 SteadyClock::time_point now) {
  const auto it = send_flows_.find(key);
  if (it == send_flows_.end()) return;
  auto& pending = it->second.pending;
  const auto from = static_cast<std::uint32_t>(key >> 32);
  const auto to = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
  const auto settle = [&](std::map<std::uint64_t, Pending>::iterator p) {
    if (p->second.attempts == 1) {
      const double rtt_s =
          std::chrono::duration<double>(now - p->second.first_sent).count();
      rtt_.observe_seconds(rtt_s);
      // RTT-tagged timer event (a1 = round trip in micros). Karn's rule as
      // for the histogram: only unambiguous first-transmission acks.
      trace_flow("rel.rtt", obs::SpanKind::kTimer, from, to,
                 static_cast<std::int64_t>(rtt_s * 1e6));
    }
    return pending.erase(p);
  };
  for (auto p = pending.begin(); p != pending.end() && p->first <= cum;) {
    p = settle(p);
  }
  for (std::uint64_t off = 0; bits != 0 && off < net::kAckBitmapWidth;
       ++off) {
    if ((bits & (std::uint64_t{1} << off)) == 0) continue;
    const auto p = pending.find(cum + 1 + off);
    if (p != pending.end()) settle(p);
  }
}

void ReliableChannel::send_ack(std::uint32_t data_from,
                               std::uint32_t data_to) {
  std::uint64_t cum = 0;
  std::uint64_t bits = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::tie(cum, bits) = ack_state(flow_key(data_from, data_to));
  }
  const std::optional<ResolvedAddr> dest = resolve_(data_from);
  if (!dest) {
    count_socket_drop("unknown_dest");
    return;
  }
  const net::ReliableAck ack(cum, bits);
  const std::optional<std::vector<std::uint8_t>> frame =
      net::CodecRegistry::global().encode(HostId(data_to), HostId(data_from),
                                          ack);
  WAN_ASSERT(frame.has_value());
  if (enqueue_(std::move(*frame), *dest)) {
    acks_sent_.inc();
    trace_flow("rel.ack", obs::SpanKind::kSend, data_to, data_from,
               static_cast<std::int64_t>(cum));
  }
}

void ReliableChannel::on_data(std::uint32_t from_value,
                              std::uint32_t to_value,
                              const net::ReliableData& data) {
  bool duplicate = false;
  bool out_of_window = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Piggybacked ack: a data frame A -> B acknowledges the flow B -> A.
    absorb_ack(flow_key(to_value, from_value), data.cum_ack, data.ack_bits,
               SteadyClock::now());
    RecvFlow& flow = recv_flows_[flow_key(from_value, to_value)];
    if (data.seq <= flow.cum || flow.above.count(data.seq) != 0) {
      duplicate = true;
    } else if (data.seq > flow.cum + opts_.recv_window) {
      // A gap this large is hostile or pathological; accepting it would let
      // a forged seq pin unbounded dedup state. Dropped un-acked — the
      // sender retransmits once the window advances.
      out_of_window = true;
    } else {
      flow.above.insert(data.seq);
      while (!flow.above.empty() && *flow.above.begin() == flow.cum + 1) {
        flow.above.erase(flow.above.begin());
        ++flow.cum;
      }
    }
  }
  if (out_of_window) {
    count_socket_drop("seq_out_of_window");
    return;
  }
  if (duplicate) {
    dup_drops_.inc();
    send_ack(from_value, to_value);  // the original ack may have been lost
    return;
  }

  // Unwrap. The envelope promised a complete frame; validate it like any
  // other inbound frame, and insist its header agrees with the outer one (a
  // mismatch means a forged or corrupted envelope, not a routing decision).
  const net::CodecRegistry::Decoded inner = net::CodecRegistry::global().decode(
      data.inner.data(), data.inner.size());
  send_ack(from_value, to_value);  // received either way; stop retransmits
  if (!inner.ok()) {
    count_socket_drop(net::to_cstring(inner.error));
    return;
  }
  if (inner.frame->from.value() != from_value ||
      inner.frame->to.value() != to_value) {
    count_socket_drop("reliable_inner_mismatch");
    return;
  }
  deliver_(from_value, to_value, inner.frame->msg);
}

void ReliableChannel::on_ack(std::uint32_t from_value, std::uint32_t to_value,
                             const net::ReliableAck& ack) {
  std::lock_guard<std::mutex> lock(mu_);
  // An ack frame B -> A acknowledges the flow A -> B.
  absorb_ack(flow_key(to_value, from_value), ack.cum_ack, ack.ack_bits,
             SteadyClock::now());
}

void ReliableChannel::timer_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    // Earliest deadline across all pending frames. The scan is linear, but
    // in-flight counts are small (bounded by the send queues); a heap would
    // buy nothing at this scale.
    std::optional<SteadyClock::time_point> next;
    for (const auto& [key, flow] : send_flows_) {
      for (const auto& [seq, p] : flow.pending) {
        if (!next || p.next_due < *next) next = p.next_due;
      }
    }
    if (!next) {
      cv_.wait(lock, [this] {
        if (stopping_) return true;
        for (const auto& [key, flow] : send_flows_) {
          if (!flow.pending.empty()) return true;
        }
        return false;
      });
      continue;
    }
    if (cv_.wait_until(lock, *next, [this] { return stopping_; })) return;

    const auto now = SteadyClock::now();
    std::vector<std::pair<std::vector<std::uint8_t>, ResolvedAddr>> resend;
    std::map<std::uint32_t, std::size_t> dead;  ///< peer -> abandoned count
    for (auto& [key, flow] : send_flows_) {
      const auto flow_from = static_cast<std::uint32_t>(key >> 32);
      const auto flow_to = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
      for (auto it = flow.pending.begin(); it != flow.pending.end();) {
        Pending& p = it->second;
        if (p.next_due > now) {
          ++it;
          continue;
        }
        if (p.attempts >= opts_.retry_budget) {
          expired_.inc();
          trace_flow("rel.expire", obs::SpanKind::kInstant, flow_from,
                     flow_to, static_cast<std::int64_t>(it->first));
          dead[static_cast<std::uint32_t>(key & 0xFFFFFFFFu)] += 1;
          it = flow.pending.erase(it);
          continue;
        }
        trace_flow("rel.retransmit", obs::SpanKind::kTimer, flow_from,
                   flow_to, static_cast<std::int64_t>(it->first));
        ++p.attempts;
        p.rto = std::min(
            std::chrono::nanoseconds(static_cast<std::int64_t>(
                static_cast<double>(p.rto.count()) * opts_.backoff)),
            to_chrono(opts_.max_rto));
        p.next_due = now + jittered(p.rto);
        resend.emplace_back(p.frame, p.dest);
        ++it;
      }
    }
    UnreachableFn unreachable = unreachable_;
    lock.unlock();
    for (auto& [frame, dest] : resend) {
      retransmits_.inc();
      // Queue-full sheds are fine: the entry is still pending and the next
      // backoff interval retries.
      (void)enqueue_(std::move(frame), dest);
    }
    if (unreachable != nullptr) {
      for (const auto& [peer, abandoned] : dead) {
        unreachable(HostId(peer), abandoned);
      }
    }
    lock.lock();
  }
}

}  // namespace wan::runtime
