#include "runtime/threaded_env.hpp"

#include <atomic>
#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace wan::runtime {

using SteadyClock = std::chrono::steady_clock;
using SteadyTP = SteadyClock::time_point;

namespace {

std::chrono::nanoseconds to_chrono(sim::Duration d) noexcept {
  return std::chrono::nanoseconds(d.count_nanos());
}

obs::Counter& threaded_timer_arms() {
  static obs::Counter& c = obs::Registry::global().counter(
      "wan_env_timer_arms_total{env=\"threaded\"}");
  return c;
}

// One-shot timer over a loop core. The armed callback fires at most once:
// firing and cancelling race on the same atomic flag, and exactly one side
// wins the exchange.
class ThreadedTimerImpl final : public TimerImpl {
 public:
  explicit ThreadedTimerImpl(std::shared_ptr<LoopCore> core)
      : core_(std::move(core)) {}
  ~ThreadedTimerImpl() override { cancel(); }

  void arm(sim::Duration delay, std::function<void()> fn) override {
    cancel();
    threaded_timer_arms().inc();
    flag_ = std::make_shared<std::atomic<bool>>(false);
    auto flag = flag_;
    LoopCore::post_at(
        core_, SteadyClock::now() + to_chrono(delay),
        [flag, fn = std::move(fn)] {
          bool expected = false;
          if (flag->compare_exchange_strong(expected, true)) fn();
        },
        flag);
  }

  void cancel() noexcept override {
    if (flag_) flag_->store(true, std::memory_order_release);
  }

  [[nodiscard]] bool pending() const noexcept override {
    return flag_ != nullptr && !flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<LoopCore> core_;
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Periodic timer: the chain of shots owns its state via shared_ptr, so a
// queued shot outliving the PeriodicTimer wrapper is harmless (it sees the
// stopped flag and does nothing).
class ThreadedPeriodicTimerImpl final : public PeriodicTimerImpl {
 public:
  explicit ThreadedPeriodicTimerImpl(std::shared_ptr<LoopCore> core)
      : core_(std::move(core)) {}
  ~ThreadedPeriodicTimerImpl() override { stop(); }

  void start(sim::Duration initial_delay, sim::Duration period,
             std::function<void()> fn) override {
    stop();
    auto st = std::make_shared<State>();
    st->core = core_;
    st->period = to_chrono(period);
    st->fn = std::move(fn);
    state_ = st;
    schedule(st, SteadyClock::now() + to_chrono(initial_delay));
  }

  void stop() noexcept override {
    if (state_) state_->stopped.store(true, std::memory_order_release);
    state_.reset();
  }

  [[nodiscard]] bool running() const noexcept override {
    return state_ != nullptr;
  }

 private:
  struct State {
    std::shared_ptr<LoopCore> core;
    std::chrono::nanoseconds period{};
    std::function<void()> fn;
    std::atomic<bool> stopped{false};
  };

  static void schedule(const std::shared_ptr<State>& st, SteadyTP at) {
    LoopCore::post_at(st->core, at, [st] {
      if (st->stopped.load(std::memory_order_acquire)) return;
      st->fn();
      if (st->stopped.load(std::memory_order_acquire)) return;
      schedule(st, SteadyClock::now() + st->period);
    });
  }

  std::shared_ptr<LoopCore> core_;
  std::shared_ptr<State> state_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Per-env transport port onto the shared fabric.

class ThreadedEnv::Port final : public Transport {
 public:
  Port(Fabric& fabric, std::shared_ptr<LoopCore> core)
      : fabric_(fabric), core_(std::move(core)) {}

  void register_endpoint(HostId id, Handler handler) override {
    fabric_.attach(id, core_, std::move(handler));
  }
  void set_endpoint_down(HostId id, bool down) override {
    fabric_.set_endpoint_down(id, down);
  }
  void send(HostId from, HostId to, net::MessagePtr msg) override {
    fabric_.send(from, to, std::move(msg));
  }
  void multicast(HostId from, const std::vector<HostId>& to,
                 const net::MessagePtr& msg) override {
    for (const HostId dst : to) {
      if (dst != from) fabric_.send(from, dst, msg);
    }
  }

 private:
  Fabric& fabric_;
  std::shared_ptr<LoopCore> core_;
};

// ---------------------------------------------------------------------------
// ThreadedEnv

ThreadedEnv::ThreadedEnv(Fabric& fabric)
    : fabric_(fabric),
      core_(std::make_shared<LoopCore>(fabric.epoch())),
      port_(std::make_unique<Port>(fabric, core_)) {
  fabric_.register_env(this);
  thread_ = std::thread([core = core_] { core->run_loop(); });
}

ThreadedEnv::~ThreadedEnv() {
  stop();
  fabric_.forget_env(this);
}

sim::TimePoint ThreadedEnv::now() const {
  const auto since_epoch = SteadyClock::now() - core_->epoch;
  return sim::TimePoint::from_nanos(
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch)
          .count());
}

Timer ThreadedEnv::make_timer() {
  return Timer(std::make_unique<ThreadedTimerImpl>(core_));
}

PeriodicTimer ThreadedEnv::make_periodic_timer() {
  return PeriodicTimer(std::make_unique<ThreadedPeriodicTimerImpl>(core_));
}

Transport& ThreadedEnv::transport() { return *port_; }

void ThreadedEnv::post(std::function<void()> fn) {
  static obs::Counter& posts =
      obs::Registry::global().counter("wan_env_posts_total{env=\"threaded\"}");
  posts.inc();
  LoopCore::post_at(core_, SteadyClock::now(), std::move(fn));
}

void ThreadedEnv::run_sync(std::function<void()> fn) {
  // The sync state is shared_ptr-held, not stack-held: the loop thread's
  // notify_one() may still be executing after the waiter has observed
  // done == true, so the waiter must not be the sole owner of the
  // condition variable it would then destroy.
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto state = std::make_shared<SyncState>();
  const bool posted =
      LoopCore::post_at(core_, SteadyClock::now(),
                        [state, fn = std::move(fn)] {
                          fn();
                          {
                            std::lock_guard<std::mutex> lock(state->mu);
                            state->done = true;
                          }
                          state->cv.notify_one();
                        });
  WAN_REQUIRE(posted);  // run_sync after stop() would hang forever
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done; });
}

void ThreadedEnv::stop() {
  {
    std::lock_guard<std::mutex> lock(core_->mu);
    core_->stopped = true;
  }
  core_->cv.notify_all();
  if (thread_.joinable()) thread_.join();
}

// ---------------------------------------------------------------------------
// LoopbackFabric

LoopbackFabric::LoopbackFabric(const EnvOptions& opts)
    : opts_(opts), rng_(opts.seed) {
  WAN_REQUIRE(opts_.loss >= 0.0 && opts_.loss < 1.0);
  WAN_REQUIRE(!opts_.delay.is_negative());
  WAN_REQUIRE(!opts_.jitter.is_negative());
}

std::uint64_t LoopbackFabric::delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

std::uint64_t LoopbackFabric::sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sent_;
}

void LoopbackFabric::attach(HostId id, std::shared_ptr<LoopCore> core,
                            Transport::Handler handler) {
  WAN_REQUIRE(id.valid());
  WAN_REQUIRE(handler != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[id] = Endpoint{std::move(core), std::move(handler), false};
}

void LoopbackFabric::set_endpoint_down(HostId id, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = endpoints_.find(id);
  WAN_REQUIRE(it != endpoints_.end());
  it->second.down = down;
}

void LoopbackFabric::send(HostId from, HostId to, net::MessagePtr msg) {
  WAN_REQUIRE(msg != nullptr);
  static obs::Counter& sends =
      obs::Registry::global().counter("wan_env_sends_total{env=\"threaded\"}");
  sends.inc();
  std::shared_ptr<LoopCore> dest;
  Transport::Handler handler;
  std::chrono::nanoseconds delay{};
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++sent_;
    const auto src = endpoints_.find(from);
    if (src == endpoints_.end() || src->second.down) return;
    const auto dst = endpoints_.find(to);
    if (dst == endpoints_.end() || dst->second.down) return;
    if (from != to) {
      if (opts_.loss > 0.0 && rng_.next_double() < opts_.loss) return;
      delay = to_chrono(opts_.delay);
      if (!opts_.jitter.is_zero()) {
        delay += std::chrono::nanoseconds(static_cast<std::int64_t>(
            rng_.next_below(static_cast<std::uint64_t>(
                opts_.jitter.count_nanos() + 1))));
      }
    }
    dest = dst->second.core;
    handler = dst->second.handler;
    ++delivered_;
  }
  LoopCore::post_at(
      dest, SteadyClock::now() + delay,
      [handler = std::move(handler), from, msg = std::move(msg)] {
        handler(from, msg);
      });
}

}  // namespace wan::runtime
