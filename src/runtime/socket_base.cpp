#include "runtime/socket_base.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "net/reliable.hpp"
#include "runtime/reliable_channel.hpp"
#include "util/assert.hpp"

namespace wan::runtime {

namespace {

using SteadyClock = std::chrono::steady_clock;

bool parse_port(const std::string& text, std::uint16_t* port) {
  if (text.empty() || text.size() > 5) return false;
  std::uint32_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (value > 65535) return false;
  *port = static_cast<std::uint16_t>(value);
  return true;
}

std::optional<std::uint32_t> resolve_host(const std::string& host,
                                          std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_DGRAM;
  addrinfo* result = nullptr;
  if (const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &result);
      rc != 0) {
    if (error) {
      *error = "cannot resolve '" + host + "': " + ::gai_strerror(rc);
    }
    return std::nullopt;
  }
  const std::uint32_t ip_be =
      reinterpret_cast<const sockaddr_in*>(result->ai_addr)->sin_addr.s_addr;
  ::freeaddrinfo(result);
  return ip_be;
}

}  // namespace

// ---------------------------------------------------------------------------
// Counters

obs::Counter& socket_frames_sent() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_udp_frames_sent_total");
  return c;
}

obs::Counter& socket_frames_received() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_udp_frames_received_total");
  return c;
}

obs::Counter& socket_deliveries() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_udp_deliveries_total");
  return c;
}

void count_socket_drop(const char* reason) {
  obs::Registry::global()
      .counter(std::string("wan_udp_drops_total{reason=\"") + reason + "\"}")
      .inc();
}

// ---------------------------------------------------------------------------
// NodeAddress / Topology

std::string NodeAddress::to_string() const {
  return host + ":" + std::to_string(port);
}

std::optional<NodeAddress> parse_node_address(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  NodeAddress addr;
  addr.host = text.substr(0, colon);
  if (!parse_port(text.substr(colon + 1), &addr.port)) return std::nullopt;
  return addr;
}

std::optional<Topology> Topology::load(const std::string& path,
                                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open topology file '" + path + "'";
    return std::nullopt;
  }
  return parse(in, error);
}

std::optional<Topology> Topology::parse(std::istream& in, std::string* error) {
  Topology topo;
  std::string line;
  for (int lineno = 1; std::getline(in, line); ++lineno) {
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string id_text, addr_text, extra;
    if (!(fields >> id_text)) continue;  // blank / comment-only line
    const auto complain = [&](const std::string& what) {
      if (error) {
        *error = "topology line " + std::to_string(lineno) + ": " + what;
      }
      return std::nullopt;
    };
    if (!(fields >> addr_text)) return complain("expected '<id> <host>:<port>'");
    if (fields >> extra) return complain("trailing text '" + extra + "'");
    std::uint64_t id_value = 0;
    for (const char c : id_text) {
      if (c < '0' || c > '9') return complain("bad host id '" + id_text + "'");
      id_value = id_value * 10 + static_cast<std::uint64_t>(c - '0');
      if (id_value > 0xFFFFFFFFull) {
        return complain("host id out of range '" + id_text + "'");
      }
    }
    const std::optional<NodeAddress> addr = parse_node_address(addr_text);
    if (!addr) return complain("bad address '" + addr_text + "'");
    if (topo.entries_.count(static_cast<std::uint32_t>(id_value)) != 0) {
      return complain("duplicate host id '" + id_text + "'");
    }
    topo.add(HostId(static_cast<std::uint32_t>(id_value)), *addr);
  }
  return topo;
}

void Topology::add(HostId id, NodeAddress addr) {
  entries_[id.value()] = std::move(addr);
}

const NodeAddress* Topology::find(HostId id) const {
  const auto it = entries_.find(id.value());
  return it == entries_.end() ? nullptr : &it->second;
}

std::string Topology::serialize() const {
  std::string out = "# wan topology: <host-id> <host>:<port>\n";
  for (const auto& [id, addr] : entries_) {
    out += std::to_string(id) + " " + addr.to_string() + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// SocketTransport

SocketTransport::SocketTransport() = default;

SocketTransport::~SocketTransport() {
  // Subclass destructors run shutdown(); this is the last-resort fd guard for
  // construction paths that failed before the I/O machinery started.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SocketTransport::open_socket(const EnvOptions& opts, std::string* error) {
  const std::string listen_text =
      opts.listen.empty() ? std::string("127.0.0.1:0") : opts.listen;
  const std::optional<NodeAddress> listen = parse_node_address(listen_text);
  if (!listen) {
    if (error) *error = "bad listen address '" + listen_text + "'";
    return false;
  }
  const std::optional<std::uint32_t> listen_ip =
      resolve_host(listen->host, error);
  if (!listen_ip) return false;

  send_queue_limit_ = opts.send_queue_limit;

  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_port = htons(listen->port);
  bind_addr.sin_addr.s_addr = *listen_ip;
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&bind_addr),
             sizeof bind_addr) != 0) {
    if (error) {
      *error = "bind(" + listen->to_string() + "): " + std::strerror(errno);
    }
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    if (error) *error = std::string("getsockname(): ") + std::strerror(errno);
    return false;
  }
  local_port_ = ntohs(bound.sin_port);

  if (!opts.topology_path.empty()) {
    const std::optional<Topology> topo =
        Topology::load(opts.topology_path, error);
    if (!topo) return false;
    for (const auto& [id, addr] : topo->entries()) {
      if (!add_peer(HostId(id), addr)) {
        if (error) {
          *error = "topology host " + std::to_string(id) +
                   ": cannot resolve '" + addr.host + "'";
        }
        return false;
      }
    }
  }

  if (opts.reliability.enabled) {
    reliable_ = std::make_unique<ReliableChannel>(
        opts.reliability,
        [this](std::vector<std::uint8_t> frame, ResolvedAddr dest) {
          return enqueue_frame(std::move(frame), dest);
        },
        [this](std::uint32_t host) -> std::optional<ResolvedAddr> {
          std::lock_guard<std::mutex> lock(mu_);
          const auto it = peers_.find(host);
          if (it == peers_.end()) return std::nullopt;
          return it->second;
        },
        [this](std::uint32_t from, std::uint32_t to, net::MessagePtr msg) {
          deliver(from, to, std::move(msg));
        },
        // Channel spans on the fabric's runtime clock, the same basis as
        // env.now() — merged traces interleave them with protocol spans.
        [this] {
          return std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - epoch())
              .count();
        });
  }
  return true;
}

void SocketTransport::send(HostId from, HostId to, net::MessagePtr msg) {
  WAN_REQUIRE(msg != nullptr);
  count_env_send();
  const std::optional<ResolvedAddr> dest = route_for_send(from, to);
  if (!dest) return;
  const net::CodecRegistry& codec = net::CodecRegistry::global();
  if (!codec.tag_of(*msg)) {
    count_socket_drop("unregistered_type");
    return;
  }
  if (reliable_ != nullptr && msg->reliable()) {
    reliable_->send_reliable(from, to, *msg, *dest);
    return;
  }
  std::vector<std::uint8_t> frame = take_send_buffer();
  if (!codec.encode_into(from, to, *msg, &frame)) {
    // tag_of succeeded, so the only way encode fails is a frame bigger than
    // one UDP datagram can carry.
    count_socket_drop("oversize");
    recycle_send_buffer(std::move(frame));
    return;
  }
  enqueue_frame(std::move(frame), *dest);
}

void SocketTransport::set_peer_unreachable(UnreachableFn fn) {
  if (reliable_ != nullptr) reliable_->set_peer_unreachable(std::move(fn));
}

ReliableChannel* SocketTransport::reliable_channel() noexcept {
  return reliable_.get();
}

void SocketTransport::stop_reliable() {
  if (reliable_ != nullptr) reliable_->stop();
}

void SocketTransport::attach(HostId id, std::shared_ptr<LoopCore> core,
                             Transport::Handler handler) {
  WAN_REQUIRE(id.valid());
  WAN_REQUIRE(handler != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[id] = Endpoint{std::move(core), std::move(handler), false};
}

void SocketTransport::set_endpoint_down(HostId id, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = endpoints_.find(id);
  WAN_REQUIRE(it != endpoints_.end());
  it->second.down = down;
}

bool SocketTransport::add_peer(HostId id, const NodeAddress& addr) {
  const std::optional<std::uint32_t> ip_be = resolve_host(addr.host, nullptr);
  if (!ip_be) return false;
  std::lock_guard<std::mutex> lock(mu_);
  peers_[id.value()] = ResolvedAddr{*ip_be, htons(addr.port)};
  return true;
}

void SocketTransport::block_inbound_from(HostId peer, bool blocked) {
  std::lock_guard<std::mutex> lock(mu_);
  if (blocked) {
    blocked_sources_.insert(peer.value());
  } else {
    blocked_sources_.erase(peer.value());
  }
}

void SocketTransport::set_fault_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_plan_ = plan;
  fault_rng_ = Rng(plan.seed);
  faults_armed_ =
      plan.loss > 0.0 || plan.duplicate > 0.0 || plan.reorder > 0.0;
  held_.reset();
}

std::optional<ResolvedAddr> SocketTransport::route_for_send(HostId from,
                                                            HostId to) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto src = endpoints_.find(from);
  if (src == endpoints_.end() || src->second.down) {
    count_socket_drop("endpoint_down");
    return std::nullopt;
  }
  const auto peer = peers_.find(to.value());
  if (peer == peers_.end()) {
    count_socket_drop("unknown_dest");
    return std::nullopt;
  }
  return peer->second;
}

void SocketTransport::on_datagram(const std::uint8_t* data, std::size_t size) {
  socket_frames_received().inc();
  const net::CodecRegistry::Decoded decoded =
      net::CodecRegistry::global().decode(data, size);
  if (!decoded.ok()) {
    count_socket_drop(net::to_cstring(decoded.error));
    return;
  }
  const std::uint32_t from = decoded.frame->from.value();
  const std::uint32_t to = decoded.frame->to.value();
  net::MessagePtr msg = decoded.frame->msg;

  // Adverse-network injection (test hook). Decisions are drawn under
  // fault_mu_; delivery happens outside it so a released held frame cannot
  // re-enter protocol code while the lock is held.
  bool drop = false;
  bool duplicate = false;
  bool hold = false;
  std::optional<HeldFrame> release;
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    if (faults_armed_) {
      drop = fault_rng_.next_bool(fault_plan_.loss);
      if (!drop) {
        hold = !held_.has_value() && fault_rng_.next_bool(fault_plan_.reorder);
        duplicate = !hold && fault_rng_.next_bool(fault_plan_.duplicate);
        if (hold) {
          held_ = HeldFrame{from, to, msg};
        } else if (held_.has_value()) {
          release = std::move(held_);
          held_.reset();
        }
      }
    }
  }
  if (drop) {
    count_socket_drop("injected_loss");
    return;
  }
  if (hold) return;  // delivered (reordered) behind the next frame
  dispatch(from, to, msg);
  if (duplicate) dispatch(from, to, msg);
  if (release) dispatch(release->from, release->to, std::move(release->msg));
}

void SocketTransport::dispatch(std::uint32_t from_value, std::uint32_t to_value,
                               net::MessagePtr msg) {
  // Blocked sources are filtered before the reliability layer sees the
  // frame: a one-way partition must swallow the envelope too, or the ack it
  // triggers would defeat the cut the test armed.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (blocked_sources_.count(from_value) != 0) {
      count_socket_drop("blocked");
      return;
    }
  }
  if (reliable_ != nullptr) {
    if (const auto* data =
            dynamic_cast<const net::ReliableData*>(msg.get())) {
      reliable_->on_data(from_value, to_value, *data);
      return;
    }
    if (const auto* ack = dynamic_cast<const net::ReliableAck*>(msg.get())) {
      reliable_->on_ack(from_value, to_value, *ack);
      return;
    }
  }
  deliver(from_value, to_value, std::move(msg));
}

void SocketTransport::deliver(std::uint32_t from_value, std::uint32_t to_value,
                              net::MessagePtr msg) {
  std::shared_ptr<LoopCore> core;
  Transport::Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = endpoints_.find(HostId(to_value));
    if (it == endpoints_.end()) {
      count_socket_drop("not_local");
      return;
    }
    if (it->second.down) {
      count_socket_drop("endpoint_down");
      return;
    }
    core = it->second.core;
    handler = it->second.handler;
  }
  socket_deliveries().inc();
  LoopCore::post_at(core, SteadyClock::now(),
                    [handler = std::move(handler), from = HostId(from_value),
                     msg = std::move(msg)] { handler(from, msg); });
}

bool SocketTransport::mark_shut_down() {
  std::lock_guard<std::mutex> lock(mu_);
  if (shut_down_) return false;
  shut_down_ = true;
  return true;
}

}  // namespace wan::runtime
