// SocketTransport: the shared substrate of every real-socket fabric backend.
//
// PR 5's UdpTransport owned everything a socket fabric needs — address
// parsing, the static topology, peer resolution, endpoint bookkeeping, the
// inbound decode/deliver path, and the labelled drop counters. The reactor
// backend (runtime/reactor_transport.hpp) needs all of the same pieces, so
// they live here and the two backends differ only in how bytes move:
//
//   * UdpTransport     — recv-loop thread + sender thread, one datagram per
//     blocking syscall. Simple, portable; the PR 5 baseline.
//   * ReactorTransport — one epoll-driven event loop, recvmmsg/sendmmsg
//     batched syscalls, reusable encode buffers. The saturation backend.
//
// Both speak the identical wire protocol (net::CodecRegistry frames, one per
// datagram), expose the identical operational surface (topology files,
// add_peer patching, block_inbound_from partitions, per-reason
// wan_udp_drops_total counters), and deliver inbound messages the identical
// way (decoded, then posted onto the destination node's LoopCore). The
// cross-backend conformance suite (tests/test_conformance.cpp) holds them to
// that: the same seeded op script must produce the same protocol outcomes on
// either backend — and on the in-process loopback fabric.
//
// Adverse-network injection: set_fault_plan() arms a *deterministic* seeded
// fault stream applied to inbound frames after decode — loss (counted as
// wan_udp_drops_total{reason="injected_loss"}), duplication, and reordering
// (hold one delivery, release it after the next frame). Given the same
// arrival sequence, the same plan makes the same decisions; tests use it to
// prove the protocol converges (and the Te bound holds) over a misbehaving
// fabric without ever touching real packet schedules.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/codec.hpp"
#include "obs/metrics.hpp"
#include "runtime/env_options.hpp"
#include "runtime/fabric.hpp"
#include "util/rng.hpp"

namespace wan::runtime {

/// Where a node listens: numeric IPv4 or a resolvable name, plus a UDP port.
struct NodeAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
  bool operator==(const NodeAddress&) const = default;
};

/// Parses "host:port". Returns nullopt on a missing colon, empty host, or an
/// out-of-range port.
[[nodiscard]] std::optional<NodeAddress> parse_node_address(
    const std::string& text);

/// Static HostId -> NodeAddress map shared by every process of a deployment.
class Topology {
 public:
  /// Loads from a file; on failure returns nullopt and describes why.
  static std::optional<Topology> load(const std::string& path,
                                      std::string* error);
  static std::optional<Topology> parse(std::istream& in, std::string* error);

  void add(HostId id, NodeAddress addr);
  [[nodiscard]] const NodeAddress* find(HostId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Entries keyed by HostId value, in ascending order.
  [[nodiscard]] const std::map<std::uint32_t, NodeAddress>& entries() const {
    return entries_;
  }

  /// The file representation (what load() parses) — orchestrators write this.
  [[nodiscard]] std::string serialize() const;

 private:
  std::map<std::uint32_t, NodeAddress> entries_;
};

/// Deterministic adverse-network model for the socket fabrics (test hook).
/// Decisions are drawn per inbound frame from a seeded stream, so the same
/// plan over the same arrival sequence misbehaves identically.
struct FaultPlan {
  std::uint64_t seed = 1;
  double loss = 0.0;       ///< drop the frame (counted as injected_loss)
  double duplicate = 0.0;  ///< deliver the frame twice
  double reorder = 0.0;    ///< hold the frame, release after the next one
};

/// A peer address resolved to wire form, ready for a sendto destination.
struct ResolvedAddr {
  std::uint32_t ip_be = 0;    ///< network byte order
  std::uint16_t port_be = 0;  ///< network byte order
};

class ReliableChannel;

/// Common machinery of the real-socket fabric backends. Subclasses own the
/// I/O strategy (threads, syscall batching) and implement enqueue_frame();
/// everything else — bind, routing, endpoints, the send path, decode,
/// delivery, the optional reliability layer, counters — is here.
class SocketTransport : public Fabric {
 public:
  ~SocketTransport() override;

  /// The shared send path: route, classify, encode, enqueue. With the
  /// reliability layer enabled (EnvOptions::reliability), messages whose
  /// net::Message::reliable() is true travel wrapped in the ack/retransmit
  /// envelope; heartbeats and the envelope itself stay fire-and-forget.
  void send(HostId from, HostId to, net::MessagePtr msg) override;

  void attach(HostId id, std::shared_ptr<LoopCore> core,
              Transport::Handler handler) override;
  void set_endpoint_down(HostId id, bool down) override;

  /// The port actually bound (resolves a port-0 listen address).
  [[nodiscard]] std::uint16_t local_port() const noexcept {
    return local_port_;
  }

  /// Adds or replaces one peer route (tests and orchestrators patch in
  /// addresses discovered after port-0 binds; production loads a topology
  /// file instead). Returns false when the host does not resolve.
  bool add_peer(HostId id, const NodeAddress& addr);

  /// Drops every inbound frame whose source is `peer` (and counts it).
  /// Simulates a one-way partition for the revocation worst case: the cut
  /// host keeps serving its agent while manager traffic never arrives.
  void block_inbound_from(HostId peer, bool blocked);

  /// Arms (or, with a default-constructed plan, disarms) deterministic
  /// inbound loss/duplication/reordering. Test-only; see FaultPlan.
  void set_fault_plan(const FaultPlan& plan);

  /// Fired when the reliability layer abandons a peer (retry budget
  /// exhausted); `abandoned` counts the frames dropped in that sweep. Runs
  /// on the channel's timer thread. No-op without a reliability layer.
  using UnreachableFn = std::function<void(HostId peer, std::size_t abandoned)>;
  void set_peer_unreachable(UnreachableFn fn);

  /// The reliability layer, or nullptr when EnvOptions::reliability was off
  /// (tests poll in_flight() through this).
  [[nodiscard]] ReliableChannel* reliable_channel() noexcept;

  /// Stops attached envs, then winds down the backend's I/O. Idempotent;
  /// every subclass destructor calls it.
  virtual void shutdown() = 0;

 protected:
  struct Endpoint {
    std::shared_ptr<LoopCore> core;
    Transport::Handler handler;
    bool down = false;
  };

  // Out of line: the implicit constructor/destructor need the complete
  // ReliableChannel type for the unique_ptr member.
  SocketTransport();

  /// Opens and binds the UDP socket per opts.listen (default "127.0.0.1:0"),
  /// records the bound port, and loads opts.topology_path if non-empty.
  /// On failure sets *error and returns false; fd_ stays owned either way.
  bool open_socket(const EnvOptions& opts, std::string* error);

  /// Route lookup for a send; nullopt counts the unknown_dest drop.
  /// Additionally verifies the source endpoint is attached and up
  /// (endpoint_down drop otherwise).
  std::optional<ResolvedAddr> route_for_send(HostId from, HostId to);

  /// Hands one encoded frame to the backend's bounded outbound queue.
  /// Returns false on a queue-full shed (counted as queue_full by the
  /// implementation). Called from env loop threads and from the reliability
  /// layer's timer thread.
  virtual bool enqueue_frame(std::vector<std::uint8_t> frame,
                             const ResolvedAddr& dest) = 0;

  /// Bumps the backend's wan_env_sends_total counter (one per send() call).
  virtual void count_env_send() = 0;

  /// Encode-buffer recycling hooks; the reactor overrides these with its
  /// pool, the udp backend keeps the allocate-per-frame default.
  virtual std::vector<std::uint8_t> take_send_buffer() { return {}; }
  virtual void recycle_send_buffer(std::vector<std::uint8_t>&& buf) {
    (void)buf;
  }

  /// Decodes one received datagram and hands it to dispatch(); every reject
  /// class lands in its labelled drop counter. The inbound fault plan (if
  /// armed) is applied here — before the reliability layer, so injected loss
  /// hits the envelope and retransmission is what recovers it.
  void on_datagram(const std::uint8_t* data, std::size_t size);

  /// Post-fault routing: blocked-source filtering, then the reliability
  /// layer's envelope handling (when enabled), then deliver().
  void dispatch(std::uint32_t from_value, std::uint32_t to_value,
                net::MessagePtr msg);

  /// Posts one decoded message onto the destination endpoint's loop,
  /// honouring down endpoints (blocked sources were filtered in dispatch()).
  void deliver(std::uint32_t from_value, std::uint32_t to_value,
               net::MessagePtr msg);

  /// True once shutdown() has run (subclasses gate their idempotence on it).
  bool mark_shut_down();

  /// Stops the reliability layer's timer thread (no-op when disabled).
  /// Subclass shutdown() calls this after stop_all() and before joining its
  /// own I/O threads — the channel enqueues into their queues.
  void stop_reliable();

  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::size_t send_queue_limit_ = 1024;
  std::unique_ptr<ReliableChannel> reliable_;  ///< nullptr when disabled

  mutable std::mutex mu_;
  std::unordered_map<HostId, Endpoint> endpoints_;
  std::unordered_map<std::uint32_t, ResolvedAddr> peers_;  ///< HostId value
  std::unordered_set<std::uint32_t> blocked_sources_;
  bool shut_down_ = false;  ///< guarded by mu_

  // Inbound fault injection (guarded by fault_mu_, never held across
  // delivery so reordered releases cannot deadlock with protocol code).
  std::mutex fault_mu_;
  bool faults_armed_ = false;
  FaultPlan fault_plan_;
  Rng fault_rng_{1};
  struct HeldFrame {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    net::MessagePtr msg;
  };
  std::optional<HeldFrame> held_;
};

/// Shared drop accounting: wan_udp_drops_total{reason=...}. Reasons are
/// queue_full, oversize, unregistered_type, unknown_dest, endpoint_down,
/// blocked, not_local, sendto_error, injected_loss, seq_out_of_window,
/// reliable_inner_mismatch, or a codec DecodeError string. Drops are rare,
/// so the per-call registry lookup is fine.
void count_socket_drop(const char* reason);

/// Hot counters shared by the socket backends.
obs::Counter& socket_frames_sent();
obs::Counter& socket_frames_received();
obs::Counter& socket_deliveries();

}  // namespace wan::runtime
