// UdpTransport: the runtime fabric over real UDP sockets — nodes span
// processes and machines.
//
// One UdpTransport per OS process, owning one UDP socket. Local nodes attach
// exactly as they do to a LoopbackFabric (ThreadedEnv's transport port calls
// attach/send); remote nodes are reached through a static topology mapping
// HostId -> host:port, loaded from a file or patched in with add_peer().
// Frames on the wire are produced by the net::CodecRegistry codec
// (docs/WIRE_FORMAT.md): one frame per datagram, carrying source and
// destination HostIds in the header, so the receiver needs no reverse
// address map. Callers must register the protocol codecs
// (proto::register_wire_messages()) before the first send — the runtime
// layer itself is protocol-agnostic and never includes proto/ headers.
//
// Threads: a sender thread drains a bounded outbound queue (overflow drops
// the frame and counts it — UDP semantics, never backpressure into protocol
// code), and a recv-loop thread decodes inbound datagrams and posts each
// delivery onto the destination node's LoopCore. Both threads touch protocol
// state only through LoopCore::post_at, preserving the seam's
// single-threaded-per-node discipline.
//
// This is the portable one-datagram-per-syscall backend; the epoll-batched
// ReactorTransport (runtime/reactor_transport.hpp) shares all addressing,
// decode, and delivery machinery through runtime/socket_base.hpp and is
// selected via EnvOptions::backend when raw throughput matters.
//
// Observability (PR 4 registry): wan_udp_frames_sent_total,
// wan_udp_frames_received_total, wan_udp_deliveries_total, and
// wan_udp_drops_total{reason=...} — see socket_base.hpp for the reason set.
//
// Topology file format (docs/WIRE_FORMAT.md): one `<host-id> <host>:<port>`
// pair per line; `#` starts a comment. Every process of a deployment loads
// the same file.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/env_options.hpp"
#include "runtime/socket_base.hpp"

namespace wan::runtime {

class UdpTransport final : public SocketTransport {
 public:
  /// Binds opts.listen (default "127.0.0.1:0"; port 0 picks an ephemeral
  /// port, see local_port()) and loads opts.topology_path if non-empty.
  /// Returns nullptr and sets *error on bind/parse failure.
  static std::unique_ptr<UdpTransport> create(const EnvOptions& opts,
                                              std::string* error);
  ~UdpTransport() override;

  /// Stops attached envs, then joins the socket threads. Idempotent; the
  /// destructor calls it.
  void shutdown() override;

 private:
  struct Outbound {
    std::vector<std::uint8_t> frame;
    ResolvedAddr dest;
  };

  UdpTransport() = default;

  bool enqueue_frame(std::vector<std::uint8_t> frame,
                     const ResolvedAddr& dest) override;
  void count_env_send() override;

  void sender_loop();
  void recv_loop();

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Outbound> queue_;

  std::atomic<bool> stopping_{false};
  std::thread sender_;
  std::thread receiver_;
};

}  // namespace wan::runtime
