// UdpTransport: the runtime fabric over real UDP sockets — nodes span
// processes and machines.
//
// One UdpTransport per OS process, owning one UDP socket. Local nodes attach
// exactly as they do to a LoopbackFabric (ThreadedEnv's transport port calls
// attach/send); remote nodes are reached through a static topology mapping
// HostId -> host:port, loaded from a file or patched in with add_peer().
// Frames on the wire are produced by the net::CodecRegistry codec
// (docs/WIRE_FORMAT.md): one frame per datagram, carrying source and
// destination HostIds in the header, so the receiver needs no reverse
// address map. Callers must register the protocol codecs
// (proto::register_wire_messages()) before the first send — the runtime
// layer itself is protocol-agnostic and never includes proto/ headers.
//
// Threads: a sender thread drains a bounded outbound queue (overflow drops
// the frame and counts it — UDP semantics, never backpressure into protocol
// code), and a recv-loop thread decodes inbound datagrams and posts each
// delivery onto the destination node's LoopCore. Both threads touch protocol
// state only through LoopCore::post_at, preserving the seam's
// single-threaded-per-node discipline.
//
// Observability (PR 4 registry): wan_udp_frames_sent_total,
// wan_udp_frames_received_total, wan_udp_deliveries_total, and
// wan_udp_drops_total{reason=...} where reason is one of queue_full,
// oversize, unregistered_type, unknown_dest, endpoint_down, blocked,
// not_local, sendto_error, or a codec DecodeError string (truncated,
// bad_magic, bad_version, unknown_tag, malformed).
//
// Topology file format (docs/WIRE_FORMAT.md): one `<host-id> <host>:<port>`
// pair per line; `#` starts a comment. Every process of a deployment loads
// the same file.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/env_options.hpp"
#include "runtime/fabric.hpp"

namespace wan::runtime {

/// Where a node listens: numeric IPv4 or a resolvable name, plus a UDP port.
struct NodeAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
  bool operator==(const NodeAddress&) const = default;
};

/// Parses "host:port". Returns nullopt on a missing colon, empty host, or an
/// out-of-range port.
[[nodiscard]] std::optional<NodeAddress> parse_node_address(
    const std::string& text);

/// Static HostId -> NodeAddress map shared by every process of a deployment.
class Topology {
 public:
  /// Loads from a file; on failure returns nullopt and describes why.
  static std::optional<Topology> load(const std::string& path,
                                      std::string* error);
  static std::optional<Topology> parse(std::istream& in, std::string* error);

  void add(HostId id, NodeAddress addr);
  [[nodiscard]] const NodeAddress* find(HostId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Entries keyed by HostId value, in ascending order.
  [[nodiscard]] const std::map<std::uint32_t, NodeAddress>& entries() const {
    return entries_;
  }

  /// The file representation (what load() parses) — orchestrators write this.
  [[nodiscard]] std::string serialize() const;

 private:
  std::map<std::uint32_t, NodeAddress> entries_;
};

class UdpTransport final : public Fabric {
 public:
  /// Binds opts.listen (default "127.0.0.1:0"; port 0 picks an ephemeral
  /// port, see local_port()) and loads opts.topology_path if non-empty.
  /// Returns nullptr and sets *error on bind/parse failure.
  static std::unique_ptr<UdpTransport> create(const EnvOptions& opts,
                                              std::string* error);
  ~UdpTransport() override;

  void attach(HostId id, std::shared_ptr<LoopCore> core,
              Transport::Handler handler) override;
  void set_endpoint_down(HostId id, bool down) override;
  void send(HostId from, HostId to, net::MessagePtr msg) override;

  /// The port actually bound (resolves a port-0 listen address).
  [[nodiscard]] std::uint16_t local_port() const noexcept {
    return local_port_;
  }

  /// Adds or replaces one peer route (tests patch in addresses discovered
  /// after their port-0 binds; production loads a topology file instead).
  bool add_peer(HostId id, const NodeAddress& addr);

  /// Drops every inbound frame whose source is `peer` (and counts it).
  /// Simulates a one-way partition for the revocation worst case: the cut
  /// host keeps serving its agent while manager traffic never arrives.
  void block_inbound_from(HostId peer, bool blocked);

  /// Stops attached envs, then joins the socket threads. Idempotent; the
  /// destructor calls it.
  void shutdown();

 private:
  struct ResolvedAddr {
    std::uint32_t ip_be = 0;    ///< network byte order
    std::uint16_t port_be = 0;  ///< network byte order
  };
  struct Endpoint {
    std::shared_ptr<LoopCore> core;
    Transport::Handler handler;
    bool down = false;
  };
  struct Outbound {
    std::vector<std::uint8_t> frame;
    ResolvedAddr dest;
  };

  UdpTransport() = default;

  void sender_loop();
  void recv_loop();
  void deliver(std::uint32_t from_value, std::uint32_t to_value,
               net::MessagePtr msg);

  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::size_t send_queue_limit_ = 1024;

  mutable std::mutex mu_;
  std::unordered_map<HostId, Endpoint> endpoints_;
  std::unordered_map<std::uint32_t, ResolvedAddr> peers_;  ///< HostId value
  std::unordered_set<std::uint32_t> blocked_sources_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Outbound> queue_;

  std::atomic<bool> stopping_{false};
  bool shut_down_ = false;  ///< shutdown() ran (guarded by mu_)
  std::thread sender_;
  std::thread receiver_;
};

}  // namespace wan::runtime
