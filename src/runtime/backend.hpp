// make_fabric: one construction path for every real-thread fabric backend.
//
// EnvOptions::backend names the backend; this factory builds it, so tools
// and tests that run over "whatever fabric the flag said" need no
// per-backend wiring. The three fabric kinds are:
//
//   * kLoopback — LoopbackFabric, in-process delivery with the options'
//     delay/jitter/loss shaping;
//   * kUdp      — UdpTransport, real sockets, thread-per-direction;
//   * kReactor  — ReactorTransport, real sockets, epoll + recvmmsg/sendmmsg.
//
// kSim is not a fabric (the simulator is an Env of its own); asking for it
// here is reported as an error, not aborted, so flag parsing can surface it.
//
// Sockets-backed fabrics return the SocketTransport view too (local_port,
// add_peer, block_inbound_from, fault plans); fabric_as_socket() downcasts
// when the caller needs that surface and nullptr for the loopback fabric.
#pragma once

#include <memory>
#include <string>

#include "runtime/env_options.hpp"
#include "runtime/fabric.hpp"

namespace wan::runtime {

class SocketTransport;

/// Builds the fabric opts.backend names. Returns nullptr and sets *error on
/// construction failure or on backend kinds that are not fabrics (kSim).
[[nodiscard]] std::unique_ptr<Fabric> make_fabric(const EnvOptions& opts,
                                                  std::string* error);

/// The socket-transport surface of a fabric built by make_fabric(), or
/// nullptr when the fabric is not socket-backed (loopback).
[[nodiscard]] SocketTransport* fabric_as_socket(Fabric* fabric) noexcept;

}  // namespace wan::runtime
