#include "runtime/fabric.hpp"

#include <algorithm>

#include "runtime/threaded_env.hpp"

namespace wan::runtime {

void Fabric::stop_all() {
  std::vector<ThreadedEnv*> envs;
  {
    std::lock_guard<std::mutex> lock(env_mu_);
    envs = envs_;
  }
  // stop() joins the loop thread, which may itself be blocked inside the
  // fabric's send(); never hold a fabric lock across it.
  for (ThreadedEnv* env : envs) env->stop();
}

void Fabric::register_env(ThreadedEnv* env) {
  std::lock_guard<std::mutex> lock(env_mu_);
  envs_.push_back(env);
}

void Fabric::forget_env(ThreadedEnv* env) {
  std::lock_guard<std::mutex> lock(env_mu_);
  envs_.erase(std::remove(envs_.begin(), envs_.end(), env), envs_.end());
}

}  // namespace wan::runtime
