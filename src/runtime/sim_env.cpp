#include "runtime/sim_env.hpp"

#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/timer.hpp"

namespace wan::runtime {

namespace {

obs::Counter& sim_timer_arms() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_env_timer_arms_total{env=\"sim\"}");
  return c;
}

class SimTimerImpl final : public TimerImpl {
 public:
  explicit SimTimerImpl(sim::Scheduler& sched) : timer_(sched) {}
  void arm(sim::Duration delay, std::function<void()> fn) override {
    sim_timer_arms().inc();
    timer_.arm(delay, std::move(fn));
  }
  void cancel() noexcept override { timer_.cancel(); }
  [[nodiscard]] bool pending() const noexcept override {
    return timer_.pending();
  }

 private:
  sim::Timer timer_;
};

class SimPeriodicTimerImpl final : public PeriodicTimerImpl {
 public:
  explicit SimPeriodicTimerImpl(sim::Scheduler& sched) : timer_(sched) {}
  void start(sim::Duration initial_delay, sim::Duration period,
             std::function<void()> fn) override {
    timer_.start(initial_delay, period, std::move(fn));
  }
  void stop() noexcept override { timer_.stop(); }
  [[nodiscard]] bool running() const noexcept override {
    return timer_.running();
  }

 private:
  sim::PeriodicTimer timer_;
};

}  // namespace

SimEnv::SimEnv(net::Network& net)
    : sched_(net.scheduler()), net_(net), transport_(net) {}

Timer SimEnv::make_timer() {
  return Timer(std::make_unique<SimTimerImpl>(sched_));
}

PeriodicTimer SimEnv::make_periodic_timer() {
  return PeriodicTimer(std::make_unique<SimPeriodicTimerImpl>(sched_));
}

}  // namespace wan::runtime
