// LoopCore: the mutex-protected timer wheel at the heart of every real-time
// node loop.
//
// Extracted from ThreadedEnv (where it began life as a private nested struct)
// so that transports living outside the env — the UDP socket transport's recv
// thread in particular — can enqueue deliveries onto a node's loop without
// knowing anything else about the env that drives it.
//
// A LoopCore is shared by shared_ptr between its env, its timers, and
// whatever fabric delivers into it; post_at() on a stopped core returns false
// and drops the work, which is exactly how a delivery to a crashed node
// should behave. One thread calls run_loop(); everything posted runs
// serialized on that thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

namespace wan::runtime {

struct LoopCore {
  using SteadyClock = std::chrono::steady_clock;
  using SteadyTP = SteadyClock::time_point;

  struct Entry {
    SteadyTP at;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    /// Set true to cancel; also flipped by timer shots when they fire so
    /// Timer::pending() stays accurate. Null for fire-and-forget work.
    std::shared_ptr<std::atomic<bool>> dead;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  explicit LoopCore(SteadyTP epoch) : epoch(epoch) {}

  const SteadyTP epoch;
  std::mutex mu;
  std::condition_variable cv;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue;
  std::uint64_t next_seq = 0;
  bool stopped = false;

  /// Enqueues work; returns false (dropping it) if the loop has stopped.
  static bool post_at(const std::shared_ptr<LoopCore>& core, SteadyTP at,
                      std::function<void()> fn,
                      std::shared_ptr<std::atomic<bool>> dead = nullptr) {
    {
      std::lock_guard<std::mutex> lock(core->mu);
      if (core->stopped) return false;
      core->queue.push(
          Entry{at, core->next_seq++, std::move(fn), std::move(dead)});
    }
    core->cv.notify_one();
    return true;
  }

  void run_loop() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stopped) {
      if (queue.empty()) {
        cv.wait(lock);
        continue;
      }
      const SteadyTP next = queue.top().at;
      if (next > SteadyClock::now()) {
        cv.wait_until(lock, next);
        continue;
      }
      // priority_queue::top() is const; the entry is moved out and popped
      // before the callback runs, so re-entrant posting is safe.
      Entry entry = std::move(const_cast<Entry&>(queue.top()));
      queue.pop();
      lock.unlock();
      if (!entry.dead || !entry.dead->load(std::memory_order_acquire)) {
        entry.fn();
      }
      lock.lock();
    }
  }
};

}  // namespace wan::runtime
