// ReliableChannel: ack/retransmit/dedup over the socket fabrics.
//
// The UDP fabrics (runtime/udp_transport.hpp, runtime/reactor_transport.hpp)
// are fire-and-forget: a dropped datagram is a lost message, and today the
// protocol survives only because its own timers retransmit *semantically*
// (update dissemination, revoke forwarding, sync rounds). That leaves real
// gaps — a lost InvokeReply or QueryResponse is gone, and every protocol
// retransmit restarts a whole round trip. This layer closes them at the
// frame level, beneath the protocol and above the sockets:
//
//   * Sender: every reliable message gets a per-flow (from, to) sequence
//     number and travels wrapped in net::ReliableData. Unacked frames
//     retransmit on an exponential-backoff schedule with jitter; after
//     `retry_budget` transmissions the frame is abandoned and the
//     peer_unreachable upcall fires (the operator's cue that retrying is
//     futile — the paper's Te expiry bounds the damage).
//   * Receiver: a cumulative watermark plus a bounded out-of-order window
//     dedups redelivery, so loss recovery never double-delivers (the
//     protocol is idempotent, but exactly-once delivery keeps decision logs
//     bit-comparable to the loss-free run). Every data frame is acked
//     immediately (net::ReliableAck: cumulative + 64-bit selective bitmap),
//     and acks also piggyback on reverse-direction data frames.
//   * Classification: net::Message::reliable() routes grants, revokes,
//     queries, syncs — everything — through the channel, except heartbeats
//     (whose loss IS the signal the freeze strategy measures) and the
//     envelope itself.
//
// Delivery order is arrival order, not sequence order: UDP reorders, the
// protocol tolerates it, and holding frames back would add latency for a
// property nothing needs. The guarantee added is exactly-once delivery per
// message, or an explicit peer_unreachable.
//
// Threading: send_reliable() runs on env loop threads, on_data/on_ack on the
// transport's receive thread, and one channel-owned timer thread drives
// retransmits and expiry. One mutex guards the flow tables; frames are
// handed to the transport's bounded outbound queue outside it. A queue-full
// shed of a reliable frame is recovered by the next retransmit — the bounded
// queue delays, it no longer silently drops.
//
// Observability: wan_retransmits_total, wan_acks_total (ack frames sent),
// wan_dup_drops_total (receive-side dedup), wan_reliable_expired_total
// (abandoned after budget), wan_reliable_rtt_seconds histogram (first-
// transmission acks only — Karn's rule keeps retransmit ambiguity out).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/reliable.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/env_options.hpp"
#include "runtime/socket_base.hpp"
#include "util/hash.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace wan::runtime {

class ReliableChannel {
 public:
  /// Hands one encoded frame to the backend's outbound queue; returns false
  /// when the bounded queue shed it (a later retransmit recovers).
  using EnqueueFn =
      std::function<bool(std::vector<std::uint8_t> frame, ResolvedAddr dest)>;
  /// Peer route lookup (acks travel to the data frame's source).
  using ResolveFn =
      std::function<std::optional<ResolvedAddr>(std::uint32_t host_value)>;
  /// Delivers an unwrapped inner message to the local endpoint.
  using DeliverFn = std::function<void(std::uint32_t from_value,
                                       std::uint32_t to_value,
                                       net::MessagePtr msg)>;
  /// Fired (off-lock, on the timer thread) when a peer exhausts the retry
  /// budget; `abandoned` counts the frames dropped for it in this sweep.
  using UnreachableFn = std::function<void(HostId peer, std::size_t abandoned)>;
  /// Runtime-clock nanos for span timestamps (steady clock since the owning
  /// fabric's epoch), so channel spans interleave correctly with the spans
  /// protocol modules record through env.now(). Empty = a channel-local
  /// epoch (standalone tests).
  using NowFn = std::function<std::int64_t()>;

  ReliableChannel(const ReliabilityOptions& opts, EnqueueFn enqueue,
                  ResolveFn resolve, DeliverFn deliver, NowFn now_nanos = {});
  ~ReliableChannel();
  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  void set_peer_unreachable(UnreachableFn fn);

  /// Wraps `msg` in a sequenced ReliableData envelope, records it for
  /// retransmission, and enqueues the first transmission.
  void send_reliable(HostId from, HostId to, const net::Message& msg,
                     const ResolvedAddr& dest);

  /// Inbound hooks (transport receive path, after fault injection — injected
  /// loss must hit the envelope so retransmission is what recovers it).
  void on_data(std::uint32_t from_value, std::uint32_t to_value,
               const net::ReliableData& data);
  void on_ack(std::uint32_t from_value, std::uint32_t to_value,
              const net::ReliableAck& ack);

  /// Stops the timer thread; idempotent. The owning transport calls it after
  /// its envs stop and before its I/O threads join (the channel enqueues
  /// into their queues).
  void stop();

  /// Sent-but-unacked frames across all flows (tests poll this to quiesce).
  [[nodiscard]] std::size_t in_flight() const;

 private:
  using SteadyClock = std::chrono::steady_clock;

  struct Pending {
    std::vector<std::uint8_t> frame;  ///< full encoded outer frame
    ResolvedAddr dest;
    SteadyClock::time_point first_sent;
    SteadyClock::time_point next_due;
    std::chrono::nanoseconds rto{};
    int attempts = 1;
  };
  struct SendFlow {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Pending> pending;  ///< keyed by seq
  };
  struct RecvFlow {
    std::uint64_t cum = 0;             ///< every seq <= cum was delivered
    std::set<std::uint64_t> above;     ///< out-of-order seqs > cum
  };

  static std::uint64_t flow_key(std::uint32_t from, std::uint32_t to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  /// Buckets the flow tables through the seeded stable hash: flow keys are
  /// built from peer-chosen host ids, and the identity hash the standard
  /// library defaults to would let a hostile or merely unlucky id pattern
  /// cluster every flow into a handful of buckets. stable_hash64 avalanches,
  /// so the dedup window stays O(1) regardless of the id distribution.
  struct FlowHash {
    std::size_t operator()(std::uint64_t key) const noexcept {
      return static_cast<std::size_t>(stable_hash64(kFlowHashSeed, key));
    }
  };
  static constexpr std::uint64_t kFlowHashSeed = 0x57414e464c4f5753ULL;

  /// Next interval: rto * backoff^(n) clamped to max, +/- jitter. mu_ held.
  std::chrono::nanoseconds jittered(std::chrono::nanoseconds rto);
  /// Ack state of the receive flow (from -> to). mu_ held.
  std::pair<std::uint64_t, std::uint64_t> ack_state(std::uint64_t key) const;
  /// Applies a cumulative + selective ack to a send flow. mu_ held.
  void absorb_ack(std::uint64_t key, std::uint64_t cum, std::uint64_t bits,
                  SteadyClock::time_point now);
  /// Encodes and enqueues a pure ack for the flow (data_from -> data_to).
  /// Called outside mu_.
  void send_ack(std::uint32_t data_from, std::uint32_t data_to);

  /// Flow-level span (trace 0: the channel is beneath the causal chains it
  /// carries). No-op when no tracer or sink is installed.
  void trace_flow(const char* name, obs::SpanKind kind, std::uint32_t from,
                  std::uint32_t to, std::int64_t a1) const noexcept;

  void timer_loop();

  const ReliabilityOptions opts_;
  const EnqueueFn enqueue_;
  const ResolveFn resolve_;
  const DeliverFn deliver_;
  const NowFn now_nanos_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::unordered_map<std::uint64_t, SendFlow, FlowHash> send_flows_;
  std::unordered_map<std::uint64_t, RecvFlow, FlowHash> recv_flows_;
  Rng jitter_rng_;
  UnreachableFn unreachable_;  ///< written before the first send in practice

  obs::Counter& retransmits_;
  obs::Counter& acks_sent_;
  obs::Counter& dup_drops_;
  obs::Counter& expired_;
  obs::Histo& rtt_;

  std::thread timer_;
};

}  // namespace wan::runtime
