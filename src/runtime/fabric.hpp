// Fabric: the backend a ThreadedEnv's transport port plugs into.
//
// A ThreadedEnv owns a node's event loop; a Fabric owns how datagrams move
// between loops. Two implementations exist:
//
//   * LoopbackFabric (runtime/threaded_env.hpp) — in-process, configurable
//     delay/jitter/loss; every node lives in one address space.
//   * UdpTransport   (runtime/udp_transport.hpp) — one UDP socket per
//     process, frames encoded by the net::CodecRegistry wire codec; nodes
//     span processes and machines.
//
// The split keeps ThreadedEnv backend-agnostic: it implements Env (timers,
// post, now) against its LoopCore and forwards every Transport call here.
// Protocol code above the seam cannot tell which fabric is underneath — the
// realtime Te smoke runs unchanged over either.
//
// The base class also owns the two things every fabric needs:
//   * the epoch — the steady-clock instant that is sim::TimePoint zero for
//     all envs of this fabric, so timestamps from different nodes compare;
//   * env bookkeeping for stop_all(), the teardown convenience that stops
//     every attached env's loop before protocol modules are destroyed.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/env.hpp"
#include "runtime/loop_core.hpp"

namespace wan::runtime {

class ThreadedEnv;

class Fabric {
 public:
  virtual ~Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registers `id`'s receive handler, delivered onto `core`'s loop.
  virtual void attach(HostId id, std::shared_ptr<LoopCore> core,
                      Transport::Handler handler) = 0;

  /// Marks a *local* endpoint crashed/recovered (inbound and outbound
  /// datagrams silently discarded while down).
  virtual void set_endpoint_down(HostId id, bool down) = 0;

  /// Unreliable unicast between endpoints.
  virtual void send(HostId from, HostId to, net::MessagePtr msg) = 0;

  /// Stops every env ever attached to this fabric (teardown convenience).
  void stop_all();

  /// Steady-clock instant that is sim::TimePoint zero for attached envs.
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const noexcept {
    return epoch_;
  }

 protected:
  Fabric() : epoch_(std::chrono::steady_clock::now()) {}

 private:
  friend class ThreadedEnv;
  void register_env(ThreadedEnv* env);
  void forget_env(ThreadedEnv* env);

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex env_mu_;
  std::vector<ThreadedEnv*> envs_;  ///< live envs, for stop_all
};

}  // namespace wan::runtime
