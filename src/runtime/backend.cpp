#include "runtime/backend.hpp"

#include "runtime/reactor_transport.hpp"
#include "runtime/threaded_env.hpp"
#include "runtime/udp_transport.hpp"

namespace wan::runtime {

std::unique_ptr<Fabric> make_fabric(const EnvOptions& opts,
                                    std::string* error) {
  switch (opts.backend) {
    case BackendKind::kLoopback:
      return std::make_unique<LoopbackFabric>(opts);
    case BackendKind::kUdp:
      return UdpTransport::create(opts, error);
    case BackendKind::kReactor:
      return ReactorTransport::create(opts, error);
    case BackendKind::kSim:
      break;
  }
  if (error) {
    *error = std::string("backend '") + to_cstring(opts.backend) +
             "' is not a fabric";
  }
  return nullptr;
}

SocketTransport* fabric_as_socket(Fabric* fabric) noexcept {
  return dynamic_cast<SocketTransport*>(fabric);
}

}  // namespace wan::runtime
