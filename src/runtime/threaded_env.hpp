// ThreadedEnv: the real-time runtime behind the seam.
//
// One ThreadedEnv per node. Each env owns an event-loop thread driving a
// LoopCore (runtime/loop_core.hpp) — a mutex-protected timer wheel; timers,
// post()ed work, and inbound deliveries all run serialized on that thread,
// so protocol modules stay single-threaded per node with no locks of their
// own — the same discipline the simulator enforces by construction.
//
// Nodes are connected by a Fabric (runtime/fabric.hpp). The in-process
// implementation here is LoopbackFabric: a datagram transport with
// configurable constant delay (+ uniform jitter) and i.i.d. loss. A send
// locks the fabric, samples loss/delay, and enqueues the delivery onto the
// destination env's loop. The fabric holds each env's loop core by
// shared_ptr, so deliveries to an env that has already stopped (or been
// destroyed) are silently dropped — exactly an unreachable host. The UDP
// socket fabric lives in runtime/udp_transport.hpp; a ThreadedEnv runs
// unchanged over either.
//
// Time: sim::TimePoint, measured from the fabric's construction instant on
// the shared steady clock, so timestamps from different nodes are comparable
// (the envs of one fabric model one "real time", as in the paper; per-node
// *local* clock skew stays in runtime::Clock / clk::LocalClock on top).
//
// Teardown discipline: call stop() (or let Fabric::stop_all() do it) on
// every env BEFORE destroying the protocol modules attached to it — a
// stopped loop runs nothing, so queued deliveries can no longer touch a
// module being destroyed.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "runtime/env.hpp"
#include "runtime/env_options.hpp"
#include "runtime/fabric.hpp"
#include "runtime/loop_core.hpp"
#include "util/rng.hpp"

namespace wan::runtime {

class ThreadedEnv final : public Env {
 public:
  explicit ThreadedEnv(Fabric& fabric);
  ~ThreadedEnv() override;
  ThreadedEnv(const ThreadedEnv&) = delete;
  ThreadedEnv& operator=(const ThreadedEnv&) = delete;

  [[nodiscard]] sim::TimePoint now() const override;
  [[nodiscard]] Timer make_timer() override;
  [[nodiscard]] PeriodicTimer make_periodic_timer() override;
  [[nodiscard]] Transport& transport() override;
  void post(std::function<void()> fn) override;

  /// Posts `fn` onto the loop and blocks until it has run. The only safe way
  /// for an external (driver/test) thread to call into a node's modules.
  /// Must not be called from the loop thread itself (deadlock) or after
  /// stop() (the work would never run).
  void run_sync(std::function<void()> fn);

  /// Stops the loop and joins the thread. Pending and future work is
  /// discarded; deliveries from other nodes are dropped. Idempotent.
  void stop();

 private:
  class Port;

  Fabric& fabric_;
  std::shared_ptr<LoopCore> core_;
  std::unique_ptr<Port> port_;
  std::thread thread_;
};

/// In-process datagram fabric connecting ThreadedEnvs. Uses the simulated-
/// path fields of EnvOptions (delay, jitter, loss, seed); the socket fields
/// are ignored.
class LoopbackFabric final : public Fabric {
 public:
  LoopbackFabric() : LoopbackFabric(EnvOptions{}) {}
  explicit LoopbackFabric(const EnvOptions& opts);

  void attach(HostId id, std::shared_ptr<LoopCore> core,
              Transport::Handler handler) override;
  void set_endpoint_down(HostId id, bool down) override;
  void send(HostId from, HostId to, net::MessagePtr msg) override;

  /// Datagrams handed to a destination loop (delivered counter; diagnostics).
  [[nodiscard]] std::uint64_t delivered() const;
  [[nodiscard]] std::uint64_t sent() const;

 private:
  struct Endpoint {
    std::shared_ptr<LoopCore> core;
    Transport::Handler handler;
    bool down = false;
  };

  mutable std::mutex mu_;
  EnvOptions opts_;
  Rng rng_;
  std::unordered_map<HostId, Endpoint> endpoints_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace wan::runtime
