// ThreadedEnv: the real-time runtime behind the seam.
//
// One ThreadedEnv per node. Each env owns an event-loop thread driving a
// mutex-protected timer wheel (a priority queue of steady-clock deadlines);
// timers, post()ed work, and inbound deliveries all run serialized on that
// thread, so protocol modules stay single-threaded per node with no locks of
// their own — the same discipline the simulator enforces by construction.
//
// Nodes are connected by a LoopbackFabric: an in-process datagram transport
// with configurable constant delay (+ uniform jitter) and i.i.d. loss. A
// send locks the fabric, samples loss/delay, and enqueues the delivery onto
// the destination env's loop. The fabric holds each env's loop core by
// shared_ptr, so deliveries to an env that has already stopped (or been
// destroyed) are silently dropped — exactly an unreachable host.
//
// Time: sim::TimePoint, measured from the fabric's construction instant on
// the shared steady clock, so timestamps from different nodes are comparable
// (the envs of one fabric model one "real time", as in the paper; per-node
// *local* clock skew stays in runtime::Clock / clk::LocalClock on top).
//
// Teardown discipline: call stop() (or let LoopbackFabric::stop_all() do it)
// on every env BEFORE destroying the protocol modules attached to it — a
// stopped loop runs nothing, so queued deliveries can no longer touch a
// module being destroyed.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/env.hpp"
#include "util/rng.hpp"

namespace wan::runtime {

class LoopbackFabric;

class ThreadedEnv final : public Env {
 public:
  explicit ThreadedEnv(LoopbackFabric& fabric);
  ~ThreadedEnv() override;
  ThreadedEnv(const ThreadedEnv&) = delete;
  ThreadedEnv& operator=(const ThreadedEnv&) = delete;

  [[nodiscard]] sim::TimePoint now() const override;
  [[nodiscard]] Timer make_timer() override;
  [[nodiscard]] PeriodicTimer make_periodic_timer() override;
  [[nodiscard]] Transport& transport() override;
  void post(std::function<void()> fn) override;

  /// Posts `fn` onto the loop and blocks until it has run. The only safe way
  /// for an external (driver/test) thread to call into a node's modules.
  /// Must not be called from the loop thread itself (deadlock) or after
  /// stop() (the work would never run).
  void run_sync(std::function<void()> fn);

  /// Stops the loop and joins the thread. Pending and future work is
  /// discarded; deliveries from other nodes are dropped. Idempotent.
  void stop();

  /// The loop core, shared with timers and the fabric (lifetime safety).
  struct Core;

 private:
  class Port;

  LoopbackFabric& fabric_;
  std::shared_ptr<Core> core_;
  std::unique_ptr<Port> port_;
  std::thread thread_;
};

/// In-process datagram fabric connecting ThreadedEnvs.
class LoopbackFabric {
 public:
  struct Config {
    sim::Duration delay = sim::Duration::millis(1);   ///< per-datagram latency
    sim::Duration jitter = sim::Duration{};           ///< + uniform [0, jitter]
    double loss = 0.0;                                ///< i.i.d. drop prob
    std::uint64_t seed = 1;                           ///< loss/jitter stream
  };

  LoopbackFabric() : LoopbackFabric(Config{}) {}
  explicit LoopbackFabric(Config config);
  LoopbackFabric(const LoopbackFabric&) = delete;
  LoopbackFabric& operator=(const LoopbackFabric&) = delete;

  /// Stops every env ever attached to this fabric (teardown convenience).
  void stop_all();

  /// Datagrams handed to a destination loop (delivered counter; diagnostics).
  [[nodiscard]] std::uint64_t delivered() const;
  [[nodiscard]] std::uint64_t sent() const;

  /// Steady-clock instant that is sim::TimePoint zero for attached envs.
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const noexcept {
    return epoch_;
  }

 private:
  friend class ThreadedEnv;

  struct Endpoint {
    std::shared_ptr<ThreadedEnv::Core> core;
    Transport::Handler handler;
    bool down = false;
  };

  void attach(HostId id, std::shared_ptr<ThreadedEnv::Core> core,
              Transport::Handler handler);
  void set_endpoint_down(HostId id, bool down);
  void send(HostId from, HostId to, net::MessagePtr msg);
  void register_env(ThreadedEnv* env);
  void forget_env(ThreadedEnv* env);

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  Config config_;
  Rng rng_;
  std::unordered_map<HostId, Endpoint> endpoints_;
  std::vector<ThreadedEnv*> envs_;  ///< live envs, for stop_all
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace wan::runtime
