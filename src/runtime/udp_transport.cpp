#include "runtime/udp_transport.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

#include "net/codec.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace wan::runtime {

std::unique_ptr<UdpTransport> UdpTransport::create(const EnvOptions& opts,
                                                   std::string* error) {
  // Can't use make_unique with the private constructor.
  std::unique_ptr<UdpTransport> t(new UdpTransport());
  if (!t->open_socket(opts, error)) return nullptr;

  // The recv loop blocks at most this long before rechecking the stop flag,
  // which bounds shutdown() latency without fd-closing races.
  timeval timeout{};
  timeout.tv_usec = 100 * 1000;
  ::setsockopt(t->fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  t->sender_ = std::thread([p = t.get()] { p->sender_loop(); });
  t->receiver_ = std::thread([p = t.get()] { p->recv_loop(); });
  return t;
}

UdpTransport::~UdpTransport() { shutdown(); }

void UdpTransport::shutdown() {
  if (!mark_shut_down()) return;
  // Envs first: once their loops stop, queued deliveries are dropped and no
  // protocol code runs while the socket threads wind down. The reliability
  // layer goes next — its timer thread enqueues into the sender queue, so it
  // must stop before the sender does.
  stop_all();
  stop_reliable();
  stopping_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  if (sender_.joinable()) sender_.join();
  if (receiver_.joinable()) receiver_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UdpTransport::count_env_send() {
  static obs::Counter& sends =
      obs::Registry::global().counter("wan_env_sends_total{env=\"udp\"}");
  sends.inc();
}

bool UdpTransport::enqueue_frame(std::vector<std::uint8_t> frame,
                                 const ResolvedAddr& dest) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= send_queue_limit_) {
      count_socket_drop("queue_full");
      return false;
    }
    queue_.push_back(Outbound{std::move(frame), dest});
  }
  queue_cv_.notify_one();
  return true;
}

void UdpTransport::sender_loop() {
  for (;;) {
    Outbound out;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) return;  // only reachable when stopping
      out = std::move(queue_.front());
      queue_.pop_front();
    }
    sockaddr_in dest{};
    dest.sin_family = AF_INET;
    dest.sin_port = out.dest.port_be;
    dest.sin_addr.s_addr = out.dest.ip_be;
    const ssize_t n =
        ::sendto(fd_, out.frame.data(), out.frame.size(), 0,
                 reinterpret_cast<const sockaddr*>(&dest), sizeof dest);
    if (n < 0) {
      count_socket_drop("sendto_error");
    } else {
      socket_frames_sent().inc();
    }
  }
}

void UdpTransport::recv_loop() {
  std::vector<std::uint8_t> buf(65536);
  while (!stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                                 /*src_addr=*/nullptr, /*addrlen=*/nullptr);
    if (n < 0) continue;  // timeout (stop-flag recheck) or transient error
    on_datagram(buf.data(), static_cast<std::size_t>(n));
  }
}

}  // namespace wan::runtime
