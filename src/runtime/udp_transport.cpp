#include "runtime/udp_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "net/codec.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace wan::runtime {

namespace {

using SteadyClock = std::chrono::steady_clock;

obs::Counter& frames_sent() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_udp_frames_sent_total");
  return c;
}

obs::Counter& frames_received() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_udp_frames_received_total");
  return c;
}

obs::Counter& deliveries() {
  static obs::Counter& c =
      obs::Registry::global().counter("wan_udp_deliveries_total");
  return c;
}

// Drops are rare and labeled by reason, so the per-call registry lookup is
// fine (the hot counters above are the cached ones).
void count_drop(const char* reason) {
  obs::Registry::global()
      .counter(std::string("wan_udp_drops_total{reason=\"") + reason + "\"}")
      .inc();
}

bool parse_port(const std::string& text, std::uint16_t* port) {
  if (text.empty() || text.size() > 5) return false;
  std::uint32_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (value > 65535) return false;
  *port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// NodeAddress / Topology

std::string NodeAddress::to_string() const {
  return host + ":" + std::to_string(port);
}

std::optional<NodeAddress> parse_node_address(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  NodeAddress addr;
  addr.host = text.substr(0, colon);
  if (!parse_port(text.substr(colon + 1), &addr.port)) return std::nullopt;
  return addr;
}

std::optional<Topology> Topology::load(const std::string& path,
                                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open topology file '" + path + "'";
    return std::nullopt;
  }
  return parse(in, error);
}

std::optional<Topology> Topology::parse(std::istream& in, std::string* error) {
  Topology topo;
  std::string line;
  for (int lineno = 1; std::getline(in, line); ++lineno) {
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string id_text, addr_text, extra;
    if (!(fields >> id_text)) continue;  // blank / comment-only line
    const auto complain = [&](const std::string& what) {
      if (error) {
        *error = "topology line " + std::to_string(lineno) + ": " + what;
      }
      return std::nullopt;
    };
    if (!(fields >> addr_text)) return complain("expected '<id> <host>:<port>'");
    if (fields >> extra) return complain("trailing text '" + extra + "'");
    std::uint64_t id_value = 0;
    for (const char c : id_text) {
      if (c < '0' || c > '9') return complain("bad host id '" + id_text + "'");
      id_value = id_value * 10 + static_cast<std::uint64_t>(c - '0');
      if (id_value > 0xFFFFFFFFull) {
        return complain("host id out of range '" + id_text + "'");
      }
    }
    const std::optional<NodeAddress> addr = parse_node_address(addr_text);
    if (!addr) return complain("bad address '" + addr_text + "'");
    if (topo.entries_.count(static_cast<std::uint32_t>(id_value)) != 0) {
      return complain("duplicate host id '" + id_text + "'");
    }
    topo.add(HostId(static_cast<std::uint32_t>(id_value)), *addr);
  }
  return topo;
}

void Topology::add(HostId id, NodeAddress addr) {
  entries_[id.value()] = std::move(addr);
}

const NodeAddress* Topology::find(HostId id) const {
  const auto it = entries_.find(id.value());
  return it == entries_.end() ? nullptr : &it->second;
}

std::string Topology::serialize() const {
  std::string out = "# wan topology: <host-id> <host>:<port>\n";
  for (const auto& [id, addr] : entries_) {
    out += std::to_string(id) + " " + addr.to_string() + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// UdpTransport

namespace {

std::optional<std::uint32_t> resolve_host(const std::string& host,
                                          std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_DGRAM;
  addrinfo* result = nullptr;
  if (const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &result);
      rc != 0) {
    if (error) {
      *error = "cannot resolve '" + host + "': " + ::gai_strerror(rc);
    }
    return std::nullopt;
  }
  const std::uint32_t ip_be =
      reinterpret_cast<const sockaddr_in*>(result->ai_addr)->sin_addr.s_addr;
  ::freeaddrinfo(result);
  return ip_be;
}

}  // namespace

std::unique_ptr<UdpTransport> UdpTransport::create(const EnvOptions& opts,
                                                   std::string* error) {
  const std::string listen_text =
      opts.listen.empty() ? std::string("127.0.0.1:0") : opts.listen;
  const std::optional<NodeAddress> listen = parse_node_address(listen_text);
  if (!listen) {
    if (error) *error = "bad listen address '" + listen_text + "'";
    return nullptr;
  }
  const std::optional<std::uint32_t> listen_ip =
      resolve_host(listen->host, error);
  if (!listen_ip) return nullptr;

  // Can't use make_unique with the private constructor.
  std::unique_ptr<UdpTransport> t(new UdpTransport());
  t->send_queue_limit_ = opts.send_queue_limit;

  t->fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (t->fd_ < 0) {
    if (error) *error = std::string("socket(): ") + std::strerror(errno);
    return nullptr;
  }
  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_port = htons(listen->port);
  bind_addr.sin_addr.s_addr = *listen_ip;
  if (::bind(t->fd_, reinterpret_cast<const sockaddr*>(&bind_addr),
             sizeof bind_addr) != 0) {
    if (error) {
      *error = "bind(" + listen->to_string() + "): " + std::strerror(errno);
    }
    return nullptr;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(t->fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    if (error) *error = std::string("getsockname(): ") + std::strerror(errno);
    return nullptr;
  }
  t->local_port_ = ntohs(bound.sin_port);

  // The recv loop blocks at most this long before rechecking the stop flag,
  // which bounds shutdown() latency without fd-closing races.
  timeval timeout{};
  timeout.tv_usec = 100 * 1000;
  ::setsockopt(t->fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  if (!opts.topology_path.empty()) {
    const std::optional<Topology> topo =
        Topology::load(opts.topology_path, error);
    if (!topo) return nullptr;
    for (const auto& [id, addr] : topo->entries()) {
      if (!t->add_peer(HostId(id), addr)) {
        if (error) {
          *error = "topology host " + std::to_string(id) +
                   ": cannot resolve '" + addr.host + "'";
        }
        return nullptr;
      }
    }
  }

  t->sender_ = std::thread([p = t.get()] { p->sender_loop(); });
  t->receiver_ = std::thread([p = t.get()] { p->recv_loop(); });
  return t;
}

UdpTransport::~UdpTransport() { shutdown(); }

void UdpTransport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Envs first: once their loops stop, queued deliveries are dropped and no
  // protocol code runs while the socket threads wind down.
  stop_all();
  stopping_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  if (sender_.joinable()) sender_.join();
  if (receiver_.joinable()) receiver_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UdpTransport::attach(HostId id, std::shared_ptr<LoopCore> core,
                          Transport::Handler handler) {
  WAN_REQUIRE(id.valid());
  WAN_REQUIRE(handler != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[id] = Endpoint{std::move(core), std::move(handler), false};
}

void UdpTransport::set_endpoint_down(HostId id, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = endpoints_.find(id);
  WAN_REQUIRE(it != endpoints_.end());
  it->second.down = down;
}

bool UdpTransport::add_peer(HostId id, const NodeAddress& addr) {
  const std::optional<std::uint32_t> ip_be = resolve_host(addr.host, nullptr);
  if (!ip_be) return false;
  std::lock_guard<std::mutex> lock(mu_);
  peers_[id.value()] = ResolvedAddr{*ip_be, htons(addr.port)};
  return true;
}

void UdpTransport::block_inbound_from(HostId peer, bool blocked) {
  std::lock_guard<std::mutex> lock(mu_);
  if (blocked) {
    blocked_sources_.insert(peer.value());
  } else {
    blocked_sources_.erase(peer.value());
  }
}

void UdpTransport::send(HostId from, HostId to, net::MessagePtr msg) {
  WAN_REQUIRE(msg != nullptr);
  static obs::Counter& sends =
      obs::Registry::global().counter("wan_env_sends_total{env=\"udp\"}");
  sends.inc();
  ResolvedAddr dest{};
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto src = endpoints_.find(from);
    if (src == endpoints_.end() || src->second.down) {
      count_drop("endpoint_down");
      return;
    }
    const auto peer = peers_.find(to.value());
    if (peer == peers_.end()) {
      count_drop("unknown_dest");
      return;
    }
    dest = peer->second;
  }
  const net::CodecRegistry& codec = net::CodecRegistry::global();
  if (!codec.tag_of(*msg)) {
    count_drop("unregistered_type");
    return;
  }
  std::optional<std::vector<std::uint8_t>> frame = codec.encode(from, to, *msg);
  if (!frame) {
    // tag_of succeeded, so the only way encode fails is a frame bigger than
    // one UDP datagram can carry.
    count_drop("oversize");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= send_queue_limit_) {
      count_drop("queue_full");
      return;
    }
    queue_.push_back(Outbound{std::move(*frame), dest});
  }
  queue_cv_.notify_one();
}

void UdpTransport::sender_loop() {
  for (;;) {
    Outbound out;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) return;  // only reachable when stopping
      out = std::move(queue_.front());
      queue_.pop_front();
    }
    sockaddr_in dest{};
    dest.sin_family = AF_INET;
    dest.sin_port = out.dest.port_be;
    dest.sin_addr.s_addr = out.dest.ip_be;
    const ssize_t n =
        ::sendto(fd_, out.frame.data(), out.frame.size(), 0,
                 reinterpret_cast<const sockaddr*>(&dest), sizeof dest);
    if (n < 0) {
      count_drop("sendto_error");
    } else {
      frames_sent().inc();
    }
  }
}

void UdpTransport::recv_loop() {
  std::vector<std::uint8_t> buf(65536);
  while (!stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                                 /*src_addr=*/nullptr, /*addrlen=*/nullptr);
    if (n < 0) continue;  // timeout (stop-flag recheck) or transient error
    frames_received().inc();
    const net::CodecRegistry::Decoded decoded =
        net::CodecRegistry::global().decode(buf.data(),
                                            static_cast<std::size_t>(n));
    if (!decoded.ok()) {
      count_drop(net::to_cstring(decoded.error));
      continue;
    }
    deliver(decoded.frame->from.value(), decoded.frame->to.value(),
            decoded.frame->msg);
  }
}

void UdpTransport::deliver(std::uint32_t from_value, std::uint32_t to_value,
                           net::MessagePtr msg) {
  std::shared_ptr<LoopCore> core;
  Transport::Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (blocked_sources_.count(from_value) != 0) {
      count_drop("blocked");
      return;
    }
    const auto it = endpoints_.find(HostId(to_value));
    if (it == endpoints_.end()) {
      count_drop("not_local");
      return;
    }
    if (it->second.down) {
      count_drop("endpoint_down");
      return;
    }
    core = it->second.core;
    handler = it->second.handler;
  }
  deliveries().inc();
  LoopCore::post_at(core, SteadyClock::now(),
                    [handler = std::move(handler), from = HostId(from_value),
                     msg = std::move(msg)] { handler(from, msg); });
}

}  // namespace wan::runtime
