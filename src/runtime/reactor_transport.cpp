#include "runtime/reactor_transport.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/codec.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace wan::runtime {

namespace {

// Large enough that a localhost saturation bench is not limited by kernel
// socket buffers; best effort (the kernel clamps to its sysctl ceilings).
constexpr int kSocketBufBytes = 4 * 1024 * 1024;

}  // namespace

std::unique_ptr<ReactorTransport> ReactorTransport::create(
    const EnvOptions& opts, std::string* error) {
  // Can't use make_unique with the private constructor.
  std::unique_ptr<ReactorTransport> t(new ReactorTransport());
  if (!t->open_socket(opts, error)) return nullptr;

  if (::fcntl(t->fd_, F_SETFL, O_NONBLOCK) != 0) {
    if (error) *error = std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno);
    return nullptr;
  }
  ::setsockopt(t->fd_, SOL_SOCKET, SO_RCVBUF, &kSocketBufBytes,
               sizeof kSocketBufBytes);
  ::setsockopt(t->fd_, SOL_SOCKET, SO_SNDBUF, &kSocketBufBytes,
               sizeof kSocketBufBytes);

  t->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (t->epoll_fd_ < 0) {
    if (error) *error = std::string("epoll_create1(): ") + std::strerror(errno);
    return nullptr;
  }
  t->wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (t->wake_fd_ < 0) {
    if (error) *error = std::string("eventfd(): ") + std::strerror(errno);
    return nullptr;
  }
  epoll_event sock_ev{};
  sock_ev.events = EPOLLIN;
  sock_ev.data.fd = t->fd_;
  epoll_event wake_ev{};
  wake_ev.events = EPOLLIN;
  wake_ev.data.fd = t->wake_fd_;
  if (::epoll_ctl(t->epoll_fd_, EPOLL_CTL_ADD, t->fd_, &sock_ev) != 0 ||
      ::epoll_ctl(t->epoll_fd_, EPOLL_CTL_ADD, t->wake_fd_, &wake_ev) != 0) {
    if (error) *error = std::string("epoll_ctl(): ") + std::strerror(errno);
    return nullptr;
  }

  t->reactor_ = std::thread([p = t.get()] { p->reactor_loop(); });
  return t;
}

ReactorTransport::~ReactorTransport() {
  shutdown();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

void ReactorTransport::shutdown() {
  if (!mark_shut_down()) return;
  // Envs first: once their loops stop, queued deliveries are dropped and no
  // protocol code runs while the reactor winds down. The reliability layer
  // goes next — its timer thread enqueues into the outbound queue, so it
  // must stop before the reactor does.
  stop_all();
  stop_reliable();
  stopping_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }
  if (reactor_.joinable()) reactor_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<std::uint8_t> ReactorTransport::take_buffer() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_.empty()) return {};
  std::vector<std::uint8_t> buf = std::move(pool_.back());
  pool_.pop_back();
  return buf;
}

void ReactorTransport::recycle_buffer(std::vector<std::uint8_t>&& buf) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_.size() < send_queue_limit_) pool_.push_back(std::move(buf));
}

void ReactorTransport::count_env_send() {
  static obs::Counter& sends =
      obs::Registry::global().counter("wan_env_sends_total{env=\"reactor\"}");
  sends.inc();
}

std::vector<std::uint8_t> ReactorTransport::take_send_buffer() {
  return take_buffer();
}

void ReactorTransport::recycle_send_buffer(std::vector<std::uint8_t>&& buf) {
  recycle_buffer(std::move(buf));
}

bool ReactorTransport::enqueue_frame(std::vector<std::uint8_t> frame,
                                     const ResolvedAddr& dest) {
  bool was_empty = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= send_queue_limit_) {
      count_socket_drop("queue_full");
      return false;
    }
    was_empty = queue_.empty();
    queue_.push_back(Outbound{std::move(frame), dest});
  }
  // Ring the reactor only on the empty->nonempty edge: once it is awake it
  // drains the whole queue, so further wakeups would be redundant syscalls.
  if (was_empty) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }
  return true;
}

void ReactorTransport::set_want_write(bool want) {
  if (want == want_write_) return;
  want_write_ = want;
  epoll_event ev{};
  ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd_, &ev);
}

void ReactorTransport::reactor_loop() {
  epoll_event events[4];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 4, /*timeout_ms=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone — shutdown is racing us
    }
    bool readable = false;
    bool writable = false;
    bool woken = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == wake_fd_) {
        woken = true;
      } else {
        if (events[i].events & EPOLLIN) readable = true;
        if (events[i].events & EPOLLOUT) writable = true;
      }
    }
    if (woken) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(wake_fd_, &drained, sizeof drained);
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    if (readable) drain_inbound();
    // Flush whenever there might be outbound work: a wakeup (new frames), a
    // writable edge (kernel buffer drained), or leftovers from a prior pass.
    if (woken || writable || want_write_) {
      set_want_write(!flush_outbound());
    }
  }
}

void ReactorTransport::drain_inbound() {
  // Preallocated batch machinery: kBatch slots, each a full-size datagram
  // buffer, reused across every recvmmsg call for the life of the reactor.
  static thread_local std::vector<std::uint8_t> storage(kBatch * 65536);
  static thread_local std::array<iovec, kBatch> iovecs;
  static thread_local std::array<mmsghdr, kBatch> headers;
  for (unsigned i = 0; i < kBatch; ++i) {
    iovecs[i].iov_base = storage.data() + i * std::size_t{65536};
    iovecs[i].iov_len = 65536;
    headers[i].msg_hdr = msghdr{};
    headers[i].msg_hdr.msg_iov = &iovecs[i];
    headers[i].msg_hdr.msg_iovlen = 1;
  }
  for (;;) {
    const int got = ::recvmmsg(fd_, headers.data(), kBatch, MSG_DONTWAIT,
                               /*timeout=*/nullptr);
    if (got <= 0) return;  // EAGAIN (drained) or transient error
    for (int i = 0; i < got; ++i) {
      on_datagram(static_cast<const std::uint8_t*>(iovecs[i].iov_base),
                  headers[i].msg_len);
    }
    if (static_cast<unsigned>(got) < kBatch) return;  // socket drained
  }
}

bool ReactorTransport::flush_outbound() {
  for (;;) {
    // Pop up to one batch; sending happens outside queue_mu_ so send() is
    // never blocked behind a syscall.
    std::array<Outbound, kBatch> batch;
    unsigned count = 0;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      while (count < kBatch && !queue_.empty()) {
        batch[count++] = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (count == 0) return true;

    std::array<sockaddr_in, kBatch> dests;
    std::array<iovec, kBatch> iovecs;
    std::array<mmsghdr, kBatch> headers;
    for (unsigned i = 0; i < count; ++i) {
      dests[i] = sockaddr_in{};
      dests[i].sin_family = AF_INET;
      dests[i].sin_port = batch[i].dest.port_be;
      dests[i].sin_addr.s_addr = batch[i].dest.ip_be;
      iovecs[i].iov_base = batch[i].frame.data();
      iovecs[i].iov_len = batch[i].frame.size();
      headers[i].msg_hdr = msghdr{};
      headers[i].msg_hdr.msg_name = &dests[i];
      headers[i].msg_hdr.msg_namelen = sizeof dests[i];
      headers[i].msg_hdr.msg_iov = &iovecs[i];
      headers[i].msg_hdr.msg_iovlen = 1;
    }

    unsigned sent = 0;
    while (sent < count) {
      const int n =
          ::sendmmsg(fd_, headers.data() + sent, count - sent, MSG_DONTWAIT);
      if (n > 0) {
        for (int i = 0; i < n; ++i) {
          socket_frames_sent().inc();
          recycle_buffer(std::move(batch[sent + i].frame));
        }
        sent += static_cast<unsigned>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full: requeue the unsent tail (preserving order) and
        // let EPOLLOUT resume us.
        std::lock_guard<std::mutex> lock(queue_mu_);
        for (unsigned i = count; i > sent; --i) {
          queue_.push_front(std::move(batch[i - 1]));
        }
        return false;
      }
      // Hard error on the head frame: drop it, keep going with the rest.
      count_socket_drop("sendto_error");
      recycle_buffer(std::move(batch[sent].frame));
      ++sent;
    }
  }
}

}  // namespace wan::runtime
