// SimEnv: the deterministic simulation behind the runtime seam.
//
// A thin adapter over sim::Scheduler + net::Network. Every call delegates 1:1
// to the primitive the protocol used before the seam existed — same scheduler
// entries, same RNG draws, same ordering — so refactoring protocol code onto
// runtime::Env leaves every chaos seed bit-identical (pinned by the per-seed
// trace-hash comparison in the chaos sweep JSON).
//
// One SimEnv serves the whole simulated world: all nodes share the scheduler
// and the simulated network, exactly as before.
#pragma once

#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "runtime/env.hpp"
#include "sim/scheduler.hpp"

namespace wan::runtime {

class SimEnv final : public Env {
 public:
  explicit SimEnv(net::Network& net);

  [[nodiscard]] sim::TimePoint now() const override { return sched_.now(); }
  [[nodiscard]] Timer make_timer() override;
  [[nodiscard]] PeriodicTimer make_periodic_timer() override;
  [[nodiscard]] Transport& transport() override { return transport_; }
  void post(std::function<void()> fn) override {
    static obs::Counter& posts =
        obs::Registry::global().counter("wan_env_posts_total{env=\"sim\"}");
    posts.inc();
    sched_.post_after(sim::Duration{}, std::move(fn));
  }

  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] net::Network& network() noexcept { return net_; }

 private:
  class SimTransport final : public Transport {
   public:
    explicit SimTransport(net::Network& net) : net_(net) {}
    void register_endpoint(HostId id, Handler handler) override {
      net_.register_host(id, std::move(handler));
    }
    void set_endpoint_down(HostId id, bool down) override {
      net_.set_host_down(id, down);
    }
    void send(HostId from, HostId to, net::MessagePtr msg) override {
      static obs::Counter& sends =
          obs::Registry::global().counter("wan_env_sends_total{env=\"sim\"}");
      sends.inc();
      net_.send(from, to, std::move(msg));
    }
    void multicast(HostId from, const std::vector<HostId>& to,
                   const net::MessagePtr& msg) override {
      net_.multicast(from, to, msg);
    }

   private:
    net::Network& net_;
  };

  sim::Scheduler& sched_;
  net::Network& net_;
  SimTransport transport_;
};

}  // namespace wan::runtime
