// The runtime seam: everything the protocol needs from its execution
// environment, and nothing else.
//
// The paper's protocol (§3) is defined over abstract primitives — a local
// clock bounded by `b`, per-attempt timers, unreliable datagram send. The
// protocol layer (src/proto, src/baseline, src/workload) depends only on the
// interfaces in this header; concrete environments plug in underneath:
//
//   * SimEnv      (runtime/sim_env.hpp)      — deterministic discrete-event
//     simulation over sim::Scheduler + net::Network. Bit-reproducible; the
//     chaos harness and every test run here.
//   * ThreadedEnv (runtime/threaded_env.hpp) — real threads, steady-clock
//     time, an in-process loopback transport with configurable delay/loss.
//     The realtime smoke and TSan CI run here; real sockets slot in later.
//
// Rules of the seam (see docs/ARCHITECTURE.md):
//   * Protocol code includes runtime/env.hpp, never sim/scheduler.hpp or
//     net/network.hpp. The only sim types it may touch are the pure value
//     types sim::Duration / sim::TimePoint (sim/time.hpp) and the message
//     base net::Message (net/message.hpp).
//   * Everything a node does — timer callbacks, message handlers, post()ed
//     work — runs serialized on that node's environment. Protocol modules are
//     single-threaded by construction and contain no locks.
//   * External threads may only talk to a node via Env::post().
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"
#include "clock/local_clock.hpp"
#include "util/ids.hpp"

namespace wan::runtime {

/// Implementation side of a one-shot timer. Environments subclass this;
/// protocol code only ever sees the Timer value wrapper below.
class TimerImpl {
 public:
  virtual ~TimerImpl() = default;
  /// Arms the timer to fire `delay` from now, cancelling any pending shot.
  virtual void arm(sim::Duration delay, std::function<void()> fn) = 0;
  virtual void cancel() noexcept = 0;
  [[nodiscard]] virtual bool pending() const noexcept = 0;
};

/// One-shot timer. Re-arming cancels the previous shot; destruction cancels.
/// Movable value type so protocol state machines can hold timers as members
/// (crash/recovery tears the module down, which cancels all its callbacks).
class Timer {
 public:
  Timer() = default;
  explicit Timer(std::unique_ptr<TimerImpl> impl) : impl_(std::move(impl)) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  Timer(Timer&&) noexcept = default;
  Timer& operator=(Timer&& other) noexcept {
    if (this != &other) {
      cancel();
      impl_ = std::move(other.impl_);
    }
    return *this;
  }

  void arm(sim::Duration delay, std::function<void()> fn) {
    impl_->arm(delay, std::move(fn));
  }
  void cancel() noexcept {
    if (impl_) impl_->cancel();
  }
  [[nodiscard]] bool pending() const noexcept {
    return impl_ != nullptr && impl_->pending();
  }

 private:
  std::unique_ptr<TimerImpl> impl_;
};

/// Implementation side of a periodic timer.
class PeriodicTimerImpl {
 public:
  virtual ~PeriodicTimerImpl() = default;
  virtual void start(sim::Duration initial_delay, sim::Duration period,
                     std::function<void()> fn) = 0;
  virtual void stop() noexcept = 0;
  [[nodiscard]] virtual bool running() const noexcept = 0;
};

/// Periodic timer: fires every `period` until stopped or destroyed.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  explicit PeriodicTimer(std::unique_ptr<PeriodicTimerImpl> impl)
      : impl_(std::move(impl)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  PeriodicTimer(PeriodicTimer&&) noexcept = default;
  PeriodicTimer& operator=(PeriodicTimer&& other) noexcept {
    if (this != &other) {
      stop();
      impl_ = std::move(other.impl_);
    }
    return *this;
  }

  /// Starts firing `fn` every `period`, first shot after `period`.
  void start(sim::Duration period, std::function<void()> fn) {
    impl_->start(period, period, std::move(fn));
  }
  /// Same, with an explicit first-shot delay.
  void start(sim::Duration initial_delay, sim::Duration period,
             std::function<void()> fn) {
    impl_->start(initial_delay, period, std::move(fn));
  }
  void stop() noexcept {
    if (impl_) impl_->stop();
  }
  [[nodiscard]] bool running() const noexcept {
    return impl_ != nullptr && impl_->running();
  }

 private:
  std::unique_ptr<PeriodicTimerImpl> impl_;
};

/// Unreliable datagram transport between named endpoints — the paper's
/// Figure 1 "Network" component as seen by a node. Sends may be lost,
/// delayed, duplicated, or partitioned away; the protocol is built to
/// tolerate all of it, so implementations are free to drop anything.
class Transport {
 public:
  using Handler = std::function<void(HostId from, const net::MessagePtr& msg)>;

  virtual ~Transport() = default;

  /// Registers (or replaces) the receive handler for an endpoint. An endpoint
  /// must be registered before it can send or receive. Endpoints start up.
  /// The handler is invoked on the endpoint's environment (its event loop).
  virtual void register_endpoint(HostId id, Handler handler) = 0;

  /// Marks an endpoint crashed (true) or recovered (false). A down endpoint's
  /// inbound and outbound packets are silently discarded.
  virtual void set_endpoint_down(HostId id, bool down) = 0;

  /// Unreliable unicast. Self-sends are delivered (with zero delay).
  virtual void send(HostId from, HostId to, net::MessagePtr msg) = 0;

  /// Unreliable multicast: an independent datagram per destination; the
  /// sender itself is skipped.
  virtual void multicast(HostId from, const std::vector<HostId>& to,
                         const net::MessagePtr& msg) = 0;
};

/// The execution environment of one (or, in simulation, every) node.
class Env {
 public:
  virtual ~Env() = default;

  /// Current real time. In simulation this is the global simulated clock; in
  /// a threaded runtime it is steady-clock time since the fabric's epoch.
  /// Protocol code must not treat it as a local clock — that is what Clock
  /// (and its skew bound `b`) is for.
  [[nodiscard]] virtual sim::TimePoint now() const = 0;

  /// Timer factories. The returned timers fire on this environment.
  [[nodiscard]] virtual Timer make_timer() = 0;
  [[nodiscard]] virtual PeriodicTimer make_periodic_timer() = 0;

  /// The datagram fabric this node is attached to.
  [[nodiscard]] virtual Transport& transport() = 0;

  /// Enqueues `fn` to run on this environment as soon as possible. The only
  /// legal way for an external thread to touch a node's state.
  virtual void post(std::function<void()> fn) = 0;
};

/// A node's local clock: the environment's real time composed with the
/// node-specific skew (rate in [1/b, ~1]) of clk::LocalClock. This is the
/// paper's Time() — protocol code reads local_now() and never constructs a
/// clk::LocalClock against raw scheduler time itself.
class Clock {
 public:
  Clock(Env& env, clk::LocalClock skew) : env_(&env), skew_(skew) {}

  /// The paper's Time(): this node's local-clock reading, now.
  [[nodiscard]] clk::LocalTime local_now() const {
    return skew_.now(env_->now());
  }

  /// Environment real time (decision timestamps, latency accounting).
  [[nodiscard]] sim::TimePoint real_now() const { return env_->now(); }

  /// The underlying skew model (rate queries, expiry conversions).
  [[nodiscard]] const clk::LocalClock& skew() const noexcept { return skew_; }

 private:
  Env* env_;
  clk::LocalClock skew_;
};

}  // namespace wan::runtime
