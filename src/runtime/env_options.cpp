#include "runtime/env_options.hpp"

#include <memory>

#include "net/latency_model.hpp"
#include "net/loss_model.hpp"
#include "util/assert.hpp"

namespace wan::runtime {

const char* to_cstring(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kSim: return "sim";
    case BackendKind::kLoopback: return "loopback";
    case BackendKind::kUdp: return "udp";
    case BackendKind::kReactor: return "reactor";
  }
  return "?";
}

bool parse_backend(const std::string& text, BackendKind* out) {
  if (text == "sim") *out = BackendKind::kSim;
  else if (text == "loopback") *out = BackendKind::kLoopback;
  else if (text == "udp") *out = BackendKind::kUdp;
  else if (text == "reactor") *out = BackendKind::kReactor;
  else return false;
  return true;
}

shard::ShardMap make_shard_map(const ShardTopologyOptions& topo,
                               const std::vector<HostId>& managers) {
  if (topo.groups <= 1) return shard::ShardMap{};
  WAN_REQUIRE(!managers.empty());
  WAN_REQUIRE(managers.size() % topo.groups == 0);
  const std::size_t per_group = managers.size() / topo.groups;
  std::vector<std::vector<HostId>> groups(topo.groups);
  for (std::size_t i = 0; i < managers.size(); ++i) {
    groups[i / per_group].push_back(managers[i]);
  }
  const std::uint32_t shards = topo.shards != 0 ? topo.shards : topo.groups;
  return shard::ShardMap::ring(std::move(groups), shards, /*epoch=*/1,
                               topo.ring_seed);
}

net::Network::Config to_network_config(const EnvOptions& opts) {
  WAN_REQUIRE(opts.loss >= 0.0 && opts.loss < 1.0);
  WAN_REQUIRE(!opts.delay.is_negative());
  WAN_REQUIRE(!opts.jitter.is_negative());
  net::Network::Config cfg;
  if (opts.jitter.is_zero()) {
    cfg.latency = std::make_unique<net::ConstantLatency>(opts.delay);
  } else {
    cfg.latency = std::make_unique<net::UniformLatency>(
        opts.delay, opts.delay + opts.jitter);
  }
  if (opts.loss > 0.0) {
    cfg.loss = std::make_unique<net::BernoulliLoss>(opts.loss);
  } else {
    cfg.loss = std::make_unique<net::NoLoss>();
  }
  return cfg;
}

}  // namespace wan::runtime
