#include "runtime/env_options.hpp"

#include <memory>
#include <string>

#include "net/latency_model.hpp"
#include "net/loss_model.hpp"
#include "util/assert.hpp"

namespace wan::runtime {

const char* to_cstring(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kSim: return "sim";
    case BackendKind::kLoopback: return "loopback";
    case BackendKind::kUdp: return "udp";
    case BackendKind::kReactor: return "reactor";
  }
  return "?";
}

bool parse_backend(const std::string& text, BackendKind* out) {
  if (text == "sim") *out = BackendKind::kSim;
  else if (text == "loopback") *out = BackendKind::kLoopback;
  else if (text == "udp") *out = BackendKind::kUdp;
  else if (text == "reactor") *out = BackendKind::kReactor;
  else return false;
  return true;
}

const char* to_cstring(DisseminationKind kind) noexcept {
  switch (kind) {
    case DisseminationKind::kUnicast: return "unicast";
    case DisseminationKind::kCoalesced: return "coalesced";
    case DisseminationKind::kTree: return "tree";
  }
  return "?";
}

bool parse_dissemination(const std::string& text, DisseminationKind* out) {
  if (text == "unicast") *out = DisseminationKind::kUnicast;
  else if (text == "coalesced") *out = DisseminationKind::kCoalesced;
  else if (text == "tree") *out = DisseminationKind::kTree;
  else return false;
  return true;
}

void DisseminationOptions::validate() const {
  WAN_REQUIRE_MSG(batch_max_rights >= 1,
                  "a batch must be able to carry at least one right");
  WAN_REQUIRE_MSG(!flush_interval.is_negative(),
                  "the coalescing window cannot be negative");
  if (kind == DisseminationKind::kTree) {
    WAN_REQUIRE_MSG(relay_width >= 1,
                    "tree dissemination needs at least one destination per "
                    "relay group");
  }
}

std::string DisseminationOptions::describe() const {
  std::string s = to_cstring(kind);
  if (kind != DisseminationKind::kUnicast) {
    s += " batch_max_rights=" + std::to_string(batch_max_rights);
    s += " flush_interval_us=" +
         std::to_string(flush_interval.count_nanos() / 1000);
  }
  if (kind == DisseminationKind::kTree) {
    s += " relay_width=" + std::to_string(relay_width);
  }
  s += delta_sync ? " delta_sync=on" : " delta_sync=off";
  if (delta_sync) s += " delta_log_cap=" + std::to_string(delta_log_cap);
  return s;
}

shard::ShardMap make_shard_map(const ShardTopologyOptions& topo,
                               const std::vector<HostId>& managers) {
  if (topo.groups <= 1) return shard::ShardMap{};
  WAN_REQUIRE(!managers.empty());
  WAN_REQUIRE(managers.size() % topo.groups == 0);
  const std::size_t per_group = managers.size() / topo.groups;
  std::vector<std::vector<HostId>> groups(topo.groups);
  for (std::size_t i = 0; i < managers.size(); ++i) {
    groups[i / per_group].push_back(managers[i]);
  }
  const std::uint32_t shards = topo.shards != 0 ? topo.shards : topo.groups;
  return shard::ShardMap::ring(std::move(groups), shards, /*epoch=*/1,
                               topo.ring_seed);
}

net::Network::Config to_network_config(const EnvOptions& opts) {
  WAN_REQUIRE(opts.loss >= 0.0 && opts.loss < 1.0);
  WAN_REQUIRE(!opts.delay.is_negative());
  WAN_REQUIRE(!opts.jitter.is_negative());
  net::Network::Config cfg;
  if (opts.jitter.is_zero()) {
    cfg.latency = std::make_unique<net::ConstantLatency>(opts.delay);
  } else {
    cfg.latency = std::make_unique<net::UniformLatency>(
        opts.delay, opts.delay + opts.jitter);
  }
  if (opts.loss > 0.0) {
    cfg.loss = std::make_unique<net::BernoulliLoss>(opts.loss);
  } else {
    cfg.loss = std::make_unique<net::NoLoss>();
  }
  return cfg;
}

}  // namespace wan::runtime
