#include "runtime/env_options.hpp"

#include <memory>

#include "net/latency_model.hpp"
#include "net/loss_model.hpp"
#include "util/assert.hpp"

namespace wan::runtime {

net::Network::Config to_network_config(const EnvOptions& opts) {
  WAN_REQUIRE(opts.loss >= 0.0 && opts.loss < 1.0);
  WAN_REQUIRE(!opts.delay.is_negative());
  WAN_REQUIRE(!opts.jitter.is_negative());
  net::Network::Config cfg;
  if (opts.jitter.is_zero()) {
    cfg.latency = std::make_unique<net::ConstantLatency>(opts.delay);
  } else {
    cfg.latency = std::make_unique<net::UniformLatency>(
        opts.delay, opts.delay + opts.jitter);
  }
  if (opts.loss > 0.0) {
    cfg.loss = std::make_unique<net::BernoulliLoss>(opts.loss);
  } else {
    cfg.loss = std::make_unique<net::NoLoss>();
  }
  return cfg;
}

}  // namespace wan::runtime
