#include "runtime/env_options.hpp"

#include <memory>

#include "net/latency_model.hpp"
#include "net/loss_model.hpp"
#include "util/assert.hpp"

namespace wan::runtime {

const char* to_cstring(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kSim: return "sim";
    case BackendKind::kLoopback: return "loopback";
    case BackendKind::kUdp: return "udp";
    case BackendKind::kReactor: return "reactor";
  }
  return "?";
}

bool parse_backend(const std::string& text, BackendKind* out) {
  if (text == "sim") *out = BackendKind::kSim;
  else if (text == "loopback") *out = BackendKind::kLoopback;
  else if (text == "udp") *out = BackendKind::kUdp;
  else if (text == "reactor") *out = BackendKind::kReactor;
  else return false;
  return true;
}

net::Network::Config to_network_config(const EnvOptions& opts) {
  WAN_REQUIRE(opts.loss >= 0.0 && opts.loss < 1.0);
  WAN_REQUIRE(!opts.delay.is_negative());
  WAN_REQUIRE(!opts.jitter.is_negative());
  net::Network::Config cfg;
  if (opts.jitter.is_zero()) {
    cfg.latency = std::make_unique<net::ConstantLatency>(opts.delay);
  } else {
    cfg.latency = std::make_unique<net::UniformLatency>(
        opts.delay, opts.delay + opts.jitter);
  }
  if (opts.loss > 0.0) {
    cfg.loss = std::make_unique<net::BernoulliLoss>(opts.loss);
  } else {
    cfg.loss = std::make_unique<net::NoLoss>();
  }
  return cfg;
}

}  // namespace wan::runtime
