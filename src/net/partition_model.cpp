#include "net/partition_model.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace wan::net {

// ---------------------------------------------------------------- Scripted

bool ScriptedPartitions::connected(HostId a, HostId b) const {
  if (a == b) return true;
  if (cut_.contains(key(a, b))) return false;
  if (!component_.empty()) {
    const auto ia = component_.find(a);
    const auto ib = component_.find(b);
    const int ca = ia == component_.end() ? -1 : ia->second;
    const int cb = ib == component_.end() ? -1 : ib->second;
    if (ca != cb) return false;
  }
  return true;
}

void ScriptedPartitions::cut_link(HostId a, HostId b) {
  WAN_REQUIRE(a != b);
  cut_.insert(key(a, b));
}

void ScriptedPartitions::heal_link(HostId a, HostId b) { cut_.erase(key(a, b)); }

void ScriptedPartitions::split(const std::vector<std::vector<HostId>>& components) {
  component_.clear();
  int idx = 0;
  for (const auto& group : components) {
    for (const HostId h : group) component_[h] = idx;
    ++idx;
  }
}

void ScriptedPartitions::heal_all() {
  cut_.clear();
  component_.clear();
}

void ScriptedPartitions::isolate(HostId h, const std::vector<HostId>& everyone) {
  for (const HostId other : everyone) {
    if (other != h) cut_link(h, other);
  }
}

// ------------------------------------------------------------- Directional

bool DirectionalPartitions::connected(HostId a, HostId b) const {
  if (a == b) return true;
  if (oneway_.contains(DirKey{a, b})) return false;
  return ScriptedPartitions::connected(a, b);
}

void DirectionalPartitions::cut_one_way(HostId from, HostId to) {
  WAN_REQUIRE(from != to);
  oneway_.insert(DirKey{from, to});
}

void DirectionalPartitions::heal_one_way(HostId from, HostId to) {
  oneway_.erase(DirKey{from, to});
}

void DirectionalPartitions::cut_one_way_between(
    const std::vector<HostId>& sources, const std::vector<HostId>& sinks) {
  for (const HostId s : sources) {
    for (const HostId t : sinks) {
      if (s != t) cut_one_way(s, t);
    }
  }
}

void DirectionalPartitions::heal_all() {
  ScriptedPartitions::heal_all();
  oneway_.clear();
}

// --------------------------------------------------------- PairwiseMarkov

PairwiseMarkovPartitions::PairwiseMarkovPartitions(std::vector<HostId> hosts,
                                                   Config config)
    : hosts_(std::move(hosts)), config_(config) {
  WAN_REQUIRE(config_.pi >= 0.0 && config_.pi < 1.0);
  WAN_REQUIRE(config_.mean_down > sim::Duration{});
  WAN_REQUIRE(hosts_.size() >= 2);
  // Stationary down fraction pi = down / (down + up)  =>  up = down*(1-pi)/pi.
  if (config_.pi > 0.0) {
    mean_up_ = sim::Duration::from_seconds(config_.mean_down.to_seconds() *
                                           (1.0 - config_.pi) / config_.pi);
  } else {
    mean_up_ = sim::Duration::hours(1<<20);  // effectively never down
  }
  for (std::size_t i = 0; i < hosts_.size(); ++i) host_index_[hosts_[i]] = i;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    for (std::size_t j = i + 1; j < hosts_.size(); ++j) {
      pairs_.push_back(Pair{hosts_[i], hosts_[j], false});
    }
  }
}

std::size_t PairwiseMarkovPartitions::pair_index(HostId a, HostId b) const {
  const auto ia = host_index_.find(a);
  const auto ib = host_index_.find(b);
  WAN_REQUIRE(ia != host_index_.end() && ib != host_index_.end());
  std::size_t i = ia->second, j = ib->second;
  if (i > j) std::swap(i, j);
  const std::size_t n = hosts_.size();
  // Row-major index into the strictly-upper-triangular pair list.
  return i * n - i * (i + 1) / 2 + (j - i - 1);
}

bool PairwiseMarkovPartitions::connected(HostId a, HostId b) const {
  if (a == b) return true;
  return !pairs_[pair_index(a, b)].down;
}

void PairwiseMarkovPartitions::start(sim::Scheduler& sched, Rng rng) {
  WAN_REQUIRE(!started_);
  started_ = true;
  rng_ = rng;
  if (config_.pi <= 0.0) return;
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    // Start each pair in its stationary distribution so measurements taken
    // from time zero already match the analytic model.
    pairs_[i].down = rng_.next_bool(config_.pi);
    schedule_flip(sched, i);
  }
}

void PairwiseMarkovPartitions::schedule_flip(sim::Scheduler& sched, std::size_t idx) {
  const double mean = pairs_[idx].down ? config_.mean_down.to_seconds()
                                       : mean_up_.to_seconds();
  const auto wait = sim::Duration::from_seconds(rng_.next_exponential(mean));
  sched.schedule_after(wait, [this, &sched, idx] {
    pairs_[idx].down = !pairs_[idx].down;
    schedule_flip(sched, idx);
  });
}

double PairwiseMarkovPartitions::down_fraction() const noexcept {
  if (pairs_.empty()) return 0.0;
  std::size_t down = 0;
  for (const auto& p : pairs_)
    if (p.down) ++down;
  return static_cast<double>(down) / static_cast<double>(pairs_.size());
}

// ------------------------------------------------------- ComponentStorms

ComponentStormPartitions::ComponentStormPartitions(std::vector<HostId> hosts,
                                                   Config config)
    : hosts_(std::move(hosts)), config_(config) {
  WAN_REQUIRE(hosts_.size() >= 2);
  WAN_REQUIRE(config_.max_components >= 2);
  WAN_REQUIRE(config_.mean_between_storms > sim::Duration{});
  WAN_REQUIRE(config_.mean_storm_duration > sim::Duration{});
}

bool ComponentStormPartitions::connected(HostId a, HostId b) const {
  if (a == b || !storm_active_) return true;
  const auto ia = component_.find(a);
  const auto ib = component_.find(b);
  const int ca = ia == component_.end() ? -1 : ia->second;
  const int cb = ib == component_.end() ? -1 : ib->second;
  return ca == cb;
}

void ComponentStormPartitions::start(sim::Scheduler& sched, Rng rng) {
  WAN_REQUIRE(!started_);
  started_ = true;
  rng_ = rng;
  schedule_storm(sched);
}

void ComponentStormPartitions::schedule_storm(sim::Scheduler& sched) {
  const auto gap = sim::Duration::from_seconds(
      rng_.next_exponential(config_.mean_between_storms.to_seconds()));
  sched.schedule_after(gap, [this, &sched] {
    const int k = static_cast<int>(rng_.next_in_range(2, config_.max_components));
    component_.clear();
    for (const HostId h : hosts_)
      component_[h] = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(k)));
    storm_active_ = true;
    ++storms_;
    WAN_DEBUG << "partition storm begins (" << k << " components)";
    const auto dur = sim::Duration::from_seconds(
        rng_.next_exponential(config_.mean_storm_duration.to_seconds()));
    sched.schedule_after(dur, [this, &sched] {
      storm_active_ = false;
      component_.clear();
      WAN_DEBUG << "partition storm heals";
      schedule_storm(sched);
    });
  });
}

}  // namespace wan::net
