// Versioned binary wire codec for network messages.
//
// Until now every transport in the tree moved net::MessagePtr *pointers*
// (the simulator and the loopback fabric live in one address space). A real
// socket transport moves bytes, so messages need a serialized form. This
// header provides the three pieces, all protocol-agnostic:
//
//   * WireWriter / WireReader — bounds-checked little-endian primitives.
//     A reader that runs past the end of its buffer latches a failure bit
//     instead of touching out-of-range memory; decoders check ok() once at
//     the end rather than after every field.
//   * The frame header — magic, format version, message tag, source and
//     destination endpoint ids, and an explicit payload length:
//
//         offset  size  field
//              0     2  magic 0xACDC (little-endian on the wire)
//              2     1  format version (kWireVersion; bump on layout change)
//              3     1  flags (reserved, must be 0)
//              4     2  wire tag (identifies the message type)
//              6     4  source HostId
//             10     4  destination HostId
//             14     4  payload length in bytes
//             18     …  payload (message fields, per-type layout)
//
//     A frame is exactly one datagram; decode rejects anything whose
//     payload length disagrees with the bytes actually received, so a
//     truncated or padded datagram can never half-parse.
//   * CodecRegistry — maps stable wire tags to per-type encode/decode
//     functions. Message structs live in protocol layers above net/, so the
//     registry is populated by those layers (see src/proto/wire.hpp);
//     transports depend only on this registry and stay protocol-agnostic.
//
// Wire tags are part of the protocol's public interface: once assigned they
// are never reused or renumbered (docs/WIRE_FORMAT.md is the authoritative
// table). The version byte covers the framing and all payload layouts; any
// incompatible change bumps it and old frames are rejected, not misread.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace wan::net {

/// Stable identifier of a message type on the wire. Tags are assigned once,
/// in docs/WIRE_FORMAT.md, and never reused.
using WireTag = std::uint16_t;

inline constexpr std::uint16_t kWireMagic = 0xACDC;
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderSize = 18;
/// Largest frame a transport will move: the practical single-datagram UDP
/// payload ceiling (65535 - 8 UDP - 20 IP). Encoding anything bigger fails
/// (the caller counts it as an oversize drop) rather than fragmenting.
inline constexpr std::size_t kMaxFrameSize = 65507;

/// Append-only little-endian serializer.
class WireWriter {
 public:
  WireWriter() = default;
  /// Adopts `reuse`'s allocation (cleared, capacity kept) so hot encode paths
  /// can recycle buffers instead of allocating one per frame.
  explicit WireWriter(std::vector<std::uint8_t>&& reuse)
      : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { append(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void duration(sim::Duration d) { i64(d.count_nanos()); }
  /// Length-prefixed byte string (u32 length + raw bytes).
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }
  /// Raw byte run, no length prefix — the caller's layout carries the length
  /// (the reliability envelope embeds whole frames this way).
  void raw(const std::uint8_t* p, std::size_t n) { append(p, n); }
  void host_id(HostId id) { u32(id.value()); }
  void user_id(UserId id) { u32(id.value()); }
  void app_id(AppId id) { u32(id.value()); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian deserializer. Reading past the end latches
/// ok() == false and yields zero values; decoders verify ok() (and usually
/// exhausted()) once when done.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}

  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint16_t u16() { return read<std::uint16_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  std::int64_t i64() { return read<std::int64_t>(); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) ok_ = false;  // canonical bools only: reject 2..255
    return v == 1;
  }
  sim::Duration duration() { return sim::Duration::nanos(i64()); }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }
  HostId host_id() { return HostId(u32()); }
  UserId user_id() { return UserId(u32()); }
  AppId app_id() { return AppId(u32()); }
  /// Raw byte run of exactly `n` bytes (no length prefix); fails when fewer
  /// remain.
  std::vector<std::uint8_t> raw(std::size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return {};
    }
    std::vector<std::uint8_t> out(p_, p_ + n);
    p_ += n;
    return out;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True when every byte has been consumed — decoders require this so a
  /// frame with trailing garbage is rejected, not silently accepted.
  [[nodiscard]] bool exhausted() const noexcept { return p_ == end_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }
  void fail() noexcept { ok_ = false; }

 private:
  template <typename T>
  T read() {
    if (!ok_ || remaining() < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

/// A decoded frame: who sent it, who it is for, and the message itself.
struct WireFrame {
  HostId from{};
  HostId to{};
  MessagePtr msg;
};

/// Why a decode was rejected (transports feed these into drop counters).
enum class DecodeError : std::uint8_t {
  kTruncated,    ///< shorter than the header, or payload shorter than length
  kBadMagic,     ///< first two bytes are not kWireMagic
  kBadVersion,   ///< format version this build does not speak
  kUnknownTag,   ///< no decoder registered for the tag
  kMalformed,    ///< per-type decoder rejected the payload
};

[[nodiscard]] const char* to_cstring(DecodeError e) noexcept;

/// Tag-keyed registry of per-type wire codecs.
///
/// Protocol layers register each message type once under its stable tag
/// (duplicate tags or types abort: both are programming errors caught at
/// startup). Thereafter encode/decode are read-only and safe from any
/// thread — the recv loop of every socket transport decodes through the
/// process-global instance.
class CodecRegistry {
 public:
  /// Serializes `msg`'s fields (not the frame header).
  using EncodeFn = std::function<void(const Message& msg, WireWriter& w)>;
  /// Parses one payload; returns nullptr if the bytes are malformed. The
  /// registry additionally rejects decoders that leave bytes unconsumed.
  using DecodeFn = std::function<MessagePtr(WireReader& r)>;

  [[nodiscard]] static CodecRegistry& global();

  /// Registers a codec for `type` under `tag`. Aborts on tag or type reuse.
  void register_codec(WireTag tag, TypeId type, EncodeFn encode,
                      DecodeFn decode);

  /// The wire tag for a message, or nullopt if its type was never registered.
  [[nodiscard]] std::optional<WireTag> tag_of(const Message& msg) const;

  /// Encodes a full frame (header + payload). Returns nullopt when the type
  /// is unregistered or the frame would exceed kMaxFrameSize.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> encode(
      HostId from, HostId to, const Message& msg) const;

  /// Same as encode(), but recycles `out`'s allocation (cleared then filled),
  /// so steady-state hot paths — the reactor's send side — stop allocating
  /// once buffers have grown to their working size. Returns false (leaving
  /// *out cleared or partially written, contents unspecified) when the type
  /// is unregistered or the frame would exceed kMaxFrameSize.
  bool encode_into(HostId from, HostId to, const Message& msg,
                   std::vector<std::uint8_t>* out) const;

  /// Decodes a full frame. Exactly one of the result fields is set.
  struct Decoded {
    std::optional<WireFrame> frame;
    DecodeError error = DecodeError::kTruncated;
    [[nodiscard]] bool ok() const noexcept { return frame.has_value(); }
  };
  [[nodiscard]] Decoded decode(const std::uint8_t* data,
                               std::size_t size) const;

  [[nodiscard]] std::size_t registered_count() const;

  /// Registered tags in ascending order (docs and tests enumerate these).
  [[nodiscard]] std::vector<WireTag> tags() const;

 private:
  struct Entry {
    WireTag tag = 0;
    EncodeFn encode;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::uint32_t, Entry> by_type_;   ///< TypeId value keyed
  std::unordered_map<WireTag, DecodeFn> by_tag_;
};

}  // namespace wan::net
