#include "net/message.hpp"

#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"

namespace wan::net {

namespace {

// Interning registry. Guarded by a mutex because the threaded runtime calls
// intern() from several loop threads during static-local initialization; the
// lock is off the steady-state hot path (each message class interns once).
struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, std::uint32_t> by_name;
  std::vector<const std::string*> names;  ///< stable: points into by_name keys
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

TypeId TypeId::intern(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.by_name.try_emplace(
      std::string(name), static_cast<std::uint32_t>(r.names.size()));
  if (inserted) r.names.push_back(&it->first);
  return TypeId(it->second);
}

const std::string& TypeId::name_of(std::uint32_t value) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  WAN_REQUIRE(value < r.names.size());
  return *r.names[value];
}

}  // namespace wan::net
