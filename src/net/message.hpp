// Type-erased network messages.
//
// The network layer is protocol-agnostic: it moves immutable, reference-
// counted message objects between hosts. Protocol layers (src/proto,
// src/baseline) define concrete message structs deriving from Message and
// downcast on receipt. Immutability (const payloads) models the fact that a
// datagram, once sent, cannot be altered by the sender.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace wan::net {

/// Process-wide interned identifier for a message type. Ids are dense small
/// integers, so per-type statistics index a vector on the send hot path
/// instead of a string-keyed map. Interning is thread-safe (the threaded
/// runtime sends from many loop threads); each message class interns exactly
/// once via the function-local static in its WAN_MESSAGE_TYPE-generated
/// type_id() override.
class TypeId {
 public:
  constexpr TypeId() noexcept = default;

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  /// Interns `name`, returning the existing id if the name is already known.
  static TypeId intern(std::string_view name);

  /// Name for an interned id value (stats materialization).
  static const std::string& name_of(std::uint32_t value);

 private:
  constexpr explicit TypeId(std::uint32_t v) noexcept : value_(v) {}
  std::uint32_t value_ = 0;
};

/// Base class for everything that travels over the simulated network.
class Message {
 public:
  virtual ~Message() = default;

  /// Short type name for traces and per-type statistics ("QueryRequest" ...).
  [[nodiscard]] virtual std::string type_name() const = 0;

  /// Interned type id for per-type statistics on the send hot path. The
  /// WAN_MESSAGE_TYPE macro overrides this with a cached id; this fallback
  /// interns per call and is only hit by types that bypass the macro.
  [[nodiscard]] virtual TypeId type_id() const {
    return TypeId::intern(type_name());
  }

  /// Approximate wire size in bytes; used for bandwidth-overhead accounting
  /// in the O(C/Te) experiments. Default models a small control packet.
  [[nodiscard]] virtual std::size_t wire_size() const { return 64; }

  /// Whether a transport with a reliability layer enabled should move this
  /// message through it (ack/retransmit/dedup; see runtime/reliable_channel).
  /// Defaults to true — grants, revokes, syncs, and recovery traffic must
  /// survive loss. Periodic best-effort probes (heartbeats) and the
  /// reliability envelope itself override to false.
  [[nodiscard]] virtual bool reliable() const { return true; }
};

/// Declares a message type's name and cached interned id in one shot:
///
///   struct QueryRequest final : net::Message {
///     WAN_MESSAGE_TYPE("QueryRequest")
///     ...
///   };
#define WAN_MESSAGE_TYPE(NAME)                                                \
  [[nodiscard]] std::string type_name() const override { return NAME; }       \
  [[nodiscard]] ::wan::net::TypeId type_id() const override {                 \
    static const ::wan::net::TypeId kId = ::wan::net::TypeId::intern(NAME);   \
    return kId;                                                               \
  }

using MessagePtr = std::shared_ptr<const Message>;

/// Convenience for constructing immutable messages.
template <typename T, typename... Args>
MessagePtr make_message(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

/// Safe downcast used by receive handlers; returns nullptr on type mismatch.
template <typename T>
const T* message_cast(const MessagePtr& msg) noexcept {
  return dynamic_cast<const T*>(msg.get());
}

}  // namespace wan::net
