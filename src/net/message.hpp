// Type-erased network messages.
//
// The network layer is protocol-agnostic: it moves immutable, reference-
// counted message objects between hosts. Protocol layers (src/proto,
// src/baseline) define concrete message structs deriving from Message and
// downcast on receipt. Immutability (const payloads) models the fact that a
// datagram, once sent, cannot be altered by the sender.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace wan::net {

/// Base class for everything that travels over the simulated network.
class Message {
 public:
  virtual ~Message() = default;

  /// Short type name for traces and per-type statistics ("QueryRequest" ...).
  [[nodiscard]] virtual std::string type_name() const = 0;

  /// Approximate wire size in bytes; used for bandwidth-overhead accounting
  /// in the O(C/Te) experiments. Default models a small control packet.
  [[nodiscard]] virtual std::size_t wire_size() const { return 64; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// Convenience for constructing immutable messages.
template <typename T, typename... Args>
MessagePtr make_message(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

/// Safe downcast used by receive handlers; returns nullptr on type mismatch.
template <typename T>
const T* message_cast(const MessagePtr& msg) noexcept {
  return dynamic_cast<const T*>(msg.get());
}

}  // namespace wan::net
