// Network partition models.
//
// Partitions are the central adversary in the paper: frequent, mostly
// congestion-induced, short-lived, and indistinguishable from crashes. The
// protocol's availability/security analysis (§4.1) assumes every pair of
// sites is inaccessible independently with probability Pi; we provide exactly
// that model (as a per-pair up/down Markov process whose stationary down
// fraction is Pi), plus scripted partitions for deterministic tests and
// component "storms" for stress scenarios.
//
// connected(a,b) is DIRECTION-AWARE: it answers "can a datagram sent by `a`
// reach `b` right now?". The stochastic models happen to be symmetric, but
// nothing may assume connected(a,b) == connected(b,a) — real WAN outages
// (unidirectional route withdrawals, asymmetric congestion drops) are not,
// and DirectionalPartitions models exactly that.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/hash.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace wan::net {

/// Queried by the network on every send; dynamic models drive their own state
/// transitions through the scheduler after start() is called.
class PartitionModel {
 public:
  virtual ~PartitionModel() = default;

  /// Can a message sent *now* get from `a` to `b`?
  [[nodiscard]] virtual bool connected(HostId a, HostId b) const = 0;

  /// Begins driving state transitions (no-op for static models).
  virtual void start(sim::Scheduler& /*sched*/, Rng /*rng*/) {}
};

/// No partitions, ever.
class FullConnectivity final : public PartitionModel {
 public:
  bool connected(HostId, HostId) const override { return true; }
};

/// Deterministic partitions controlled by test code: individual link cuts
/// plus an optional component split (hosts in different components cannot
/// communicate; hosts not assigned to any component are in a default one).
class ScriptedPartitions : public PartitionModel {
 public:
  bool connected(HostId a, HostId b) const override;

  /// Cuts / heals the (symmetric) link between two hosts.
  void cut_link(HostId a, HostId b);
  void heal_link(HostId a, HostId b);

  /// Splits listed hosts into components; replaces any previous split.
  void split(const std::vector<std::vector<HostId>>& components);

  /// Removes all cuts and splits (derived models also clear their own state).
  virtual void heal_all();

  /// Isolates one host from everybody (convenience for manager-partition
  /// scenarios in §3.3).
  void isolate(HostId h, const std::vector<HostId>& everyone);

 private:
  struct PairKey {
    HostId lo, hi;
    bool operator==(const PairKey&) const = default;
  };
  struct PairHash {
    std::size_t operator()(const PairKey& k) const noexcept {
      return hash_combine(std::hash<HostId>{}(k.lo), std::hash<HostId>{}(k.hi));
    }
  };
  static PairKey key(HostId a, HostId b) noexcept {
    return a < b ? PairKey{a, b} : PairKey{b, a};
  }

  std::unordered_set<PairKey, PairHash> cut_;
  std::unordered_map<HostId, int> component_;  // empty -> no split active
};

/// ScriptedPartitions plus ONE-WAY link cuts: cut_one_way(a, b) silently
/// drops every datagram a sends to b while b's datagrams to a still arrive.
/// This is the asymmetric-reachability adversary the paper's analysis (§4.1)
/// abstracts away: a manager that hears a host's query but whose response is
/// swallowed, a peer whose heartbeats flow out but not back. Symmetric cuts
/// and component splits compose with one-way cuts; connected(a,b) is the
/// conjunction.
class DirectionalPartitions final : public ScriptedPartitions {
 public:
  bool connected(HostId a, HostId b) const override;

  /// Drops all `from` -> `to` traffic; the reverse direction is untouched.
  void cut_one_way(HostId from, HostId to);
  void heal_one_way(HostId from, HostId to);

  /// Asymmetric component split: everything `sources` send toward `sinks`
  /// vanishes, while sink-to-source traffic still flows — the classic
  /// one-way route withdrawal between two regions.
  void cut_one_way_between(const std::vector<HostId>& sources,
                           const std::vector<HostId>& sinks);

  /// Clears one-way cuts in addition to the base model's cuts and splits.
  void heal_all() override;

  [[nodiscard]] std::size_t one_way_cut_count() const noexcept {
    return oneway_.size();
  }

 private:
  struct DirKey {
    HostId from, to;
    bool operator==(const DirKey&) const = default;
  };
  struct DirHash {
    std::size_t operator()(const DirKey& k) const noexcept {
      return hash_combine(std::hash<HostId>{}(k.from),
                          ~std::hash<HostId>{}(k.to));
    }
  };

  std::unordered_set<DirKey, DirHash> oneway_;
};

/// The paper's analytic model, §4.1: every unordered pair of hosts is
/// independently inaccessible with stationary probability Pi. Realized as a
/// two-state continuous-time Markov process per pair with exponential holding
/// times: mean down-time `mean_down`, mean up-time chosen so that
/// down-fraction == Pi. "Temporary partitions caused by congestion are
/// typically short-lived" — mean_down defaults to tens of seconds.
class PairwiseMarkovPartitions final : public PartitionModel {
 public:
  struct Config {
    double pi = 0.1;                                 ///< stationary P(inaccessible)
    sim::Duration mean_down = sim::Duration::seconds(30);
  };

  /// `hosts` enumerates every host the model must cover (pairs are dense).
  PairwiseMarkovPartitions(std::vector<HostId> hosts, Config config);

  bool connected(HostId a, HostId b) const override;
  void start(sim::Scheduler& sched, Rng rng) override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Fraction of pairs currently down (diagnostic).
  [[nodiscard]] double down_fraction() const noexcept;

 private:
  struct Pair {
    HostId a, b;
    bool down = false;
  };
  void schedule_flip(sim::Scheduler& sched, std::size_t idx);
  [[nodiscard]] std::size_t pair_index(HostId a, HostId b) const;

  std::vector<HostId> hosts_;
  std::unordered_map<HostId, std::size_t> host_index_;
  Config config_;
  sim::Duration mean_up_{};
  std::vector<Pair> pairs_;
  Rng rng_{0};
  bool started_ = false;
};

/// Congestion storms: at exponentially distributed intervals the host set is
/// split into a random number of components for an exponentially distributed
/// duration, then fully heals. Models correlated, backbone-level partitions
/// (the situation the quorum machinery exists for).
class ComponentStormPartitions final : public PartitionModel {
 public:
  struct Config {
    sim::Duration mean_between_storms = sim::Duration::minutes(10);
    sim::Duration mean_storm_duration = sim::Duration::seconds(45);
    int max_components = 3;  ///< storms split into 2..max_components groups
  };

  ComponentStormPartitions(std::vector<HostId> hosts, Config config);

  bool connected(HostId a, HostId b) const override;
  void start(sim::Scheduler& sched, Rng rng) override;

  [[nodiscard]] bool storm_active() const noexcept { return storm_active_; }
  [[nodiscard]] std::uint64_t storms_seen() const noexcept { return storms_; }

 private:
  void schedule_storm(sim::Scheduler& sched);

  std::vector<HostId> hosts_;
  Config config_;
  std::unordered_map<HostId, int> component_;
  bool storm_active_ = false;
  std::uint64_t storms_ = 0;
  Rng rng_{0};
  bool started_ = false;
};

}  // namespace wan::net
