#include "net/codec.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wan::net {

const char* to_cstring(DecodeError e) noexcept {
  switch (e) {
    case DecodeError::kTruncated: return "truncated";
    case DecodeError::kBadMagic: return "bad_magic";
    case DecodeError::kBadVersion: return "bad_version";
    case DecodeError::kUnknownTag: return "unknown_tag";
    case DecodeError::kMalformed: return "malformed";
  }
  return "?";
}

CodecRegistry& CodecRegistry::global() {
  static CodecRegistry* instance = new CodecRegistry();
  return *instance;
}

void CodecRegistry::register_codec(WireTag tag, TypeId type, EncodeFn encode,
                                   DecodeFn decode) {
  WAN_REQUIRE(encode != nullptr);
  WAN_REQUIRE(decode != nullptr);
  const std::lock_guard<std::mutex> lock(mu_);
  WAN_REQUIRE_MSG(by_tag_.find(tag) == by_tag_.end(),
                  "wire tag already registered — tags are stable and never "
                  "reused (see docs/WIRE_FORMAT.md)");
  WAN_REQUIRE_MSG(by_type_.find(type.value()) == by_type_.end(),
                  "message type already has a wire codec");
  by_tag_.emplace(tag, std::move(decode));
  by_type_.emplace(type.value(), Entry{tag, std::move(encode)});
}

std::optional<WireTag> CodecRegistry::tag_of(const Message& msg) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_type_.find(msg.type_id().value());
  if (it == by_type_.end()) return std::nullopt;
  return it->second.tag;
}

std::optional<std::vector<std::uint8_t>> CodecRegistry::encode(
    HostId from, HostId to, const Message& msg) const {
  std::vector<std::uint8_t> frame;
  if (!encode_into(from, to, msg, &frame)) return std::nullopt;
  return frame;
}

bool CodecRegistry::encode_into(HostId from, HostId to, const Message& msg,
                                std::vector<std::uint8_t>* out) const {
  WAN_REQUIRE(out != nullptr);
  WireTag tag = 0;
  const EncodeFn* encode = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_type_.find(msg.type_id().value());
    if (it == by_type_.end()) {
      out->clear();
      return false;
    }
    tag = it->second.tag;
    encode = &it->second.encode;
  }
  // Encoders are registered once at startup and never replaced, so calling
  // through the pointer outside the lock is safe (unordered_map never moves
  // a node) and keeps payload serialization out of the critical section.
  WireWriter w(std::move(*out));
  w.u16(kWireMagic);
  w.u8(kWireVersion);
  w.u8(0);  // flags
  w.u16(tag);
  w.host_id(from);
  w.host_id(to);
  w.u32(0);  // payload length, patched below
  (*encode)(msg, w);
  *out = w.take();
  if (out->size() > kMaxFrameSize) {
    out->clear();
    return false;
  }
  const auto payload_len =
      static_cast<std::uint32_t>(out->size() - kWireHeaderSize);
  std::memcpy(out->data() + kWireHeaderSize - sizeof payload_len, &payload_len,
              sizeof payload_len);
  return true;
}

CodecRegistry::Decoded CodecRegistry::decode(const std::uint8_t* data,
                                             std::size_t size) const {
  Decoded out;
  if (size < kWireHeaderSize) {
    out.error = DecodeError::kTruncated;
    return out;
  }
  WireReader header(data, kWireHeaderSize);
  const std::uint16_t magic = header.u16();
  const std::uint8_t version = header.u8();
  const std::uint8_t flags = header.u8();
  const WireTag tag = header.u16();
  const HostId from = header.host_id();
  const HostId to = header.host_id();
  const std::uint32_t payload_len = header.u32();
  if (magic != kWireMagic) {
    out.error = DecodeError::kBadMagic;
    return out;
  }
  if (version != kWireVersion || flags != 0) {
    out.error = DecodeError::kBadVersion;
    return out;
  }
  if (size - kWireHeaderSize != payload_len) {
    // The frame IS the datagram: a length that disagrees with what the
    // socket delivered means truncation in flight (or padding injected by
    // something that is not this codec) — reject, never guess.
    out.error = DecodeError::kTruncated;
    return out;
  }
  DecodeFn decode;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_tag_.find(tag);
    if (it == by_tag_.end()) {
      out.error = DecodeError::kUnknownTag;
      return out;
    }
    decode = it->second;
  }
  WireReader payload(data + kWireHeaderSize, payload_len);
  MessagePtr msg = decode(payload);
  if (msg == nullptr || !payload.ok() || !payload.exhausted()) {
    out.error = DecodeError::kMalformed;
    return out;
  }
  out.frame = WireFrame{from, to, std::move(msg)};
  return out;
}

std::size_t CodecRegistry::registered_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return by_tag_.size();
}

std::vector<WireTag> CodecRegistry::tags() const {
  std::vector<WireTag> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.reserve(by_tag_.size());
    for (const auto& [tag, fn] : by_tag_) out.push_back(tag);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wan::net
