// Packet-loss models.
//
// The paper's network offers *unreliable* point-to-point and multicast
// delivery; the protocol tolerates loss through timeouts and persistent
// retransmission (manager update dissemination). Besides independent
// Bernoulli loss we provide a Gilbert-Elliott bursty model, because loss on
// congested WAN paths is bursty and burstiness is precisely what produces the
// short-lived "partitions caused by congestion" the paper worries about.
#pragma once

#include <memory>
#include <unordered_map>

#include "util/hash.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace wan::net {

/// Decides whether a given packet from `src` to `dst` is dropped.
class LossModel {
 public:
  virtual ~LossModel() = default;
  [[nodiscard]] virtual bool drop(HostId src, HostId dst, Rng& rng) = 0;
};

/// Never drops (tests).
class NoLoss final : public LossModel {
 public:
  bool drop(HostId, HostId, Rng&) override { return false; }
};

/// Independent drop with fixed probability per packet.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p);
  bool drop(HostId, HostId, Rng& rng) override;

 private:
  double p_;
};

/// Gilbert-Elliott two-state loss: each (src,dst) link is GOOD or BAD;
/// packets are dropped with p_good / p_bad respectively, and the link flips
/// state per-packet with the given transition probabilities.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Params {
    double p_good = 0.001;     ///< drop probability in GOOD state
    double p_bad = 0.35;       ///< drop probability in BAD state
    double good_to_bad = 0.02; ///< per-packet transition probability
    double bad_to_good = 0.25;
  };
  explicit GilbertElliottLoss(Params params);
  bool drop(HostId src, HostId dst, Rng& rng) override;

  /// Stationary loss probability implied by the parameters.
  [[nodiscard]] double stationary_loss() const noexcept;

 private:
  struct PairKey {
    HostId a, b;
    bool operator==(const PairKey&) const = default;
  };
  struct PairHash {
    std::size_t operator()(const PairKey& k) const noexcept {
      return hash_combine(std::hash<HostId>{}(k.a), std::hash<HostId>{}(k.b));
    }
  };

  Params params_;
  std::unordered_map<PairKey, bool, PairHash> bad_state_;
};

}  // namespace wan::net
