// The simulated wide-area network.
//
// Provides the paper's Figure 1 "Network" component: unreliable point-to-
// point and multicast datagram delivery between registered hosts, subject to
// pluggable latency, loss, and partition models, plus per-host up/down state
// (crashed hosts neither send nor receive). Connectivity is evaluated at
// send time; a packet that leaves during a connected interval is delivered
// even if the partition closes while it is in flight (one-way WAN latencies
// are tiny relative to partition durations, so the choice is immaterial to
// the experiments but must be fixed and documented).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/latency_model.hpp"
#include "net/loss_model.hpp"
#include "net/message.hpp"
#include "net/partition_model.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace wan::net {

/// Delivery statistics, global and per message type.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicated = 0;  ///< extra copies injected by duplication
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_host_down = 0;
  std::uint64_t bytes_sent = 0;
  /// Per-type send counters, indexed by interned TypeId value — the send hot
  /// path touches only this vector. Use sent_by_type() for names.
  std::vector<std::uint64_t> sent_by_type_id;

  /// Materializes the name -> count map (stats-read path: tests, reports).
  [[nodiscard]] std::map<std::string, std::uint64_t> sent_by_type() const;

  [[nodiscard]] std::uint64_t dropped_total() const noexcept {
    return dropped_partition + dropped_loss + dropped_host_down;
  }
};

/// Simulated network fabric. Not copyable; one per simulation.
class Network {
 public:
  using Handler = std::function<void(HostId from, const MessagePtr& msg)>;

  struct Config {
    std::unique_ptr<LatencyModel> latency;    ///< default: constant 50ms
    std::unique_ptr<LossModel> loss;          ///< default: NoLoss
    std::shared_ptr<PartitionModel> partitions;  ///< default: FullConnectivity
    /// Probability that a non-loopback datagram is delivered twice, each copy
    /// with an independently sampled latency. Datagram networks duplicate
    /// under retransmission at lower layers; the protocol must be idempotent
    /// against it, and the chaos harness turns this knob up to prove it.
    double duplicate = 0.0;
  };

  Network(sim::Scheduler& sched, Rng rng, Config config);

  /// Registers (or replaces) the receive handler for a host. A host must be
  /// registered before it can send or receive. Hosts start up.
  void register_host(HostId id, Handler handler);

  /// Marks a host crashed (true) or recovered (false). A down host's inbound
  /// and outbound packets are silently discarded, matching a crashed site.
  void set_host_down(HostId id, bool down);
  [[nodiscard]] bool host_down(HostId id) const;

  /// Unreliable unicast. Self-sends are delivered (with latency 0).
  void send(HostId from, HostId to, MessagePtr msg);

  /// Unreliable multicast: an independent datagram per destination.
  void multicast(HostId from, const std::vector<HostId>& to, const MessagePtr& msg);

  /// Starts dynamic models (partition processes). Call once before running.
  void start();

  /// Observer invoked for every datagram that PASSES the partition check (it
  /// may still be lost or reach a down host). The chaos oracle uses this to
  /// prove the network honours directional cuts: a send surviving the check
  /// on a pair the fault injector cut one-way is a fabric bug. nullptr
  /// uninstalls.
  using SendObserver = std::function<void(HostId from, HostId to)>;
  void set_send_observer(SendObserver obs) { send_observer_ = std::move(obs); }

  /// True if the partition model currently allows `a` -> `b` and neither
  /// host is down. Used by measurement probes, not by protocol code.
  [[nodiscard]] bool reachable(HostId a, HostId b) const;

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

  [[nodiscard]] PartitionModel& partitions() noexcept { return *partitions_; }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return sched_; }

 private:
  struct Endpoint {
    Handler handler;
    bool down = false;
  };

  void deliver(HostId from, HostId to, MessagePtr msg, sim::Duration delay);

  sim::Scheduler& sched_;
  Rng rng_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<LossModel> loss_;
  std::shared_ptr<PartitionModel> partitions_;
  double duplicate_ = 0.0;
  std::unordered_map<HostId, Endpoint> endpoints_;
  NetworkStats stats_;
  SendObserver send_observer_;
  bool started_ = false;
};

}  // namespace wan::net
