// Wire envelope of the reliability layer (tags 16 and 17).
//
// The socket fabrics are fire-and-forget UDP: a dropped datagram is a lost
// message. runtime/reliable_channel.hpp fixes that for critical protocol
// traffic by wrapping each encoded frame in a ReliableData envelope carrying
// a per-flow sequence number, and acknowledging receipt with cumulative +
// selective acks (ReliableAck, also piggybacked on reverse-direction data).
// These two message types are the envelope's on-wire form; they live in
// net/ — below proto/ — because the reliability layer is protocol-agnostic:
// it moves *frames*, never caring what message is inside.
//
// Layouts (payload, after the standard 18-byte frame header):
//
//   ReliableData (tag 16):
//       offset  size  field
//            0     8  seq       per-flow sequence number, 1-based (0 is
//                               malformed — sequences start at 1)
//            8     8  cum_ack   piggybacked cumulative ack for the REVERSE
//                               flow: every seq <= cum_ack was received
//           16     8  ack_bits  selective ack bitmap: bit i set means seq
//                               cum_ack + 1 + i was received out of order
//           24     4  inner_len length of the wrapped frame
//           28     …  inner     one complete encoded frame (header included)
//                               whose from/to MUST equal the outer header's
//
//   ReliableAck (tag 17):
//       offset  size  field
//            0     8  cum_ack   as above, for the flow (to -> from) of the
//                               ack frame's own header
//            8     8  ack_bits  as above
//
// A flow is the ordered pair (from, to) of HostIds; an ack travelling from B
// to A acknowledges the flow A -> B. Tags 16/17 are frozen exactly like the
// protocol tags (docs/WIRE_FORMAT.md).
#pragma once

#include <cstdint>
#include <vector>

#include "net/codec.hpp"
#include "net/message.hpp"

namespace wan::net {

inline constexpr WireTag kTagReliableData = 16;
inline constexpr WireTag kTagReliableAck = 17;

/// Bytes ReliableData adds around an inner frame (seq + cum_ack + ack_bits +
/// inner length prefix). A wrapped frame therefore needs
/// inner + kReliableDataOverhead + kWireHeaderSize <= kMaxFrameSize.
inline constexpr std::size_t kReliableDataOverhead = 8 + 8 + 8 + 4;

/// Width of the selective-ack bitmap: acks describe cum_ack + 1 .. + 64.
inline constexpr std::uint64_t kAckBitmapWidth = 64;

struct ReliableData final : Message {
  std::uint64_t seq = 0;
  std::uint64_t cum_ack = 0;
  std::uint64_t ack_bits = 0;
  std::vector<std::uint8_t> inner;  ///< a complete encoded frame

  ReliableData(std::uint64_t s, std::uint64_t cum, std::uint64_t bits,
               std::vector<std::uint8_t> in)
      : seq(s), cum_ack(cum), ack_bits(bits), inner(std::move(in)) {}

  WAN_MESSAGE_TYPE("ReliableData")
  std::size_t wire_size() const override {
    return kWireHeaderSize + kReliableDataOverhead + inner.size();
  }
  bool reliable() const override { return false; }  ///< never re-wrapped
};

struct ReliableAck final : Message {
  std::uint64_t cum_ack = 0;
  std::uint64_t ack_bits = 0;

  ReliableAck(std::uint64_t cum, std::uint64_t bits)
      : cum_ack(cum), ack_bits(bits) {}

  WAN_MESSAGE_TYPE("ReliableAck")
  std::size_t wire_size() const override { return kWireHeaderSize + 16; }
  bool reliable() const override { return false; }  ///< acks ride best-effort
};

/// Registers the tag 16/17 codecs with CodecRegistry::global(). Idempotent
/// and thread-safe; transports call it when a reliability layer is enabled
/// (an explicit call for the same static-library reason as
/// proto::register_wire_messages()).
void register_reliable_codecs();

}  // namespace wan::net
