#include "net/network.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace wan::net {

std::map<std::string, std::uint64_t> NetworkStats::sent_by_type() const {
  std::map<std::string, std::uint64_t> out;
  for (std::uint32_t i = 0; i < sent_by_type_id.size(); ++i) {
    if (sent_by_type_id[i] != 0) out.emplace(TypeId::name_of(i), sent_by_type_id[i]);
  }
  return out;
}

Network::Network(sim::Scheduler& sched, Rng rng, Config config)
    : sched_(sched),
      rng_(rng),
      latency_(std::move(config.latency)),
      loss_(std::move(config.loss)),
      partitions_(std::move(config.partitions)),
      duplicate_(config.duplicate) {
  WAN_REQUIRE(duplicate_ >= 0.0 && duplicate_ <= 1.0);
  if (!latency_) latency_ = std::make_unique<ConstantLatency>(sim::Duration::millis(50));
  if (!loss_) loss_ = std::make_unique<NoLoss>();
  if (!partitions_) partitions_ = std::make_shared<FullConnectivity>();
}

void Network::register_host(HostId id, Handler handler) {
  WAN_REQUIRE(id.valid());
  WAN_REQUIRE(handler != nullptr);
  endpoints_[id] = Endpoint{std::move(handler), /*down=*/false};
}

void Network::set_host_down(HostId id, bool down) {
  auto it = endpoints_.find(id);
  WAN_REQUIRE(it != endpoints_.end());
  it->second.down = down;
}

bool Network::host_down(HostId id) const {
  auto it = endpoints_.find(id);
  WAN_REQUIRE(it != endpoints_.end());
  return it->second.down;
}

void Network::start() {
  if (started_) return;
  started_ = true;
  partitions_->start(sched_, rng_.split());
}

bool Network::reachable(HostId a, HostId b) const {
  const auto ia = endpoints_.find(a);
  const auto ib = endpoints_.find(b);
  if (ia == endpoints_.end() || ib == endpoints_.end()) return false;
  if (ia->second.down || ib->second.down) return false;
  return partitions_->connected(a, b);
}

void Network::send(HostId from, HostId to, MessagePtr msg) {
  WAN_REQUIRE(msg != nullptr);
  const auto src = endpoints_.find(from);
  WAN_REQUIRE(src != endpoints_.end());

  ++stats_.sent;
  stats_.bytes_sent += msg->wire_size();
  const std::uint32_t tid = msg->type_id().value();
  if (stats_.sent_by_type_id.size() <= tid) stats_.sent_by_type_id.resize(tid + 1, 0);
  ++stats_.sent_by_type_id[tid];

  if (src->second.down) {
    ++stats_.dropped_host_down;
    return;
  }
  if (!endpoints_.contains(to)) {
    // An unregistered destination behaves like a permanently dark address:
    // the datagram is silently lost (partition models need not know it).
    ++stats_.dropped_host_down;
    return;
  }
  if (from != to) {
    if (!partitions_->connected(from, to)) {
      ++stats_.dropped_partition;
      WAN_TRACE << "drop (partition) " << to_string(from) << " -> "
                << to_string(to) << " " << msg->type_name();
      return;
    }
    if (loss_->drop(from, to, rng_)) {
      ++stats_.dropped_loss;
      WAN_TRACE << "drop (loss) " << to_string(from) << " -> " << to_string(to)
                << " " << msg->type_name();
      return;
    }
  }
  if (send_observer_ && from != to) send_observer_(from, to);

  const sim::Duration delay =
      from == to ? sim::Duration{} : latency_->sample(from, to, rng_);
  // Duplication decision and second latency sample are drawn only when the
  // knob is on, so runs with duplicate == 0 consume exactly the RNG stream
  // they did before the knob existed (seed-stable).
  if (from != to && duplicate_ > 0.0 && rng_.next_bool(duplicate_)) {
    ++stats_.duplicated;
    deliver(from, to, msg, latency_->sample(from, to, rng_));
  }
  deliver(from, to, std::move(msg), delay);
}

void Network::deliver(HostId from, HostId to, MessagePtr msg,
                      sim::Duration delay) {
  // Fire-and-forget: deliveries are never cancelled, so the no-handle variant
  // skips the per-event cancellation-flag allocation on the hottest path.
  sched_.post_after(delay, [this, from, to, msg = std::move(msg)] {
    const auto dst = endpoints_.find(to);
    if (dst == endpoints_.end() || dst->second.down) {
      ++stats_.dropped_host_down;
      return;
    }
    ++stats_.delivered;
    dst->second.handler(from, msg);
  });
}

void Network::multicast(HostId from, const std::vector<HostId>& to,
                        const MessagePtr& msg) {
  for (const HostId dst : to) {
    if (dst != from) send(from, dst, msg);
  }
}

}  // namespace wan::net
