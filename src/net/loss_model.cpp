#include "net/loss_model.hpp"

#include "util/assert.hpp"

namespace wan::net {

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
  WAN_REQUIRE(p >= 0.0 && p <= 1.0);
}

bool BernoulliLoss::drop(HostId, HostId, Rng& rng) { return rng.next_bool(p_); }

GilbertElliottLoss::GilbertElliottLoss(Params params) : params_(params) {
  WAN_REQUIRE(params.p_good >= 0.0 && params.p_good <= 1.0);
  WAN_REQUIRE(params.p_bad >= 0.0 && params.p_bad <= 1.0);
  WAN_REQUIRE(params.good_to_bad > 0.0 && params.good_to_bad <= 1.0);
  WAN_REQUIRE(params.bad_to_good > 0.0 && params.bad_to_good <= 1.0);
}

bool GilbertElliottLoss::drop(HostId src, HostId dst, Rng& rng) {
  bool& bad = bad_state_[PairKey{src, dst}];  // default-initialized to GOOD
  const bool dropped = rng.next_bool(bad ? params_.p_bad : params_.p_good);
  // Per-packet state transition after the drop decision.
  if (bad) {
    if (rng.next_bool(params_.bad_to_good)) bad = false;
  } else {
    if (rng.next_bool(params_.good_to_bad)) bad = true;
  }
  return dropped;
}

double GilbertElliottLoss::stationary_loss() const noexcept {
  const double pi_bad =
      params_.good_to_bad / (params_.good_to_bad + params_.bad_to_good);
  return (1.0 - pi_bad) * params_.p_good + pi_bad * params_.p_bad;
}

}  // namespace wan::net
