// Per-message latency models for the simulated WAN.
//
// Wide-area latencies are milliseconds-to-seconds with heavy tails under
// congestion; the protocol's correctness must not depend on any latency
// bound (the paper explicitly rules out bounded-delay assumptions), so these
// models exist to exercise timeout paths and to measure realistic check
// delays, not to enforce guarantees.
#pragma once

#include <memory>

#include "sim/time.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace wan::net {

/// Samples the one-way delay for a message from `src` to `dst`.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  [[nodiscard]] virtual sim::Duration sample(HostId src, HostId dst, Rng& rng) = 0;
};

/// Fixed delay for every message (tests, microbenchmarks).
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(sim::Duration d);
  sim::Duration sample(HostId, HostId, Rng&) override { return delay_; }

 private:
  sim::Duration delay_;
};

/// Uniform in [lo, hi] — a simple WAN stand-in.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(sim::Duration lo, sim::Duration hi);
  sim::Duration sample(HostId, HostId, Rng& rng) override;

 private:
  sim::Duration lo_, hi_;
};

/// base + Exp(tail_mean): a fixed propagation delay plus an exponential
/// queueing tail. Matches the shape of WAN RTT distributions well enough for
/// the latency experiments.
class ExponentialTailLatency final : public LatencyModel {
 public:
  ExponentialTailLatency(sim::Duration base, sim::Duration tail_mean);
  sim::Duration sample(HostId, HostId, Rng& rng) override;

 private:
  sim::Duration base_, tail_mean_;
};

std::unique_ptr<LatencyModel> default_wan_latency();

}  // namespace wan::net
