#include "net/latency_model.hpp"

#include "util/assert.hpp"

namespace wan::net {

ConstantLatency::ConstantLatency(sim::Duration d) : delay_(d) {
  WAN_REQUIRE(!d.is_negative());
}

UniformLatency::UniformLatency(sim::Duration lo, sim::Duration hi) : lo_(lo), hi_(hi) {
  WAN_REQUIRE(!lo.is_negative());
  WAN_REQUIRE(hi >= lo);
}

sim::Duration UniformLatency::sample(HostId, HostId, Rng& rng) {
  return sim::Duration::from_seconds(
      rng.next_uniform(lo_.to_seconds(), hi_.to_seconds()));
}

ExponentialTailLatency::ExponentialTailLatency(sim::Duration base,
                                               sim::Duration tail_mean)
    : base_(base), tail_mean_(tail_mean) {
  WAN_REQUIRE(!base.is_negative());
  WAN_REQUIRE(tail_mean > sim::Duration{});
}

sim::Duration ExponentialTailLatency::sample(HostId, HostId, Rng& rng) {
  return base_ + sim::Duration::from_seconds(
                     rng.next_exponential(tail_mean_.to_seconds()));
}

std::unique_ptr<LatencyModel> default_wan_latency() {
  // ~40ms propagation + 20ms mean queueing tail: a mid-90s transcontinental
  // Internet path under moderate load.
  return std::make_unique<ExponentialTailLatency>(sim::Duration::millis(40),
                                                  sim::Duration::millis(20));
}

}  // namespace wan::net
