#include "net/reliable.hpp"

#include <mutex>
#include <utility>

namespace wan::net {

namespace {

void encode_data(const Message& msg, WireWriter& w) {
  const auto& m = static_cast<const ReliableData&>(msg);
  w.u64(m.seq);
  w.u64(m.cum_ack);
  w.u64(m.ack_bits);
  w.u32(static_cast<std::uint32_t>(m.inner.size()));
  w.raw(m.inner.data(), m.inner.size());
}

MessagePtr decode_data(WireReader& r) {
  const std::uint64_t seq = r.u64();
  const std::uint64_t cum_ack = r.u64();
  const std::uint64_t ack_bits = r.u64();
  const std::uint32_t inner_len = r.u32();
  if (!r.ok()) return nullptr;
  // Sequences are 1-based: seq 0 can only come from a hostile or corrupt
  // sender and would wedge the receiver's cumulative watermark forever.
  if (seq == 0) {
    r.fail();
    return nullptr;
  }
  // The inner length must describe exactly the bytes that remain, and those
  // bytes must at least hold a frame header — anything shorter cannot be the
  // complete encoded frame the envelope promises.
  if (inner_len != r.remaining() || inner_len < kWireHeaderSize) {
    r.fail();
    return nullptr;
  }
  std::vector<std::uint8_t> inner = r.raw(inner_len);
  if (!r.ok()) return nullptr;
  return make_message<ReliableData>(seq, cum_ack, ack_bits, std::move(inner));
}

void encode_ack(const Message& msg, WireWriter& w) {
  const auto& m = static_cast<const ReliableAck&>(msg);
  w.u64(m.cum_ack);
  w.u64(m.ack_bits);
}

MessagePtr decode_ack(WireReader& r) {
  const std::uint64_t cum_ack = r.u64();
  const std::uint64_t ack_bits = r.u64();
  if (!r.ok()) return nullptr;
  return make_message<ReliableAck>(cum_ack, ack_bits);
}

}  // namespace

void register_reliable_codecs() {
  static std::once_flag once;
  std::call_once(once, [] {
    CodecRegistry& reg = CodecRegistry::global();
    reg.register_codec(kTagReliableData, TypeId::intern("ReliableData"),
                       encode_data, decode_data);
    reg.register_codec(kTagReliableAck, TypeId::intern("ReliableAck"),
                       encode_ack, decode_ack);
  });
}

}  // namespace wan::net
