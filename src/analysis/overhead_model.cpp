#include "analysis/overhead_model.hpp"

#include "util/assert.hpp"

namespace wan::analysis {

namespace {
double harmonic(int k) {
  double h = 0.0;
  for (int i = 1; i <= k; ++i) h += 1.0 / i;
  return h;
}
}  // namespace

double expected_check_delay_seconds(int reachable, int check_quorum,
                                    double base_seconds,
                                    double tail_mean_seconds) {
  WAN_REQUIRE(check_quorum >= 1);
  if (reachable < check_quorum) return -1.0;  // no quorum: see O(R) path
  // C-th order statistic of `reachable` i.i.d. Exp(tail) variables, plus the
  // deterministic base both ways.
  const double tail =
      tail_mean_seconds * (harmonic(reachable) - harmonic(reachable - check_quorum));
  return 2.0 * base_seconds + tail;
}

}  // namespace wan::analysis
