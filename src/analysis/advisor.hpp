// Parameter advisor: "our algorithm allows each application to set the
// parameters that determine the level of security and availability, as well
// as the access control overhead" (§5). This component turns application
// requirements into concrete (M, C, Te) choices using the §4.1 model:
//
//  * choose C for fixed M (availability-first, security-first, or balanced),
//  * find the smallest M that can meet joint PA/PS targets — Table 2's
//    "increase the cardinality of the manager set" recommendation.
#pragma once

#include <optional>

#include "sim/time.hpp"

namespace wan::analysis {

/// Application requirements, in the model's terms.
struct Requirements {
  double min_availability = 0.99;  ///< target PA
  double min_security = 0.99;      ///< target PS
  double pi = 0.1;                 ///< assumed pairwise inaccessibility
};

/// One concrete recommendation.
struct Recommendation {
  int managers = 0;
  int check_quorum = 0;
  double pa = 0.0;
  double ps = 0.0;

  [[nodiscard]] bool meets(const Requirements& req) const noexcept {
    return pa >= req.min_availability && ps >= req.min_security;
  }
};

/// Best C for a fixed M: maximizes min(PA - availability deficit weighting).
/// `security_weight` in [0,1]: 0 = pure availability, 1 = pure security,
/// 0.5 = balanced (maximin on the weighted pair).
[[nodiscard]] Recommendation choose_check_quorum(int managers, double pi,
                                                 double security_weight = 0.5);

/// Smallest M (searched up to max_managers) with some C meeting both targets;
/// among feasible (M, C), the smallest M then the smallest C (cheapest
/// checks). nullopt if even max_managers cannot meet the targets.
[[nodiscard]] std::optional<Recommendation> smallest_feasible(
    const Requirements& req, int max_managers = 64);

/// Expiry-period advisor: largest Te (and thus cheapest overhead, O(C/Te))
/// whose revocation exposure is acceptable. Trivial arithmetic, provided so
/// callers state intent: Te = max_exposure (the bound IS the exposure).
[[nodiscard]] inline sim::Duration choose_te(sim::Duration max_exposure) {
  return max_exposure;
}

}  // namespace wan::analysis
