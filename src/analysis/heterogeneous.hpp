// Heterogeneous and correlated inaccessibility (§4.1, closing paragraphs).
//
// "In most realistic systems, site inaccessibility probabilities are much
// more heterogeneous ... and often dependent on one another since the failure
// of one communication link may make several managers inaccessible."
//
// Three generalizations of the homogeneous model:
//  1. Poisson-binomial: per-manager independent inaccessibility p_j; exact
//     P[at least C accessible] by dynamic programming.
//  2. Shared-link model: managers sit behind network links; a link failure
//     (prob q_l) takes out every manager behind it, plus independent
//     per-manager residual failures. Exact by enumerating link states.
//  3. Weighted system estimates: per-host availability and per-manager
//     security averaged with access / update frequencies — the paper's
//     recipe for an overall system figure, which also exposes the
//     manager-placement effect ("if one manager that frequently issues
//     revocations is frequently inaccessible, overall security suffers").
#pragma once

#include <vector>

namespace wan::analysis {

/// P[at least `at_least` of the independent events succeed], where event j
/// succeeds with probability success[j]. Exact Poisson-binomial DP.
[[nodiscard]] double poisson_binomial_at_least(const std::vector<double>& success,
                                               int at_least);

/// Heterogeneous PA for one host: inaccess[j] = P[manager j unreachable from
/// this host].
[[nodiscard]] double availability_pa_hetero(const std::vector<double>& inaccess,
                                            int check_quorum);

/// Heterogeneous PS for one issuing manager: inaccess[j] over the *other*
/// M-1 managers; update quorum M - C + 1 (issuer included).
[[nodiscard]] double security_ps_hetero(const std::vector<double>& peer_inaccess,
                                        int check_quorum);

/// Shared-link topology: manager j is behind link `link_of[j]` (-1 = no
/// shared link); link l fails with probability link_fail[l]; manager j
/// additionally fails independently with residual[j]. Computes
/// P[at least C managers accessible] exactly by enumerating link states
/// (requires link count <= 20).
struct SharedLinkModel {
  std::vector<int> link_of;
  std::vector<double> link_fail;
  std::vector<double> residual;

  [[nodiscard]] double at_least_accessible(int at_least) const;
};

/// The paper's weighted overall estimate: probabilities paired with the
/// frequency weight of the site they describe.
struct WeightedEstimate {
  std::vector<double> probabilities;
  std::vector<double> weights;  ///< e.g. access or update frequencies

  [[nodiscard]] double weighted_mean() const;
};

}  // namespace wan::analysis
