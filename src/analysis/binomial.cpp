#include "analysis/binomial.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace wan::analysis {

double log_choose(int n, int k) {
  WAN_REQUIRE(n >= 0 && k >= 0 && k <= n);
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

double binomial_pmf(int n, int k, double p) {
  WAN_REQUIRE(n >= 0);
  WAN_REQUIRE(p >= 0.0 && p <= 1.0);
  if (k < 0 || k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_choose(n, k) + k * std::log(p) +
                         (n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_at_least(int n, int k, double p) {
  WAN_REQUIRE(n >= 0);
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  double total = 0.0;
  for (int i = k; i <= n; ++i) total += binomial_pmf(n, i, p);
  return total > 1.0 ? 1.0 : total;
}

}  // namespace wan::analysis
