// The paper's availability/security model (§4.1).
//
// Model: every pair of sites is independently inaccessible with probability
// Pi (site failure or partition — indistinguishable). With M managers and
// check quorum C:
//
//   PA(C) = P[ host reaches >= C of the M managers ]
//         = sum_{k=C}^{M}  C(M,k) (1-Pi)^k Pi^(M-k)
//
//   PS(C) = P[ issuing manager reaches an update quorum, i.e. >= M-C of the
//              other M-1 managers ]
//         = sum_{k=M-C}^{M-1} C(M-1,k) (1-Pi)^k Pi^(M-1-k)
//
// These generate Figure 5 and Tables 1-2; golden tests pin our values to the
// paper's published five-decimal numbers.
#pragma once

#include <vector>

namespace wan::analysis {

/// PA(C): probability a host can assemble a check quorum. The paper's
/// availability metric (R = infinity assumed).
[[nodiscard]] double availability_pa(int managers, int check_quorum, double pi);

/// PS(C): probability a revoking manager can assemble an update quorum.
/// The paper's security metric.
[[nodiscard]] double security_ps(int managers, int check_quorum, double pi);

/// Both curves over C = 1..M (index 0 holds C=1) — Figure 5's series.
struct TradeoffCurves {
  std::vector<double> pa;
  std::vector<double> ps;
};
[[nodiscard]] TradeoffCurves tradeoff_curves(int managers, double pi);

/// min(PA, PS) maximizer: the C that best balances the two, with ties broken
/// toward smaller C (cheaper checks). Used by the parameter advisor.
[[nodiscard]] int balanced_check_quorum(int managers, double pi);

}  // namespace wan::analysis
