#include "analysis/heterogeneous.hpp"

#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"

namespace wan::analysis {

double poisson_binomial_at_least(const std::vector<double>& success,
                                 int at_least) {
  const auto n = static_cast<int>(success.size());
  if (at_least <= 0) return 1.0;
  if (at_least > n) return 0.0;
  // dp[k] = P[k successes among the events processed so far].
  std::vector<double> dp(static_cast<std::size_t>(n) + 1, 0.0);
  dp[0] = 1.0;
  int seen = 0;
  for (const double p : success) {
    WAN_REQUIRE(p >= 0.0 && p <= 1.0);
    for (int k = seen; k >= 0; --k) {
      const auto ku = static_cast<std::size_t>(k);
      dp[ku + 1] += dp[ku] * p;
      dp[ku] *= (1.0 - p);
    }
    ++seen;
  }
  double total = 0.0;
  for (int k = at_least; k <= n; ++k)
    total += dp[static_cast<std::size_t>(k)];
  return total > 1.0 ? 1.0 : total;
}

double availability_pa_hetero(const std::vector<double>& inaccess,
                              int check_quorum) {
  std::vector<double> success;
  success.reserve(inaccess.size());
  for (const double p : inaccess) success.push_back(1.0 - p);
  return poisson_binomial_at_least(success, check_quorum);
}

double security_ps_hetero(const std::vector<double>& peer_inaccess,
                          int check_quorum) {
  const auto m = static_cast<int>(peer_inaccess.size()) + 1;  // peers + self
  WAN_REQUIRE(check_quorum >= 1 && check_quorum <= m);
  std::vector<double> success;
  success.reserve(peer_inaccess.size());
  for (const double p : peer_inaccess) success.push_back(1.0 - p);
  // Needs M - C acks from peers (self already counted).
  return poisson_binomial_at_least(success, m - check_quorum);
}

double SharedLinkModel::at_least_accessible(int at_least) const {
  const auto n_mgr = link_of.size();
  WAN_REQUIRE(residual.size() == n_mgr);
  const auto n_links = link_fail.size();
  WAN_REQUIRE(n_links <= 20);
  for (const int l : link_of) {
    WAN_REQUIRE(l >= -1 && l < static_cast<int>(n_links));
  }

  double total = 0.0;
  const std::uint64_t states = 1ULL << n_links;
  for (std::uint64_t state = 0; state < states; ++state) {
    // Probability of this exact link up/down configuration (bit set = down).
    double p_state = 1.0;
    for (std::size_t l = 0; l < n_links; ++l) {
      const bool down = (state >> l) & 1u;
      p_state *= down ? link_fail[l] : (1.0 - link_fail[l]);
    }
    if (p_state == 0.0) continue;
    // Managers behind a downed link are gone; the rest fail independently.
    std::vector<double> success;
    success.reserve(n_mgr);
    for (std::size_t j = 0; j < n_mgr; ++j) {
      const int l = link_of[j];
      const bool link_down = l >= 0 && ((state >> l) & 1u);
      success.push_back(link_down ? 0.0 : 1.0 - residual[j]);
    }
    total += p_state * poisson_binomial_at_least(success, at_least);
  }
  return total;
}

double WeightedEstimate::weighted_mean() const {
  WAN_REQUIRE(probabilities.size() == weights.size());
  WAN_REQUIRE(!probabilities.empty());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    WAN_REQUIRE(weights[i] >= 0.0);
    num += probabilities[i] * weights[i];
    den += weights[i];
  }
  WAN_REQUIRE(den > 0.0);
  return num / den;
}

}  // namespace wan::analysis
