// Exact binomial machinery for the availability/security analysis (§4.1).
//
// Computed in log space (lgamma) so that the M=10..12, five-decimal values
// published in the paper's Tables 1 and 2 are reproduced digit-for-digit
// without cancellation trouble.
#pragma once

namespace wan::analysis {

/// log C(n, k); requires 0 <= k <= n.
[[nodiscard]] double log_choose(int n, int k);

/// P[X == k] for X ~ Binomial(n, p).
[[nodiscard]] double binomial_pmf(int n, int k, double p);

/// P[X >= k] for X ~ Binomial(n, p); k <= 0 yields 1, k > n yields 0.
[[nodiscard]] double binomial_at_least(int n, int k, double p);

}  // namespace wan::analysis
