#include "analysis/availability.hpp"

#include <algorithm>

#include "analysis/binomial.hpp"
#include "util/assert.hpp"

namespace wan::analysis {

double availability_pa(int managers, int check_quorum, double pi) {
  WAN_REQUIRE(managers >= 1);
  WAN_REQUIRE(check_quorum >= 1 && check_quorum <= managers);
  WAN_REQUIRE(pi >= 0.0 && pi <= 1.0);
  return binomial_at_least(managers, check_quorum, 1.0 - pi);
}

double security_ps(int managers, int check_quorum, double pi) {
  WAN_REQUIRE(managers >= 1);
  WAN_REQUIRE(check_quorum >= 1 && check_quorum <= managers);
  WAN_REQUIRE(pi >= 0.0 && pi <= 1.0);
  // The issuer needs M - C of the *other* M - 1 managers (it counts itself
  // toward the update quorum of M - C + 1).
  return binomial_at_least(managers - 1, managers - check_quorum, 1.0 - pi);
}

TradeoffCurves tradeoff_curves(int managers, double pi) {
  TradeoffCurves curves;
  curves.pa.reserve(static_cast<std::size_t>(managers));
  curves.ps.reserve(static_cast<std::size_t>(managers));
  for (int c = 1; c <= managers; ++c) {
    curves.pa.push_back(availability_pa(managers, c, pi));
    curves.ps.push_back(security_ps(managers, c, pi));
  }
  return curves;
}

int balanced_check_quorum(int managers, double pi) {
  int best_c = 1;
  double best = -1.0;
  for (int c = 1; c <= managers; ++c) {
    const double v = std::min(availability_pa(managers, c, pi),
                              security_ps(managers, c, pi));
    if (v > best) {
      best = v;
      best_c = c;
    }
  }
  return best_c;
}

}  // namespace wan::analysis
