#include "analysis/advisor.hpp"

#include <algorithm>

#include "analysis/availability.hpp"
#include "util/assert.hpp"

namespace wan::analysis {

Recommendation choose_check_quorum(int managers, double pi,
                                   double security_weight) {
  WAN_REQUIRE(managers >= 1);
  WAN_REQUIRE(security_weight >= 0.0 && security_weight <= 1.0);
  Recommendation best;
  double best_score = -1.0;
  for (int c = 1; c <= managers; ++c) {
    const double pa = availability_pa(managers, c, pi);
    const double ps = security_ps(managers, c, pi);
    // Weighted maximin: deficits from 1.0 scaled by the preference, worst
    // deficit decides. security_weight = 1 ignores availability entirely.
    const double a_deficit = (1.0 - pa) * (1.0 - security_weight);
    const double s_deficit = (1.0 - ps) * security_weight;
    const double score = -std::max(a_deficit, s_deficit);
    if (score > best_score) {
      best_score = score;
      best = Recommendation{managers, c, pa, ps};
    }
  }
  return best;
}

std::optional<Recommendation> smallest_feasible(const Requirements& req,
                                                int max_managers) {
  WAN_REQUIRE(max_managers >= 1);
  for (int m = 1; m <= max_managers; ++m) {
    for (int c = 1; c <= m; ++c) {
      Recommendation r{m, c, availability_pa(m, c, req.pi),
                       security_ps(m, c, req.pi)};
      if (r.meets(req)) return r;
    }
  }
  return std::nullopt;
}

}  // namespace wan::analysis
