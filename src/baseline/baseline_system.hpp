// Baseline access-control designs the paper positions itself against (§3
// intro, §4.2), implemented on the same network/clock substrate so that
// bench_tradeoff can compare availability, security, and message overhead
// like-for-like against the quorum protocol:
//
//  kFullReplication  "distribute information to all hosts that execute the
//                    application": every host replicates the full ACL;
//                    updates are persistently pushed to all hosts and all
//                    managers; checks are purely local (fast, but update
//                    traffic scales with |Hosts(A)| and a partitioned host
//                    keeps stale rights indefinitely).
//
//  kLocalOnly        "only change the information locally at the manager
//                    issuing the update": no dissemination at all; a check
//                    must interrogate ALL managers and take the freshest
//                    answer, since the update could live anywhere.
//
//  kEventual         the [23]-style replicated-authorization scheme: managers
//                    converge by periodic push-pull anti-entropy; hosts ask a
//                    single (rotating) manager per check and do not cache.
//                    No revocation time bound exists — exactly the property
//                    the paper's protocol adds.
//
// None of these implement expiry or quorums; that is the point.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "acl/store.hpp"
#include "metrics/ground_truth.hpp"
#include "proto/messages.hpp"
#include "runtime/env.hpp"
#include "util/rng.hpp"

namespace wan::baseline {

enum class Kind : std::uint8_t { kFullReplication, kLocalOnly, kEventual };

[[nodiscard]] const char* to_cstring(Kind k) noexcept;

struct BaselineConfig {
  Kind kind = Kind::kEventual;
  int managers = 3;
  int app_hosts = 5;
  sim::Duration query_timeout = sim::Duration::seconds(2);
  sim::Duration retransmit = sim::Duration::seconds(2);
  sim::Duration gossip_period = sim::Duration::seconds(15);  ///< kEventual
  std::uint64_t seed = 1;
};

/// Outcome of one baseline access check.
struct BaselineDecision {
  bool allowed = false;
  sim::TimePoint requested{};
  sim::TimePoint decided{};
  [[nodiscard]] sim::Duration latency() const noexcept {
    return decided - requested;
  }
};

/// One complete baseline deployment on an externally supplied network (so
/// the caller controls partitions — the same models the core protocol sees).
/// Manager/host ids must be pre-registered ranges the caller also feeds to
/// the partition model.
class BaselineSystem {
 public:
  BaselineSystem(runtime::Env& env, AppId app, std::vector<HostId> manager_ids,
                 std::vector<HostId> host_ids, BaselineConfig config);
  ~BaselineSystem();
  BaselineSystem(const BaselineSystem&) = delete;
  BaselineSystem& operator=(const BaselineSystem&) = delete;

  /// Issues Add/Revoke at a rotating manager. `done` fires at the operation's
  /// *local* effect instant — these designs have no global guarantee point,
  /// which is what the ground-truth comparison exposes.
  void grant(UserId user, std::function<void(sim::TimePoint)> done = nullptr);
  void revoke(UserId user, std::function<void(sim::TimePoint)> done = nullptr);

  /// Access check at app host `host_idx`.
  void check(int host_idx, UserId user,
             std::function<void(const BaselineDecision&)> done);

  [[nodiscard]] Kind kind() const noexcept { return config_.kind; }
  [[nodiscard]] const BaselineConfig& config() const noexcept { return config_; }

  /// Store of manager i (diagnostics/tests).
  [[nodiscard]] const acl::AclStore& manager_store(int i) const;
  /// Host-replica store (kFullReplication only).
  [[nodiscard]] const acl::AclStore& host_store(int i) const;

 private:
  struct ManagerNode;
  struct HostNode;

  void submit(acl::Op op, UserId user, std::function<void(sim::TimePoint)> done);

  runtime::Env& env_;
  runtime::Transport& net_;
  AppId app_;
  BaselineConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<ManagerNode>> managers_;
  std::vector<std::unique_ptr<HostNode>> hosts_;
  int next_mgr_ = 0;
};

}  // namespace wan::baseline
