#include "baseline/baseline_system.hpp"

#include <set>
#include <utility>

#include "baseline/messages.hpp"
#include "util/assert.hpp"

namespace wan::baseline {

const char* to_cstring(Kind k) noexcept {
  switch (k) {
    case Kind::kFullReplication: return "full-replication";
    case Kind::kLocalOnly: return "local-only";
    case Kind::kEventual: return "eventual-consistency";
  }
  return "?";
}

// ----------------------------------------------------------- ManagerNode

struct BaselineSystem::ManagerNode {
  BaselineSystem& sys;
  HostId id;
  acl::AclStore store;

  // Persistent push (kFullReplication): one transaction per update.
  struct Txn {
    acl::AclUpdate update;
    std::set<HostId> pending;
    runtime::Timer retry;
    explicit Txn(runtime::Env& env) : retry(env.make_timer()) {}
  };
  std::unordered_map<std::uint64_t, std::unique_ptr<Txn>> txns;
  std::uint64_t next_txn = 1;

  runtime::PeriodicTimer gossip_timer;  // kEventual

  ManagerNode(BaselineSystem& system, HostId host)
      : sys(system), id(host), gossip_timer(system.env_.make_periodic_timer()) {}

  void start() {
    if (sys.config_.kind == Kind::kEventual && sys.managers_.size() > 1) {
      gossip_timer.start(sys.config_.gossip_period, [this] { gossip_once(); });
    }
  }

  void gossip_once() {
    // Push-pull with one random peer per period.
    const auto n = sys.managers_.size();
    std::size_t pick = sys.rng_.next_below(n - 1);
    for (std::size_t i = 0, seen = 0; i < n; ++i) {
      if (sys.managers_[i]->id == id) continue;
      if (seen++ == pick) {
        sys.net_.send(id, sys.managers_[i]->id,
                      net::make_message<GossipMsg>(sys.app_, store.snapshot(),
                                                   /*reply=*/true));
        return;
      }
    }
  }

  // Defined after HostNode (it walks sys.hosts_).
  void submit(acl::Op op, UserId user, std::function<void(sim::TimePoint)> done);

  void send_round(std::uint64_t txn_id, Txn& txn) {
    const auto msg = net::make_message<proto::UpdateMsg>(sys.app_, txn.update,
                                                         txn_id);
    for (const HostId target : txn.pending) sys.net_.send(id, target, msg);
    txn.retry.arm(sys.config_.retransmit, [this, txn_id] {
      const auto it = txns.find(txn_id);
      if (it == txns.end()) return;
      send_round(txn_id, *it->second);
    });
  }

  void on_message(HostId from, const net::MessagePtr& msg) {
    if (const auto* q = net::message_cast<proto::QueryRequest>(msg)) {
      const acl::RightSet rights = store.rights_of(q->user);
      acl::Version version{};
      if (const auto st = store.state(q->user, acl::Right::kUse)) {
        version = st->version;
      }
      sys.net_.send(id, from,
                    net::make_message<proto::QueryResponse>(
                        q->app, q->user, q->query_id, rights, version,
                        sim::Duration{}));
    } else if (const auto* u = net::message_cast<proto::UpdateMsg>(msg)) {
      store.apply(u->update);
      sys.net_.send(id, from,
                    net::make_message<proto::UpdateAck>(u->app, u->txn_id));
    } else if (const auto* a = net::message_cast<proto::UpdateAck>(msg)) {
      const auto it = txns.find(a->txn_id);
      if (it != txns.end()) {
        it->second->pending.erase(from);
        if (it->second->pending.empty()) txns.erase(it);
      }
    } else if (const auto* g = net::message_cast<GossipMsg>(msg)) {
      store.merge(g->snapshot);
      if (g->reply_requested) {
        sys.net_.send(id, from,
                      net::make_message<GossipMsg>(sys.app_, store.snapshot(),
                                                   /*reply=*/false));
      }
    }
  }
};

// -------------------------------------------------------------- HostNode

struct BaselineSystem::HostNode {
  BaselineSystem& sys;
  HostId id;
  acl::AclStore replica;  // kFullReplication

  struct Check {
    UserId user{};
    sim::TimePoint requested{};
    std::function<void(const BaselineDecision&)> done;
    // kLocalOnly: collect all responses; kEventual: one manager at a time.
    int responses = 0;
    acl::RightSet best_rights;
    acl::Version best_version{};
    int next_manager = 0;  // kEventual rotation
    int attempts = 0;
    runtime::Timer timer;
    explicit Check(runtime::Env& env) : timer(env.make_timer()) {}
  };
  std::unordered_map<std::uint64_t, std::unique_ptr<Check>> checks;
  std::uint64_t next_query = 1;
  int rotate = 0;

  HostNode(BaselineSystem& system, HostId host) : sys(system), id(host) {}

  void check(UserId user, std::function<void(const BaselineDecision&)> done) {
    if (sys.config_.kind == Kind::kFullReplication) {
      BaselineDecision d;
      d.requested = d.decided = sys.env_.now();
      d.allowed = replica.check(user, acl::Right::kUse);
      done(d);
      return;
    }
    const std::uint64_t qid = next_query++;
    auto c = std::make_unique<Check>(sys.env_);
    c->user = user;
    c->requested = sys.env_.now();
    c->done = std::move(done);
    c->next_manager = rotate;
    rotate = (rotate + 1) % static_cast<int>(sys.managers_.size());
    Check& ref = *c;
    checks.emplace(qid, std::move(c));

    if (sys.config_.kind == Kind::kLocalOnly) {
      // "checking access would in general involve communicating with all
      // managers to locate the information."
      const auto msg =
          net::make_message<proto::QueryRequest>(sys.app_, user, qid);
      for (const auto& m : sys.managers_) sys.net_.send(id, m->id, msg);
      ref.timer.arm(sys.config_.query_timeout, [this, qid] { settle(qid); });
    } else {  // kEventual: ask one manager; fail over on timeout.
      send_single(qid, ref);
    }
  }

  void send_single(std::uint64_t qid, Check& c) {
    const HostId mgr =
        sys.managers_[static_cast<std::size_t>(c.next_manager)]->id;
    c.next_manager =
        (c.next_manager + 1) % static_cast<int>(sys.managers_.size());
    ++c.attempts;
    sys.net_.send(id, mgr,
                  net::make_message<proto::QueryRequest>(sys.app_, c.user, qid));
    c.timer.arm(sys.config_.query_timeout, [this, qid] {
      const auto it = checks.find(qid);
      if (it == checks.end()) return;
      Check& c = *it->second;
      if (c.attempts >= static_cast<int>(sys.managers_.size())) {
        finish(qid, false);
      } else {
        send_single(qid, c);
      }
    });
  }

  void settle(std::uint64_t qid) {
    // kLocalOnly deadline: decide from whatever arrived.
    const auto it = checks.find(qid);
    if (it == checks.end()) return;
    finish(qid, it->second->best_rights.has(acl::Right::kUse));
  }

  void finish(std::uint64_t qid, bool allowed) {
    const auto it = checks.find(qid);
    WAN_ASSERT(it != checks.end());
    auto c = std::move(it->second);
    checks.erase(it);
    c->timer.cancel();
    BaselineDecision d;
    d.requested = c->requested;
    d.decided = sys.env_.now();
    d.allowed = allowed;
    c->done(d);
  }

  void on_message(HostId from, const net::MessagePtr& msg) {
    if (const auto* u = net::message_cast<proto::UpdateMsg>(msg)) {
      replica.apply(u->update);
      sys.net_.send(id, from,
                    net::make_message<proto::UpdateAck>(u->app, u->txn_id));
      return;
    }
    const auto* r = net::message_cast<proto::QueryResponse>(msg);
    if (r == nullptr) return;
    const auto it = checks.find(r->query_id);
    if (it == checks.end()) return;
    Check& c = *it->second;
    ++c.responses;
    if (r->version >= c.best_version) {
      c.best_version = r->version;
      c.best_rights = r->rights;
    }
    if (sys.config_.kind == Kind::kLocalOnly) {
      if (c.responses >= static_cast<int>(sys.managers_.size())) {
        finish(r->query_id, c.best_rights.has(acl::Right::kUse));
      }
    } else {  // kEventual: first answer decides
      finish(r->query_id, r->rights.has(acl::Right::kUse));
    }
  }
};

void BaselineSystem::ManagerNode::submit(
    acl::Op op, UserId user, std::function<void(sim::TimePoint)> done) {
  acl::AclUpdate update;
  update.user = user;
  update.right = acl::Right::kUse;
  update.op = op;
  update.version = store.max_version().next(id);
  store.apply(update);
  if (done) done(sys.env_.now());

  if (sys.config_.kind == Kind::kFullReplication) {
    const std::uint64_t txn_id = next_txn++;
    auto txn = std::make_unique<Txn>(sys.env_);
    txn->update = update;
    for (const auto& m : sys.managers_) {
      if (m->id != id) txn->pending.insert(m->id);
    }
    for (const auto& h : sys.hosts_) txn->pending.insert(h->id);
    Txn& ref = *txn;
    txns.emplace(txn_id, std::move(txn));
    send_round(txn_id, ref);
  }
  // kLocalOnly: nothing to send. kEventual: gossip carries it later.
}

// --------------------------------------------------------- BaselineSystem

BaselineSystem::BaselineSystem(runtime::Env& env, AppId app,
                               std::vector<HostId> manager_ids,
                               std::vector<HostId> host_ids,
                               BaselineConfig config)
    : env_(env),
      net_(env.transport()),
      app_(app),
      config_(config),
      rng_(config.seed) {
  WAN_REQUIRE(!manager_ids.empty());
  WAN_REQUIRE(!host_ids.empty());
  WAN_REQUIRE(static_cast<int>(manager_ids.size()) == config_.managers);
  WAN_REQUIRE(static_cast<int>(host_ids.size()) == config_.app_hosts);

  for (const HostId id : manager_ids) {
    managers_.push_back(std::make_unique<ManagerNode>(*this, id));
    auto* node = managers_.back().get();
    net_.register_endpoint(id, [node](HostId from, const net::MessagePtr& msg) {
      node->on_message(from, msg);
    });
  }
  for (const HostId id : host_ids) {
    hosts_.push_back(std::make_unique<HostNode>(*this, id));
    auto* node = hosts_.back().get();
    net_.register_endpoint(id, [node](HostId from, const net::MessagePtr& msg) {
      node->on_message(from, msg);
    });
  }
  for (auto& m : managers_) m->start();
}

BaselineSystem::~BaselineSystem() = default;

void BaselineSystem::submit(acl::Op op, UserId user,
                            std::function<void(sim::TimePoint)> done) {
  ManagerNode& mgr = *managers_[static_cast<std::size_t>(next_mgr_)];
  next_mgr_ = (next_mgr_ + 1) % config_.managers;
  mgr.submit(op, user, std::move(done));
}

void BaselineSystem::grant(UserId user,
                           std::function<void(sim::TimePoint)> done) {
  submit(acl::Op::kAdd, user, std::move(done));
}

void BaselineSystem::revoke(UserId user,
                            std::function<void(sim::TimePoint)> done) {
  submit(acl::Op::kRevoke, user, std::move(done));
}

void BaselineSystem::check(int host_idx, UserId user,
                           std::function<void(const BaselineDecision&)> done) {
  WAN_REQUIRE(host_idx >= 0 && host_idx < config_.app_hosts);
  WAN_REQUIRE(done != nullptr);
  hosts_[static_cast<std::size_t>(host_idx)]->check(user, std::move(done));
}

const acl::AclStore& BaselineSystem::manager_store(int i) const {
  WAN_REQUIRE(i >= 0 && i < config_.managers);
  return managers_[static_cast<std::size_t>(i)]->store;
}

const acl::AclStore& BaselineSystem::host_store(int i) const {
  WAN_REQUIRE(i >= 0 && i < config_.app_hosts);
  return hosts_[static_cast<std::size_t>(i)]->replica;
}

}  // namespace wan::baseline
