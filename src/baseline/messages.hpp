// Extra wire messages used only by the baseline protocols.
//
// The baselines reuse the core QueryRequest/QueryResponse/UpdateMsg/UpdateAck
// formats where the semantics coincide; anti-entropy gossip is their own.
#pragma once

#include <utility>
#include <vector>

#include "acl/store.hpp"
#include "net/message.hpp"
#include "util/ids.hpp"

namespace wan::baseline {

/// Manager <-> manager anti-entropy exchange (eventual-consistency baseline,
/// after Samarati et al. [23]): a full versioned snapshot, merged LWW on
/// receipt. `reply_requested` makes the exchange push-pull.
struct GossipMsg final : net::Message {
  AppId app{};
  std::vector<acl::AclUpdate> snapshot;
  bool reply_requested = false;

  GossipMsg(AppId a, std::vector<acl::AclUpdate> snap, bool reply)
      : app(a), snapshot(std::move(snap)), reply_requested(reply) {}

  WAN_MESSAGE_TYPE("GossipMsg")
  std::size_t wire_size() const override { return 24 + snapshot.size() * 32; }
};

}  // namespace wan::baseline
