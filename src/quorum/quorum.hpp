// Quorum arithmetic and trackers (paper §3.3).
//
// For M managers and a check quorum of C, the update quorum is M - C + 1:
// any C-subset and any (M-C+1)-subset of managers intersect, so a completed
// update is visible in every successful check. QuorumConfig encodes the
// arithmetic; QuorumTracker collects responses/acks from *distinct* managers
// and reports when a quorum has been assembled.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"
#include "util/ids.hpp"

namespace wan::quorum {

/// Validated (M, C) pair.
class QuorumConfig {
 public:
  /// C must be in [1, M]. C == M means updates succeed with one manager
  /// (update quorum 1) but checks need all managers; C == 1 means maximal
  /// check availability but updates must reach every manager.
  QuorumConfig(int managers, int check_quorum);

  [[nodiscard]] int managers() const noexcept { return m_; }
  [[nodiscard]] int check_quorum() const noexcept { return c_; }
  [[nodiscard]] int update_quorum() const noexcept { return m_ - c_ + 1; }

  /// The defining property: every check quorum intersects every update
  /// quorum. True by construction; exposed so the property tests can sweep it.
  [[nodiscard]] static bool intersects(int m, int check, int update) noexcept {
    return check + update > m;
  }

 private:
  int m_;
  int c_;
};

/// Collects votes from distinct members until `needed` have been gathered.
/// Duplicate votes from the same member are ignored (retransmissions).
class QuorumTracker {
 public:
  explicit QuorumTracker(int needed) : needed_(needed) { WAN_REQUIRE(needed >= 0); }

  /// Records a vote; returns true if this vote completed the quorum (exactly
  /// once — later votes return false).
  bool record(HostId member);

  [[nodiscard]] bool reached() const noexcept {
    return static_cast<int>(members_.size()) >= needed_;
  }
  [[nodiscard]] int count() const noexcept { return static_cast<int>(members_.size()); }
  [[nodiscard]] int needed() const noexcept { return needed_; }
  [[nodiscard]] bool has(HostId member) const { return members_.contains(member); }

  /// Members that have voted, in insertion order.
  [[nodiscard]] const std::vector<HostId>& voters() const noexcept { return order_; }

  void reset();

 private:
  int needed_;
  std::unordered_set<HostId> members_;
  std::vector<HostId> order_;
};

}  // namespace wan::quorum
