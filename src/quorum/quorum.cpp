#include "quorum/quorum.hpp"

namespace wan::quorum {

QuorumConfig::QuorumConfig(int managers, int check_quorum)
    : m_(managers), c_(check_quorum) {
  WAN_REQUIRE(managers >= 1);
  WAN_REQUIRE(check_quorum >= 1 && check_quorum <= managers);
  WAN_ASSERT(intersects(m_, c_, update_quorum()));
}

bool QuorumTracker::record(HostId member) {
  if (reached()) {
    members_.insert(member);
    if (members_.size() > order_.size()) order_.push_back(member);
    return false;
  }
  const auto [_, inserted] = members_.insert(member);
  if (!inserted) return false;
  order_.push_back(member);
  return reached();
}

void QuorumTracker::reset() {
  members_.clear();
  order_.clear();
}

}  // namespace wan::quorum
