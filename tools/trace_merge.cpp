// trace_merge: one timeline out of a directory of per-process traces.
//
//   trace_merge --dir DIR [--out FILE] [--te-ms N] [--require-cross N]
//               [--text] [--verbose]
//
// Input is what `wan_node --trace DIR` leaves behind: a WANTRACE v1 file per
// cleanly exited role process, plus flight-recorder rings (`*.ring`) for
// every process and `<name>-killed.trace` harvests the chaos orchestrator
// salvaged from SIGKILLed victims. Each carries a wall-clock anchor — one
// instant sampled on both the process-local runtime clock and the
// machine-shared system clock — which is what lets nine processes' spans
// interleave into one causally ordered stream (obs/trace_io.hpp).
//
// Outputs and audits:
//  * a merged Chrome trace_event JSON (default DIR/merged_trace.json): one
//    track group per process, flow arrows threading each TraceId through
//    every process it touched — open in chrome://tracing or ui.perfetto.dev;
//  * chain statistics: how many OS processes each causal chain crossed, and
//    whether its earliest merged event was recorded by the node that minted
//    the id (the anchored-clock causality check);
//  * with --te-ms, the empirical-Te probe (obs/te_probe.hpp) replayed over
//    the MERGED stream — the revocation bound audited across real process
//    boundaries, not within one address space.
//
// Exit is nonzero when the Te probe reports a violation, when
// --require-cross N is given and no check (or no update) chain reached N
// distinct processes, or when a multi-process chain fails the causality
// check — which is how CI turns a merged trace into a gate.
#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "cli.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/te_probe.hpp"
#include "obs/trace_io.hpp"

namespace wan {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

const char* kind_name(obs::TraceKind k) {
  switch (k) {
    case obs::TraceKind::kCheck:
      return "check";
    case obs::TraceKind::kUpdate:
      return "update";
    case obs::TraceKind::kInvoke:
      return "invoke";
  }
  return "?";
}

struct MergeOptions {
  std::string dir;
  std::string out;
  int te_ms = 0;           ///< 0 = skip the Te probe
  int require_cross = 0;   ///< 0 = no cross-process reach gate
  bool text = false;
  bool verbose = false;
};

int run(const MergeOptions& opt) {
  // Gather the capture set. A ring is only harvested here when no trace file
  // covers the same process: a clean exit exported `<stem>.trace` (a strict
  // superset of the ring), and a chaos kill already salvaged the ring into
  // `<stem>-killed.trace` before the victim's restart truncated it.
  std::vector<std::string> trace_files;
  std::vector<std::string> ring_files;
  DIR* d = ::opendir(opt.dir.c_str());
  if (d == nullptr) {
    std::fprintf(stderr, "trace_merge: cannot open directory '%s'\n",
                 opt.dir.c_str());
    return 2;
  }
  while (dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (ends_with(name, ".trace")) {
      trace_files.push_back(opt.dir + "/" + name);
    } else if (ends_with(name, ".ring")) {
      ring_files.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(trace_files.begin(), trace_files.end());
  std::sort(ring_files.begin(), ring_files.end());

  std::vector<obs::ProcessTrace> procs;
  for (const std::string& path : trace_files) {
    std::string error;
    std::optional<obs::ProcessTrace> pt =
        obs::load_process_trace(path, &error);
    if (!pt) {
      std::fprintf(stderr, "trace_merge: %s\n", error.c_str());
      return 2;
    }
    procs.push_back(std::move(*pt));
  }
  std::size_t harvested_rings = 0;
  for (const std::string& name : ring_files) {
    const std::string stem = name.substr(0, name.size() - 5);
    if (file_exists(opt.dir + "/" + stem + ".trace") ||
        file_exists(opt.dir + "/" + stem + "-killed.trace")) {
      continue;
    }
    std::string error;
    std::optional<obs::FlightRecorder::Harvested> h =
        obs::FlightRecorder::harvest(opt.dir + "/" + name, &error);
    if (!h) {
      // An uncovered but unreadable ring is worth a warning, not a failure:
      // the process that owned it may still be writing.
      std::fprintf(stderr, "trace_merge: skipping %s: %s\n", name.c_str(),
                   error.c_str());
      continue;
    }
    procs.push_back(obs::from_harvest(*h, stem));
    ++harvested_rings;
  }
  if (procs.empty()) {
    std::fprintf(stderr, "trace_merge: no traces in '%s'\n", opt.dir.c_str());
    return 2;
  }

  const obs::MergedTrace merged = obs::merge_traces(std::move(procs));
  std::size_t recorders = 0;
  std::uint64_t dropped = 0;
  for (const obs::ProcessTrace& p : merged.procs) {
    if (p.from_flight_recorder) ++recorders;
    dropped += p.dropped;
  }
  std::printf(
      "TRACE_MERGE procs=%zu events=%zu flight_recorders=%zu "
      "harvested_rings=%zu dropped=%llu\n",
      merged.procs.size(), merged.events.size(), recorders, harvested_rings,
      static_cast<unsigned long long>(dropped));

  // Chain reach + the anchored-clock causality audit.
  const std::vector<obs::ChainStats> chains = obs::chain_stats(merged);
  std::size_t max_cross[3] = {0, 0, 0};
  std::size_t causal_violations = 0;
  for (const obs::ChainStats& c : chains) {
    std::size_t& best = max_cross[static_cast<std::size_t>(c.kind)];
    best = std::max(best, c.proc_count);
    // Single-process chains cannot witness anchor error; only a chain that
    // crossed processes can have its root displaced by a bad anchor.
    if (c.proc_count >= 2 && !c.root_first) {
      ++causal_violations;
      if (opt.verbose) {
        std::printf(
            "  causal violation: %s chain %016llx (minted by node %u) does "
            "not start at its minting node\n",
            kind_name(c.kind), static_cast<unsigned long long>(c.trace),
            c.mint_node);
      }
    }
  }
  std::printf(
      "CROSS chains=%zu check_max_procs=%zu update_max_procs=%zu "
      "invoke_max_procs=%zu causal_violations=%zu\n",
      chains.size(), max_cross[0], max_cross[1], max_cross[2],
      causal_violations);
  if (opt.verbose) {
    for (const obs::ChainStats& c : chains) {
      if (c.proc_count < 2) continue;
      std::printf("  chain %016llx kind=%s mint_node=%u procs=%zu events=%zu "
                  "root_first=%d\n",
                  static_cast<unsigned long long>(c.trace), kind_name(c.kind),
                  c.mint_node, c.proc_count, c.event_count,
                  c.root_first ? 1 : 0);
    }
  }

  bool ok = true;
  if (opt.te_ms > 0) {
    // The point of the whole exercise: the paper's revocation bound audited
    // over spans that crossed real OS process boundaries.
    const std::vector<obs::TraceEvent> stream = obs::analysis_events(merged);
    const obs::TeReport report =
        obs::TeProbe::analyze(stream, sim::Duration::millis(opt.te_ms));
    std::printf(
        "TE_PROBE revocations=%llu measured=%llu violations=%llu "
        "max_s=%.3f bound_s=%.3f\n",
        static_cast<unsigned long long>(report.revocations),
        static_cast<unsigned long long>(report.measured),
        static_cast<unsigned long long>(report.violations),
        report.max_seconds, report.bound_seconds);
    if (!report.ok()) {
      std::fprintf(stderr,
                   "trace_merge: FAILED — Te bound violated on the merged "
                   "stream\n");
      ok = false;
    }
    if (report.revocations == 0) {
      std::fprintf(stderr,
                   "trace_merge: FAILED — no revocation quorum in the merged "
                   "stream (nothing audited)\n");
      ok = false;
    }
  }
  if (opt.require_cross > 0) {
    const auto want = static_cast<std::size_t>(opt.require_cross);
    if (max_cross[0] < want) {
      std::fprintf(stderr,
                   "trace_merge: FAILED — no check chain crossed %d "
                   "processes (max %zu)\n",
                   opt.require_cross, max_cross[0]);
      ok = false;
    }
    if (max_cross[1] < want) {
      std::fprintf(stderr,
                   "trace_merge: FAILED — no update chain crossed %d "
                   "processes (max %zu)\n",
                   opt.require_cross, max_cross[1]);
      ok = false;
    }
    if (causal_violations > 0) {
      std::fprintf(stderr,
                   "trace_merge: FAILED — %zu cross-process chain(s) do not "
                   "start at their minting node\n",
                   causal_violations);
      ok = false;
    }
  }

  const std::string out =
      opt.out.empty() ? opt.dir + "/merged_trace.json" : opt.out;
  std::string error;
  if (!obs::write_merged_chrome_json(out, merged, &error)) {
    std::fprintf(stderr, "trace_merge: %s\n", error.c_str());
    return 2;
  }
  std::printf("MERGED_JSON %s\n", out.c_str());
  if (opt.text) std::fputs(obs::merged_text(merged).c_str(), stdout);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  wan::MergeOptions opt;
  wan::cli::Parser cli(
      "trace_merge",
      "Merges the per-process traces a `wan_node --trace DIR` run left in\n"
      "DIR — clean WANTRACE exports, chaos-harvested kills, and any\n"
      "uncovered flight-recorder rings — onto one anchored wall-clock\n"
      "timeline; emits Chrome trace_event JSON with cross-process flow\n"
      "arrows and audits the merged stream (chain reach, causal order,\n"
      "empirical Te).");
  cli.add_string("--dir", "DIR", "trace directory (required)", &opt.dir);
  cli.add_string("--out", "FILE",
                 "merged Chrome JSON path (default DIR/merged_trace.json)",
                 &opt.out);
  cli.add_value("--te-ms", "N",
                "audit the merged stream against the Te bound of N ms; a\n"
                "violation (or an empty audit) fails the run",
                [&](const std::string& v) {
                  return wan::cli::parse_int(v, &opt.te_ms) && opt.te_ms > 0;
                });
  cli.add_value("--require-cross", "N",
                "fail unless at least one check chain AND one update chain\n"
                "each cross N distinct processes, and every cross-process\n"
                "chain starts at its minting node",
                [&](const std::string& v) {
                  return wan::cli::parse_int(v, &opt.require_cross) &&
                         opt.require_cross > 0;
                });
  cli.add_flag("--text", "dump the merged stream as text to stdout",
               &opt.text);
  cli.add_flag("--verbose", "per-chain detail", &opt.verbose);
  if (!cli.parse(argc, argv)) return 2;
  if (opt.dir.empty()) {
    std::fprintf(stderr, "trace_merge: --dir is required (try --help)\n");
    return 2;
  }
  return wan::run(opt);
}
