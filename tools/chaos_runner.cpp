// chaos_runner — seed-swept fault-injection harness.
//
// Sweeps N seeds through the chaos engine on parallel worker threads; every
// seed is an independent, fully deterministic simulated deployment with its
// own fault schedule and invariant oracle. Failures print a one-command
// repro line and are double-checked for bit-identical replay (same event
// trace hash) before being reported, so a flaky report is impossible by
// construction — only a genuinely divergent replay could produce one, and
// that is itself reported as a determinism bug.
//
//   chaos_runner --seeds 1000                 # sweep seeds 1..1000
//   chaos_runner --replay 1337 --trace        # reproduce one run, verbosely
//   chaos_runner --replay 1337 --shrink       # minimize its fault schedule
//   chaos_runner --trace out.json 1337        # replay + Chrome span trace
//   chaos_runner --seeds 500 --max-seconds 60 # time-budgeted sweep
//   chaos_runner --seeds 200 --byzantine 1 --asymmetric --json sweep.json
//
// A bare positional integer is shorthand for --replay SEED. When --trace is
// followed by a filename (anything that is not a flag or an integer), the
// replay additionally records causal spans through the whole protocol stack
// and writes them as Chrome trace_event JSON (open in about:tracing or
// https://ui.perfetto.dev), plus an empirical-Te report comparing measured
// revocation latency against the configured bound. --metrics PATH dumps the
// process-wide metrics registry in Prometheus text format on exit.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chaos/engine.hpp"
#include "cli.hpp"
#include "runtime/env_options.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace {

using wan::chaos::ChaosOptions;
using wan::chaos::ChaosResult;
using wan::cli::parse_u64;

struct Options {
  std::uint64_t seeds = 100;
  std::uint64_t seed_base = 1;
  unsigned threads = 0;  // 0 = hardware concurrency
  bool replay = false;
  std::uint64_t replay_seed = 0;
  bool trace = false;
  bool shrink = false;
  std::vector<int> only_events;
  bool restrict_events = false;
  long max_seconds = 0;  // 0 = no budget
  long horizon_minutes = 8;
  std::string log_level;  // empty = logging off
  int byzantine = 0;      // liars per run (0 = adversary off)
  bool asymmetric = false;
  wan::runtime::DisseminationKind dissemination =
      wan::runtime::DisseminationKind::kUnicast;
  bool sharded = false;
  std::string json_path;   // empty = no machine-readable summary
  std::string trace_path;  // --trace FILE: Chrome trace_event JSON (replay)
  std::string metrics_path;  // --metrics PATH: Prometheus dump on exit
};

/// Registers every flag on the shared parser. Returns false (error already
/// printed) on a bad command line.
bool parse_args(int argc, char** argv, Options* opt) {
  wan::cli::Parser cli(
      "chaos_runner",
      "Seed-swept fault-injection harness: each seed is an independent,\n"
      "deterministic simulated deployment with its own fault schedule and\n"
      "invariant oracle. Failures print a one-command repro line and are\n"
      "double-checked for bit-identical replay before being reported.");
  cli.add_value("--seeds", "N", "sweep seeds B..B+N-1 (default 100)",
                [opt](const std::string& v) {
                  return parse_u64(v, &opt->seeds) && opt->seeds != 0;
                });
  cli.add_value("--seed-base", "B", "first seed of the sweep (default 1)",
                [opt](const std::string& v) {
                  return parse_u64(v, &opt->seed_base);
                });
  cli.add_value("--threads", "T",
                "worker threads (default: hardware concurrency)",
                [opt](const std::string& v) {
                  std::uint64_t t = 0;
                  if (!parse_u64(v, &t) || t == 0) return false;
                  opt->threads = static_cast<unsigned>(t);
                  return true;
                });
  cli.add_value("--replay", "SEED",
                "run exactly one seed and report it in detail",
                [opt](const std::string& v) {
                  opt->replay = true;
                  return parse_u64(v, &opt->replay_seed);
                });
  cli.add_value("--only-events", "i,j",
                "inject only these fault-schedule indices ('none' = no\n"
                "faults at all)",
                [opt](const std::string& v) {
                  opt->restrict_events = true;
                  if (v == "none") return true;
                  std::string item;
                  for (std::size_t p = 0; p <= v.size(); ++p) {
                    if (p == v.size() || v[p] == ',') {
                      if (!item.empty()) {
                        std::uint64_t idx = 0;
                        if (!parse_u64(item, &idx)) return false;
                        opt->only_events.push_back(static_cast<int>(idx));
                      }
                      item.clear();
                    } else {
                      item.push_back(v[p]);
                    }
                  }
                  return true;
                });
  cli.add_optional_value(
      "--trace", "[FILE]",
      "print per-fault and per-violation trace lines; with FILE, also\n"
      "write causal spans as Chrome trace_event JSON and report\n"
      "empirical Te",
      [opt] { opt->trace = true; },
      [opt](const std::string& v) {
        opt->trace_path = v;
        return true;
      },
      // A bare integer after --trace is the positional replay seed, not a
      // filename.
      [](const std::string& v) {
        std::uint64_t ignored = 0;
        return !v.empty() && v[0] != '-' && !parse_u64(v, &ignored);
      });
  cli.add_string("--metrics", "PATH",
                 "dump the metrics registry (Prometheus text) to PATH on exit",
                 &opt->metrics_path);
  cli.add_flag("--shrink",
               "on a failing replay, minimize the fault schedule",
               &opt->shrink);
  cli.add_value("--max-seconds", "S",
                "stop launching new seeds after S wall seconds",
                [opt](const std::string& v) {
                  std::uint64_t s = 0;
                  if (!parse_u64(v, &s)) return false;
                  opt->max_seconds = static_cast<long>(s);
                  return true;
                });
  cli.add_value("--horizon-minutes", "M",
                "simulated minutes of chaos per seed (default 8)",
                [opt](const std::string& v) {
                  std::uint64_t m = 0;
                  if (!parse_u64(v, &m) || m == 0) return false;
                  opt->horizon_minutes = static_cast<long>(m);
                  return true;
                });
  cli.add_value("--byzantine", "N",
                "inject up to N lying managers per run",
                [opt](const std::string& v) {
                  std::uint64_t n = 0;
                  if (!parse_u64(v, &n) || n == 0) return false;
                  opt->byzantine = static_cast<int>(n);
                  return true;
                });
  cli.add_flag("--asymmetric", "inject one-way link cuts", &opt->asymmetric);
  cli.add_value("--dissemination", "KIND",
                "revocation fanout strategy: unicast (default), coalesced,\n"
                "or tree; tree sweeps add a Byzantine-relay fault window",
                [opt](const std::string& v) {
                  return wan::runtime::parse_dissemination(
                      v, &opt->dissemination);
                });
  cli.add_flag("--sharded",
               "singleton-group sharded deployments with one live\n"
               "mid-run shard rebalance (incompatible with --byzantine)",
               &opt->sharded);
  cli.add_string("--json", "PATH",
                 "write a machine-readable sweep summary to PATH",
                 &opt->json_path);
  cli.add_value("--log", "LEVEL",
                "protocol log (trace|debug|info); replay only",
                [opt](const std::string& v) {
                  opt->log_level = v;
                  return v == "trace" || v == "debug" || v == "info";
                });
  cli.set_positional(
      "SEED", "bare integer: shorthand for --replay SEED",
      [opt, seen = false](const std::string& v) mutable {
        // A second positional used to silently overwrite the first; now it
        // is a hard error.
        if (seen || opt->replay) {
          std::fprintf(stderr,
                       "chaos_runner: replay seed already given; "
                       "unexpected extra argument: %s\n",
                       v.c_str());
          return false;
        }
        if (!parse_u64(v, &opt->replay_seed)) return false;
        seen = true;
        opt->replay = true;
        return true;
      });
  return cli.parse(argc, argv);
}

ChaosOptions to_chaos_options(const Options& opt, std::uint64_t seed) {
  ChaosOptions c;
  c.seed = seed;
  c.horizon = wan::sim::Duration::minutes(opt.horizon_minutes);
  c.trace = opt.trace;
  c.restrict_events = opt.restrict_events;
  c.only_events = opt.only_events;
  c.plan.byzantine = opt.byzantine > 0;
  c.plan.byzantine_max = opt.byzantine > 0 ? opt.byzantine : 1;
  c.plan.asymmetric = opt.asymmetric;
  c.plan.sharded = opt.sharded;
  c.plan.dissemination = opt.dissemination;
  return c;
}

/// Adversary flags change the generated plan, so repro lines must carry them.
std::string repro_flags(const Options& opt) {
  std::string s;
  if (opt.byzantine > 0) s += " --byzantine " + std::to_string(opt.byzantine);
  if (opt.asymmetric) s += " --asymmetric";
  if (opt.sharded) s += " --sharded";
  if (opt.dissemination != wan::runtime::DisseminationKind::kUnicast) {
    s += std::string(" --dissemination ") +
         wan::runtime::to_cstring(opt.dissemination);
  }
  if (opt.horizon_minutes != 8)
    s += " --horizon-minutes " + std::to_string(opt.horizon_minutes);
  return s;
}

void print_te_report(const ChaosResult& r) {
  if (!r.te_checked) return;
  std::printf(
      "  empirical Te: revocations=%llu measured=%llu violations=%llu "
      "max=%.3fs mean=%.3fs bound=%.3fs%s\n",
      static_cast<unsigned long long>(r.te.revocations),
      static_cast<unsigned long long>(r.te.measured),
      static_cast<unsigned long long>(r.te.violations), r.te.max_seconds,
      r.te.mean_seconds, r.te.bound_seconds,
      r.te.ok() ? "" : "  ** BOUND EXCEEDED **");
}

void dump_metrics(const std::string& path) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string text = wan::obs::Registry::global().prometheus_text();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

void print_result(const ChaosResult& r) {
  std::printf(
      "seed %llu: %s  (decisions=%llu checkpoints=%llu entries-audited=%llu "
      "faults=%zu/%zu expected-leaks=%llu trace-hash=%016llx)\n",
      static_cast<unsigned long long>(r.seed),
      r.ok() ? "OK" : "VIOLATIONS",
      static_cast<unsigned long long>(r.decisions),
      static_cast<unsigned long long>(r.checkpoints),
      static_cast<unsigned long long>(r.entries_audited),
      r.faults_applied, r.schedule_size,
      static_cast<unsigned long long>(r.expected_leaks),
      static_cast<unsigned long long>(r.trace_hash));
  for (const auto& line : r.trace_lines) std::printf("  %s\n", line.c_str());
  for (const auto& v : r.violations) {
    std::printf("  violation [%s] at %s (event #%llu): %s\n",
                wan::chaos::to_cstring(v.kind),
                wan::sim::to_string(v.at).c_str(),
                static_cast<unsigned long long>(v.event_index),
                v.detail.c_str());
  }
}

int run_replay(const Options& opt) {
  if (!opt.log_level.empty()) {
    using wan::log::Level;
    const Level lvl = opt.log_level == "trace"  ? Level::kTrace
                      : opt.log_level == "info" ? Level::kInfo
                                                : Level::kDebug;
    wan::log::set_level(lvl);
  }
  // Span tracing covers only the first (reported) run: the determinism
  // double-check and the shrinker re-run the engine many times, and the
  // tracer installation is process-global.
  wan::obs::Tracer tracer;
  ChaosOptions chaos_opts = to_chaos_options(opt, opt.replay_seed);
  if (!opt.trace_path.empty()) chaos_opts.tracer = &tracer;
  const ChaosResult r = run_chaos(chaos_opts);
  wan::log::set_level(wan::log::Level::kOff);
  print_result(r);
  print_te_report(r);
  if (!opt.trace_path.empty()) {
    if (tracer.write_chrome_json(opt.trace_path)) {
      std::printf("  wrote %zu span(s), %zu log line(s) to %s%s\n",
                  tracer.size(), tracer.log_lines().size(),
                  opt.trace_path.c_str(),
                  tracer.dropped() == 0 ? "" : "  (capacity hit; some dropped)");
    } else {
      std::fprintf(stderr, "cannot write %s\n", opt.trace_path.c_str());
      return 2;
    }
  }
  dump_metrics(opt.metrics_path);
  if (r.te_checked && !r.te.ok()) return 1;
  if (r.ok()) return 0;

  // Replay determinism check: the same inputs must hash identically.
  const ChaosResult again = run_chaos(to_chaos_options(opt, opt.replay_seed));
  if (again.trace_hash != r.trace_hash) {
    std::printf("DETERMINISM BUG: replay hash %016llx != %016llx\n",
                static_cast<unsigned long long>(again.trace_hash),
                static_cast<unsigned long long>(r.trace_hash));
    return 2;
  }
  if (opt.shrink) {
    const auto shrunk =
        wan::chaos::shrink_failing_run(to_chaos_options(opt, opt.replay_seed));
    std::printf("shrunk to %zu/%zu fault events:", shrunk.events.size(),
                r.schedule_size);
    std::string csv;
    for (const int e : shrunk.events) {
      if (!csv.empty()) csv.push_back(',');
      csv += std::to_string(e);
      std::printf(" %d", e);
    }
    std::printf("\n");
    if (shrunk.result.ok()) {
      // ddmin converged onto a subset that no longer fails (can happen when
      // the minimal subset interacts with max_runs); fall back to full set.
      std::printf("(shrunk subset no longer fails; keep the full schedule)\n");
    } else {
      std::printf(
          "repro: chaos_runner --replay %llu --only-events %s%s --trace\n",
          static_cast<unsigned long long>(opt.replay_seed),
          csv.empty() ? "none" : csv.c_str(), repro_flags(opt).c_str());
      for (const auto& v : shrunk.result.violations) {
        std::printf("  violation [%s]: %s\n", wan::chaos::to_cstring(v.kind),
                    v.detail.c_str());
      }
    }
  }
  return 1;
}

/// Compact per-seed fingerprint for the machine-readable summary. The trace
/// hash covers every decision, oracle verdict, and fault application in the
/// run, so two sweeps whose per-seed records match are bit-identical — this
/// is what refactors of the simulation substrate pin themselves against.
struct SeedRecord {
  std::uint64_t seed = 0;
  std::uint64_t trace_hash = 0;
  std::uint64_t decisions = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t entries_audited = 0;
  std::uint64_t violations = 0;
  std::size_t faults_applied = 0;
};

struct SweepState {
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> skipped{0};
  std::atomic<std::uint64_t> decisions{0};
  std::atomic<std::uint64_t> faults{0};
  std::atomic<bool> out_of_time{false};
  std::mutex mu;
  std::vector<ChaosResult> failures;
  std::vector<std::uint64_t> nondeterministic;
  std::vector<SeedRecord> records;  ///< collected only when --json is given
};

int run_sweep(const Options& opt) {
  if (!opt.trace_path.empty()) {
    // Seeds run on parallel workers and the tracer install is process-global.
    std::fprintf(stderr,
                 "--trace FILE applies only to single-seed replay; ignoring\n");
  }
  const unsigned threads =
      opt.threads != 0
          ? opt.threads
          : std::max(1u, std::thread::hardware_concurrency());
  const auto start = std::chrono::steady_clock::now();
  SweepState state;

  const auto worker = [&] {
    for (;;) {
      const std::uint64_t idx =
          state.next.fetch_add(1, std::memory_order_relaxed);
      if (idx >= opt.seeds) return;
      if (opt.max_seconds > 0) {
        const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        if (elapsed >= opt.max_seconds) {
          state.out_of_time.store(true, std::memory_order_relaxed);
          state.skipped.fetch_add(1, std::memory_order_relaxed);
          continue;  // keep draining indices so the sweep ends promptly
        }
      }
      const std::uint64_t seed = opt.seed_base + idx;
      ChaosResult r = run_chaos(to_chaos_options(opt, seed));
      state.completed.fetch_add(1, std::memory_order_relaxed);
      state.decisions.fetch_add(r.decisions, std::memory_order_relaxed);
      state.faults.fetch_add(r.faults_applied, std::memory_order_relaxed);
      if (!opt.json_path.empty()) {
        const SeedRecord rec{r.seed,        r.trace_hash,     r.decisions,
                             r.events_executed, r.checkpoints,
                             r.entries_audited, r.violation_count,
                             r.faults_applied};
        std::lock_guard<std::mutex> lock(state.mu);
        state.records.push_back(rec);
      }
      if (!r.ok()) {
        // Confirm the failure replays bit-identically before reporting it.
        const ChaosResult again = run_chaos(to_chaos_options(opt, seed));
        std::lock_guard<std::mutex> lock(state.mu);
        if (again.trace_hash != r.trace_hash) {
          state.nondeterministic.push_back(seed);
        }
        state.failures.push_back(std::move(r));
      }
    }
  };

  std::vector<std::thread> pool;
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();

  const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  std::printf(
      "chaos sweep: %llu/%llu seeds run (%llu skipped by --max-seconds), "
      "%u threads, %.1fs wall\n",
      static_cast<unsigned long long>(state.completed.load()),
      static_cast<unsigned long long>(opt.seeds),
      static_cast<unsigned long long>(state.skipped.load()), threads,
      static_cast<double>(wall) / 1000.0);
  std::printf(
      "  %llu decisions audited, %llu faults injected, %zu failing seed(s)"
      "%s%s%s\n",
      static_cast<unsigned long long>(state.decisions.load()),
      static_cast<unsigned long long>(state.faults.load()),
      state.failures.size(), opt.byzantine > 0 ? " [byzantine]" : "",
      opt.asymmetric ? " [asymmetric]" : "", opt.sharded ? " [sharded]" : "");

  // Per-kind violation tally across failing seeds (recorded violations only;
  // each run stores at most its oracle's max_violations).
  std::map<std::string, std::uint64_t> by_kind;
  for (const auto& r : state.failures) {
    for (const auto& v : r.violations) ++by_kind[wan::chaos::to_cstring(v.kind)];
  }
  for (const auto& [kind, count] : by_kind) {
    std::printf("  violations [%s]: %llu\n", kind.c_str(),
                static_cast<unsigned long long>(count));
  }

  for (const auto& r : state.failures) {
    print_result(r);
    std::printf("  repro: chaos_runner --replay %llu%s --trace\n",
                static_cast<unsigned long long>(r.seed),
                repro_flags(opt).c_str());
  }
  for (const std::uint64_t seed : state.nondeterministic) {
    std::printf("DETERMINISM BUG: seed %llu does not replay bit-identically\n",
                static_cast<unsigned long long>(seed));
  }

  if (!opt.json_path.empty()) {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"seeds\": %llu,\n",
                 static_cast<unsigned long long>(opt.seeds));
    std::fprintf(f, "  \"seed_base\": %llu,\n",
                 static_cast<unsigned long long>(opt.seed_base));
    std::fprintf(f, "  \"completed\": %llu,\n",
                 static_cast<unsigned long long>(state.completed.load()));
    std::fprintf(f, "  \"skipped\": %llu,\n",
                 static_cast<unsigned long long>(state.skipped.load()));
    std::fprintf(f, "  \"byzantine\": %d,\n", opt.byzantine);
    std::fprintf(f, "  \"asymmetric\": %s,\n",
                 opt.asymmetric ? "true" : "false");
    std::fprintf(f, "  \"sharded\": %s,\n", opt.sharded ? "true" : "false");
    std::fprintf(f, "  \"decisions\": %llu,\n",
                 static_cast<unsigned long long>(state.decisions.load()));
    std::fprintf(f, "  \"faults\": %llu,\n",
                 static_cast<unsigned long long>(state.faults.load()));
    std::fprintf(f, "  \"failing_seeds\": [");
    for (std::size_t i = 0; i < state.failures.size(); ++i) {
      std::fprintf(f, "%s%llu", i == 0 ? "" : ", ",
                   static_cast<unsigned long long>(state.failures[i].seed));
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "  \"nondeterministic_seeds\": [");
    for (std::size_t i = 0; i < state.nondeterministic.size(); ++i) {
      std::fprintf(f, "%s%llu", i == 0 ? "" : ", ",
                   static_cast<unsigned long long>(state.nondeterministic[i]));
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "  \"violations_by_kind\": {");
    bool first = true;
    for (const auto& [kind, count] : by_kind) {
      std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ", kind.c_str(),
                   static_cast<unsigned long long>(count));
      first = false;
    }
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"wall_seconds\": %.3f,\n",
                 static_cast<double>(wall) / 1000.0);
    // Per-seed fingerprints, sorted by seed so two sweeps diff line-by-line
    // regardless of worker interleaving. `wall_seconds` above is the only
    // field expected to differ between bit-identical sweeps.
    std::sort(state.records.begin(), state.records.end(),
              [](const SeedRecord& a, const SeedRecord& b) {
                return a.seed < b.seed;
              });
    std::fprintf(f, "  \"per_seed\": [\n");
    for (std::size_t i = 0; i < state.records.size(); ++i) {
      const SeedRecord& r = state.records[i];
      std::fprintf(
          f,
          "    {\"seed\": %llu, \"trace_hash\": \"%016llx\", "
          "\"decisions\": %llu, \"events\": %llu, \"checkpoints\": %llu, "
          "\"entries_audited\": %llu, \"violations\": %llu, \"faults\": %zu}%s\n",
          static_cast<unsigned long long>(r.seed),
          static_cast<unsigned long long>(r.trace_hash),
          static_cast<unsigned long long>(r.decisions),
          static_cast<unsigned long long>(r.events_executed),
          static_cast<unsigned long long>(r.checkpoints),
          static_cast<unsigned long long>(r.entries_audited),
          static_cast<unsigned long long>(r.violations), r.faults_applied,
          i + 1 == state.records.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  dump_metrics(opt.metrics_path);
  if (!state.failures.empty() || !state.nondeterministic.empty()) return 1;
  std::printf("  zero invariant violations\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return 2;
  if (opt.sharded && opt.byzantine > 0) {
    // The liar model predates group-scoped quorums: a singleton group has
    // C = 1 and no honest peers, so no slack can make it lie-tolerant.
    std::fprintf(stderr,
                 "chaos_runner: --sharded and --byzantine are incompatible\n");
    return 2;
  }
  return opt.replay ? run_replay(opt) : run_sweep(opt);
}
