// Shared command-line parsing for the tools/ binaries.
//
// Every tool used to hand-roll its own argv loop, and they drifted: one
// accepted `--flag value` only, another silently ignored a second positional,
// help text was maintained by hand next to (not generated from) the parser.
// This header gives them one flag registry:
//
//   cli::Parser cli("wan_node", "one-line summary");
//   cli.add_flag("--verbose", "chatty progress output", &verbose);
//   cli.add_value("--te-ms", "N", "revocation bound", [&](const std::string& v) {
//     return cli::parse_int(v, &te_ms) && te_ms > 0;
//   });
//   if (!cli.parse(argc, argv)) return 2;   // error already printed
//
// `--help` / `-h` is automatic and generated from the registrations, so the
// usage text cannot drift from what the parser accepts. Unrecognized flags
// and unexpected positionals are hard errors — a typo fails loudly instead
// of being skipped.
//
// Optional-operand flags (`--metrics [FILE]`, `--trace [FILE]`) are
// supported via an accept predicate that decides whether the *next* argv
// element belongs to the flag; the default predicate takes anything that
// does not start with '-'.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace wan::cli {

/// Strict unsigned decimal parse (whole string, no sign, no whitespace).
inline bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~0ull - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

inline bool parse_int(const std::string& text, int* out) {
  const bool negative = !text.empty() && text[0] == '-';
  std::uint64_t magnitude = 0;
  if (!parse_u64(negative ? text.substr(1) : text, &magnitude)) return false;
  if (magnitude > 0x7FFFFFFFull) return false;
  *out = negative ? -static_cast<int>(magnitude) : static_cast<int>(magnitude);
  return true;
}

class Parser {
 public:
  using ValueFn = std::function<bool(const std::string&)>;
  using AcceptFn = std::function<bool(const std::string&)>;

  Parser(std::string prog, std::string summary)
      : prog_(std::move(prog)), summary_(std::move(summary)) {}

  /// Boolean switch: present -> *out = true.
  void add_flag(const std::string& name, std::string help, bool* out) {
    Spec spec;
    spec.help = std::move(help);
    spec.parse = [out](const std::string&) {
      *out = true;
      return true;
    };
    add(name, std::move(spec));
  }

  /// Flag with a required operand; `parse` validates and stores it.
  void add_value(const std::string& name, std::string meta, std::string help,
                 ValueFn parse) {
    Spec spec;
    spec.help = std::move(help);
    spec.meta = std::move(meta);
    spec.parse = std::move(parse);
    spec.arity = Arity::kRequired;
    add(name, std::move(spec));
  }

  /// Required-operand convenience for plain strings.
  void add_string(const std::string& name, std::string meta, std::string help,
                  std::string* out) {
    add_value(name, std::move(meta), std::move(help),
              [out](const std::string& v) {
                *out = v;
                return true;
              });
  }

  /// Flag with an optional operand. `on_present` runs when the flag is seen
  /// (operand or not); `parse` runs only when an operand is consumed.
  /// `accept` decides whether the next argv element is this flag's operand
  /// (default: anything not starting with '-').
  void add_optional_value(const std::string& name, std::string meta,
                          std::string help, std::function<void()> on_present,
                          ValueFn parse, AcceptFn accept = {}) {
    Spec spec;
    spec.help = std::move(help);
    spec.meta = std::move(meta);
    spec.parse = std::move(parse);
    spec.arity = Arity::kOptional;
    spec.on_present = std::move(on_present);
    spec.accept = accept ? std::move(accept) : [](const std::string& v) {
      return !v.empty() && v[0] != '-';
    };
    add(name, std::move(spec));
  }

  /// Handler for positional (non-flag) arguments. Return false to reject
  /// (parse() then fails with the handler's complaint already printed, or a
  /// generic one). Without a handler every positional is an error.
  void set_positional(std::string meta, std::string help, ValueFn handle) {
    positional_meta_ = std::move(meta);
    positional_help_ = std::move(help);
    positional_ = std::move(handle);
  }

  /// Free-form text appended to --help (examples, file formats).
  void add_epilog(std::string text) { epilog_ += std::move(text); }

  /// Parses argv. On --help prints usage and exits 0. On error prints a
  /// complaint plus a pointer to --help and returns false.
  [[nodiscard]] bool parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--help" || a == "-h") {
        print_usage(stdout);
        std::exit(0);
      }
      const auto it = specs_.find(a);
      if (it == specs_.end()) {
        if (!a.empty() && a[0] == '-') {
          return complain("unknown flag: " + a);
        }
        if (!positional_) {
          return complain("unexpected argument: " + a);
        }
        if (!positional_(a)) {
          return complain("bad argument: " + a);
        }
        continue;
      }
      Spec& spec = it->second;
      if (spec.on_present) spec.on_present();
      switch (spec.arity) {
        case Arity::kNone:
          if (!spec.parse(a)) return complain("bad flag: " + a);
          break;
        case Arity::kRequired:
          if (i + 1 >= argc) {
            return complain(a + " needs a " + spec.meta + " operand");
          }
          if (!spec.parse(argv[++i])) {
            return complain("bad " + a + " operand: " + argv[i]);
          }
          break;
        case Arity::kOptional:
          if (i + 1 < argc && spec.accept(argv[i + 1])) {
            if (!spec.parse(argv[++i])) {
              return complain("bad " + a + " operand: " + argv[i]);
            }
          }
          break;
      }
    }
    return true;
  }

  void print_usage(std::FILE* out) const {
    std::fprintf(out, "usage: %s [flags]%s\n%s\n\nflags:\n", prog_.c_str(),
                 positional_ ? (" [" + positional_meta_ + "]").c_str() : "",
                 summary_.c_str());
    for (const auto& [name, spec] : specs_) {
      print_item(out, spec.meta.empty() ? name : name + " " + spec.meta,
                 spec.help);
    }
    if (positional_) print_item(out, positional_meta_, positional_help_);
    print_item(out, "--help, -h", "print this help and exit");
    if (!epilog_.empty()) std::fprintf(out, "\n%s", epilog_.c_str());
  }

 private:
  enum class Arity { kNone, kRequired, kOptional };
  struct Spec {
    std::string help;
    std::string meta;
    ValueFn parse;
    Arity arity = Arity::kNone;
    std::function<void()> on_present;
    AcceptFn accept;
  };

  void add(const std::string& name, Spec spec) {
    specs_.emplace(name, std::move(spec));
  }

  bool complain(const std::string& what) const {
    std::fprintf(stderr, "%s: %s (try --help)\n", prog_.c_str(), what.c_str());
    return false;
  }

  static void print_item(std::FILE* out, const std::string& head,
                         const std::string& help) {
    // Help strings may be multi-line; continuation lines align with the
    // first line's help column.
    std::size_t start = 0;
    bool first = true;
    while (start <= help.size()) {
      const std::size_t nl = help.find('\n', start);
      const std::string line = nl == std::string::npos
                                   ? help.substr(start)
                                   : help.substr(start, nl - start);
      std::fprintf(out, "  %-24s %s\n", first ? head.c_str() : "",
                   line.c_str());
      first = false;
      if (nl == std::string::npos) break;
      start = nl + 1;
    }
  }

  const std::string prog_;
  const std::string summary_;
  std::map<std::string, Spec> specs_;  ///< ordered -> stable --help output
  std::string positional_meta_;
  std::string positional_help_;
  ValueFn positional_;
  std::string epilog_;
};

}  // namespace wan::cli
