// wan_node: runs the protocol on the threaded runtime, in real time.
//
// The simulator proves the protocol's logic; this tool proves the runtime
// seam — the same proto/ modules, byte for byte, driven by OS threads and a
// steady clock. Three modes:
//
//   wan_node --realtime [--te-ms N] [--delay-us N] [--verbose]
//            [--metrics [FILE]]
//       All 8 nodes in one process over the in-process loopback fabric
//       (the PR 3 smoke, unchanged).
//
//   wan_node --role manager|host|agent --id N --topology FILE
//            [--listen ADDR] [--te-ms N] [--verbose]
//       ONE node of a multi-process deployment over real UDP sockets. Every
//       process loads the same topology file (HostId -> host:port); frames
//       travel through the versioned wire codec (docs/WIRE_FORMAT.md). Each
//       role follows a fixed timer script (below) so that 8 independent
//       processes re-enact the revocation worst case with no coordination
//       channel beyond the sockets themselves.
//
//   wan_node --udp-smoke [--te-ms N] [--backend udp|reactor] [--reliable]
//            [--loss P] [--verbose]
//       Orchestrator: spawns the 8 node processes (3 managers, 4 hosts,
//       1 agent) from this same binary, each binding port 0; scrapes the
//       kernel-assigned ports from their output, then writes the topology
//       file the children are waiting on (two-phase startup — no
//       bind-then-close port race). Collects their stdout and asserts the
//       Te bound across process boundaries. This is what CI runs.
//       --backend selects the socket fabric: udp (thread-per-direction,
//       default) or reactor (epoll + batched syscalls). --reliable arms the
//       ack/retransmit layer in every child; --loss P additionally makes
//       each child drop fraction P of inbound frames (seeded, deterministic
//       per child), which only converges because retransmission recovers it.
//
//   wan_node --proc-chaos [--chaos-seed N] [--te-ms N] [--backend ...]
//       Process-level chaos orchestrator: the same 8-process deployment
//       (reliability layer on, managers journaling to per-process state
//       dirs), plus a seeded kill/restart schedule — one non-revoking
//       manager and one non-cut host are SIGKILLed mid-traffic and
//       re-exec'd on their original ports a few hundred ms later. The
//       restarted manager must replay its journal (JOURNAL_REPLAYED),
//       re-sync from peers (RESYNCED), and the Te bound must hold across
//       the crashes exactly as in the smoke. See docs/CHAOS.md.
//
// The multi-process script (offsets from each process's start; spawn skew is
// tens of ms, the gaps are hundreds):
//
//   +500 ms   manager 0 grants the user             (prints GRANT_OK_US)
//   +1200 ms  agent starts invoking via the cut host, repeatedly
//   +3000 ms  the cut host blocks inbound from all managers — revocations
//             and query replies can no longer reach it, but its cache was
//             refreshed moments ago (the paper's worst case: a partition
//             landing right after a grant confirmation)
//   +3200 ms  manager 1 revokes                     (prints REVOKE_QUORUM_US)
//   ...       agent keeps invoking; allows come only from the cut host's
//             cache, which must expire within te. First deny after the
//             revoke instant ends the poll            (prints LAST_ALLOW_US)
//
// Timestamps are system-clock microseconds — comparable across processes on
// one machine — so the orchestrator checks LAST_ALLOW_US - REVOKE_QUORUM_US
// <= Te without any cross-process clock protocol.
//
// --metrics exports the process-wide metrics registry in Prometheus text
// format: with FILE, a background thread rewrites the file twice a second
// while the smoke runs (tail -f it, or point a node_exporter textfile
// collector at it) and once more on exit; without FILE, the registry is
// printed to stdout on exit.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "proto/host.hpp"
#include "proto/journal.hpp"
#include "proto/user_agent.hpp"
#include "proto/wire.hpp"
#include "shard/shard_map.hpp"
#include "util/rng.hpp"
#include "runtime/env_options.hpp"
#include "runtime/reactor_transport.hpp"
#include "runtime/threaded_env.hpp"
#include "runtime/udp_transport.hpp"

namespace wan {
namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  bool realtime = false;
  bool udp_smoke = false;
  bool proc_chaos = false;
  std::string role;      ///< manager|host|agent (multi-process mode)
  std::uint32_t id = 0;  ///< HostId in the topology (multi-process mode)
  bool id_set = false;
  std::string listen;    ///< bind override (default: the topology entry)
  std::string topology;  ///< topology file path
  std::string backend = "udp";  ///< socket fabric: udp | reactor
  int te_ms = 2000;      ///< revocation bound Te (small: this runs wall-clock)
  int delay_us = 1000;   ///< loopback fabric one-way delay (--realtime only)
  bool verbose = false;
  bool metrics = false;      ///< export the metrics registry
  std::string metrics_path;  ///< with --metrics: live file (empty = stdout)
  std::string state_dir;     ///< manager role: durable journal directory
  bool reliable = false;     ///< arm the ack/retransmit layer
  runtime::DisseminationKind dissemination =
      runtime::DisseminationKind::kUnicast;  ///< revocation fanout strategy
  double loss = 0.0;         ///< seeded inbound loss fraction (test adversity)
  std::uint64_t fault_seed = 1;
  bool resume = false;   ///< restarted node: skip the scripted one-shot duties
  int lifetime_ms = 0;   ///< override node lifetime (0 = derive from te_ms)
  std::uint64_t chaos_seed = 1;  ///< --proc-chaos kill/restart schedule
  bool shards = false;   ///< sharded deployment: 4 managers in 2 groups
  std::string trace_dir;  ///< per-process span capture directory (empty = off)
};

// The fixed 8-node deployment every mode runs.
constexpr std::uint32_t kManagerIds[] = {0, 1, 2};
constexpr std::uint32_t kHostIds[] = {100, 101, 102, 103};
constexpr std::uint32_t kAgentId = 9000;
constexpr std::uint32_t kCutHostId = 103;
constexpr int kManagers = 3;
constexpr int kHosts = 4;

// Multi-process script offsets (ms from each process's start).
constexpr int kGrantAtMs = 500;
constexpr int kAgentPollStartMs = 1200;
constexpr int kBlockAtMs = 3000;
constexpr int kRevokeAtMs = 3200;

// --shards variant: 4 managers in 2 groups ({0,1} owns everything at epoch 1;
// the shard holding the user migrates to {2,3} mid-script) and a later revoke
// so the flip — including a --proc-chaos kill during the handoff — completes
// before the new owner must act on the migrated key.
constexpr std::uint32_t kShardManagerIds[] = {0, 1, 2, 3};
constexpr std::uint32_t kShardRevoker = 2;  ///< first member of the new owner
constexpr int kShardHandoffAtMs = 2000;
constexpr int kShardRevokeAtMs = 3600;

std::vector<std::uint32_t> manager_raw_ids(bool shards) {
  std::vector<std::uint32_t> ids;
  if (shards) {
    ids.assign(std::begin(kShardManagerIds), std::end(kShardManagerIds));
  } else {
    ids.assign(std::begin(kManagerIds), std::end(kManagerIds));
  }
  return ids;
}

/// The sharded deployment's map: two shards over groups {0,1} and {2,3}.
/// Epoch 1 places everything on group 0; epoch 2 moves the shard holding the
/// scripted user to group 1 — exactly one live slice migration. Every
/// process derives both maps independently (no coordination channel), which
/// is why placement is `assigned`, not ring-hashed.
shard::ShardMap sharded_map(bool flipped) {
  const std::vector<std::vector<HostId>> groups = {
      {HostId(0), HostId(1)}, {HostId(2), HostId(3)}};
  std::vector<std::uint32_t> owner = {0, 0};
  shard::ShardMap initial =
      shard::ShardMap::assigned(groups, owner, /*epoch=*/1);
  if (!flipped) return initial;
  owner[initial.shard_of(AppId{1}, UserId{7})] = 1;
  return shard::ShardMap::assigned(groups, owner, /*epoch=*/2);
}

/// How long a node process serves before exiting cleanly: the script plus
/// three Te periods for the cache to expire plus slack for slow CI machines.
int node_lifetime_ms(const Options& opt) {
  return (opt.shards ? kShardRevokeAtMs : kRevokeAtMs) + 3 * opt.te_ms + 2000;
}

/// A node's actual lifetime: the --lifetime-ms override (restarted chaos
/// victims get the remaining schedule) or the standard derivation.
int lifetime_of(const Options& opt) {
  return opt.lifetime_ms > 0 ? opt.lifetime_ms : node_lifetime_ms(opt);
}

std::int64_t system_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void sleep_until_offset(Clock::time_point t0, int offset_ms) {
  std::this_thread::sleep_until(t0 + std::chrono::milliseconds(offset_ms));
}

/// The protocol knobs every node of a deployment must agree on.
proto::ProtocolConfig make_config(const Options& opt) {
  proto::ProtocolConfig config;
  config.check_quorum = 2;
  config.Te = sim::Duration::millis(opt.te_ms);
  config.dissemination.kind = opt.dissemination;
  config.query_timeout = sim::Duration::millis(200);
  config.max_attempts = 2;
  config.cache_sweep_period = sim::Duration::millis(100);
  config.update_retransmit = sim::Duration::millis(200);
  config.revoke_retransmit = sim::Duration::millis(200);
  config.sync_retransmit = sim::Duration::millis(200);
  return config;
}

/// Every process derives the same user keypair from the same seed, so hosts
/// can verify what the agent signs without any key-distribution protocol.
auth::KeyPair shared_keypair() {
  Rng rng{12345};
  return auth::generate_keypair(rng);
}

/// Atomic rewrite: a scraper (tail -f, a textfile collector, a test) reading
/// mid-update must see either the old exposition or the new one, never a
/// truncated half. fopen(path, "w") would truncate the live file in place —
/// so write a sibling tmp and rename it over the target instead.
bool write_metrics_file(const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = obs::Registry::global().prometheus_text();
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

/// Background exporter: rewrites `path` every 500 ms until stopped, then
/// once more so the file reflects the final counter values.
class MetricsExporter {
 public:
  explicit MetricsExporter(std::string path) : path_(std::move(path)) {
    thread_ = std::thread([this] { loop(); });
  }
  ~MetricsExporter() { stop(); }

  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_one();
    thread_.join();
    write_metrics_file(path_);
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopped_) {
      lock.unlock();
      write_metrics_file(path_);
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(500),
                   [this] { return stopped_; });
    }
  }

  const std::string path_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// --realtime: the single-process loopback smoke (PR 3), unchanged in spirit.

struct Smoke {
  static runtime::EnvOptions loopback_options(int delay_us) {
    runtime::EnvOptions eopts;
    eopts.delay = sim::Duration::micros(delay_us);
    return eopts;
  }

  explicit Smoke(const Options& opt)
      : opt_(opt), fabric_(loopback_options(opt.delay_us)) {}

  int run() {
    build();
    if (!warm_up()) return fail("cache warm-up");
    if (!invoke_end_to_end()) return fail("user-agent invoke");
    if (!revoke_and_verify_te()) return fail("Te bound verification");
    fabric_.stop_all();
    std::printf("wan_node --realtime: OK (%zu datagrams delivered)\n",
                static_cast<std::size_t>(fabric_.delivered()));
    return 0;
  }

 private:
  const AppId app_{1};
  const UserId alice_{7};

  void build() {
    config_ = make_config(opt_);

    for (const std::uint32_t id : kManagerIds) manager_ids_.push_back(HostId(id));
    for (const std::uint32_t id : kHostIds) host_ids_.push_back(HostId(id));

    for (int i = 0; i < kManagers + kHosts + 1; ++i) {
      envs_.push_back(std::make_unique<runtime::ThreadedEnv>(fabric_));
    }
    for (int i = 0; i < kManagers; ++i) {
      managers_.push_back(std::make_unique<proto::ManagerHost>(
          manager_ids_[static_cast<std::size_t>(i)], *envs_[static_cast<std::size_t>(i)],
          clk::LocalClock::perfect(), config_));
    }
    names_.set_managers(app_, manager_ids_);
    for (int i = 0; i < kManagers; ++i) {
      envs_[static_cast<std::size_t>(i)]->run_sync([this, i] {
        managers_[static_cast<std::size_t>(i)]->manager().manage_app(app_, manager_ids_);
      });
    }

    const auth::KeyPair kp = shared_keypair();
    keys_.register_user(alice_, kp.public_key);
    for (int i = 0; i < kHosts; ++i) {
      auto& env = *envs_[static_cast<std::size_t>(kManagers + i)];
      hosts_.push_back(std::make_unique<proto::AppHost>(
          host_ids_[static_cast<std::size_t>(i)], env, clk::LocalClock::perfect(),
          names_, keys_, config_));
      env.run_sync([this, i] {
        hosts_[static_cast<std::size_t>(i)]->controller().register_app(
            app_, [](UserId, const std::string& p) { return "ok:" + p; });
      });
    }

    auto& agent_env = *envs_.back();
    agent_ = std::make_unique<proto::UserAgent>(HostId(kAgentId), alice_, kp,
                                                agent_env,
                                                proto::UserAgent::Config{});
    agent_env.transport().register_endpoint(
        HostId(kAgentId), [this](HostId from, const net::MessagePtr& msg) {
          agent_->on_message(from, msg);
        });
  }

  // Polls `pred` until it holds or `timeout_ms` of wall clock elapses.
  bool await(const std::function<bool()>& pred, int timeout_ms = 10000) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
      if (Clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

  bool submit(int mgr, acl::Op op) {
    std::mutex mu;
    bool done = false;
    envs_[static_cast<std::size_t>(mgr)]->run_sync([&, this] {
      managers_[static_cast<std::size_t>(mgr)]->manager().submit_update(
          app_, op, alice_, acl::Right::kUse,
          [&](const proto::UpdateOutcome&) {
            const std::lock_guard<std::mutex> lock(mu);
            done = true;
          });
    });
    return await([&] {
      const std::lock_guard<std::mutex> lock(mu);
      return done;
    });
  }

  // Returns the decision's allowed bit, or -1 on timeout.
  int check(int host) {
    std::mutex mu;
    bool done = false;
    bool allowed = false;
    envs_[static_cast<std::size_t>(kManagers + host)]->run_sync([&, this] {
      hosts_[static_cast<std::size_t>(host)]->controller().check_access(
          app_, alice_, [&](const proto::AccessDecision& d) {
            const std::lock_guard<std::mutex> lock(mu);
            allowed = d.allowed;
            done = true;
          });
    });
    if (!await([&] {
          const std::lock_guard<std::mutex> lock(mu);
          return done;
        })) {
      return -1;
    }
    return allowed ? 1 : 0;
  }

  bool warm_up() {
    const Clock::time_point t0 = Clock::now();
    if (!submit(0, acl::Op::kAdd)) return false;
    for (int h = 0; h < kHosts; ++h) {
      if (check(h) != 1) {
        std::fprintf(stderr, "host %d denied a granted user\n", h);
        return false;
      }
    }
    if (opt_.verbose) {
      std::printf("  grant + %d checks in %.1f ms\n", kHosts, ms_since(t0));
    }
    return true;
  }

  bool invoke_end_to_end() {
    std::mutex mu;
    bool done = false;
    proto::InvokeResult result;
    envs_.back()->run_sync([&, this] {
      agent_->invoke(app_, {host_ids_[0], host_ids_[1]}, "hello",
                     [&](const proto::InvokeResult& r) {
                       const std::lock_guard<std::mutex> lock(mu);
                       result = r;
                       done = true;
                     });
    });
    if (!await([&] {
          const std::lock_guard<std::mutex> lock(mu);
          return done;
        })) {
      return false;
    }
    if (!result.ok || result.result != "ok:hello") {
      std::fprintf(stderr, "invoke failed (ok=%d result=%s)\n", result.ok,
                   result.result.c_str());
      return false;
    }
    if (opt_.verbose) std::printf("  invoke round-trip ok\n");
    return true;
  }

  bool revoke_and_verify_te() {
    // Cut the last host off from ALL inbound traffic: no revoke notification
    // and no query replies can reach it. Only its cached entry (te = Te/b)
    // keeps allowing — the worst case the Te bound is designed for.
    const int cut = kHosts - 1;
    envs_[static_cast<std::size_t>(kManagers + cut)]->transport().set_endpoint_down(
        host_ids_[static_cast<std::size_t>(cut)], true);

    if (!submit(1, acl::Op::kRevoke)) return false;
    const Clock::time_point quorum_at = Clock::now();

    // Connected hosts converge to deny quickly (RevokeNotify flush).
    if (!await([this] { return check(0) == 0; }, opt_.te_ms)) {
      std::fprintf(stderr, "connected host still allowing after revoke\n");
      return false;
    }
    if (opt_.verbose) {
      std::printf("  connected host denied %.1f ms after quorum\n",
                  ms_since(quorum_at));
    }

    // The cut host may keep allowing off its cache, but only within Te.
    double last_allow_ms = 0.0;
    while (true) {
      const int r = check(cut);
      const double t = ms_since(quorum_at);
      if (r == 1) {
        last_allow_ms = t;
      } else {
        break;  // denied (cache expired, quorum unreachable -> deny policy)
      }
      if (t > 3.0 * opt_.te_ms) {
        std::fprintf(stderr, "cut host never converged to deny\n");
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    std::printf(
        "  Te bound: last allow at cut host %.1f ms after revoke quorum "
        "(bound %d ms) — %s\n",
        last_allow_ms, opt_.te_ms,
        last_allow_ms <= opt_.te_ms ? "HELD" : "VIOLATED");
    return last_allow_ms <= static_cast<double>(opt_.te_ms);
  }

  int fail(const char* stage) {
    std::fprintf(stderr, "wan_node --realtime: FAILED at %s\n", stage);
    fabric_.stop_all();
    return 1;
  }

  Options opt_;
  runtime::LoopbackFabric fabric_;
  proto::ProtocolConfig config_;
  ns::NameService names_;
  auth::KeyRegistry keys_;
  std::vector<HostId> manager_ids_;
  std::vector<HostId> host_ids_;
  std::vector<std::unique_ptr<runtime::ThreadedEnv>> envs_;
  std::vector<std::unique_ptr<proto::ManagerHost>> managers_;
  std::vector<std::unique_ptr<proto::AppHost>> hosts_;
  std::unique_ptr<proto::UserAgent> agent_;
};

// ---------------------------------------------------------------------------
// --role: one node of a multi-process UDP deployment.

int role_error(const std::string& what) {
  std::fprintf(stderr, "wan_node --role: %s\n", what.c_str());
  return 2;
}

/// Polls for the topology file until it exists and parses (the smoke
/// orchestrator writes it atomically only after every child has announced
/// its bound port), or until the deadline passes.
std::optional<runtime::Topology> wait_for_topology(const std::string& path,
                                                   int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    std::string error;
    std::optional<runtime::Topology> topo =
        runtime::Topology::load(path, &error);
    if (topo && topo->size() > 0) return topo;
    if (Clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::unique_ptr<runtime::SocketTransport> open_transport(const Options& opt) {
  std::string error;
  runtime::EnvOptions eopts;
  eopts.reliability.enabled = opt.reliable;
  // Distinct jitter per node keeps retransmit schedules from synchronizing.
  eopts.reliability.jitter_seed = opt.id + 1;
  std::optional<runtime::Topology> topo;
  if (!opt.listen.empty()) {
    eopts.listen = opt.listen;
  } else {
    // No explicit bind address: this node's topology entry is it, so the
    // file must already exist.
    topo = runtime::Topology::load(opt.topology, &error);
    if (!topo) {
      role_error(error);
      return nullptr;
    }
    const runtime::NodeAddress* self = topo->find(HostId(opt.id));
    if (self == nullptr) {
      role_error("host id " + std::to_string(opt.id) +
                 " not in topology (and no --listen)");
      return nullptr;
    }
    eopts.listen = self->to_string();
  }
  std::unique_ptr<runtime::SocketTransport> transport;
  if (opt.backend == "reactor") {
    transport = runtime::ReactorTransport::create(eopts, &error);
  } else {
    transport = runtime::UdpTransport::create(eopts, &error);
  }
  if (!transport) {
    role_error(error);
    return nullptr;
  }
  if (opt.loss > 0.0) {
    runtime::FaultPlan plan;
    plan.seed = opt.fault_seed + opt.id;  // distinct stream per node
    plan.loss = opt.loss;
    transport->set_fault_plan(plan);
  }
  // Announce the kernel-assigned port before waiting on the topology: the
  // smoke orchestrator scrapes this line from every child, then writes the
  // topology file everyone is waiting for.
  std::printf("NODE_PORT %u\n", transport->local_port());
  std::fflush(stdout);
  if (!topo) {
    topo = wait_for_topology(opt.topology, /*timeout_ms=*/15000);
    if (!topo) {
      role_error("topology file '" + opt.topology + "' never appeared");
      return nullptr;
    }
  }
  for (const auto& [id, addr] : topo->entries()) {
    if (!transport->add_peer(HostId(id), addr)) {
      role_error("topology host " + std::to_string(id) +
                 ": cannot resolve '" + addr.host + "'");
      return nullptr;
    }
  }
  return transport;
}

int run_manager(const Options& opt, runtime::SocketTransport& transport) {
  const AppId app{1};
  const UserId alice{7};
  std::vector<HostId> manager_ids;
  for (const std::uint32_t id : manager_raw_ids(opt.shards)) {
    manager_ids.push_back(HostId(id));
  }
  const proto::ProtocolConfig config = make_config(opt);

  runtime::ThreadedEnv env(transport);
  proto::ManagerHost mgr(HostId(opt.id), env, clk::LocalClock::perfect(),
                         config);
  // Sharded: a manager's quorum set IS its group; the paper's C-of-M
  // machinery runs per group, unchanged.
  std::vector<HostId> quorum_set = manager_ids;
  if (opt.shards) {
    quorum_set = opt.id < 2
                     ? std::vector<HostId>{HostId(0), HostId(1)}
                     : std::vector<HostId>{HostId(2), HostId(3)};
  }
  env.run_sync([&] {
    mgr.manager().manage_app(app, quorum_set);
    if (opt.shards) mgr.manager().set_shard_map(app, sharded_map(false));
  });

  // Durable state: open the journal, replay whatever survived a previous
  // incarnation, and — only when there WAS a previous incarnation — re-sync
  // from peers to pick up updates issued while this manager was dead. A
  // fresh simultaneous boot must not sync: its peers are equally fresh and
  // would be asked to vouch for state nobody has yet.
  std::unique_ptr<proto::ManagerJournal> journal;
  if (!opt.state_dir.empty()) {
    std::string error;
    journal = proto::ManagerJournal::open(opt.state_dir, &error);
    if (!journal) return role_error(error);
    std::size_t replayed = 0;
    env.run_sync(
        [&] { replayed = mgr.manager().attach_journal(journal.get()); });
    if (journal->had_state()) {
      std::printf("JOURNAL_REPLAYED %zu\n", replayed);
      std::fflush(stdout);
      env.run_sync([&] { mgr.manager().resync(app); });
      // RESYNCED means the sync actually completed, not merely started.
      const auto sync_deadline = Clock::now() + std::chrono::seconds(10);
      bool synced = false;
      while (!synced && Clock::now() < sync_deadline) {
        env.run_sync([&] { synced = mgr.manager().synced(app); });
        if (!synced) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
      if (synced) {
        std::printf("RESYNCED %lld\n", static_cast<long long>(system_us()));
        std::fflush(stdout);
      }
    }
  }

  const Clock::time_point t0 = Clock::now();
  std::printf("NODE_READY role=manager id=%u port=%u\n", opt.id,
              transport.local_port());
  std::fflush(stdout);

  if (!opt.resume && opt.id == kManagerIds[0]) {
    sleep_until_offset(t0, kGrantAtMs);
    env.run_sync([&] {
      mgr.manager().submit_update(app, acl::Op::kAdd, alice, acl::Right::kUse,
                                  [](const proto::UpdateOutcome&) {
                                    std::printf("GRANT_OK_US %lld\n",
                                                static_cast<long long>(
                                                    system_us()));
                                    std::fflush(stdout);
                                  });
    });
  }
  if (opt.shards) {
    // The live rebalance: every manager proposes the flipped map, old owners
    // stream their migrating slices, and each commits once its own outbound
    // handoffs drain (receivers drain vacuously and gate answering on the
    // complete series instead). A restarted chaos victim re-enters here
    // immediately — its re-streamed series is idempotent at the receivers —
    // so a SIGKILL mid-handoff stalls the flip only until the restart.
    if (!opt.resume) sleep_until_offset(t0, kShardHandoffAtMs);
    const shard::ShardMap next = sharded_map(true);
    env.run_sync([&] { mgr.manager().begin_shard_handoff(app, next); });
    const auto drain_deadline = Clock::now() + std::chrono::seconds(10);
    bool drained = false;
    while (!drained && Clock::now() < drain_deadline) {
      env.run_sync([&] { drained = mgr.manager().handoff_drained(app); });
      if (!drained) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    if (drained) {
      env.run_sync([&] { mgr.manager().commit_shard_map(app, next); });
      if (opt.id == kShardRevoker) {
        std::vector<HostId> host_ids;
        for (const std::uint32_t id : kHostIds) host_ids.push_back(HostId(id));
        env.run_sync([&] { mgr.manager().announce_shard_map(app, host_ids); });
        std::printf("SHARD_FLIP_US %lld\n",
                    static_cast<long long>(system_us()));
        std::fflush(stdout);
      }
    } else {
      std::printf("HANDOFF_STUCK\n");
      std::fflush(stdout);
    }
  }

  const std::uint32_t revoker = opt.shards ? kShardRevoker : kManagerIds[1];
  const int revoke_at = opt.shards ? kShardRevokeAtMs : kRevokeAtMs;
  if (!opt.resume && opt.id == revoker) {
    sleep_until_offset(t0, revoke_at);
    env.run_sync([&] {
      mgr.manager().submit_update(app, acl::Op::kRevoke, alice,
                                  acl::Right::kUse,
                                  [](const proto::UpdateOutcome&) {
                                    // The instant the revoke reached its
                                    // write quorum — the Te clock starts now.
                                    std::printf("REVOKE_QUORUM_US %lld\n",
                                                static_cast<long long>(
                                                    system_us()));
                                    std::fflush(stdout);
                                  });
    });
  }

  sleep_until_offset(t0, lifetime_of(opt));
  transport.shutdown();
  return 0;
}

int run_host(const Options& opt, runtime::SocketTransport& transport) {
  const AppId app{1};
  std::vector<HostId> manager_ids;
  for (const std::uint32_t id : manager_raw_ids(opt.shards)) {
    manager_ids.push_back(HostId(id));
  }
  const proto::ProtocolConfig config = make_config(opt);

  ns::NameService names;
  names.set_managers(app, manager_ids);
  // Sharded: queries route to the owner group of the epoch-1 map; the flip
  // to epoch 2 arrives over the wire (ShardMapAnnounce from the new owner).
  if (opt.shards) names.set_shard_map(app, sharded_map(false));
  auth::KeyRegistry keys;
  keys.register_user(UserId(7), shared_keypair().public_key);

  runtime::ThreadedEnv env(transport);
  proto::AppHost host(HostId(opt.id), env, clk::LocalClock::perfect(), names,
                      keys, config);
  env.run_sync([&] {
    host.controller().register_app(
        app, [](UserId, const std::string& p) { return "ok:" + p; });
  });
  const Clock::time_point t0 = Clock::now();
  std::printf("NODE_READY role=host id=%u port=%u\n", opt.id,
              transport.local_port());
  std::fflush(stdout);

  if (!opt.resume && opt.id == kCutHostId) {
    sleep_until_offset(t0, kBlockAtMs);
    // One-way partition: the agent can still invoke through this host, but
    // nothing the managers send (RevokeNotify, QueryResponse) gets in. Only
    // the cache's te expiry can end access — the bound under test.
    for (const HostId m : manager_ids) transport.block_inbound_from(m, true);
    std::printf("BLOCKED_MANAGERS_US %lld\n",
                static_cast<long long>(system_us()));
    std::fflush(stdout);
  }

  sleep_until_offset(t0, lifetime_of(opt));
  transport.shutdown();
  return 0;
}

int run_agent(const Options& opt, runtime::SocketTransport& transport) {
  const AppId app{1};
  const UserId alice{7};
  const auth::KeyPair kp = shared_keypair();

  runtime::ThreadedEnv env(transport);
  proto::UserAgent agent(HostId(kAgentId), alice, kp, env,
                         proto::UserAgent::Config{});
  env.transport().register_endpoint(
      HostId(kAgentId), [&](HostId from, const net::MessagePtr& msg) {
        agent.on_message(from, msg);
      });
  const Clock::time_point t0 = Clock::now();
  std::printf("NODE_READY role=agent id=%u port=%u\n", kAgentId,
              transport.local_port());
  std::fflush(stdout);

  sleep_until_offset(t0, kAgentPollStartMs);

  // Poll invocations through the cut host only: its answers are the ones the
  // Te bound constrains once the managers are blocked away from it.
  bool ever_allowed = false;
  bool denied_after_revoke = false;
  std::int64_t last_allow_us = 0;
  int polls = 0;
  const int deadline_ms = lifetime_of(opt) - 500;
  while (ms_since(t0) < deadline_ms) {
    // Every few polls, also invoke via a CONNECTED host. Its outcome is
    // deliberately ignored — the Te oracle is the cut host's cache alone —
    // but the side effect matters: the connected host's re-queries keep it
    // registered at the *current* owner group, so the revoke's notify
    // fan-out (and the revocation's causal chain in a --trace capture)
    // reaches beyond the manager group. The cut host can never witness the
    // flush; a connected host can.
    if (polls++ % 8 == 0) {
      auto side_done = std::make_shared<std::atomic<bool>>(false);
      env.run_sync([&] {
        agent.invoke(app, {HostId(kHostIds[0])}, "ping",
                     [side_done](const proto::InvokeResult&) {
                       side_done->store(true);
                     });
      });
      const auto side_deadline = Clock::now() + std::chrono::seconds(2);
      while (!side_done->load() && Clock::now() < side_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    std::mutex mu;
    bool done = false;
    bool ok = false;
    env.run_sync([&] {
      agent.invoke(app, {HostId(kCutHostId)}, "hello",
                   [&](const proto::InvokeResult& r) {
                     const std::lock_guard<std::mutex> lock(mu);
                     ok = r.ok;
                     done = true;
                   });
    });
    const auto wait_deadline = Clock::now() + std::chrono::seconds(5);
    while (true) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (done) break;
      }
      if (Clock::now() >= wait_deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (ok) {
      ever_allowed = true;
      last_allow_us = system_us();
      if (opt.verbose) {
        std::printf("  allow at +%.0f ms\n", ms_since(t0));
        std::fflush(stdout);
      }
    } else if (ms_since(t0) >
               (opt.shards ? kShardRevokeAtMs : kRevokeAtMs)) {
      // Transient denies before the revoke (e.g. a query attempt racing the
      // very first grant) are retried; a deny after it is the revocation
      // taking effect at the cut host.
      denied_after_revoke = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }

  int rc = 0;
  if (!ever_allowed) {
    std::printf("AGENT_NEVER_ALLOWED\n");
    rc = 1;
  } else if (!denied_after_revoke) {
    std::printf("AGENT_NEVER_DENIED\n");
    rc = 1;
  } else {
    std::printf("LAST_ALLOW_US %lld\n", static_cast<long long>(last_allow_us));
  }
  std::fflush(stdout);
  transport.shutdown();
  return rc;
}

/// --trace DIR: per-process span capture for the multi-process modes.
///
/// Installs BOTH observability hooks for the life of the role: an in-memory
/// Tracer (full fidelity, exported as DIR/<role>-<id>.trace on clean exit)
/// and a crash-surviving FlightRecorder ring at DIR/<role>-<id>.ring whose
/// final events an orchestrator harvests after a SIGKILL. The wall-clock
/// anchor — one instant sampled on the runtime clock (steady, since the
/// fabric epoch) and on system_clock — is what lets tools/trace_merge
/// interleave every process's events on one machine-shared timeline.
class RoleTrace {
 public:
  RoleTrace(const Options& opt, const runtime::SocketTransport& transport)
      : dir_(opt.trace_dir) {
    if (dir_.empty()) return;
    ::mkdir(dir_.c_str(), 0755);  // fine if it already exists
    label_ = opt.role + "-" + std::to_string(opt.id);
    node_ = opt.id;
    // Anchor sampling: one wall-clock read bracketed by two runtime-clock
    // reads. A preemption between the reads would skew every merged
    // timestamp of this process by the gap, so take the tightest of several
    // brackets and anchor at its midpoint — worst-case anchor error is half
    // the bracket width (microseconds, far below a cross-process hop).
    std::int64_t best_bracket_ns = std::numeric_limits<std::int64_t>::max();
    for (int i = 0; i < 5; ++i) {
      const Clock::time_point before = Clock::now();
      const std::int64_t wall_us = system_us();
      const std::int64_t bracket_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               before)
              .count();
      if (bracket_ns < best_bracket_ns) {
        best_bracket_ns = bracket_ns;
        anchor_wall_us_ = wall_us;
        anchor_runtime_ns_ =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                before - transport.epoch())
                .count() +
            bracket_ns / 2;
      }
    }
    std::string error;
    ring_ = obs::FlightRecorder::create(dir_ + "/" + label_ + ".ring", node_,
                                        /*capacity=*/4096, &error);
    if (ring_) {
      ring_->set_identity(label_, anchor_runtime_ns_, anchor_wall_us_);
      obs::install_trace_sink(ring_.get());
    } else {
      std::fprintf(stderr, "wan_node --trace: %s\n", error.c_str());
    }
    tracer_ = std::make_unique<obs::Tracer>(1u << 20);
    obs::install_tracer(tracer_.get());
  }

  ~RoleTrace() { finish(); }
  RoleTrace(const RoleTrace&) = delete;
  RoleTrace& operator=(const RoleTrace&) = delete;

  /// Uninstalls the hooks and exports the full span stream. Called after the
  /// role's env (and its recording threads) are gone.
  void finish() {
    if (tracer_ == nullptr) return;
    obs::install_tracer(nullptr);
    obs::install_trace_sink(nullptr);
    const obs::ProcessTrace pt = obs::snapshot_process_trace(
        *tracer_, label_, node_, anchor_runtime_ns_, anchor_wall_us_);
    std::string error;
    if (!obs::write_process_trace(dir_ + "/" + label_ + ".trace", pt,
                                  &error)) {
      std::fprintf(stderr, "wan_node --trace: %s\n", error.c_str());
    }
    tracer_.reset();
    ring_.reset();
  }

 private:
  std::string dir_;
  std::string label_;
  std::uint32_t node_ = 0;
  std::int64_t anchor_runtime_ns_ = 0;
  std::int64_t anchor_wall_us_ = 0;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::FlightRecorder> ring_;
};

int run_role(const Options& opt) {
  // Socket transports move bytes, not pointers: the wire codecs must be
  // registered before the first frame is encoded or decoded.
  proto::register_wire_messages();
  auto transport = open_transport(opt);
  if (!transport) return 2;
  // Hooks go in before any protocol module exists, so the very first grant
  // or query span lands in the capture.
  RoleTrace trace(opt, *transport);
  int rc = 2;
  if (opt.role == "manager") {
    rc = run_manager(opt, *transport);
  } else if (opt.role == "host") {
    rc = run_host(opt, *transport);
  } else {
    rc = run_agent(opt, *transport);
  }
  trace.finish();
  return rc;
}

// ---------------------------------------------------------------------------
// --udp-smoke: orchestrates the 8 node processes and asserts the Te bound.

struct ChildProc {
  pid_t pid = -1;
  std::string name;
  std::string out_path;
  int exit_code = -1;
  bool exited = false;
  bool killed = false;  ///< chaos victim: nonzero exit is the point, not a bug
  Clock::time_point spawned_at;
};

/// Forks and execs this binary with `args`, stdout redirected to `out_path`
/// (the parent scrapes it). pid stays -1 when fork fails.
ChildProc spawn_child(const char* argv0, const std::string& name,
                      const std::string& out_path,
                      const std::vector<std::string>& args) {
  ChildProc child;
  child.name = name;
  child.out_path = out_path;
  child.spawned_at = Clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) return child;
  if (pid == 0) {
    if (std::freopen(out_path.c_str(), "w", stdout) == nullptr) std::_Exit(3);
    std::vector<const char*> argv = {argv0};
    for (const std::string& a : args) argv.push_back(a.c_str());
    argv.push_back(nullptr);
    ::execv(argv0, const_cast<char* const*>(argv.data()));
    std::_Exit(3);  // execv only returns on failure
  }
  child.pid = pid;
  return child;
}

std::optional<std::int64_t> scrape_stamp(const std::string& path,
                                         const std::string& key) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key + " ", 0) == 0) {
      return std::strtoll(line.c_str() + key.size() + 1, nullptr, 10);
    }
  }
  return std::nullopt;
}

void dump_child_output(const ChildProc& child) {
  std::ifstream in(child.out_path);
  std::string line;
  while (std::getline(in, line)) {
    std::printf("  [%s] %s\n", child.name.c_str(), line.c_str());
  }
}

/// Phase 2 of the two-phase startup shared by the orchestrators: scrape each
/// child's NODE_PORT announcement, assemble the real topology, and publish
/// it atomically (rename, so no child ever parses a half-written file).
/// Fills `ports_out` indexed like `children`/`nodes`. On timeout kills the
/// deployment, dumps its output, and returns false.
bool publish_topology(
    const char* tag, std::vector<ChildProc>& children,
    const std::vector<std::pair<std::string, std::uint32_t>>& nodes,
    const std::string& topo_path, std::vector<std::int64_t>* ports_out) {
  std::vector<std::optional<std::int64_t>> ports(children.size());
  const auto port_deadline = Clock::now() + std::chrono::seconds(10);
  std::size_t found = 0;
  while (found < children.size()) {
    found = 0;
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (!ports[i]) {
        ports[i] = scrape_stamp(children[i].out_path, "NODE_PORT");
      }
      if (ports[i]) ++found;
    }
    if (found == children.size()) break;
    if (Clock::now() >= port_deadline) {
      std::fprintf(stderr,
                   "wan_node %s: FAILED — %zu/%zu children never announced "
                   "a port\n",
                   tag, children.size() - found, children.size());
      for (ChildProc& child : children) {
        ::kill(child.pid, SIGKILL);
        dump_child_output(child);
      }
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  runtime::Topology topo;
  ports_out->clear();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    topo.add(HostId(nodes[i].second),
             runtime::NodeAddress{"127.0.0.1",
                                  static_cast<std::uint16_t>(*ports[i])});
    ports_out->push_back(*ports[i]);
  }
  const std::string tmp_path = topo_path + ".tmp";
  {
    std::ofstream out(tmp_path);
    out << topo.serialize();
  }
  if (std::rename(tmp_path.c_str(), topo_path.c_str()) != 0) {
    std::fprintf(stderr, "wan_node %s: cannot publish topology\n", tag);
    for (const ChildProc& c : children) ::kill(c.pid, SIGKILL);
    return false;
  }
  return true;
}

int run_udp_smoke(const Options& opt, const char* argv0) {
  char dir_template[] = "/tmp/wan_udp_smoke.XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "wan_node --udp-smoke: mkdtemp failed\n");
    return 2;
  }
  const std::string topo_path = std::string(dir) + "/topology.txt";

  std::vector<std::pair<std::string, std::uint32_t>> nodes;
  for (const std::uint32_t id : manager_raw_ids(opt.shards)) {
    nodes.emplace_back("manager", id);
  }
  for (const std::uint32_t id : kHostIds) nodes.emplace_back("host", id);
  nodes.emplace_back("agent", kAgentId);

  // Phase 1: spawn every child binding port 0. The topology file does not
  // exist yet; each child binds, prints NODE_PORT, and waits for the file.
  // Ports are owned by the sockets that will use them from the instant the
  // kernel assigns them — the old bind-then-close prober could lose its port
  // to another process between close() and the child's bind().
  std::vector<ChildProc> children;
  for (const auto& [role, id] : nodes) {
    const std::string name = role + "-" + std::to_string(id);
    std::vector<std::string> args = {
        "--role",     role,
        "--id",       std::to_string(id),
        "--topology", topo_path,
        "--te-ms",    std::to_string(opt.te_ms),
        "--listen",   "127.0.0.1:0",
        "--backend",  opt.backend};
    if (opt.shards) args.push_back("--shards");
    if (opt.dissemination != runtime::DisseminationKind::kUnicast) {
      args.push_back("--dissemination");
      args.push_back(runtime::to_cstring(opt.dissemination));
    }
    // Sharded runs always arm the reliability layer: the map announce and
    // the handoff series must survive whatever localhost UDP drops.
    if (opt.reliable || opt.shards) args.push_back("--reliable");
    if (opt.loss > 0.0) {
      args.push_back("--loss");
      args.push_back(std::to_string(opt.loss));
      args.push_back("--fault-seed");
      args.push_back(std::to_string(opt.fault_seed));
    }
    if (!opt.trace_dir.empty()) {
      args.push_back("--trace");
      args.push_back(opt.trace_dir);
    }
    if (opt.verbose) args.push_back("--verbose");
    ChildProc child =
        spawn_child(argv0, name, std::string(dir) + "/" + name + ".out", args);
    if (child.pid < 0) {
      std::fprintf(stderr, "wan_node --udp-smoke: fork failed\n");
      for (const ChildProc& c : children) ::kill(c.pid, SIGKILL);
      return 2;
    }
    children.push_back(std::move(child));
  }
  if (opt.verbose) {
    std::printf("  spawned %zu node processes (topology %s, backend %s)\n",
                children.size(), topo_path.c_str(), opt.backend.c_str());
  }

  // Phase 2: scrape each child's kernel-assigned port, then publish the
  // real topology.
  std::vector<std::int64_t> ports;
  if (!publish_topology("--udp-smoke", children, nodes, topo_path, &ports)) {
    return 1;
  }

  // Wait for every child, with a hard deadline: a wedged deployment must
  // fail the smoke, not hang CI.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(node_lifetime_ms(opt) + 10000);
  std::size_t remaining = children.size();
  while (remaining > 0 && Clock::now() < deadline) {
    for (ChildProc& child : children) {
      if (child.exited) continue;
      int status = 0;
      const pid_t r = ::waitpid(child.pid, &status, WNOHANG);
      if (r == child.pid) {
        child.exited = true;
        child.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
        --remaining;
      }
    }
    if (remaining > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (remaining > 0) {
    std::fprintf(stderr,
                 "wan_node --udp-smoke: FAILED — %zu process(es) still "
                 "running at deadline; killing\n",
                 remaining);
    for (ChildProc& child : children) {
      if (!child.exited) ::kill(child.pid, SIGKILL);
      dump_child_output(child);
    }
    return 1;
  }

  bool all_ok = true;
  for (const ChildProc& child : children) {
    if (child.exit_code != 0) {
      std::fprintf(stderr, "wan_node --udp-smoke: %s exited %d\n",
                   child.name.c_str(), child.exit_code);
      all_ok = false;
    }
  }
  const std::uint32_t revoker = opt.shards ? kShardRevoker : kManagerIds[1];
  const std::optional<std::int64_t> quorum_us = scrape_stamp(
      std::string(dir) + "/manager-" + std::to_string(revoker) + ".out",
      "REVOKE_QUORUM_US");
  const std::optional<std::int64_t> last_allow_us = scrape_stamp(
      std::string(dir) + "/agent-" + std::to_string(kAgentId) + ".out",
      "LAST_ALLOW_US");
  if (!quorum_us) {
    std::fprintf(stderr,
                 "wan_node --udp-smoke: revoke never reached quorum\n");
    all_ok = false;
  }
  std::optional<std::int64_t> flip_us;
  if (opt.shards) {
    // The revoke above was submitted at the NEW owner group, so a quorum
    // stamp already implies the flip; the explicit stamp pins where the
    // handoff committed relative to it.
    flip_us = scrape_stamp(
        std::string(dir) + "/manager-" + std::to_string(kShardRevoker) +
            ".out",
        "SHARD_FLIP_US");
    if (!flip_us) {
      std::fprintf(stderr,
                   "wan_node --udp-smoke: shard map never flipped\n");
      all_ok = false;
    }
  }
  if (!last_allow_us) {
    std::fprintf(stderr, "wan_node --udp-smoke: agent saw no allow/deny "
                         "transition\n");
    all_ok = false;
  }
  if (!all_ok || opt.verbose) {
    for (const ChildProc& child : children) dump_child_output(child);
  }
  if (!all_ok) {
    std::fprintf(stderr, "wan_node --udp-smoke: FAILED (outputs kept in %s)\n",
                 dir);
    return 1;
  }

  const double over_ms =
      static_cast<double>(*last_allow_us - *quorum_us) / 1000.0;
  const bool held = over_ms <= static_cast<double>(opt.te_ms);
  std::printf(
      "wan_node --udp-smoke: Te bound across %zu processes%s: last allow "
      "%.1f ms after revoke quorum (bound %d ms) — %s\n",
      children.size(), opt.shards ? " (sharded, live rebalance)" : "",
      over_ms, opt.te_ms, held ? "HELD" : "VIOLATED");
  if (flip_us && quorum_us) {
    std::printf("  shard flip committed %.1f ms before the revoke\n",
                static_cast<double>(*quorum_us - *flip_us) / 1000.0);
  }
  if (!held) {
    std::fprintf(stderr, "wan_node --udp-smoke: FAILED (outputs kept in %s)\n",
                 dir);
    return 1;
  }

  // Success: tidy up the scratch dir.
  for (const ChildProc& child : children) {
    std::remove(child.out_path.c_str());
  }
  std::remove(topo_path.c_str());
  ::rmdir(dir);
  std::printf("wan_node --udp-smoke: OK (%zu processes over localhost UDP, %s "
              "backend%s)\n",
              children.size(), opt.backend.c_str(),
              opt.shards ? ", sharded" : "");
  return 0;
}

// ---------------------------------------------------------------------------
// --proc-chaos: the 8-process deployment plus a seeded kill/restart schedule.

/// Remaining lifetime for a restarted victim: the schedule it would have
/// served minus the time its first incarnation already consumed, plus slack
/// so it outlives the agent's poll (it must be up to answer resyncs and
/// acks, and to exit cleanly).
int remaining_lifetime_ms(const ChildProc& original, const Options& opt) {
  const int consumed = static_cast<int>(ms_since(original.spawned_at));
  return std::max(1500, node_lifetime_ms(opt) - consumed + 1000);
}

/// Recovers a SIGKILLed child's flight-recorder ring into a WANTRACE file
/// (DIR/<name>-killed.trace). Must run before the victim's restarted
/// incarnation re-creates (truncates) the ring at the same path — the
/// orchestrator calls it synchronously right after waitpid, hundreds of ms
/// ahead of the restart. Returns the recovered event count, -1 on failure.
long harvest_killed_ring(const std::string& trace_dir,
                         const std::string& name) {
  std::string error;
  const std::optional<obs::FlightRecorder::Harvested> h =
      obs::FlightRecorder::harvest(trace_dir + "/" + name + ".ring", &error);
  if (!h) {
    std::fprintf(stderr, "wan_node --proc-chaos: ring harvest of %s: %s\n",
                 name.c_str(), error.c_str());
    return -1;
  }
  const obs::ProcessTrace pt = obs::from_harvest(*h, name + "-killed");
  if (!obs::write_process_trace(trace_dir + "/" + name + "-killed.trace", pt,
                                &error)) {
    std::fprintf(stderr, "wan_node --proc-chaos: %s\n", error.c_str());
    return -1;
  }
  return static_cast<long>(pt.events.size());
}

int run_proc_chaos(const Options& opt, const char* argv0) {
  char dir_template[] = "/tmp/wan_proc_chaos.XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "wan_node --proc-chaos: mkdtemp failed\n");
    return 2;
  }
  const std::string topo_path = std::string(dir) + "/topology.txt";

  std::vector<std::pair<std::string, std::uint32_t>> nodes;
  for (const std::uint32_t id : manager_raw_ids(opt.shards)) {
    nodes.emplace_back("manager", id);
  }
  for (const std::uint32_t id : kHostIds) nodes.emplace_back("host", id);
  nodes.emplace_back("agent", kAgentId);

  // The victims, drawn from the seed. Never the revoking manager — the
  // revoke must still happen so the oracle has an instant to measure from —
  // and never the cut host (103), whose cache expiry IS the property under
  // test. Everything else is fair game mid-traffic.
  //
  // Sharded variant: ONE manager victim, SIGKILLed DURING the handoff —
  // either an old-owner sender (0, its slice stream dies mid-series and must
  // be re-streamed on restart) or a new-owner receiver (3, the senders
  // retransmit into the outage until its restart acks). The grant anchor is
  // ~1.5 s before the handoff begins, so grant+[1550,1900] ms lands inside
  // the streaming window.
  Rng chaos(opt.chaos_seed);
  const std::uint32_t victim_mgr =
      opt.shards ? (chaos.next_bool(0.5) ? 0u : 3u)
                 : (chaos.next_bool(0.5) ? 0u : 2u);
  constexpr std::uint32_t kHostPool[] = {100, 101, 102};
  const std::uint32_t victim_host =
      kHostPool[chaos.next_below(std::size(kHostPool))];
  // Kill ~[1.6, 2.6] s after the grant lands — between the cache warm-up and
  // the revocation, so the crash overlaps the revocation storm. Restart a
  // few hundred ms later, well within the outage the retry budgets absorb.
  const int kill_mgr_after_grant_ms =
      opt.shards ? 1550 + static_cast<int>(chaos.next_below(350))
                 : 1600 + static_cast<int>(chaos.next_below(1000));
  const int restart_mgr_delay_ms =
      opt.shards ? 300 + static_cast<int>(chaos.next_below(300))
                 : 300 + static_cast<int>(chaos.next_below(500));
  const int kill_host_after_grant_ms = 1600 + static_cast<int>(chaos.next_below(1000));
  const int restart_host_delay_ms = 300 + static_cast<int>(chaos.next_below(500));

  auto node_args = [&](const std::string& role, std::uint32_t id,
                       const std::string& listen) {
    std::vector<std::string> args = {
        "--role",     role,
        "--id",       std::to_string(id),
        "--topology", topo_path,
        "--te-ms",    std::to_string(opt.te_ms),
        "--listen",   listen,
        "--backend",  opt.backend,
        "--reliable"};
    if (opt.shards) args.push_back("--shards");
    if (opt.dissemination != runtime::DisseminationKind::kUnicast) {
      args.push_back("--dissemination");
      args.push_back(runtime::to_cstring(opt.dissemination));
    }
    if (role == "manager") {
      args.push_back("--state-dir");
      args.push_back(std::string(dir) + "/state-" + std::to_string(id));
    }
    if (!opt.trace_dir.empty()) {
      args.push_back("--trace");
      args.push_back(opt.trace_dir);
    }
    if (opt.verbose) args.push_back("--verbose");
    return args;
  };

  std::vector<ChildProc> children;
  for (const auto& [role, id] : nodes) {
    const std::string name = role + "-" + std::to_string(id);
    ChildProc child =
        spawn_child(argv0, name, std::string(dir) + "/" + name + ".out",
                    node_args(role, id, "127.0.0.1:0"));
    if (child.pid < 0) {
      std::fprintf(stderr, "wan_node --proc-chaos: fork failed\n");
      for (const ChildProc& c : children) ::kill(c.pid, SIGKILL);
      return 2;
    }
    children.push_back(std::move(child));
  }
  if (opt.shards) {
    std::printf(
        "wan_node --proc-chaos: seed %llu (sharded) — will kill manager-%u "
        "during the shard handoff (+%d ms after grant, back %d ms later)\n",
        static_cast<unsigned long long>(opt.chaos_seed), victim_mgr,
        kill_mgr_after_grant_ms, restart_mgr_delay_ms);
  } else {
    std::printf(
        "wan_node --proc-chaos: seed %llu — will kill manager-%u (+%d ms "
        "after grant, back %d ms later) and host-%u (+%d ms, back %d ms "
        "later)\n",
        static_cast<unsigned long long>(opt.chaos_seed), victim_mgr,
        kill_mgr_after_grant_ms, restart_mgr_delay_ms, victim_host,
        kill_host_after_grant_ms, restart_host_delay_ms);
  }

  std::vector<std::int64_t> ports;
  if (!publish_topology("--proc-chaos", children, nodes, topo_path, &ports)) {
    return 1;
  }

  // The schedule anchors on the grant actually landing, not on wall-clock
  // offsets: spawn skew varies, and killing a manager before the grant
  // completes would test a different (earlier, easier) interleaving.
  const std::string mgr0_out = std::string(dir) + "/manager-0.out";
  std::optional<std::int64_t> grant_us;
  const auto grant_deadline = Clock::now() + std::chrono::seconds(15);
  while (!(grant_us = scrape_stamp(mgr0_out, "GRANT_OK_US"))) {
    if (Clock::now() >= grant_deadline) {
      std::fprintf(stderr,
                   "wan_node --proc-chaos: FAILED — grant never completed\n");
      for (ChildProc& child : children) {
        ::kill(child.pid, SIGKILL);
        dump_child_output(child);
      }
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const Clock::time_point grant_at = Clock::now();

  auto index_of = [&](std::uint32_t id) -> std::size_t {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].second == id) return i;
    }
    return 0;  // unreachable: victims are drawn from the node list
  };

  struct ChaosEvent {
    Clock::time_point at;
    bool restart = false;
    std::size_t index = 0;  ///< into children/nodes/ports
  };
  std::vector<ChaosEvent> events = {
      {grant_at + std::chrono::milliseconds(kill_mgr_after_grant_ms), false,
       index_of(victim_mgr)},
      {grant_at + std::chrono::milliseconds(kill_mgr_after_grant_ms +
                                            restart_mgr_delay_ms),
       true, index_of(victim_mgr)},
  };
  if (!opt.shards) {
    // The sharded variant concentrates its adversity on the handoff: one
    // manager dies mid-migration. The flat schedule also crashes a host.
    events.push_back(
        {grant_at + std::chrono::milliseconds(kill_host_after_grant_ms),
         false, index_of(victim_host)});
    events.push_back(
        {grant_at + std::chrono::milliseconds(kill_host_after_grant_ms +
                                              restart_host_delay_ms),
         true, index_of(victim_host)});
  }
  std::sort(events.begin(), events.end(),
            [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });

  std::vector<ChildProc> restarts;
  long mgr_ring_events = -1;  ///< events harvested from the killed manager
  for (const ChaosEvent& ev : events) {
    std::this_thread::sleep_until(ev.at);
    ChildProc& victim = children[ev.index];
    const auto& [role, id] = nodes[ev.index];
    if (!ev.restart) {
      // SIGKILL: no atexit, no flush, no shutdown — the journal must already
      // be durable and the survivors must carry the protocol meanwhile.
      ::kill(victim.pid, SIGKILL);
      ::waitpid(victim.pid, nullptr, 0);
      victim.exited = true;
      victim.killed = true;
      victim.exit_code = 0;
      std::printf("  killed %s at +%.0f ms\n", victim.name.c_str(),
                  ms_since(grant_at));
      if (!opt.trace_dir.empty()) {
        // The victim's last spans survive only in its mmap ring; fold them
        // into the trace set before its restart truncates the ring file.
        const long recovered =
            harvest_killed_ring(opt.trace_dir, victim.name);
        if (role == "manager") mgr_ring_events = recovered;
        if (recovered >= 0) {
          std::printf(
              "  harvested %ld flight-recorder events from killed %s\n",
              recovered, victim.name.c_str());
        }
      }
    } else {
      // Re-exec on the original port (every peer still routes to it) with
      // --resume (its one-shot scripted duties are done or forfeited) and
      // the remaining schedule as its lifetime.
      std::vector<std::string> args = node_args(
          role, id, "127.0.0.1:" + std::to_string(ports[ev.index]));
      args.push_back("--resume");
      args.push_back("--lifetime-ms");
      args.push_back(std::to_string(remaining_lifetime_ms(victim, opt)));
      ChildProc restarted = spawn_child(
          argv0, victim.name + "-restart",
          std::string(dir) + "/" + victim.name + ".restart.out", args);
      if (restarted.pid < 0) {
        std::fprintf(stderr, "wan_node --proc-chaos: restart fork failed\n");
        for (const ChildProc& c : children) {
          if (!c.exited) ::kill(c.pid, SIGKILL);
        }
        return 2;
      }
      std::printf("  restarted %s at +%.0f ms\n", victim.name.c_str(),
                  ms_since(grant_at));
      restarts.push_back(std::move(restarted));
    }
    std::fflush(stdout);
  }
  for (ChildProc& r : restarts) children.push_back(std::move(r));

  // Wait for everything still alive, with a hard deadline.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(node_lifetime_ms(opt) + 15000);
  std::size_t remaining = 0;
  for (const ChildProc& c : children) {
    if (!c.exited) ++remaining;
  }
  while (remaining > 0 && Clock::now() < deadline) {
    for (ChildProc& child : children) {
      if (child.exited) continue;
      int status = 0;
      if (::waitpid(child.pid, &status, WNOHANG) == child.pid) {
        child.exited = true;
        child.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
        --remaining;
      }
    }
    if (remaining > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  bool all_ok = true;
  if (remaining > 0) {
    std::fprintf(stderr,
                 "wan_node --proc-chaos: FAILED — %zu process(es) still "
                 "running at deadline; killing\n",
                 remaining);
    for (ChildProc& child : children) {
      if (!child.exited) ::kill(child.pid, SIGKILL);
    }
    all_ok = false;
  }
  for (const ChildProc& child : children) {
    if (!child.killed && child.exited && child.exit_code != 0) {
      std::fprintf(stderr, "wan_node --proc-chaos: %s exited %d\n",
                   child.name.c_str(), child.exit_code);
      all_ok = false;
    }
  }

  // The recovery oracle: the restarted manager must have replayed durable
  // state and completed a resync. (The restarted host is stateless — its
  // check is simply the clean exit above.) Sharded exception: the replay
  // COUNT is timing-dependent — a killed receiver (manager 3) owned nothing
  // at epoch 1, and a killed sender (manager 0) may have already streamed
  // its slice away and compacted before the SIGKILL landed — so a zero-
  // record journal is legitimate. We still require the replay line itself
  // (the recovery path ran); the real sharded oracle is the flip + revoke
  // quorum below.
  const std::string mgr_restart_out = std::string(dir) + "/manager-" +
                                      std::to_string(victim_mgr) +
                                      ".restart.out";
  const std::optional<std::int64_t> replayed =
      scrape_stamp(mgr_restart_out, "JOURNAL_REPLAYED");
  if (!replayed || (!opt.shards && *replayed < 1)) {
    std::fprintf(stderr,
                 "wan_node --proc-chaos: FAILED — restarted manager-%u "
                 "replayed no journal records\n",
                 victim_mgr);
    all_ok = false;
  }
  if (!scrape_stamp(mgr_restart_out, "RESYNCED")) {
    std::fprintf(stderr,
                 "wan_node --proc-chaos: FAILED — restarted manager-%u never "
                 "completed its resync\n",
                 victim_mgr);
    all_ok = false;
  }
  if (!opt.trace_dir.empty() && mgr_ring_events <= 0) {
    // The flight recorder exists precisely for this moment: a SIGKILL that
    // erased the in-memory tracer must still leave the victim's final spans
    // recoverable from its mmap ring.
    std::fprintf(stderr,
                 "wan_node --proc-chaos: FAILED — no flight-recorder events "
                 "recovered from SIGKILLed manager-%u\n",
                 victim_mgr);
    all_ok = false;
  }
  if (opt.shards) {
    // The flip must complete DESPITE the mid-handoff kill: the new owner
    // only commits the migrated slice once it holds the complete series from
    // every old-group member, one of which may have died and re-streamed.
    if (!scrape_stamp(std::string(dir) + "/manager-" +
                          std::to_string(kShardRevoker) + ".out",
                      "SHARD_FLIP_US")) {
      std::fprintf(stderr,
                   "wan_node --proc-chaos: FAILED — shard map never flipped "
                   "across the kill\n");
      all_ok = false;
    }
  }

  // The Te oracle, identical to the smoke: crashes may delay convergence but
  // must never extend the window in which a revoked right is honoured.
  const std::uint32_t revoker = opt.shards ? kShardRevoker : kManagerIds[1];
  const std::optional<std::int64_t> quorum_us =
      scrape_stamp(std::string(dir) + "/manager-" + std::to_string(revoker) +
                       ".out",
                   "REVOKE_QUORUM_US");
  const std::optional<std::int64_t> last_allow_us = scrape_stamp(
      std::string(dir) + "/agent-" + std::to_string(kAgentId) + ".out",
      "LAST_ALLOW_US");
  if (!quorum_us) {
    std::fprintf(stderr,
                 "wan_node --proc-chaos: revoke never reached quorum\n");
    all_ok = false;
  }
  if (!last_allow_us) {
    std::fprintf(stderr, "wan_node --proc-chaos: agent saw no allow/deny "
                         "transition\n");
    all_ok = false;
  }
  if (all_ok) {
    const double over_ms =
        static_cast<double>(*last_allow_us - *quorum_us) / 1000.0;
    const bool held = over_ms <= static_cast<double>(opt.te_ms);
    std::printf(
        "wan_node --proc-chaos: Te bound across crashes%s: last allow %.1f "
        "ms after revoke quorum (bound %d ms) — %s; manager-%u replayed "
        "%lld records\n",
        opt.shards ? " (sharded, kill during handoff)" : "", over_ms,
        opt.te_ms, held ? "HELD" : "VIOLATED", victim_mgr,
        static_cast<long long>(replayed.value_or(0)));
    all_ok = held;
  }

  if (!all_ok || opt.verbose) {
    for (const ChildProc& child : children) dump_child_output(child);
  }
  if (!all_ok) {
    std::fprintf(stderr, "wan_node --proc-chaos: FAILED (outputs kept in %s)\n",
                 dir);
    return 1;
  }

  // Success: tidy the scratch dir (out files, topology, journal state).
  for (const ChildProc& child : children) {
    std::remove(child.out_path.c_str());
  }
  for (const std::uint32_t id : manager_raw_ids(opt.shards)) {
    const std::string state = std::string(dir) + "/state-" + std::to_string(id);
    std::remove((state + "/app-1.snap").c_str());
    std::remove((state + "/app-1.log").c_str());
    ::rmdir(state.c_str());
  }
  std::remove(topo_path.c_str());
  ::rmdir(dir);
  std::printf("wan_node --proc-chaos: OK (seed %llu, %s backend%s)\n",
              static_cast<unsigned long long>(opt.chaos_seed),
              opt.backend.c_str(), opt.shards ? ", sharded" : "");
  return 0;
}

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  wan::Options opt;
  wan::cli::Parser cli(
      "wan_node",
      "Runs the access-control protocol on the real-time runtime: all nodes\n"
      "in-process over loopback (--realtime), one node of a multi-process\n"
      "UDP deployment (--role), or the 8-process localhost UDP smoke\n"
      "orchestrator (--udp-smoke). See docs/ARCHITECTURE.md and\n"
      "docs/WIRE_FORMAT.md.");
  cli.add_flag("--realtime",
               "single-process smoke: 3 managers + 4 hosts + 1 agent on\n"
               "loopback threads; verifies the Te bound against the wall\n"
               "clock",
               &opt.realtime);
  cli.add_flag("--udp-smoke",
               "spawn the same deployment as 8 OS processes over localhost\n"
               "UDP sockets and verify the Te bound across them",
               &opt.udp_smoke);
  cli.add_flag("--proc-chaos",
               "the 8-process deployment plus a seeded kill/restart\n"
               "schedule: SIGKILL one manager and one host mid-traffic,\n"
               "restart them, and verify journal replay, resync, and the\n"
               "Te bound across the crashes (see docs/CHAOS.md)",
               &opt.proc_chaos);
  cli.add_value("--role", "ROLE",
                "run one node: manager, host, or agent (needs --id and\n"
                "--topology)",
                [&](const std::string& v) {
                  opt.role = v;
                  return v == "manager" || v == "host" || v == "agent";
                });
  cli.add_value("--id", "N", "this node's host id in the topology",
                [&](const std::string& v) {
                  std::uint64_t id = 0;
                  if (!wan::cli::parse_u64(v, &id) || id > 0xFFFFFFFEull) {
                    return false;
                  }
                  opt.id = static_cast<std::uint32_t>(id);
                  opt.id_set = true;
                  return true;
                });
  cli.add_string("--listen", "ADDR",
                 "bind address host:port (default: this node's topology\n"
                 "entry; port 0 picks an ephemeral port)",
                 &opt.listen);
  cli.add_string("--topology", "FILE",
                 "topology file: one '<host-id> <host>:<port>' per line",
                 &opt.topology);
  cli.add_value("--backend", "KIND",
                "socket fabric for --role / --udp-smoke: udp (thread per\n"
                "direction, default) or reactor (epoll + batched syscalls)",
                [&](const std::string& v) {
                  opt.backend = v;
                  return v == "udp" || v == "reactor";
                });
  cli.add_value("--te-ms", "N", "revocation bound Te in ms (default 2000)",
                [&](const std::string& v) {
                  return wan::cli::parse_int(v, &opt.te_ms) && opt.te_ms > 0;
                });
  cli.add_string("--state-dir", "DIR",
                 "manager role: journal ACL state under DIR (created if\n"
                 "missing); a restarted manager replays it and re-syncs",
                 &opt.state_dir);
  cli.add_flag("--reliable",
               "arm the ack/retransmit layer on the socket fabric (critical\n"
               "messages get per-flow sequencing, retransmission, and dedup;\n"
               "heartbeats stay fire-and-forget)",
               &opt.reliable);
  cli.add_value("--dissemination", "KIND",
                "revocation fanout strategy: unicast (default), coalesced,\n"
                "or tree — every node of a deployment must agree",
                [&](const std::string& v) {
                  return wan::runtime::parse_dissemination(
                      v, &opt.dissemination);
                });
  cli.add_value("--loss", "P",
                "drop fraction P (0..1) of inbound frames, deterministically\n"
                "seeded — only converges with --reliable",
                [&](const std::string& v) {
                  char* end = nullptr;
                  opt.loss = std::strtod(v.c_str(), &end);
                  return end != v.c_str() && *end == '\0' && opt.loss >= 0.0 &&
                         opt.loss < 1.0;
                });
  cli.add_value("--fault-seed", "N", "seed for the --loss fault stream",
                [&](const std::string& v) {
                  return wan::cli::parse_u64(v, &opt.fault_seed);
                });
  cli.add_flag("--resume",
               "restarted node: skip the one-shot scripted duties (grant,\n"
               "revoke, partition) its first incarnation already performed",
               &opt.resume);
  cli.add_value("--lifetime-ms", "N",
                "serve for N ms before exiting (default: derived from\n"
                "--te-ms; restarted chaos victims get the remaining time)",
                [&](const std::string& v) {
                  return wan::cli::parse_int(v, &opt.lifetime_ms) &&
                         opt.lifetime_ms > 0;
                });
  cli.add_value("--chaos-seed", "N",
                "--proc-chaos: seed for the kill/restart schedule",
                [&](const std::string& v) {
                  return wan::cli::parse_u64(v, &opt.chaos_seed);
                });
  cli.add_flag("--shards",
               "sharded deployment: 4 managers in 2 shard groups; the shard\n"
               "holding the scripted user migrates live mid-script and the\n"
               "revoke lands at the NEW owner group (--udp-smoke runs the\n"
               "migration; --proc-chaos SIGKILLs a manager during it)",
               &opt.shards);
  cli.add_value("--delay-us", "N",
                "loopback one-way delay in us (--realtime only, default 1000)",
                [&](const std::string& v) {
                  return wan::cli::parse_int(v, &opt.delay_us) &&
                         opt.delay_us >= 0;
                });
  cli.add_string(
      "--trace", "DIR",
      "per-process span capture: each role process writes\n"
      "DIR/<role>-<id>.trace (WANTRACE v1, wall-clock anchored) on clean\n"
      "exit and keeps a crash-surviving flight-recorder ring at\n"
      "DIR/<role>-<id>.ring; orchestrators pass this through to children\n"
      "and --proc-chaos harvests the rings of SIGKILLed victims. Merge with\n"
      "tools/trace_merge",
      &opt.trace_dir);
  cli.add_flag("--verbose", "chatty per-step progress output", &opt.verbose);
  cli.add_optional_value(
      "--metrics", "[FILE]",
      "export the metrics registry (Prometheus text): with FILE, rewrite\n"
      "it twice a second while running and once on exit; without FILE,\n"
      "print to stdout on exit",
      [&] { opt.metrics = true; },
      [&](const std::string& v) {
        opt.metrics_path = v;
        return true;
      });
  if (!cli.parse(argc, argv)) return 2;

  const int modes = (opt.realtime ? 1 : 0) + (opt.udp_smoke ? 1 : 0) +
                    (opt.proc_chaos ? 1 : 0) + (opt.role.empty() ? 0 : 1);
  if (modes != 1) {
    std::fprintf(stderr,
                 "wan_node: pick exactly one of --realtime, --udp-smoke, "
                 "--proc-chaos, --role (try --help)\n");
    return 2;
  }
  if (!opt.role.empty() && (!opt.id_set || opt.topology.empty())) {
    std::fprintf(stderr, "wan_node: --role needs --id and --topology\n");
    return 2;
  }

  std::unique_ptr<wan::MetricsExporter> exporter;
  if (opt.metrics && !opt.metrics_path.empty()) {
    exporter = std::make_unique<wan::MetricsExporter>(opt.metrics_path);
  }
  int rc = 0;
  if (opt.realtime) {
    rc = wan::Smoke(opt).run();
  } else if (opt.udp_smoke) {
    rc = wan::run_udp_smoke(opt, argv[0]);
  } else if (opt.proc_chaos) {
    rc = wan::run_proc_chaos(opt, argv[0]);
  } else {
    rc = wan::run_role(opt);
  }
  if (exporter != nullptr) exporter->stop();
  if (opt.metrics && opt.metrics_path.empty()) {
    const std::string text = wan::obs::Registry::global().prometheus_text();
    std::fwrite(text.data(), 1, text.size(), stdout);
  }
  return rc;
}
