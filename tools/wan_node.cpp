// wan_node: runs the protocol on the threaded runtime, in real time.
//
// The simulator proves the protocol's logic; this tool proves the runtime
// seam — the same proto/ modules, byte for byte, driven by OS threads and a
// steady clock. Three modes:
//
//   wan_node --realtime [--te-ms N] [--delay-us N] [--verbose]
//            [--metrics [FILE]]
//       All 8 nodes in one process over the in-process loopback fabric
//       (the PR 3 smoke, unchanged).
//
//   wan_node --role manager|host|agent --id N --topology FILE
//            [--listen ADDR] [--te-ms N] [--verbose]
//       ONE node of a multi-process deployment over real UDP sockets. Every
//       process loads the same topology file (HostId -> host:port); frames
//       travel through the versioned wire codec (docs/WIRE_FORMAT.md). Each
//       role follows a fixed timer script (below) so that 8 independent
//       processes re-enact the revocation worst case with no coordination
//       channel beyond the sockets themselves.
//
//   wan_node --udp-smoke [--te-ms N] [--backend udp|reactor] [--verbose]
//       Orchestrator: spawns the 8 node processes (3 managers, 4 hosts,
//       1 agent) from this same binary, each binding port 0; scrapes the
//       kernel-assigned ports from their output, then writes the topology
//       file the children are waiting on (two-phase startup — no
//       bind-then-close port race). Collects their stdout and asserts the
//       Te bound across process boundaries. This is what CI runs.
//       --backend selects the socket fabric: udp (thread-per-direction,
//       default) or reactor (epoll + batched syscalls).
//
// The multi-process script (offsets from each process's start; spawn skew is
// tens of ms, the gaps are hundreds):
//
//   +500 ms   manager 0 grants the user             (prints GRANT_OK_US)
//   +1200 ms  agent starts invoking via the cut host, repeatedly
//   +3000 ms  the cut host blocks inbound from all managers — revocations
//             and query replies can no longer reach it, but its cache was
//             refreshed moments ago (the paper's worst case: a partition
//             landing right after a grant confirmation)
//   +3200 ms  manager 1 revokes                     (prints REVOKE_QUORUM_US)
//   ...       agent keeps invoking; allows come only from the cut host's
//             cache, which must expire within te. First deny after the
//             revoke instant ends the poll            (prints LAST_ALLOW_US)
//
// Timestamps are system-clock microseconds — comparable across processes on
// one machine — so the orchestrator checks LAST_ALLOW_US - REVOKE_QUORUM_US
// <= Te without any cross-process clock protocol.
//
// --metrics exports the process-wide metrics registry in Prometheus text
// format: with FILE, a background thread rewrites the file twice a second
// while the smoke runs (tail -f it, or point a node_exporter textfile
// collector at it) and once more on exit; without FILE, the registry is
// printed to stdout on exit.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "obs/metrics.hpp"
#include "proto/host.hpp"
#include "proto/user_agent.hpp"
#include "proto/wire.hpp"
#include "runtime/reactor_transport.hpp"
#include "runtime/threaded_env.hpp"
#include "runtime/udp_transport.hpp"

namespace wan {
namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  bool realtime = false;
  bool udp_smoke = false;
  std::string role;      ///< manager|host|agent (multi-process mode)
  std::uint32_t id = 0;  ///< HostId in the topology (multi-process mode)
  bool id_set = false;
  std::string listen;    ///< bind override (default: the topology entry)
  std::string topology;  ///< topology file path
  std::string backend = "udp";  ///< socket fabric: udp | reactor
  int te_ms = 2000;      ///< revocation bound Te (small: this runs wall-clock)
  int delay_us = 1000;   ///< loopback fabric one-way delay (--realtime only)
  bool verbose = false;
  bool metrics = false;      ///< export the metrics registry
  std::string metrics_path;  ///< with --metrics: live file (empty = stdout)
};

// The fixed 8-node deployment every mode runs.
constexpr std::uint32_t kManagerIds[] = {0, 1, 2};
constexpr std::uint32_t kHostIds[] = {100, 101, 102, 103};
constexpr std::uint32_t kAgentId = 9000;
constexpr std::uint32_t kCutHostId = 103;
constexpr int kManagers = 3;
constexpr int kHosts = 4;

// Multi-process script offsets (ms from each process's start).
constexpr int kGrantAtMs = 500;
constexpr int kAgentPollStartMs = 1200;
constexpr int kBlockAtMs = 3000;
constexpr int kRevokeAtMs = 3200;

/// How long a node process serves before exiting cleanly: the script plus
/// three Te periods for the cache to expire plus slack for slow CI machines.
int node_lifetime_ms(int te_ms) { return kRevokeAtMs + 3 * te_ms + 2000; }

std::int64_t system_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void sleep_until_offset(Clock::time_point t0, int offset_ms) {
  std::this_thread::sleep_until(t0 + std::chrono::milliseconds(offset_ms));
}

/// The protocol knobs every node of a deployment must agree on.
proto::ProtocolConfig make_config(int te_ms) {
  proto::ProtocolConfig config;
  config.check_quorum = 2;
  config.Te = sim::Duration::millis(te_ms);
  config.query_timeout = sim::Duration::millis(200);
  config.max_attempts = 2;
  config.cache_sweep_period = sim::Duration::millis(100);
  config.update_retransmit = sim::Duration::millis(200);
  config.revoke_retransmit = sim::Duration::millis(200);
  config.sync_retransmit = sim::Duration::millis(200);
  return config;
}

/// Every process derives the same user keypair from the same seed, so hosts
/// can verify what the agent signs without any key-distribution protocol.
auth::KeyPair shared_keypair() {
  Rng rng{12345};
  return auth::generate_keypair(rng);
}

bool write_metrics_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = obs::Registry::global().prometheus_text();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

/// Background exporter: rewrites `path` every 500 ms until stopped, then
/// once more so the file reflects the final counter values.
class MetricsExporter {
 public:
  explicit MetricsExporter(std::string path) : path_(std::move(path)) {
    thread_ = std::thread([this] { loop(); });
  }
  ~MetricsExporter() { stop(); }

  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_one();
    thread_.join();
    write_metrics_file(path_);
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopped_) {
      lock.unlock();
      write_metrics_file(path_);
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(500),
                   [this] { return stopped_; });
    }
  }

  const std::string path_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// --realtime: the single-process loopback smoke (PR 3), unchanged in spirit.

struct Smoke {
  static runtime::EnvOptions loopback_options(int delay_us) {
    runtime::EnvOptions eopts;
    eopts.delay = sim::Duration::micros(delay_us);
    return eopts;
  }

  explicit Smoke(const Options& opt)
      : opt_(opt), fabric_(loopback_options(opt.delay_us)) {}

  int run() {
    build();
    if (!warm_up()) return fail("cache warm-up");
    if (!invoke_end_to_end()) return fail("user-agent invoke");
    if (!revoke_and_verify_te()) return fail("Te bound verification");
    fabric_.stop_all();
    std::printf("wan_node --realtime: OK (%zu datagrams delivered)\n",
                static_cast<std::size_t>(fabric_.delivered()));
    return 0;
  }

 private:
  const AppId app_{1};
  const UserId alice_{7};

  void build() {
    config_ = make_config(opt_.te_ms);

    for (const std::uint32_t id : kManagerIds) manager_ids_.push_back(HostId(id));
    for (const std::uint32_t id : kHostIds) host_ids_.push_back(HostId(id));

    for (int i = 0; i < kManagers + kHosts + 1; ++i) {
      envs_.push_back(std::make_unique<runtime::ThreadedEnv>(fabric_));
    }
    for (int i = 0; i < kManagers; ++i) {
      managers_.push_back(std::make_unique<proto::ManagerHost>(
          manager_ids_[static_cast<std::size_t>(i)], *envs_[static_cast<std::size_t>(i)],
          clk::LocalClock::perfect(), config_));
    }
    names_.set_managers(app_, manager_ids_);
    for (int i = 0; i < kManagers; ++i) {
      envs_[static_cast<std::size_t>(i)]->run_sync([this, i] {
        managers_[static_cast<std::size_t>(i)]->manager().manage_app(app_, manager_ids_);
      });
    }

    const auth::KeyPair kp = shared_keypair();
    keys_.register_user(alice_, kp.public_key);
    for (int i = 0; i < kHosts; ++i) {
      auto& env = *envs_[static_cast<std::size_t>(kManagers + i)];
      hosts_.push_back(std::make_unique<proto::AppHost>(
          host_ids_[static_cast<std::size_t>(i)], env, clk::LocalClock::perfect(),
          names_, keys_, config_));
      env.run_sync([this, i] {
        hosts_[static_cast<std::size_t>(i)]->controller().register_app(
            app_, [](UserId, const std::string& p) { return "ok:" + p; });
      });
    }

    auto& agent_env = *envs_.back();
    agent_ = std::make_unique<proto::UserAgent>(HostId(kAgentId), alice_, kp,
                                                agent_env,
                                                proto::UserAgent::Config{});
    agent_env.transport().register_endpoint(
        HostId(kAgentId), [this](HostId from, const net::MessagePtr& msg) {
          agent_->on_message(from, msg);
        });
  }

  // Polls `pred` until it holds or `timeout_ms` of wall clock elapses.
  bool await(const std::function<bool()>& pred, int timeout_ms = 10000) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
      if (Clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

  bool submit(int mgr, acl::Op op) {
    std::mutex mu;
    bool done = false;
    envs_[static_cast<std::size_t>(mgr)]->run_sync([&, this] {
      managers_[static_cast<std::size_t>(mgr)]->manager().submit_update(
          app_, op, alice_, acl::Right::kUse,
          [&](const proto::UpdateOutcome&) {
            const std::lock_guard<std::mutex> lock(mu);
            done = true;
          });
    });
    return await([&] {
      const std::lock_guard<std::mutex> lock(mu);
      return done;
    });
  }

  // Returns the decision's allowed bit, or -1 on timeout.
  int check(int host) {
    std::mutex mu;
    bool done = false;
    bool allowed = false;
    envs_[static_cast<std::size_t>(kManagers + host)]->run_sync([&, this] {
      hosts_[static_cast<std::size_t>(host)]->controller().check_access(
          app_, alice_, [&](const proto::AccessDecision& d) {
            const std::lock_guard<std::mutex> lock(mu);
            allowed = d.allowed;
            done = true;
          });
    });
    if (!await([&] {
          const std::lock_guard<std::mutex> lock(mu);
          return done;
        })) {
      return -1;
    }
    return allowed ? 1 : 0;
  }

  bool warm_up() {
    const Clock::time_point t0 = Clock::now();
    if (!submit(0, acl::Op::kAdd)) return false;
    for (int h = 0; h < kHosts; ++h) {
      if (check(h) != 1) {
        std::fprintf(stderr, "host %d denied a granted user\n", h);
        return false;
      }
    }
    if (opt_.verbose) {
      std::printf("  grant + %d checks in %.1f ms\n", kHosts, ms_since(t0));
    }
    return true;
  }

  bool invoke_end_to_end() {
    std::mutex mu;
    bool done = false;
    proto::InvokeResult result;
    envs_.back()->run_sync([&, this] {
      agent_->invoke(app_, {host_ids_[0], host_ids_[1]}, "hello",
                     [&](const proto::InvokeResult& r) {
                       const std::lock_guard<std::mutex> lock(mu);
                       result = r;
                       done = true;
                     });
    });
    if (!await([&] {
          const std::lock_guard<std::mutex> lock(mu);
          return done;
        })) {
      return false;
    }
    if (!result.ok || result.result != "ok:hello") {
      std::fprintf(stderr, "invoke failed (ok=%d result=%s)\n", result.ok,
                   result.result.c_str());
      return false;
    }
    if (opt_.verbose) std::printf("  invoke round-trip ok\n");
    return true;
  }

  bool revoke_and_verify_te() {
    // Cut the last host off from ALL inbound traffic: no revoke notification
    // and no query replies can reach it. Only its cached entry (te = Te/b)
    // keeps allowing — the worst case the Te bound is designed for.
    const int cut = kHosts - 1;
    envs_[static_cast<std::size_t>(kManagers + cut)]->transport().set_endpoint_down(
        host_ids_[static_cast<std::size_t>(cut)], true);

    if (!submit(1, acl::Op::kRevoke)) return false;
    const Clock::time_point quorum_at = Clock::now();

    // Connected hosts converge to deny quickly (RevokeNotify flush).
    if (!await([this] { return check(0) == 0; }, opt_.te_ms)) {
      std::fprintf(stderr, "connected host still allowing after revoke\n");
      return false;
    }
    if (opt_.verbose) {
      std::printf("  connected host denied %.1f ms after quorum\n",
                  ms_since(quorum_at));
    }

    // The cut host may keep allowing off its cache, but only within Te.
    double last_allow_ms = 0.0;
    while (true) {
      const int r = check(cut);
      const double t = ms_since(quorum_at);
      if (r == 1) {
        last_allow_ms = t;
      } else {
        break;  // denied (cache expired, quorum unreachable -> deny policy)
      }
      if (t > 3.0 * opt_.te_ms) {
        std::fprintf(stderr, "cut host never converged to deny\n");
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    std::printf(
        "  Te bound: last allow at cut host %.1f ms after revoke quorum "
        "(bound %d ms) — %s\n",
        last_allow_ms, opt_.te_ms,
        last_allow_ms <= opt_.te_ms ? "HELD" : "VIOLATED");
    return last_allow_ms <= static_cast<double>(opt_.te_ms);
  }

  int fail(const char* stage) {
    std::fprintf(stderr, "wan_node --realtime: FAILED at %s\n", stage);
    fabric_.stop_all();
    return 1;
  }

  Options opt_;
  runtime::LoopbackFabric fabric_;
  proto::ProtocolConfig config_;
  ns::NameService names_;
  auth::KeyRegistry keys_;
  std::vector<HostId> manager_ids_;
  std::vector<HostId> host_ids_;
  std::vector<std::unique_ptr<runtime::ThreadedEnv>> envs_;
  std::vector<std::unique_ptr<proto::ManagerHost>> managers_;
  std::vector<std::unique_ptr<proto::AppHost>> hosts_;
  std::unique_ptr<proto::UserAgent> agent_;
};

// ---------------------------------------------------------------------------
// --role: one node of a multi-process UDP deployment.

int role_error(const std::string& what) {
  std::fprintf(stderr, "wan_node --role: %s\n", what.c_str());
  return 2;
}

/// Polls for the topology file until it exists and parses (the smoke
/// orchestrator writes it atomically only after every child has announced
/// its bound port), or until the deadline passes.
std::optional<runtime::Topology> wait_for_topology(const std::string& path,
                                                   int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    std::string error;
    std::optional<runtime::Topology> topo =
        runtime::Topology::load(path, &error);
    if (topo && topo->size() > 0) return topo;
    if (Clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::unique_ptr<runtime::SocketTransport> open_transport(const Options& opt) {
  std::string error;
  runtime::EnvOptions eopts;
  std::optional<runtime::Topology> topo;
  if (!opt.listen.empty()) {
    eopts.listen = opt.listen;
  } else {
    // No explicit bind address: this node's topology entry is it, so the
    // file must already exist.
    topo = runtime::Topology::load(opt.topology, &error);
    if (!topo) {
      role_error(error);
      return nullptr;
    }
    const runtime::NodeAddress* self = topo->find(HostId(opt.id));
    if (self == nullptr) {
      role_error("host id " + std::to_string(opt.id) +
                 " not in topology (and no --listen)");
      return nullptr;
    }
    eopts.listen = self->to_string();
  }
  std::unique_ptr<runtime::SocketTransport> transport;
  if (opt.backend == "reactor") {
    transport = runtime::ReactorTransport::create(eopts, &error);
  } else {
    transport = runtime::UdpTransport::create(eopts, &error);
  }
  if (!transport) {
    role_error(error);
    return nullptr;
  }
  // Announce the kernel-assigned port before waiting on the topology: the
  // smoke orchestrator scrapes this line from every child, then writes the
  // topology file everyone is waiting for.
  std::printf("NODE_PORT %u\n", transport->local_port());
  std::fflush(stdout);
  if (!topo) {
    topo = wait_for_topology(opt.topology, /*timeout_ms=*/15000);
    if (!topo) {
      role_error("topology file '" + opt.topology + "' never appeared");
      return nullptr;
    }
  }
  for (const auto& [id, addr] : topo->entries()) {
    if (!transport->add_peer(HostId(id), addr)) {
      role_error("topology host " + std::to_string(id) +
                 ": cannot resolve '" + addr.host + "'");
      return nullptr;
    }
  }
  return transport;
}

int run_manager(const Options& opt, runtime::SocketTransport& transport) {
  const AppId app{1};
  const UserId alice{7};
  std::vector<HostId> manager_ids;
  for (const std::uint32_t id : kManagerIds) manager_ids.push_back(HostId(id));
  const proto::ProtocolConfig config = make_config(opt.te_ms);

  runtime::ThreadedEnv env(transport);
  proto::ManagerHost mgr(HostId(opt.id), env, clk::LocalClock::perfect(),
                         config);
  env.run_sync([&] { mgr.manager().manage_app(app, manager_ids); });
  const Clock::time_point t0 = Clock::now();
  std::printf("NODE_READY role=manager id=%u port=%u\n", opt.id,
              transport.local_port());
  std::fflush(stdout);

  if (opt.id == kManagerIds[0]) {
    sleep_until_offset(t0, kGrantAtMs);
    env.run_sync([&] {
      mgr.manager().submit_update(app, acl::Op::kAdd, alice, acl::Right::kUse,
                                  [](const proto::UpdateOutcome&) {
                                    std::printf("GRANT_OK_US %lld\n",
                                                static_cast<long long>(
                                                    system_us()));
                                    std::fflush(stdout);
                                  });
    });
  }
  if (opt.id == kManagerIds[1]) {
    sleep_until_offset(t0, kRevokeAtMs);
    env.run_sync([&] {
      mgr.manager().submit_update(app, acl::Op::kRevoke, alice,
                                  acl::Right::kUse,
                                  [](const proto::UpdateOutcome&) {
                                    // The instant the revoke reached its
                                    // write quorum — the Te clock starts now.
                                    std::printf("REVOKE_QUORUM_US %lld\n",
                                                static_cast<long long>(
                                                    system_us()));
                                    std::fflush(stdout);
                                  });
    });
  }

  sleep_until_offset(t0, node_lifetime_ms(opt.te_ms));
  transport.shutdown();
  return 0;
}

int run_host(const Options& opt, runtime::SocketTransport& transport) {
  const AppId app{1};
  std::vector<HostId> manager_ids;
  for (const std::uint32_t id : kManagerIds) manager_ids.push_back(HostId(id));
  const proto::ProtocolConfig config = make_config(opt.te_ms);

  ns::NameService names;
  names.set_managers(app, manager_ids);
  auth::KeyRegistry keys;
  keys.register_user(UserId(7), shared_keypair().public_key);

  runtime::ThreadedEnv env(transport);
  proto::AppHost host(HostId(opt.id), env, clk::LocalClock::perfect(), names,
                      keys, config);
  env.run_sync([&] {
    host.controller().register_app(
        app, [](UserId, const std::string& p) { return "ok:" + p; });
  });
  const Clock::time_point t0 = Clock::now();
  std::printf("NODE_READY role=host id=%u port=%u\n", opt.id,
              transport.local_port());
  std::fflush(stdout);

  if (opt.id == kCutHostId) {
    sleep_until_offset(t0, kBlockAtMs);
    // One-way partition: the agent can still invoke through this host, but
    // nothing the managers send (RevokeNotify, QueryResponse) gets in. Only
    // the cache's te expiry can end access — the bound under test.
    for (const HostId m : manager_ids) transport.block_inbound_from(m, true);
    std::printf("BLOCKED_MANAGERS_US %lld\n",
                static_cast<long long>(system_us()));
    std::fflush(stdout);
  }

  sleep_until_offset(t0, node_lifetime_ms(opt.te_ms));
  transport.shutdown();
  return 0;
}

int run_agent(const Options& opt, runtime::SocketTransport& transport) {
  const AppId app{1};
  const UserId alice{7};
  const auth::KeyPair kp = shared_keypair();

  runtime::ThreadedEnv env(transport);
  proto::UserAgent agent(HostId(kAgentId), alice, kp, env,
                         proto::UserAgent::Config{});
  env.transport().register_endpoint(
      HostId(kAgentId), [&](HostId from, const net::MessagePtr& msg) {
        agent.on_message(from, msg);
      });
  const Clock::time_point t0 = Clock::now();
  std::printf("NODE_READY role=agent id=%u port=%u\n", kAgentId,
              transport.local_port());
  std::fflush(stdout);

  sleep_until_offset(t0, kAgentPollStartMs);

  // Poll invocations through the cut host only: its answers are the ones the
  // Te bound constrains once the managers are blocked away from it.
  bool ever_allowed = false;
  bool denied_after_revoke = false;
  std::int64_t last_allow_us = 0;
  const int deadline_ms = node_lifetime_ms(opt.te_ms) - 500;
  while (ms_since(t0) < deadline_ms) {
    std::mutex mu;
    bool done = false;
    bool ok = false;
    env.run_sync([&] {
      agent.invoke(app, {HostId(kCutHostId)}, "hello",
                   [&](const proto::InvokeResult& r) {
                     const std::lock_guard<std::mutex> lock(mu);
                     ok = r.ok;
                     done = true;
                   });
    });
    const auto wait_deadline = Clock::now() + std::chrono::seconds(5);
    while (true) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (done) break;
      }
      if (Clock::now() >= wait_deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (ok) {
      ever_allowed = true;
      last_allow_us = system_us();
      if (opt.verbose) {
        std::printf("  allow at +%.0f ms\n", ms_since(t0));
        std::fflush(stdout);
      }
    } else if (ms_since(t0) > kRevokeAtMs) {
      // Transient denies before the revoke (e.g. a query attempt racing the
      // very first grant) are retried; a deny after it is the revocation
      // taking effect at the cut host.
      denied_after_revoke = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }

  int rc = 0;
  if (!ever_allowed) {
    std::printf("AGENT_NEVER_ALLOWED\n");
    rc = 1;
  } else if (!denied_after_revoke) {
    std::printf("AGENT_NEVER_DENIED\n");
    rc = 1;
  } else {
    std::printf("LAST_ALLOW_US %lld\n", static_cast<long long>(last_allow_us));
  }
  std::fflush(stdout);
  transport.shutdown();
  return rc;
}

int run_role(const Options& opt) {
  // Socket transports move bytes, not pointers: the wire codecs must be
  // registered before the first frame is encoded or decoded.
  proto::register_wire_messages();
  auto transport = open_transport(opt);
  if (!transport) return 2;
  if (opt.role == "manager") return run_manager(opt, *transport);
  if (opt.role == "host") return run_host(opt, *transport);
  return run_agent(opt, *transport);
}

// ---------------------------------------------------------------------------
// --udp-smoke: orchestrates the 8 node processes and asserts the Te bound.

struct ChildProc {
  pid_t pid = -1;
  std::string name;
  std::string out_path;
  int exit_code = -1;
  bool exited = false;
};

std::optional<std::int64_t> scrape_stamp(const std::string& path,
                                         const std::string& key) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key + " ", 0) == 0) {
      return std::strtoll(line.c_str() + key.size() + 1, nullptr, 10);
    }
  }
  return std::nullopt;
}

void dump_child_output(const ChildProc& child) {
  std::ifstream in(child.out_path);
  std::string line;
  while (std::getline(in, line)) {
    std::printf("  [%s] %s\n", child.name.c_str(), line.c_str());
  }
}

int run_udp_smoke(const Options& opt, const char* argv0) {
  char dir_template[] = "/tmp/wan_udp_smoke.XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "wan_node --udp-smoke: mkdtemp failed\n");
    return 2;
  }
  const std::string topo_path = std::string(dir) + "/topology.txt";

  std::vector<std::pair<std::string, std::uint32_t>> nodes;
  for (const std::uint32_t id : kManagerIds) nodes.emplace_back("manager", id);
  for (const std::uint32_t id : kHostIds) nodes.emplace_back("host", id);
  nodes.emplace_back("agent", kAgentId);

  // Phase 1: spawn every child binding port 0. The topology file does not
  // exist yet; each child binds, prints NODE_PORT, and waits for the file.
  // Ports are owned by the sockets that will use them from the instant the
  // kernel assigns them — the old bind-then-close prober could lose its port
  // to another process between close() and the child's bind().
  std::vector<ChildProc> children;
  for (const auto& [role, id] : nodes) {
    ChildProc child;
    child.name = role + "-" + std::to_string(id);
    child.out_path = std::string(dir) + "/" + child.name + ".out";
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "wan_node --udp-smoke: fork failed\n");
      for (const ChildProc& c : children) ::kill(c.pid, SIGKILL);
      return 2;
    }
    if (pid == 0) {
      // Child: stdout -> per-node file the parent scrapes after the run.
      std::FILE* out = std::freopen(child.out_path.c_str(), "w", stdout);
      if (out == nullptr) std::_Exit(3);
      const std::string id_text = std::to_string(id);
      const std::string te_text = std::to_string(opt.te_ms);
      std::vector<const char*> args = {argv0,        "--role",     role.c_str(),
                                       "--id",       id_text.c_str(),
                                       "--topology", topo_path.c_str(),
                                       "--te-ms",    te_text.c_str(),
                                       "--listen",   "127.0.0.1:0",
                                       "--backend",  opt.backend.c_str()};
      if (opt.verbose) args.push_back("--verbose");
      args.push_back(nullptr);
      ::execv(argv0, const_cast<char* const*>(args.data()));
      std::_Exit(3);  // execv only returns on failure
    }
    child.pid = pid;
    children.push_back(std::move(child));
  }
  if (opt.verbose) {
    std::printf("  spawned %zu node processes (topology %s, backend %s)\n",
                children.size(), topo_path.c_str(), opt.backend.c_str());
  }

  // Phase 2: scrape each child's kernel-assigned port, then publish the
  // real topology (atomically, via rename, so no child ever parses a
  // half-written file).
  runtime::Topology topo;
  {
    std::vector<std::optional<std::int64_t>> ports(children.size());
    const auto port_deadline = Clock::now() + std::chrono::seconds(10);
    std::size_t found = 0;
    while (found < children.size()) {
      found = 0;
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (!ports[i]) {
          ports[i] = scrape_stamp(children[i].out_path, "NODE_PORT");
        }
        if (ports[i]) ++found;
      }
      if (found == children.size()) break;
      if (Clock::now() >= port_deadline) {
        std::fprintf(stderr,
                     "wan_node --udp-smoke: FAILED — %zu/%zu children never "
                     "announced a port\n",
                     children.size() - found, children.size());
        for (ChildProc& child : children) {
          ::kill(child.pid, SIGKILL);
          dump_child_output(child);
        }
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      topo.add(HostId(nodes[i].second),
               runtime::NodeAddress{
                   "127.0.0.1", static_cast<std::uint16_t>(*ports[i])});
    }
    const std::string tmp_path = topo_path + ".tmp";
    {
      std::ofstream out(tmp_path);
      out << topo.serialize();
    }
    if (std::rename(tmp_path.c_str(), topo_path.c_str()) != 0) {
      std::fprintf(stderr, "wan_node --udp-smoke: cannot publish topology\n");
      for (const ChildProc& c : children) ::kill(c.pid, SIGKILL);
      return 2;
    }
  }

  // Wait for every child, with a hard deadline: a wedged deployment must
  // fail the smoke, not hang CI.
  const auto deadline =
      Clock::now() +
      std::chrono::milliseconds(node_lifetime_ms(opt.te_ms) + 10000);
  std::size_t remaining = children.size();
  while (remaining > 0 && Clock::now() < deadline) {
    for (ChildProc& child : children) {
      if (child.exited) continue;
      int status = 0;
      const pid_t r = ::waitpid(child.pid, &status, WNOHANG);
      if (r == child.pid) {
        child.exited = true;
        child.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
        --remaining;
      }
    }
    if (remaining > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (remaining > 0) {
    std::fprintf(stderr,
                 "wan_node --udp-smoke: FAILED — %zu process(es) still "
                 "running at deadline; killing\n",
                 remaining);
    for (ChildProc& child : children) {
      if (!child.exited) ::kill(child.pid, SIGKILL);
      dump_child_output(child);
    }
    return 1;
  }

  bool all_ok = true;
  for (const ChildProc& child : children) {
    if (child.exit_code != 0) {
      std::fprintf(stderr, "wan_node --udp-smoke: %s exited %d\n",
                   child.name.c_str(), child.exit_code);
      all_ok = false;
    }
  }
  const std::optional<std::int64_t> quorum_us = scrape_stamp(
      std::string(dir) + "/manager-1.out", "REVOKE_QUORUM_US");
  const std::optional<std::int64_t> last_allow_us = scrape_stamp(
      std::string(dir) + "/agent-" + std::to_string(kAgentId) + ".out",
      "LAST_ALLOW_US");
  if (!quorum_us) {
    std::fprintf(stderr,
                 "wan_node --udp-smoke: revoke never reached quorum\n");
    all_ok = false;
  }
  if (!last_allow_us) {
    std::fprintf(stderr, "wan_node --udp-smoke: agent saw no allow/deny "
                         "transition\n");
    all_ok = false;
  }
  if (!all_ok || opt.verbose) {
    for (const ChildProc& child : children) dump_child_output(child);
  }
  if (!all_ok) {
    std::fprintf(stderr, "wan_node --udp-smoke: FAILED (outputs kept in %s)\n",
                 dir);
    return 1;
  }

  const double over_ms =
      static_cast<double>(*last_allow_us - *quorum_us) / 1000.0;
  const bool held = over_ms <= static_cast<double>(opt.te_ms);
  std::printf(
      "wan_node --udp-smoke: Te bound across 8 processes: last allow %.1f ms "
      "after revoke quorum (bound %d ms) — %s\n",
      over_ms, opt.te_ms, held ? "HELD" : "VIOLATED");
  if (!held) {
    std::fprintf(stderr, "wan_node --udp-smoke: FAILED (outputs kept in %s)\n",
                 dir);
    return 1;
  }

  // Success: tidy up the scratch dir.
  for (const ChildProc& child : children) {
    std::remove(child.out_path.c_str());
  }
  std::remove(topo_path.c_str());
  ::rmdir(dir);
  std::printf("wan_node --udp-smoke: OK (8 processes over localhost UDP, %s "
              "backend)\n",
              opt.backend.c_str());
  return 0;
}

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  wan::Options opt;
  wan::cli::Parser cli(
      "wan_node",
      "Runs the access-control protocol on the real-time runtime: all nodes\n"
      "in-process over loopback (--realtime), one node of a multi-process\n"
      "UDP deployment (--role), or the 8-process localhost UDP smoke\n"
      "orchestrator (--udp-smoke). See docs/ARCHITECTURE.md and\n"
      "docs/WIRE_FORMAT.md.");
  cli.add_flag("--realtime",
               "single-process smoke: 3 managers + 4 hosts + 1 agent on\n"
               "loopback threads; verifies the Te bound against the wall\n"
               "clock",
               &opt.realtime);
  cli.add_flag("--udp-smoke",
               "spawn the same deployment as 8 OS processes over localhost\n"
               "UDP sockets and verify the Te bound across them",
               &opt.udp_smoke);
  cli.add_value("--role", "ROLE",
                "run one node: manager, host, or agent (needs --id and\n"
                "--topology)",
                [&](const std::string& v) {
                  opt.role = v;
                  return v == "manager" || v == "host" || v == "agent";
                });
  cli.add_value("--id", "N", "this node's host id in the topology",
                [&](const std::string& v) {
                  std::uint64_t id = 0;
                  if (!wan::cli::parse_u64(v, &id) || id > 0xFFFFFFFEull) {
                    return false;
                  }
                  opt.id = static_cast<std::uint32_t>(id);
                  opt.id_set = true;
                  return true;
                });
  cli.add_string("--listen", "ADDR",
                 "bind address host:port (default: this node's topology\n"
                 "entry; port 0 picks an ephemeral port)",
                 &opt.listen);
  cli.add_string("--topology", "FILE",
                 "topology file: one '<host-id> <host>:<port>' per line",
                 &opt.topology);
  cli.add_value("--backend", "KIND",
                "socket fabric for --role / --udp-smoke: udp (thread per\n"
                "direction, default) or reactor (epoll + batched syscalls)",
                [&](const std::string& v) {
                  opt.backend = v;
                  return v == "udp" || v == "reactor";
                });
  cli.add_value("--te-ms", "N", "revocation bound Te in ms (default 2000)",
                [&](const std::string& v) {
                  return wan::cli::parse_int(v, &opt.te_ms) && opt.te_ms > 0;
                });
  cli.add_value("--delay-us", "N",
                "loopback one-way delay in us (--realtime only, default 1000)",
                [&](const std::string& v) {
                  return wan::cli::parse_int(v, &opt.delay_us) &&
                         opt.delay_us >= 0;
                });
  cli.add_flag("--verbose", "chatty per-step progress output", &opt.verbose);
  cli.add_optional_value(
      "--metrics", "[FILE]",
      "export the metrics registry (Prometheus text): with FILE, rewrite\n"
      "it twice a second while running and once on exit; without FILE,\n"
      "print to stdout on exit",
      [&] { opt.metrics = true; },
      [&](const std::string& v) {
        opt.metrics_path = v;
        return true;
      });
  if (!cli.parse(argc, argv)) return 2;

  const int modes = (opt.realtime ? 1 : 0) + (opt.udp_smoke ? 1 : 0) +
                    (opt.role.empty() ? 0 : 1);
  if (modes != 1) {
    std::fprintf(stderr,
                 "wan_node: pick exactly one of --realtime, --udp-smoke, "
                 "--role (try --help)\n");
    return 2;
  }
  if (!opt.role.empty() && (!opt.id_set || opt.topology.empty())) {
    std::fprintf(stderr, "wan_node: --role needs --id and --topology\n");
    return 2;
  }

  std::unique_ptr<wan::MetricsExporter> exporter;
  if (opt.metrics && !opt.metrics_path.empty()) {
    exporter = std::make_unique<wan::MetricsExporter>(opt.metrics_path);
  }
  int rc = 0;
  if (opt.realtime) {
    rc = wan::Smoke(opt).run();
  } else if (opt.udp_smoke) {
    rc = wan::run_udp_smoke(opt, argv[0]);
  } else {
    rc = wan::run_role(opt);
  }
  if (exporter != nullptr) exporter->stop();
  if (opt.metrics && opt.metrics_path.empty()) {
    const std::string text = wan::obs::Registry::global().prometheus_text();
    std::fwrite(text.data(), 1, text.size(), stdout);
  }
  return rc;
}
