// wan_node: runs the protocol on the threaded runtime, in real time.
//
// The simulator proves the protocol's logic; this tool proves the runtime
// seam — the same proto/ modules, byte for byte, driven by OS threads, a
// steady clock, and an in-process loopback fabric instead of the
// discrete-event scheduler.
//
//   wan_node --realtime [--te-ms N] [--delay-us N] [--verbose]
//            [--metrics [FILE]]
//
// --metrics exports the process-wide metrics registry in Prometheus text
// format: with FILE, a background thread rewrites the file twice a second
// while the smoke runs (tail -f it, or point a node_exporter textfile
// collector at it) and once more on exit; without FILE, the registry is
// printed to stdout on exit.
//
// The --realtime smoke deploys 3 managers + 4 application hosts + 1 user
// agent (each on its own ThreadedEnv loop thread), then:
//
//   1. grants a user and checks access at every host (cache warm-up),
//   2. invokes the application end-to-end through the user agent,
//   3. cuts one host off from all inbound traffic (so revoke notifications
//      cannot reach it — the paper's worst case, §3.2),
//   4. revokes the user and polls the cut host until it denies,
//   5. verifies against the WALL CLOCK that no access was allowed more than
//      Te after the revocation's quorum instant.
//
// Exit code 0 iff every step behaved and the Te bound held in real time.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "proto/host.hpp"
#include "proto/user_agent.hpp"
#include "runtime/threaded_env.hpp"

namespace wan {
namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  bool realtime = false;
  int te_ms = 2000;      ///< revocation bound Te (small: this runs wall-clock)
  int delay_us = 1000;   ///< loopback fabric one-way delay
  bool verbose = false;
  bool metrics = false;      ///< export the metrics registry
  std::string metrics_path;  ///< with --metrics: live file (empty = stdout)
};

int usage() {
  std::fprintf(stderr,
               "usage: wan_node --realtime [--te-ms N] [--delay-us N] "
               "[--verbose] [--metrics [FILE]]\n"
               "  Threaded-runtime smoke: 3 managers + 4 hosts + 1 user agent\n"
               "  on real threads; verifies the Te revocation bound against\n"
               "  the wall clock. See docs/ARCHITECTURE.md.\n"
               "  --metrics FILE rewrites FILE (Prometheus text) twice a\n"
               "  second while running and once on exit; without FILE the\n"
               "  registry is printed to stdout on exit.\n");
  return 2;
}

bool write_metrics_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = obs::Registry::global().prometheus_text();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

/// Background exporter: rewrites `path` every 500 ms until stopped, then
/// once more so the file reflects the final counter values.
class MetricsExporter {
 public:
  explicit MetricsExporter(std::string path) : path_(std::move(path)) {
    thread_ = std::thread([this] { loop(); });
  }
  ~MetricsExporter() { stop(); }

  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_one();
    thread_.join();
    write_metrics_file(path_);
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopped_) {
      lock.unlock();
      write_metrics_file(path_);
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(500),
                   [this] { return stopped_; });
    }
  }

  const std::string path_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Smoke {
  explicit Smoke(const Options& opt)
      : opt_(opt),
        fabric_(runtime::LoopbackFabric::Config{
            sim::Duration::micros(opt.delay_us), sim::Duration{}, 0.0, 1}) {}

  int run() {
    build();
    if (!warm_up()) return fail("cache warm-up");
    if (!invoke_end_to_end()) return fail("user-agent invoke");
    if (!revoke_and_verify_te()) return fail("Te bound verification");
    fabric_.stop_all();
    std::printf("wan_node --realtime: OK (%zu datagrams delivered)\n",
                static_cast<std::size_t>(fabric_.delivered()));
    return 0;
  }

 private:
  static constexpr int kManagers = 3;
  static constexpr int kHosts = 4;
  const AppId app_{1};
  const UserId alice_{7};

  void build() {
    config_.check_quorum = 2;
    config_.Te = sim::Duration::millis(opt_.te_ms);
    config_.query_timeout = sim::Duration::millis(200);
    config_.max_attempts = 2;
    config_.cache_sweep_period = sim::Duration::millis(100);
    config_.update_retransmit = sim::Duration::millis(200);
    config_.revoke_retransmit = sim::Duration::millis(200);
    config_.sync_retransmit = sim::Duration::millis(200);

    for (std::uint32_t i = 0; i < kManagers; ++i) manager_ids_.push_back(HostId(i));
    for (std::uint32_t i = 0; i < kHosts; ++i) host_ids_.push_back(HostId(100 + i));

    for (int i = 0; i < kManagers + kHosts + 1; ++i) {
      envs_.push_back(std::make_unique<runtime::ThreadedEnv>(fabric_));
    }
    for (int i = 0; i < kManagers; ++i) {
      managers_.push_back(std::make_unique<proto::ManagerHost>(
          manager_ids_[static_cast<std::size_t>(i)], *envs_[static_cast<std::size_t>(i)],
          clk::LocalClock::perfect(), config_));
    }
    names_.set_managers(app_, manager_ids_);
    for (int i = 0; i < kManagers; ++i) {
      envs_[static_cast<std::size_t>(i)]->run_sync([this, i] {
        managers_[static_cast<std::size_t>(i)]->manager().manage_app(app_, manager_ids_);
      });
    }

    const auth::KeyPair kp = auth::generate_keypair(rng_);
    keys_.register_user(alice_, kp.public_key);
    for (int i = 0; i < kHosts; ++i) {
      auto& env = *envs_[static_cast<std::size_t>(kManagers + i)];
      hosts_.push_back(std::make_unique<proto::AppHost>(
          host_ids_[static_cast<std::size_t>(i)], env, clk::LocalClock::perfect(),
          names_, keys_, config_));
      env.run_sync([this, i] {
        hosts_[static_cast<std::size_t>(i)]->controller().register_app(
            app_, [](UserId, const std::string& p) { return "ok:" + p; });
      });
    }

    auto& agent_env = *envs_.back();
    agent_ = std::make_unique<proto::UserAgent>(HostId(9000), alice_, kp,
                                                agent_env,
                                                proto::UserAgent::Config{});
    agent_env.transport().register_endpoint(
        HostId(9000), [this](HostId from, const net::MessagePtr& msg) {
          agent_->on_message(from, msg);
        });
  }

  // Runs `fn` on node `idx`'s loop and waits for `done` to flip true.
  bool await(const std::function<bool()>& pred, int timeout_ms = 10000) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
      if (Clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

  bool submit(int mgr, acl::Op op) {
    std::mutex mu;
    bool done = false;
    envs_[static_cast<std::size_t>(mgr)]->run_sync([&, this] {
      managers_[static_cast<std::size_t>(mgr)]->manager().submit_update(
          app_, op, alice_, acl::Right::kUse,
          [&](const proto::UpdateOutcome&) {
            const std::lock_guard<std::mutex> lock(mu);
            done = true;
          });
    });
    return await([&] {
      const std::lock_guard<std::mutex> lock(mu);
      return done;
    });
  }

  // Returns the decision's allowed bit, or nullopt-like -1 on timeout.
  int check(int host) {
    std::mutex mu;
    bool done = false;
    bool allowed = false;
    envs_[static_cast<std::size_t>(kManagers + host)]->run_sync([&, this] {
      hosts_[static_cast<std::size_t>(host)]->controller().check_access(
          app_, alice_, [&](const proto::AccessDecision& d) {
            const std::lock_guard<std::mutex> lock(mu);
            allowed = d.allowed;
            done = true;
          });
    });
    if (!await([&] {
          const std::lock_guard<std::mutex> lock(mu);
          return done;
        })) {
      return -1;
    }
    return allowed ? 1 : 0;
  }

  bool warm_up() {
    const Clock::time_point t0 = Clock::now();
    if (!submit(0, acl::Op::kAdd)) return false;
    for (int h = 0; h < kHosts; ++h) {
      if (check(h) != 1) {
        std::fprintf(stderr, "host %d denied a granted user\n", h);
        return false;
      }
    }
    if (opt_.verbose) {
      std::printf("  grant + %d checks in %.1f ms\n", kHosts, ms_since(t0));
    }
    return true;
  }

  bool invoke_end_to_end() {
    std::mutex mu;
    bool done = false;
    proto::InvokeResult result;
    envs_.back()->run_sync([&, this] {
      agent_->invoke(app_, {host_ids_[0], host_ids_[1]}, "hello",
                     [&](const proto::InvokeResult& r) {
                       const std::lock_guard<std::mutex> lock(mu);
                       result = r;
                       done = true;
                     });
    });
    if (!await([&] {
          const std::lock_guard<std::mutex> lock(mu);
          return done;
        })) {
      return false;
    }
    if (!result.ok || result.result != "ok:hello") {
      std::fprintf(stderr, "invoke failed (ok=%d result=%s)\n", result.ok,
                   result.result.c_str());
      return false;
    }
    if (opt_.verbose) std::printf("  invoke round-trip ok\n");
    return true;
  }

  bool revoke_and_verify_te() {
    // Cut the last host off from ALL inbound traffic: no revoke notification
    // and no query replies can reach it. Only its cached entry (te = Te/b)
    // keeps allowing — the worst case the Te bound is designed for.
    const int cut = kHosts - 1;
    envs_[static_cast<std::size_t>(kManagers + cut)]->transport().set_endpoint_down(
        host_ids_[static_cast<std::size_t>(cut)], true);

    if (!submit(1, acl::Op::kRevoke)) return false;
    const Clock::time_point quorum_at = Clock::now();

    // Connected hosts converge to deny quickly (RevokeNotify flush).
    if (!await([this] { return check(0) == 0; }, opt_.te_ms)) {
      std::fprintf(stderr, "connected host still allowing after revoke\n");
      return false;
    }
    if (opt_.verbose) {
      std::printf("  connected host denied %.1f ms after quorum\n",
                  ms_since(quorum_at));
    }

    // The cut host may keep allowing off its cache, but only within Te.
    double last_allow_ms = 0.0;
    while (true) {
      const int r = check(cut);
      const double t = ms_since(quorum_at);
      if (r == 1) {
        last_allow_ms = t;
      } else {
        break;  // denied (cache expired, quorum unreachable -> deny policy)
      }
      if (t > 3.0 * opt_.te_ms) {
        std::fprintf(stderr, "cut host never converged to deny\n");
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    std::printf(
        "  Te bound: last allow at cut host %.1f ms after revoke quorum "
        "(bound %d ms) — %s\n",
        last_allow_ms, opt_.te_ms,
        last_allow_ms <= opt_.te_ms ? "HELD" : "VIOLATED");
    return last_allow_ms <= static_cast<double>(opt_.te_ms);
  }

  int fail(const char* stage) {
    std::fprintf(stderr, "wan_node --realtime: FAILED at %s\n", stage);
    fabric_.stop_all();
    return 1;
  }

  Options opt_;
  runtime::LoopbackFabric fabric_;
  proto::ProtocolConfig config_;
  ns::NameService names_;
  auth::KeyRegistry keys_;
  Rng rng_{12345};
  std::vector<HostId> manager_ids_;
  std::vector<HostId> host_ids_;
  std::vector<std::unique_ptr<runtime::ThreadedEnv>> envs_;
  std::vector<std::unique_ptr<proto::ManagerHost>> managers_;
  std::vector<std::unique_ptr<proto::AppHost>> hosts_;
  std::unique_ptr<proto::UserAgent> agent_;
};

}  // namespace
}  // namespace wan

int main(int argc, char** argv) {
  wan::Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--realtime") == 0) {
      opt.realtime = true;
    } else if (std::strcmp(a, "--verbose") == 0) {
      opt.verbose = true;
    } else if (std::strcmp(a, "--te-ms") == 0 && i + 1 < argc) {
      opt.te_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--delay-us") == 0 && i + 1 < argc) {
      opt.delay_us = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--metrics") == 0) {
      opt.metrics = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') opt.metrics_path = argv[++i];
    } else {
      return wan::usage();
    }
  }
  if (!opt.realtime || opt.te_ms <= 0 || opt.delay_us < 0) return wan::usage();
  std::unique_ptr<wan::MetricsExporter> exporter;
  if (opt.metrics && !opt.metrics_path.empty()) {
    exporter = std::make_unique<wan::MetricsExporter>(opt.metrics_path);
  }
  const int rc = wan::Smoke(opt).run();
  if (exporter != nullptr) exporter->stop();
  if (opt.metrics && opt.metrics_path.empty()) {
    const std::string text = wan::obs::Registry::global().prometheus_text();
    std::fwrite(text.data(), 1, text.size(), stdout);
  }
  return rc;
}
