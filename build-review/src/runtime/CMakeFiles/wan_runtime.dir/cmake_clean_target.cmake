file(REMOVE_RECURSE
  "libwan_runtime.a"
)
