# Empty dependencies file for wan_runtime.
# This may be replaced when dependencies are built.
