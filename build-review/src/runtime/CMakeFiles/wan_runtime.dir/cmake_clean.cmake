file(REMOVE_RECURSE
  "CMakeFiles/wan_runtime.dir/sim_env.cpp.o"
  "CMakeFiles/wan_runtime.dir/sim_env.cpp.o.d"
  "CMakeFiles/wan_runtime.dir/threaded_env.cpp.o"
  "CMakeFiles/wan_runtime.dir/threaded_env.cpp.o.d"
  "libwan_runtime.a"
  "libwan_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
