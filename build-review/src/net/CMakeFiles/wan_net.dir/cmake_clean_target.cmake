file(REMOVE_RECURSE
  "libwan_net.a"
)
