# Empty dependencies file for wan_net.
# This may be replaced when dependencies are built.
