file(REMOVE_RECURSE
  "CMakeFiles/wan_net.dir/latency_model.cpp.o"
  "CMakeFiles/wan_net.dir/latency_model.cpp.o.d"
  "CMakeFiles/wan_net.dir/loss_model.cpp.o"
  "CMakeFiles/wan_net.dir/loss_model.cpp.o.d"
  "CMakeFiles/wan_net.dir/message.cpp.o"
  "CMakeFiles/wan_net.dir/message.cpp.o.d"
  "CMakeFiles/wan_net.dir/network.cpp.o"
  "CMakeFiles/wan_net.dir/network.cpp.o.d"
  "CMakeFiles/wan_net.dir/partition_model.cpp.o"
  "CMakeFiles/wan_net.dir/partition_model.cpp.o.d"
  "libwan_net.a"
  "libwan_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
