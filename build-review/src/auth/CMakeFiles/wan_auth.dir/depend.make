# Empty dependencies file for wan_auth.
# This may be replaced when dependencies are built.
