
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auth/authenticator.cpp" "src/auth/CMakeFiles/wan_auth.dir/authenticator.cpp.o" "gcc" "src/auth/CMakeFiles/wan_auth.dir/authenticator.cpp.o.d"
  "/root/repo/src/auth/credentials.cpp" "src/auth/CMakeFiles/wan_auth.dir/credentials.cpp.o" "gcc" "src/auth/CMakeFiles/wan_auth.dir/credentials.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/wan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
