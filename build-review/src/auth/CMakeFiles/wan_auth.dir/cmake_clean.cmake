file(REMOVE_RECURSE
  "CMakeFiles/wan_auth.dir/authenticator.cpp.o"
  "CMakeFiles/wan_auth.dir/authenticator.cpp.o.d"
  "CMakeFiles/wan_auth.dir/credentials.cpp.o"
  "CMakeFiles/wan_auth.dir/credentials.cpp.o.d"
  "libwan_auth.a"
  "libwan_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
