file(REMOVE_RECURSE
  "libwan_auth.a"
)
