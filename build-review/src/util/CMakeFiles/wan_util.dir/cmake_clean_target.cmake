file(REMOVE_RECURSE
  "libwan_util.a"
)
