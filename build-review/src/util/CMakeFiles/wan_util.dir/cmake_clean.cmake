file(REMOVE_RECURSE
  "CMakeFiles/wan_util.dir/ids.cpp.o"
  "CMakeFiles/wan_util.dir/ids.cpp.o.d"
  "CMakeFiles/wan_util.dir/logging.cpp.o"
  "CMakeFiles/wan_util.dir/logging.cpp.o.d"
  "CMakeFiles/wan_util.dir/rng.cpp.o"
  "CMakeFiles/wan_util.dir/rng.cpp.o.d"
  "CMakeFiles/wan_util.dir/table.cpp.o"
  "CMakeFiles/wan_util.dir/table.cpp.o.d"
  "libwan_util.a"
  "libwan_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
