# Empty dependencies file for wan_util.
# This may be replaced when dependencies are built.
