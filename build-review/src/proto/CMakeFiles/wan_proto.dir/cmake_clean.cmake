file(REMOVE_RECURSE
  "CMakeFiles/wan_proto.dir/access_controller.cpp.o"
  "CMakeFiles/wan_proto.dir/access_controller.cpp.o.d"
  "CMakeFiles/wan_proto.dir/manager.cpp.o"
  "CMakeFiles/wan_proto.dir/manager.cpp.o.d"
  "CMakeFiles/wan_proto.dir/user_agent.cpp.o"
  "CMakeFiles/wan_proto.dir/user_agent.cpp.o.d"
  "libwan_proto.a"
  "libwan_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
