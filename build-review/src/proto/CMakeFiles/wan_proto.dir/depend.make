# Empty dependencies file for wan_proto.
# This may be replaced when dependencies are built.
