file(REMOVE_RECURSE
  "libwan_proto.a"
)
