
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clock/local_clock.cpp" "src/clock/CMakeFiles/wan_clock.dir/local_clock.cpp.o" "gcc" "src/clock/CMakeFiles/wan_clock.dir/local_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/wan_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/wan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
