# Empty dependencies file for wan_clock.
# This may be replaced when dependencies are built.
