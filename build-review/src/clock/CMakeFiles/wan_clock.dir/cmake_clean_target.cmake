file(REMOVE_RECURSE
  "libwan_clock.a"
)
