file(REMOVE_RECURSE
  "CMakeFiles/wan_clock.dir/local_clock.cpp.o"
  "CMakeFiles/wan_clock.dir/local_clock.cpp.o.d"
  "libwan_clock.a"
  "libwan_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
