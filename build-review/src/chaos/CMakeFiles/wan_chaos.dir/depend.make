# Empty dependencies file for wan_chaos.
# This may be replaced when dependencies are built.
