file(REMOVE_RECURSE
  "CMakeFiles/wan_chaos.dir/engine.cpp.o"
  "CMakeFiles/wan_chaos.dir/engine.cpp.o.d"
  "CMakeFiles/wan_chaos.dir/fault_schedule.cpp.o"
  "CMakeFiles/wan_chaos.dir/fault_schedule.cpp.o.d"
  "CMakeFiles/wan_chaos.dir/oracle.cpp.o"
  "CMakeFiles/wan_chaos.dir/oracle.cpp.o.d"
  "libwan_chaos.a"
  "libwan_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
