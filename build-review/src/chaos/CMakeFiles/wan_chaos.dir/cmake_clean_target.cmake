file(REMOVE_RECURSE
  "libwan_chaos.a"
)
