file(REMOVE_RECURSE
  "libwan_quorum.a"
)
