file(REMOVE_RECURSE
  "CMakeFiles/wan_quorum.dir/quorum.cpp.o"
  "CMakeFiles/wan_quorum.dir/quorum.cpp.o.d"
  "libwan_quorum.a"
  "libwan_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
