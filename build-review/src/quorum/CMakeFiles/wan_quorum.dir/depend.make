# Empty dependencies file for wan_quorum.
# This may be replaced when dependencies are built.
