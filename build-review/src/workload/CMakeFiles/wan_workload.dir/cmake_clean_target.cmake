file(REMOVE_RECURSE
  "libwan_workload.a"
)
