file(REMOVE_RECURSE
  "CMakeFiles/wan_workload.dir/driver.cpp.o"
  "CMakeFiles/wan_workload.dir/driver.cpp.o.d"
  "CMakeFiles/wan_workload.dir/probes.cpp.o"
  "CMakeFiles/wan_workload.dir/probes.cpp.o.d"
  "CMakeFiles/wan_workload.dir/scenario.cpp.o"
  "CMakeFiles/wan_workload.dir/scenario.cpp.o.d"
  "libwan_workload.a"
  "libwan_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
