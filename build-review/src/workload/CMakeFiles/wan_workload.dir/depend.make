# Empty dependencies file for wan_workload.
# This may be replaced when dependencies are built.
