file(REMOVE_RECURSE
  "CMakeFiles/wan_analysis.dir/advisor.cpp.o"
  "CMakeFiles/wan_analysis.dir/advisor.cpp.o.d"
  "CMakeFiles/wan_analysis.dir/availability.cpp.o"
  "CMakeFiles/wan_analysis.dir/availability.cpp.o.d"
  "CMakeFiles/wan_analysis.dir/binomial.cpp.o"
  "CMakeFiles/wan_analysis.dir/binomial.cpp.o.d"
  "CMakeFiles/wan_analysis.dir/heterogeneous.cpp.o"
  "CMakeFiles/wan_analysis.dir/heterogeneous.cpp.o.d"
  "CMakeFiles/wan_analysis.dir/overhead_model.cpp.o"
  "CMakeFiles/wan_analysis.dir/overhead_model.cpp.o.d"
  "libwan_analysis.a"
  "libwan_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
