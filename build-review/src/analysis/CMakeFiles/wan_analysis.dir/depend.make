# Empty dependencies file for wan_analysis.
# This may be replaced when dependencies are built.
