file(REMOVE_RECURSE
  "libwan_analysis.a"
)
