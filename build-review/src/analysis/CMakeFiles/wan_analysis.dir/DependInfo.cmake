
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/advisor.cpp" "src/analysis/CMakeFiles/wan_analysis.dir/advisor.cpp.o" "gcc" "src/analysis/CMakeFiles/wan_analysis.dir/advisor.cpp.o.d"
  "/root/repo/src/analysis/availability.cpp" "src/analysis/CMakeFiles/wan_analysis.dir/availability.cpp.o" "gcc" "src/analysis/CMakeFiles/wan_analysis.dir/availability.cpp.o.d"
  "/root/repo/src/analysis/binomial.cpp" "src/analysis/CMakeFiles/wan_analysis.dir/binomial.cpp.o" "gcc" "src/analysis/CMakeFiles/wan_analysis.dir/binomial.cpp.o.d"
  "/root/repo/src/analysis/heterogeneous.cpp" "src/analysis/CMakeFiles/wan_analysis.dir/heterogeneous.cpp.o" "gcc" "src/analysis/CMakeFiles/wan_analysis.dir/heterogeneous.cpp.o.d"
  "/root/repo/src/analysis/overhead_model.cpp" "src/analysis/CMakeFiles/wan_analysis.dir/overhead_model.cpp.o" "gcc" "src/analysis/CMakeFiles/wan_analysis.dir/overhead_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/wan_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/wan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
