# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("clock")
subdirs("net")
subdirs("runtime")
subdirs("auth")
subdirs("acl")
subdirs("quorum")
subdirs("nameservice")
subdirs("proto")
subdirs("baseline")
subdirs("workload")
subdirs("metrics")
subdirs("analysis")
subdirs("chaos")
