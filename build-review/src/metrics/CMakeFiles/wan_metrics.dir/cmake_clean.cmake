file(REMOVE_RECURSE
  "CMakeFiles/wan_metrics.dir/collector.cpp.o"
  "CMakeFiles/wan_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/wan_metrics.dir/ground_truth.cpp.o"
  "CMakeFiles/wan_metrics.dir/ground_truth.cpp.o.d"
  "CMakeFiles/wan_metrics.dir/histogram.cpp.o"
  "CMakeFiles/wan_metrics.dir/histogram.cpp.o.d"
  "libwan_metrics.a"
  "libwan_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
