# Empty dependencies file for wan_metrics.
# This may be replaced when dependencies are built.
