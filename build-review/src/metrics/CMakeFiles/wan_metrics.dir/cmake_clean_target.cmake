file(REMOVE_RECURSE
  "libwan_metrics.a"
)
