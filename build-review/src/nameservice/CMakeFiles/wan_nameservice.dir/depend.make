# Empty dependencies file for wan_nameservice.
# This may be replaced when dependencies are built.
