file(REMOVE_RECURSE
  "CMakeFiles/wan_nameservice.dir/name_service.cpp.o"
  "CMakeFiles/wan_nameservice.dir/name_service.cpp.o.d"
  "libwan_nameservice.a"
  "libwan_nameservice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_nameservice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
