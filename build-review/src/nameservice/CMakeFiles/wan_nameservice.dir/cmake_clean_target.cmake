file(REMOVE_RECURSE
  "libwan_nameservice.a"
)
