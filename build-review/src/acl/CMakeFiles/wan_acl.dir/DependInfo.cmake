
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acl/cache.cpp" "src/acl/CMakeFiles/wan_acl.dir/cache.cpp.o" "gcc" "src/acl/CMakeFiles/wan_acl.dir/cache.cpp.o.d"
  "/root/repo/src/acl/rights.cpp" "src/acl/CMakeFiles/wan_acl.dir/rights.cpp.o" "gcc" "src/acl/CMakeFiles/wan_acl.dir/rights.cpp.o.d"
  "/root/repo/src/acl/store.cpp" "src/acl/CMakeFiles/wan_acl.dir/store.cpp.o" "gcc" "src/acl/CMakeFiles/wan_acl.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/clock/CMakeFiles/wan_clock.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/wan_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/wan_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
