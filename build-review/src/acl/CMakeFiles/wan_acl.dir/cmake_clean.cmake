file(REMOVE_RECURSE
  "CMakeFiles/wan_acl.dir/cache.cpp.o"
  "CMakeFiles/wan_acl.dir/cache.cpp.o.d"
  "CMakeFiles/wan_acl.dir/rights.cpp.o"
  "CMakeFiles/wan_acl.dir/rights.cpp.o.d"
  "CMakeFiles/wan_acl.dir/store.cpp.o"
  "CMakeFiles/wan_acl.dir/store.cpp.o.d"
  "libwan_acl.a"
  "libwan_acl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
