# Empty dependencies file for wan_acl.
# This may be replaced when dependencies are built.
