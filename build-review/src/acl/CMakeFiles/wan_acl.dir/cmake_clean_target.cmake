file(REMOVE_RECURSE
  "libwan_acl.a"
)
