# Empty dependencies file for wan_sim.
# This may be replaced when dependencies are built.
