file(REMOVE_RECURSE
  "CMakeFiles/wan_sim.dir/lifecycle.cpp.o"
  "CMakeFiles/wan_sim.dir/lifecycle.cpp.o.d"
  "CMakeFiles/wan_sim.dir/scheduler.cpp.o"
  "CMakeFiles/wan_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/wan_sim.dir/time.cpp.o"
  "CMakeFiles/wan_sim.dir/time.cpp.o.d"
  "CMakeFiles/wan_sim.dir/timer.cpp.o"
  "CMakeFiles/wan_sim.dir/timer.cpp.o.d"
  "libwan_sim.a"
  "libwan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
