file(REMOVE_RECURSE
  "libwan_sim.a"
)
