
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/lifecycle.cpp" "src/sim/CMakeFiles/wan_sim.dir/lifecycle.cpp.o" "gcc" "src/sim/CMakeFiles/wan_sim.dir/lifecycle.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/wan_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/wan_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/sim/CMakeFiles/wan_sim.dir/time.cpp.o" "gcc" "src/sim/CMakeFiles/wan_sim.dir/time.cpp.o.d"
  "/root/repo/src/sim/timer.cpp" "src/sim/CMakeFiles/wan_sim.dir/timer.cpp.o" "gcc" "src/sim/CMakeFiles/wan_sim.dir/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/wan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
