file(REMOVE_RECURSE
  "libwan_baseline.a"
)
