file(REMOVE_RECURSE
  "CMakeFiles/wan_baseline.dir/baseline_system.cpp.o"
  "CMakeFiles/wan_baseline.dir/baseline_system.cpp.o.d"
  "libwan_baseline.a"
  "libwan_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
