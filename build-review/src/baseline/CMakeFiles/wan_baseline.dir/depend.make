# Empty dependencies file for wan_baseline.
# This may be replaced when dependencies are built.
