# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_acl[1]_include.cmake")
include("/root/repo/build-review/tests/test_analysis[1]_include.cmake")
include("/root/repo/build-review/tests/test_auth[1]_include.cmake")
include("/root/repo/build-review/tests/test_logging[1]_include.cmake")
include("/root/repo/build-review/tests/test_nameservice[1]_include.cmake")
include("/root/repo/build-review/tests/test_proto_basic[1]_include.cmake")
include("/root/repo/build-review/tests/test_proto_partition[1]_include.cmake")
include("/root/repo/build-review/tests/test_proto_recovery[1]_include.cmake")
include("/root/repo/build-review/tests/test_baseline[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
include("/root/repo/build-review/tests/test_proto_adversarial[1]_include.cmake")
include("/root/repo/build-review/tests/test_proto_byzantine[1]_include.cmake")
include("/root/repo/build-review/tests/test_proto_multiapp[1]_include.cmake")
include("/root/repo/build-review/tests/test_proto_reconfig[1]_include.cmake")
include("/root/repo/build-review/tests/test_quorum[1]_include.cmake")
include("/root/repo/build-review/tests/test_runtime[1]_include.cmake")
include("/root/repo/build-review/tests/test_workload[1]_include.cmake")
include("/root/repo/build-review/tests/test_clock[1]_include.cmake")
include("/root/repo/build-review/tests/test_net[1]_include.cmake")
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_util[1]_include.cmake")
include("/root/repo/build-review/tests/test_chaos[1]_include.cmake")
include("/root/repo/build-review/tests/test_proto_property[1]_include.cmake")
