# Empty dependencies file for test_proto_property.
# This may be replaced when dependencies are built.
