file(REMOVE_RECURSE
  "CMakeFiles/test_proto_property.dir/test_proto_property.cpp.o"
  "CMakeFiles/test_proto_property.dir/test_proto_property.cpp.o.d"
  "test_proto_property"
  "test_proto_property.pdb"
  "test_proto_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
