# Empty dependencies file for test_proto_recovery.
# This may be replaced when dependencies are built.
