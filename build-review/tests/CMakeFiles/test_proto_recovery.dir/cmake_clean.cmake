file(REMOVE_RECURSE
  "CMakeFiles/test_proto_recovery.dir/test_proto_recovery.cpp.o"
  "CMakeFiles/test_proto_recovery.dir/test_proto_recovery.cpp.o.d"
  "test_proto_recovery"
  "test_proto_recovery.pdb"
  "test_proto_recovery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
