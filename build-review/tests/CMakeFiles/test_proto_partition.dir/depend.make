# Empty dependencies file for test_proto_partition.
# This may be replaced when dependencies are built.
