file(REMOVE_RECURSE
  "CMakeFiles/test_proto_partition.dir/test_proto_partition.cpp.o"
  "CMakeFiles/test_proto_partition.dir/test_proto_partition.cpp.o.d"
  "test_proto_partition"
  "test_proto_partition.pdb"
  "test_proto_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
