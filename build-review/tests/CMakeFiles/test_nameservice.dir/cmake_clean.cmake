file(REMOVE_RECURSE
  "CMakeFiles/test_nameservice.dir/test_nameservice.cpp.o"
  "CMakeFiles/test_nameservice.dir/test_nameservice.cpp.o.d"
  "test_nameservice"
  "test_nameservice.pdb"
  "test_nameservice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nameservice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
