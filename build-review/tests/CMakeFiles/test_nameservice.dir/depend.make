# Empty dependencies file for test_nameservice.
# This may be replaced when dependencies are built.
