file(REMOVE_RECURSE
  "CMakeFiles/test_proto_adversarial.dir/test_proto_adversarial.cpp.o"
  "CMakeFiles/test_proto_adversarial.dir/test_proto_adversarial.cpp.o.d"
  "test_proto_adversarial"
  "test_proto_adversarial.pdb"
  "test_proto_adversarial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
