# Empty compiler generated dependencies file for test_proto_adversarial.
# This may be replaced when dependencies are built.
