# Empty dependencies file for test_proto_reconfig.
# This may be replaced when dependencies are built.
