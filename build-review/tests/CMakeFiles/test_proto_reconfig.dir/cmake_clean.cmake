file(REMOVE_RECURSE
  "CMakeFiles/test_proto_reconfig.dir/test_proto_reconfig.cpp.o"
  "CMakeFiles/test_proto_reconfig.dir/test_proto_reconfig.cpp.o.d"
  "test_proto_reconfig"
  "test_proto_reconfig.pdb"
  "test_proto_reconfig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
