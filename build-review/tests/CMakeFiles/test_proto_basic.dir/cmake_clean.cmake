file(REMOVE_RECURSE
  "CMakeFiles/test_proto_basic.dir/test_proto_basic.cpp.o"
  "CMakeFiles/test_proto_basic.dir/test_proto_basic.cpp.o.d"
  "test_proto_basic"
  "test_proto_basic.pdb"
  "test_proto_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
