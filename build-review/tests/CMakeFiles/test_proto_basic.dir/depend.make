# Empty dependencies file for test_proto_basic.
# This may be replaced when dependencies are built.
