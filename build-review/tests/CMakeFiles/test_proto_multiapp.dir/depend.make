# Empty dependencies file for test_proto_multiapp.
# This may be replaced when dependencies are built.
