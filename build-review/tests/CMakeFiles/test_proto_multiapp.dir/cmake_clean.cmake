file(REMOVE_RECURSE
  "CMakeFiles/test_proto_multiapp.dir/test_proto_multiapp.cpp.o"
  "CMakeFiles/test_proto_multiapp.dir/test_proto_multiapp.cpp.o.d"
  "test_proto_multiapp"
  "test_proto_multiapp.pdb"
  "test_proto_multiapp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_multiapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
