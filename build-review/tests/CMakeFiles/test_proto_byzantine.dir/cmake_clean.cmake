file(REMOVE_RECURSE
  "CMakeFiles/test_proto_byzantine.dir/test_proto_byzantine.cpp.o"
  "CMakeFiles/test_proto_byzantine.dir/test_proto_byzantine.cpp.o.d"
  "test_proto_byzantine"
  "test_proto_byzantine.pdb"
  "test_proto_byzantine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
