# Empty dependencies file for test_proto_byzantine.
# This may be replaced when dependencies are built.
