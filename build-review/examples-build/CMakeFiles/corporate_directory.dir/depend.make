# Empty dependencies file for corporate_directory.
# This may be replaced when dependencies are built.
