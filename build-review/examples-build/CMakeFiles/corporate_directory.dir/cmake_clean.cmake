file(REMOVE_RECURSE
  "../examples/corporate_directory"
  "../examples/corporate_directory.pdb"
  "CMakeFiles/corporate_directory.dir/corporate_directory.cpp.o"
  "CMakeFiles/corporate_directory.dir/corporate_directory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corporate_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
