file(REMOVE_RECURSE
  "../examples/capacity_planner"
  "../examples/capacity_planner.pdb"
  "CMakeFiles/capacity_planner.dir/capacity_planner.cpp.o"
  "CMakeFiles/capacity_planner.dir/capacity_planner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
