file(REMOVE_RECURSE
  "../examples/manager_rotation"
  "../examples/manager_rotation.pdb"
  "CMakeFiles/manager_rotation.dir/manager_rotation.cpp.o"
  "CMakeFiles/manager_rotation.dir/manager_rotation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manager_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
