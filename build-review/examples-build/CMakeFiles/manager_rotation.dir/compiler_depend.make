# Empty compiler generated dependencies file for manager_rotation.
# This may be replaced when dependencies are built.
