# Empty compiler generated dependencies file for stock_quotes.
# This may be replaced when dependencies are built.
