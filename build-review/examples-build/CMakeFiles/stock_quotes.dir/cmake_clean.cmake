file(REMOVE_RECURSE
  "../examples/stock_quotes"
  "../examples/stock_quotes.pdb"
  "CMakeFiles/stock_quotes.dir/stock_quotes.cpp.o"
  "CMakeFiles/stock_quotes.dir/stock_quotes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_quotes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
