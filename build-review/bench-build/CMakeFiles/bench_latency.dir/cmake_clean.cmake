file(REMOVE_RECURSE
  "../bench/bench_latency"
  "../bench/bench_latency.pdb"
  "CMakeFiles/bench_latency.dir/bench_latency.cpp.o"
  "CMakeFiles/bench_latency.dir/bench_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
