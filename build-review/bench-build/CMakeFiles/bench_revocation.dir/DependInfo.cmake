
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_revocation.cpp" "bench-build/CMakeFiles/bench_revocation.dir/bench_revocation.cpp.o" "gcc" "bench-build/CMakeFiles/bench_revocation.dir/bench_revocation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/baseline/CMakeFiles/wan_baseline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/wan_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chaos/CMakeFiles/wan_chaos.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/wan_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/metrics/CMakeFiles/wan_metrics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/proto/CMakeFiles/wan_proto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/wan_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/wan_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/auth/CMakeFiles/wan_auth.dir/DependInfo.cmake"
  "/root/repo/build-review/src/acl/CMakeFiles/wan_acl.dir/DependInfo.cmake"
  "/root/repo/build-review/src/quorum/CMakeFiles/wan_quorum.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nameservice/CMakeFiles/wan_nameservice.dir/DependInfo.cmake"
  "/root/repo/build-review/src/clock/CMakeFiles/wan_clock.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/wan_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/wan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
