file(REMOVE_RECURSE
  "../bench/bench_revocation"
  "../bench/bench_revocation.pdb"
  "CMakeFiles/bench_revocation.dir/bench_revocation.cpp.o"
  "CMakeFiles/bench_revocation.dir/bench_revocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
