file(REMOVE_RECURSE
  "../bench/bench_tradeoff"
  "../bench/bench_tradeoff.pdb"
  "CMakeFiles/bench_tradeoff.dir/bench_tradeoff.cpp.o"
  "CMakeFiles/bench_tradeoff.dir/bench_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
