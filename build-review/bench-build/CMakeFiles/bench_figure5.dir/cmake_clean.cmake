file(REMOVE_RECURSE
  "../bench/bench_figure5"
  "../bench/bench_figure5.pdb"
  "CMakeFiles/bench_figure5.dir/bench_figure5.cpp.o"
  "CMakeFiles/bench_figure5.dir/bench_figure5.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
