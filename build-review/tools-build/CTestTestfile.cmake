# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(chaos_smoke "/root/repo/build-review/tools/chaos_runner" "--seeds" "25" "--max-seconds" "240")
set_tests_properties(chaos_smoke PROPERTIES  LABELS "chaos" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(realtime_smoke "/root/repo/build-review/tools/wan_node" "--realtime" "--verbose")
set_tests_properties(realtime_smoke PROPERTIES  LABELS "realtime" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
