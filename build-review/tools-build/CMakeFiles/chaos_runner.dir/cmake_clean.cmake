file(REMOVE_RECURSE
  "../tools/chaos_runner"
  "../tools/chaos_runner.pdb"
  "CMakeFiles/chaos_runner.dir/chaos_runner.cpp.o"
  "CMakeFiles/chaos_runner.dir/chaos_runner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
