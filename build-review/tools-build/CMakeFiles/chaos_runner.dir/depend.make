# Empty dependencies file for chaos_runner.
# This may be replaced when dependencies are built.
