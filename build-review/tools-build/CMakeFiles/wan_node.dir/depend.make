# Empty dependencies file for wan_node.
# This may be replaced when dependencies are built.
