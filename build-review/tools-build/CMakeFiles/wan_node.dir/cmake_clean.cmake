file(REMOVE_RECURSE
  "../tools/wan_node"
  "../tools/wan_node.pdb"
  "CMakeFiles/wan_node.dir/wan_node.cpp.o"
  "CMakeFiles/wan_node.dir/wan_node.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
